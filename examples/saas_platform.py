#!/usr/bin/env python
"""A multi-tenant SaaS platform on VirtualCluster.

The paper's target use case (§I): a cloud container service where each
customer gets what looks like a full Kubernetes cluster — free to create
namespaces, install CRDs, and run Deployments — while all workloads share
one pool of physical nodes.

Three customers onboard; each deploys a small web stack (a Deployment, a
Service, config); one scales up; one churns; the platform operator
observes consolidated utilization on the super cluster.

Run with:  python examples/saas_platform.py
"""

from repro.core import VirtualClusterEnv
from repro.objects import ConfigMap, Deployment, LabelSelector, make_pod


def deploy_web_stack(env, tenant, replicas=2):
    """What a customer's CI pipeline would apply."""
    env.run_coroutine(tenant.create_namespace("app"))

    config = ConfigMap()
    config.metadata.name = "app-settings"
    config.metadata.namespace = "app"
    config.data = {"theme": tenant.name, "replicas": str(replicas)}
    env.run_coroutine(tenant.client.create(config))

    deployment = Deployment()
    deployment.metadata.name = "web"
    deployment.metadata.namespace = "app"
    deployment.spec.replicas = replicas
    deployment.spec.selector = LabelSelector(match_labels={"app": "web"})
    deployment.spec.template.metadata.labels = {"app": "web"}
    deployment.spec.template.spec = make_pod("t", cpu="250m",
                                             memory="128Mi").spec
    env.run_coroutine(tenant.client.create(deployment))

    env.run_coroutine(tenant.create_service(
        "web", namespace="app", selector={"app": "web"}, port=80))


def wait_for_ready(env, tenant, expected):
    def ready():
        pods, _rv = env.run_coroutine(tenant.client.list(
            "pods", namespace="app"))
        return sum(1 for pod in pods if pod.status.is_ready) >= expected

    env.run_until(ready, timeout=300)


def main():
    env = VirtualClusterEnv(num_virtual_nodes=10)
    env.bootstrap()
    print(f"[{env.sim.now:7.2f}s] platform up: 10 shared nodes")

    customers = {}
    for name in ("acme", "globex", "initech"):
        customers[name] = env.run_coroutine(env.create_tenant(name))
        print(f"[{env.sim.now:7.2f}s] onboarded customer {name!r}")

    for name, tenant in customers.items():
        deploy_web_stack(env, tenant, replicas=2)
    for name, tenant in customers.items():
        wait_for_ready(env, tenant, 2)
        print(f"[{env.sim.now:7.2f}s] {name}: web stack ready (2 replicas)")

    # acme scales to 5 replicas.
    acme = customers["acme"]

    def scale_up():
        deployment = yield from acme.client.get("deployments", "web",
                                                namespace="app")
        deployment.spec.replicas = 5
        yield from acme.client.update(deployment)

    env.run_coroutine(scale_up())
    wait_for_ready(env, acme, 5)
    print(f"[{env.sim.now:7.2f}s] acme scaled web to 5 replicas")

    # globex deletes its stack (namespace deletion sweeps everything).
    globex = customers["globex"]
    env.run_coroutine(globex.client.delete("namespaces", "app"))

    def globex_empty():
        namespaces, _rv = env.run_coroutine(globex.client.list("namespaces"))
        return "app" not in {namespace.name for namespace in namespaces}

    env.run_until(globex_empty, timeout=120)
    print(f"[{env.sim.now:7.2f}s] globex tore down its app namespace")

    # Platform view: consolidated utilization on the shared nodes.
    admin = env.super_admin_client()
    pods, _rv = env.run_coroutine(admin.list("pods", namespace=None))
    running = [pod for pod in pods if pod.status.phase == "Running"]
    by_node = {}
    for pod in running:
        by_node.setdefault(pod.spec.node_name, []).append(pod)
    print(f"[{env.sim.now:7.2f}s] operator view: {len(running)} tenant "
          f"pods packed onto {len(by_node)} of 10 nodes")
    for node, node_pods in sorted(by_node.items()):
        owners = sorted({pod.metadata.namespace.split("-")[0]
                         for pod in node_pods})
        print(f"    {node}: {len(node_pods)} pods from {owners}")

    # Each customer still sees only its own world.
    for name, tenant in customers.items():
        namespaces, _rv = env.run_coroutine(tenant.client.list("namespaces"))
        print(f"[{env.sim.now:7.2f}s] {name} sees namespaces: "
              f"{sorted(ns.name for ns in namespaces)}")


if __name__ == "__main__":
    main()
