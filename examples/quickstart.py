#!/usr/bin/env python
"""Quickstart: spin up a VirtualCluster deployment, create a tenant, run
a Pod, and look at both sides of the synchronization.

Run with:  python examples/quickstart.py
"""

from repro.core import VirtualClusterEnv
from repro.core.crd import super_namespace


def main():
    # A super cluster with five virtual-kubelet nodes, tenant operator,
    # centralized syncer -- the whole paper stack in one call.
    env = VirtualClusterEnv(num_virtual_nodes=5)
    env.bootstrap()
    print(f"[{env.sim.now:6.2f}s] super cluster up with "
          f"{len(env.virtual_kubelets)} nodes")

    # Create a tenant: this creates a VirtualCluster object; the tenant
    # operator provisions a dedicated control plane (apiserver + etcd +
    # controllers, no scheduler) and the syncer attaches to it.
    tenant = env.run_coroutine(env.create_tenant("acme"))
    print(f"[{env.sim.now:6.2f}s] tenant {tenant.name!r} control plane: "
          f"{tenant.vc.status.phase} at "
          f"{tenant.vc.status.control_plane_endpoint}")

    # The tenant talks only to its own apiserver.
    env.run_coroutine(tenant.create_pod("web-1", image="nginx:1.19"))
    print(f"[{env.sim.now:6.2f}s] tenant created pod default/web-1")

    # ... the syncer populates it downward, the super scheduler binds it,
    # the node runs it, and the status flows back upward.
    env.run_until_pods_ready(tenant, ["default/web-1"], timeout=60)
    pod = env.run_coroutine(tenant.get_pod("web-1"))
    print(f"[{env.sim.now:6.2f}s] tenant view:  pod {pod.name} is "
          f"{pod.status.phase} on vNode {pod.spec.node_name} "
          f"(ip {pod.status.pod_ip})")

    # The super-cluster view: same pod, prefixed namespace.
    admin = env.super_admin_client()
    sns = super_namespace(tenant.vc, "default")
    super_pod = env.run_coroutine(admin.get("pods", "web-1", namespace=sns))
    print(f"[{env.sim.now:6.2f}s] super view:   pod "
          f"{super_pod.namespace}/{super_pod.name} on physical node "
          f"{super_pod.spec.node_name}")

    # The tenant sees exactly one vNode -- the physical node its pod uses.
    nodes, _rv = env.run_coroutine(tenant.client.list("nodes"))
    print(f"[{env.sim.now:6.2f}s] tenant vNodes: "
          f"{[node.name for node in nodes]}")

    # End-to-end pod creation trace (the paper's headline metric).
    trace = env.syncer.trace_store.get(tenant.key, "default/web-1")
    print(f"[{env.sim.now:6.2f}s] creation took {trace.total:.3f}s; "
          f"phases: " + ", ".join(
              f"{name}={value * 1000:.1f}ms"
              for name, value in trace.phases().items()))


if __name__ == "__main__":
    main()
