#!/usr/bin/env python
"""Fig. 6 in action: vNodes preserve scheduling semantics.

A tenant deploys two replicas of a critical service with a required
inter-Pod anti-affinity rule (never co-locate).  With VirtualCluster's
one-to-one vNode mapping the tenant can *verify* the rule held; the
script also shows the virtual-kubelet contrast where everything collapses
onto a single synthetic node.

Run with:  python examples/anti_affinity.py
"""

from repro.core import VirtualClusterEnv
from repro.objects import make_pod, with_anti_affinity


def main():
    env = VirtualClusterEnv(num_virtual_nodes=4)
    env.bootstrap()
    tenant = env.run_coroutine(env.create_tenant("acme"))
    print(f"[{env.sim.now:6.2f}s] tenant {tenant.name!r} ready")

    # Two replicas that must not share a host.
    for name in ("critical-a", "critical-b"):
        pod = with_anti_affinity(
            make_pod(name, labels={"app": "critical"}),
            "app", "critical")
        env.run_coroutine(tenant.client.create(pod))
    env.run_until_pods_ready(
        tenant, ["default/critical-a", "default/critical-b"], timeout=60)

    pod_a = env.run_coroutine(tenant.get_pod("critical-a"))
    pod_b = env.run_coroutine(tenant.get_pod("critical-b"))
    print(f"[{env.sim.now:6.2f}s] critical-a -> vNode "
          f"{pod_a.spec.node_name}")
    print(f"[{env.sim.now:6.2f}s] critical-b -> vNode "
          f"{pod_b.spec.node_name}")
    assert pod_a.spec.node_name != pod_b.spec.node_name
    print("anti-affinity visibly enforced: two distinct vNodes, each "
          "backed by a distinct physical node")

    # The tenant's node view: exactly the physical nodes it occupies.
    nodes, _rv = env.run_coroutine(tenant.client.list("nodes"))
    print(f"tenant node list: {[node.name for node in nodes]}")

    # Contrast (Fig. 6(b)): a virtual-kubelet-style provider shows one
    # synthetic node, so the constraint cannot be observed.
    print("\n--- virtual-kubelet contrast ---")
    from repro.apiserver import ADMIN, APIServer
    from repro.clientgo import Client, InformerFactory
    from repro.config import DEFAULT_CONFIG
    from repro.objects import make_namespace
    from repro.simkernel import Simulation
    from repro.virtualkubelet import VirtualKubelet

    sim = Simulation()
    api = APIServer(sim, "vk-cluster")
    client = Client(sim, api, ADMIN, qps=100000, burst=100000)
    vk = VirtualKubelet(sim, "virtual-kubelet", client, DEFAULT_CONFIG,
                        InformerFactory(sim, client))

    def setup():
        yield from client.create(make_namespace("default"))
        yield from vk.start()
        yield from client.create(make_pod("critical-a",
                                          node_name="virtual-kubelet"))
        yield from client.create(make_pod("critical-b",
                                          node_name="virtual-kubelet"))

    sim.run(until=sim.process(setup()))
    sim.run(until=sim.now + 3)

    def fetch():
        items, _rv = yield from client.list("pods", namespace="default")
        return items

    pods = sim.run(until=sim.process(fetch()))
    for pod in pods:
        print(f"{pod.name} -> node {pod.spec.node_name} "
              f"({pod.status.phase})")
    print("both replicas report the same node object: whether the "
          "constraint held on real hardware is invisible to the user")


if __name__ == "__main__":
    main()
