#!/usr/bin/env python
"""Noisy neighbor, before and after (paper Fig. 1 + Fig. 11).

A greedy tenant floods the platform with Pod creations while a regular
tenant deploys a handful.  With the syncer's fair queuing the regular
tenant barely notices; with a shared FIFO it queues behind the flood.

Run with:  python examples/noisy_neighbor.py
"""

from repro.core import VirtualClusterEnv
from repro.workloads import LoadGenerator, TenantLoadPattern


def run_scenario(fair):
    env = VirtualClusterEnv(num_virtual_nodes=10, fair_queuing=fair)
    env.bootstrap()
    greedy = env.run_coroutine(env.create_tenant("greedy-corp"))
    regular = env.run_coroutine(env.create_tenant("small-team"))
    env.run_for(1)

    generator = LoadGenerator(env.sim)
    jobs = [
        (greedy.client, TenantLoadPattern(800, mode="burst",
                                          name_prefix="flood")),
        (regular.client, TenantLoadPattern(8, mode="sequential",
                                           name_prefix="app")),
    ]
    env.run_coroutine(generator.run_all(jobs))
    env.run_until(
        lambda: len(env.syncer.trace_store.completed()) >= 808,
        timeout=600, poll=0.5)

    means = env.syncer.trace_store.mean_creation_time_by_tenant()
    return {
        "greedy": means[greedy.key],
        "regular": means[regular.key],
        "queue": dict(env.syncer.downward.wait_time_by_tenant),
    }


def main():
    print("greedy-corp bursts 800 pod creations; small-team deploys 8 "
          "pods sequentially\n")
    with_fq = run_scenario(fair=True)
    without_fq = run_scenario(fair=False)

    print("mean pod creation time (seconds):")
    print(f"  {'tenant':<14} {'fair queuing ON':>16} "
          f"{'fair queuing OFF':>17}")
    for tenant in ("regular", "greedy"):
        print(f"  {tenant:<14} {with_fq[tenant]:>16.2f} "
              f"{without_fq[tenant]:>17.2f}")

    slowdown = without_fq["regular"] / with_fq["regular"]
    print(f"\nwithout fair queuing the regular tenant is {slowdown:.1f}x "
          f"slower; with it, the greedy tenant bears its own burst "
          f"(weighted round-robin over per-tenant sub-queues).")


if __name__ == "__main__":
    main()
