#!/usr/bin/env python
"""Platform operations: the paper's §V roadmap, working.

Three operator-facing capabilities beyond the core framework:

1. **tenant weights** — a premium tenant gets a larger share of the
   syncer's weighted-round-robin dispatch under contention;
2. **CRD synchronization** — a tenant's custom resources flow to the
   super cluster so extended schedulers could act on them;
3. **idle control-plane swapping** — idle tenants' control planes shrink
   to a memory residual and transparently wake on the next request.

Run with:  python examples/platform_operations.py
"""

from repro.core import IdleSwapper, VirtualClusterEnv
from repro.core.crd import super_namespace
from repro.core.swapper import control_plane_memory
from repro.objects import CustomResourceDefinition
from repro.workloads import LoadGenerator, TenantLoadPattern


def main():
    env = VirtualClusterEnv(num_virtual_nodes=10, scan_interval=60.0)
    env.bootstrap()

    # --- 1. tenant weights -------------------------------------------------
    premium = env.run_coroutine(env.create_tenant("premium", weight=4))
    basic = env.run_coroutine(env.create_tenant("basic", weight=1))
    env.run_for(1)
    print(f"[{env.sim.now:6.1f}s] tenants: premium (weight 4), "
          f"basic (weight 1)")

    generator = LoadGenerator(env.sim)
    jobs = [(tenant.client, TenantLoadPattern(300, mode="burst",
                                              name_prefix=prefix))
            for tenant, prefix in ((premium, "p"), (basic, "b"))]
    env.run_coroutine(generator.run_all(jobs))
    env.run_until(lambda: len(env.syncer.trace_store.completed()) >= 600,
                  timeout=600, poll=0.5)
    means = env.syncer.trace_store.mean_creation_time_by_tenant()
    print(f"[{env.sim.now:6.1f}s] both burst 300 pods -> mean creation: "
          f"premium {means[premium.key]:.2f}s, "
          f"basic {means[basic.key]:.2f}s "
          f"(weight buys the premium tenant its share)")

    # --- 2. CRD synchronization ---------------------------------------------
    crd = CustomResourceDefinition()
    crd.metadata.name = "trainingjobs.acme.io"
    crd.spec.group = "acme.io"
    crd.spec.names.kind = "TrainingJob"
    crd.spec.names.plural = "trainingjobs"
    env.run_coroutine(premium.client.create(crd))
    job_type = premium.control_plane.api.registry.register_crd(crd)
    env.syncer.enable_crd_sync(premium.key, crd)

    job = job_type()
    job.metadata.name = "resnet-sweep"
    job.metadata.namespace = "default"
    job.spec = {"gpus": 8, "framework": "torch"}
    env.run_coroutine(premium.client.create(job))

    admin = env.super_admin_client()
    sns = super_namespace(premium.vc, "default")

    def job_synced():
        try:
            env.run_coroutine(admin.get("trainingjobs", "resnet-sweep",
                                        namespace=sns))
            return True
        except Exception:
            return False

    env.run_until(job_synced, timeout=60)
    synced = env.run_coroutine(admin.get("trainingjobs", "resnet-sweep",
                                         namespace=sns))
    print(f"[{env.sim.now:6.1f}s] tenant CRD object synced to super: "
          f"{synced.namespace}/{synced.name} spec={synced.spec}")

    # --- 3. idle control-plane swapping --------------------------------------
    swapper = IdleSwapper(env.sim, idle_threshold=20.0, check_interval=5.0,
                          wake_latency=0.8)
    swapper.start()
    idlers = [env.run_coroutine(env.create_tenant(f"idle-{index}"))
              for index in range(5)]
    for handle in idlers:
        swapper.track(handle.control_plane)
    before = swapper.total_resident_bytes()
    env.run_for(40)
    after = swapper.total_resident_bytes()
    print(f"[{env.sim.now:6.1f}s] five idle tenants swapped out: "
          f"control-plane RSS {before / 1e6:.0f} MB -> "
          f"{after / 1e6:.0f} MB")

    start = env.sim.now
    env.run_coroutine(idlers[0].client.list("pods", namespace="default"))
    print(f"[{env.sim.now:6.1f}s] first request after the nap took "
          f"{env.sim.now - start:.2f}s (page-in), tenant "
          f"{idlers[0].name!r} is awake: "
          f"{control_plane_memory(idlers[0].control_plane) / 1e6:.0f} MB")


if __name__ == "__main__":
    main()
