#!/usr/bin/env python
"""Data-plane walkthrough: cluster-IP services over a VPC with Kata.

Demonstrates the exact breakage and fix from paper §III-B(4):

1. Kata pods attach to the tenant VPC through ENIs -- their traffic
   bypasses the host network stack entirely;
2. the *stock* kubeproxy programs only host iptables, so a cluster-IP
   lookup from inside a guest fails;
3. the *enhanced* kubeproxy pushes the routing rules over gRPC into each
   guest's iptables, and the service works.

Run with:  python examples/vpc_service_mesh.py
"""

from repro.core import VirtualClusterEnv
from repro.core.crd import super_namespace
from repro.network import ConnectivityChecker
from repro.objects import make_service


def main():
    env = VirtualClusterEnv(num_real_nodes=1)
    env.bootstrap(settle=3.0)
    node_name = next(iter(env.real_kubelets))
    print(f"[{env.sim.now:6.2f}s] one real node ({node_name}) with runc + "
          f"kata runtimes, enhanced kubeproxy, vn-agent")

    tenant = env.run_coroutine(env.create_tenant("acme"))

    # A backend and a client, both Kata sandboxes in the tenant VPC.
    for name, labels in (("backend", {"app": "backend"}), ("client", {})):
        env.run_coroutine(tenant.create_pod(name, runtime_class="kata",
                                            labels=labels))
    env.run_until_pods_ready(tenant, ["default/backend", "default/client"],
                             timeout=300)
    backend = env.run_coroutine(tenant.get_pod("backend"))
    client = env.run_coroutine(tenant.get_pod("client"))
    print(f"[{env.sim.now:6.2f}s] backend guest ip {backend.status.pod_ip}, "
          f"client guest ip {client.status.pod_ip} (both VPC addresses)")

    # A cluster-IP service in the super cluster selecting the backend.
    admin = env.super_admin_client()
    sns = super_namespace(tenant.vc, "default")
    service = env.run_coroutine(admin.create(make_service(
        "backend-svc", namespace=sns, selector={"app": "backend"},
        port=80)))
    env.run_for(8)  # endpoints controller + proxy push
    print(f"[{env.sim.now:6.2f}s] service backend-svc cluster IP "
          f"{service.spec.cluster_ip}")

    kubelet = env.real_kubelets[node_name]
    guest = kubelet.sandbox_for(sns, "client").network_stack
    host = env.kube_proxies[node_name].host_stack
    checker = ConnectivityChecker(env.vpc)

    # The stock path: rules only in the host iptables.
    host_rule = host.iptables.translate(service.spec.cluster_ip, 80)
    print(f"host iptables DNAT:  {service.spec.cluster_ip}:80 -> "
          f"{host_rule}")
    print("but guest traffic bypasses the host stack (VPC/ENI), so "
          "resolution must happen in the *guest* iptables:")

    resolved = checker.resolve(guest, service.spec.cluster_ip, 80)
    print(f"guest resolution:    {service.spec.cluster_ip}:80 -> "
          f"{resolved}")
    assert resolved is not None and resolved[0] == backend.status.pod_ip
    print("cluster-IP service works from inside the Kata guest "
          "(rules injected by the enhanced kubeproxy over gRPC)")

    # Show what WOULD have happened with only host rules.
    guest.iptables.flush()
    broken = checker.resolve(guest, service.spec.cluster_ip, 80)
    print(f"\nwith guest rules removed (stock kubeproxy world): "
          f"{service.spec.cluster_ip}:80 -> {broken}")
    assert broken is None

    # The periodic reconcile loop repairs the tampered guest.
    proxy = env.kube_proxies[node_name]
    env.run_coroutine(proxy.scan_all_guests())
    repaired = checker.resolve(guest, service.spec.cluster_ip, 80)
    print(f"after the proxy's periodic scan: "
          f"{service.spec.cluster_ip}:80 -> {repaired}")
    assert repaired is not None
    print(f"(scan of {proxy.connected_guests} guests took "
          f"{proxy.last_scan_duration * 1000:.0f} ms)")

    # Logs still flow through the vn-agent, tenant-authenticated.
    lines = env.run_coroutine(tenant.logs("client"))
    print(f"\nkubectl logs via vn-agent: {lines[-1]!r}")


if __name__ == "__main__":
    main()
