"""Table I: per-phase time-bucket counts for the Fig. 8 run.

Paper findings: the delay variations are small in all phases except
DWS-Queue, where the burst accumulates — DWS-Queue counts spread across
all buckets while DWS-Process/UWS-Process land entirely in [0,2].
"""

from repro.metrics import format_bucket_table

from benchmarks.conftest import PARAMS, once, vc_run


def test_table1_phase_buckets(benchmark):
    num_pods = PARAMS["pods_sweep"][-1]
    tenants = PARAMS["tenants_default"]

    result = once(benchmark, lambda: vc_run(num_pods, tenants))
    buckets = result.phase_buckets

    print()
    print(format_bucket_table(buckets))
    for phase, counts in buckets.items():
        benchmark.extra_info[phase] = counts

    total = num_pods
    # Every phase accounts for every pod.
    for phase, counts in buckets.items():
        assert sum(counts) == total, phase

    # Processing phases are instantaneous: all in the first bucket.
    assert buckets["DWS-Process"][0] == total
    assert buckets["UWS-Process"][0] >= 0.99 * total

    # DWS-Queue spreads across more buckets than any other phase.
    def occupied(counts):
        return sum(1 for count in counts if count > 0)

    spread = {phase: occupied(counts) for phase, counts in buckets.items()}
    assert spread["DWS-Queue"] == max(spread.values())
    assert spread["DWS-Queue"] >= 2
