"""Syncer hot-path benchmark: indexes + batching + sharding vs. baseline.

Runs the Pod-provision stress twice with an over-provisioned super
scheduler (so the *syncer* — not the sequential scheduler — is the
pipeline bottleneck, which is the regime DESIGN.md §9 targets):

- **baseline**: the paper-faithful serialized syncer (one dispatch lock
  per direction, one apiserver write per object, linear cache scans);
- **optimized**: secondary cache indexes + 4 dispatch shards + downward
  writes batched into 8-op transactions.

Asserts the optimized run provisions Pods at >= 2x the baseline
throughput AND that both runs converge to byte-identical super-cluster
etcd state (after canonicalizing run-order artifacts: UIDs from the
global counter, simulated timestamps, resource versions, scheduler
placement, and status blocks; Events are excluded as best-effort
observability objects).
"""

import json
from dataclasses import replace

from benchmarks.conftest import PARAMS, once

from repro.config import DEFAULT_CONFIG
from repro.core.crd import cluster_prefix
from repro.workloads import run_vc_stress

THROUGHPUT_GAIN_FLOOR = 2.0
_SCRUB_ANNOTATIONS = ("tenancy.x-k8s.io/tenant-uid",)


def _hotpath_config(optimized):
    """The shared fast-scheduler regime, with the syncer flags toggled."""
    base = PARAMS["config"] or DEFAULT_CONFIG
    return base.with_overrides(
        scheduler=replace(base.scheduler, service_time=0.0002,
                          service_jitter=0.00002),
        syncer=replace(base.syncer,
                       use_cache_indexes=optimized,
                       dispatch_shards=4 if optimized else 1,
                       downward_batch_max=8 if optimized else 1),
    )


_memo = {}


def _run(optimized):
    key = bool(optimized)
    if key not in _memo:
        _memo[key] = run_vc_stress(
            num_pods=PARAMS["pods_sweep"][-1],
            num_tenants=PARAMS["tenants_default"],
            dws_workers=20, uws_workers=100,
            # 5x the Fig. 9 pacing so arrival never caps the optimized
            # run; the syncer dispatch path is the limiter under test.
            submission_rate=PARAMS["submission_rate"] * 5,
            num_nodes=PARAMS["nodes"], seed=0, timeout=1800.0,
            keep_env=True, config=_hotpath_config(optimized))
    return _memo[key]


def _scrub(value):
    """Drop fields that legitimately differ between two identical runs."""
    meta = value.get("metadata", {})
    for field in ("uid", "creationTimestamp", "resourceVersion"):
        meta.pop(field, None)
    annotations = meta.get("annotations") or {}
    for annotation in _SCRUB_ANNOTATIONS:
        annotations.pop(annotation, None)
    value.pop("status", None)
    spec = value.get("spec")
    if isinstance(spec, dict):
        spec.pop("nodeName", None)
    string_data = value.get("stringData")
    if isinstance(string_data, dict):
        # Kubeconfig secrets embed a cert hash derived from the VC uid.
        string_data.pop("cert-hash", None)
    return value


def canonical_super_state(result):
    """key -> canonical serialized bytes of the converged super store.

    The per-VC namespace prefix embeds a hash of the VC's uid, and uids
    come from a process-global counter — so the *same* logical object
    gets a different prefix in two sequential runs.  Rewrite each run's
    prefixes to a stable per-tenant token before comparing.
    """
    env = result.env
    prefixes = {cluster_prefix(reg.vc): f"vc({tenant})"
                for tenant, reg in env.syncer.tenants.items()}

    def normalize(text):
        for prefix, token in prefixes.items():
            text = text.replace(prefix, token)
        return text

    store = env.super_cluster.api.store
    state = {}
    for key in sorted(store._data):
        if key.startswith("/registry/events/"):
            continue
        raw, _revision = store.get(key)
        state[normalize(key)] = normalize(
            json.dumps(_scrub(raw), sort_keys=True))
    return state


class TestSyncerHotpath:
    def test_optimized_throughput_at_least_2x(self, benchmark):
        base = _run(optimized=False)
        optimized = once(benchmark, lambda: _run(optimized=True))
        assert base.num_pods == optimized.num_pods
        gain = optimized.throughput / base.throughput
        assert gain >= THROUGHPUT_GAIN_FLOOR, (
            f"hot-path gain {gain:.2f}x < {THROUGHPUT_GAIN_FLOOR}x "
            f"(baseline {base.throughput:.0f}/s, "
            f"optimized {optimized.throughput:.0f}/s)")

    def test_optimizations_used(self):
        stats = _run(optimized=True).syncer_stats
        assert stats["dispatch_shards"] == 4
        assert stats["downward"]["shards"] == 4
        batching = stats["downward_batching"]
        assert batching["enabled"]
        assert batching["largest_batch"] > 1
        assert batching["ops_batched"] >= _run(True).num_pods

    def test_converged_etcd_state_identical(self):
        base_state = canonical_super_state(_run(optimized=False))
        opt_state = canonical_super_state(_run(optimized=True))
        assert set(base_state) == set(opt_state), (
            "key sets differ: only-baseline="
            f"{sorted(set(base_state) - set(opt_state))[:5]} "
            f"only-optimized={sorted(set(opt_state) - set(base_state))[:5]}")
        different = [key for key in base_state
                     if base_state[key] != opt_state[key]]
        assert not different, (
            f"{len(different)} keys diverge, first: {different[0]}\n"
            f"  baseline:  {base_state[different[0]]}\n"
            f"  optimized: {opt_state[different[0]]}")
