"""Ablation: why a *centralized* syncer (paper §III-C design rationale).

The paper gives two arguments for one shared syncer over per-tenant
syncers:

1. restart list-storm: when the super apiserver (or the syncer) restarts,
   a centralized syncer lists the super cluster state once, while N
   per-tenant syncers would issue N full LISTs and flood the apiserver;
2. fair queuing is only implementable with a shared queue.

This benchmark quantifies (1) by measuring super-cluster LIST traffic for
the centralized design versus an emulated per-tenant design, and spot
checks (2) via the fairness harness.
"""

from repro.clientgo import InformerFactory
from repro.core.syncer.syncer import SUPER_WATCHED

from benchmarks.conftest import PARAMS, once, vc_run


def test_restart_list_load_centralized_vs_per_tenant(benchmark):
    num_pods = PARAMS["pods_sweep"][-2]
    tenants = PARAMS["tenants_default"]

    def run():
        result = vc_run(num_pods, tenants)
        env = result.env

        def super_list_count():
            return sum(
                informer.reflector.list_count
                for informer in env.syncer.super_informers.informers.values()
            )

        # Centralized: one restart -> one LIST per watched super resource.
        before = super_list_count()
        env.run_coroutine(env.syncer.simulate_restart())
        centralized_lists = super_list_count() - before

        # Per-tenant emulation: each tenant's own syncer would maintain
        # its own super-cluster informer set and relist it on restart.
        factories = []
        for _tenant in range(len(env.syncer.tenants)):
            client = env.super_cluster.client(
                user_agent="per-tenant-syncer", qps=1_000_000,
                burst=2_000_000)
            factory = InformerFactory(env.sim, client)
            for plural in SUPER_WATCHED:
                factory.informer(plural)
            factory.start_all()
            factories.append(factory)

        def wait_all():
            for factory in factories:
                yield from factory.wait_for_sync()

        env.run_coroutine(wait_all())
        per_tenant_lists = sum(
            informer.reflector.list_count
            for factory in factories
            for informer in factory.informers.values()
        )
        for factory in factories:
            factory.stop_all()
        return centralized_lists, per_tenant_lists

    centralized, per_tenant = once(benchmark, run)
    print(f"\nrestart LIST storm against the super apiserver:")
    print(f"  centralized syncer : {centralized:6d} LISTs")
    print(f"  per-tenant syncers : {per_tenant:6d} LISTs "
          f"({tenants} tenants)")
    benchmark.extra_info["centralized_lists"] = centralized
    benchmark.extra_info["per_tenant_lists"] = per_tenant
    # The per-tenant design multiplies the list storm by ~#tenants: each
    # of the N per-tenant syncers relists every watched super resource,
    # while the centralized syncer lists each resource once.
    assert centralized == len(SUPER_WATCHED)
    assert per_tenant >= tenants * centralized


def test_upward_worker_count_does_affect_latency(benchmark):
    """Counterpart to the Fig. 7 downward-worker observation: the paper
    notes the number of *upward* workers does affect latency (tenant
    control planes have no status-update bottleneck), motivating the
    default of 100 upward / 20 downward workers."""
    from repro.workloads import run_vc_stress

    num_pods = PARAMS["pods_sweep"][-2]
    tenants = PARAMS["tenants_small"]

    def run():
        starved = run_vc_stress(
            num_pods=num_pods, num_tenants=tenants, uws_workers=1,
            submission_rate=PARAMS["submission_rate"],
            num_nodes=PARAMS["nodes"], timeout=1800.0,
            config=PARAMS["config"])
        default = run_vc_stress(
            num_pods=num_pods, num_tenants=tenants, uws_workers=100,
            submission_rate=PARAMS["submission_rate"],
            num_nodes=PARAMS["nodes"], timeout=1800.0,
            config=PARAMS["config"])
        return starved, default

    starved, default = once(benchmark, run)
    print(f"\nmean creation time with 1 upward worker:   "
          f"{starved.mean:.2f} s")
    print(f"mean creation time with 100 upward workers: "
          f"{default.mean:.2f} s")
    benchmark.extra_info["uws1_mean_s"] = round(starved.mean, 2)
    benchmark.extra_info["uws100_mean_s"] = round(default.mean, 2)
    assert starved.mean > default.mean
