"""Shared benchmark infrastructure.

Two scales, selected with ``REPRO_SCALE``:

- ``small`` (default): 1/5th of the paper's workload so the full harness
  finishes in a few minutes.  All *shape* assertions still hold.
- ``paper``: the paper's exact parameters (10,000 Pods, 100 tenants, 100
  nodes) — the numbers recorded in EXPERIMENTS.md were produced this way.

Expensive runs are memoized per session, so Fig. 7/8/9/Table I share the
same underlying simulations.
"""

import os
from dataclasses import replace

import pytest

from repro.config import DEFAULT_CONFIG
from repro.workloads import (
    run_baseline_stress,
    run_fairness_stress,
    run_vc_stress,
)

SCALE = os.environ.get("REPRO_SCALE", "small")


def _scaled_config(factor):
    """Slow every rate-limited stage by ``factor``.

    Shrinking the workload by N and slowing the bottleneck service rates
    by N preserves the *dimensionless* queueing dynamics (arrival/service
    ratios and the 0-25 s time axis), so the paper's latency shapes —
    phase shares, bucket spreads, tail ratios — reproduce at 1/N scale.
    """
    cfg = DEFAULT_CONFIG
    return cfg.with_overrides(
        scheduler=replace(cfg.scheduler,
                          service_time=cfg.scheduler.service_time * factor,
                          service_jitter=cfg.scheduler.service_jitter
                          * factor),
        syncer=replace(cfg.syncer,
                       dws_dequeue_cs=cfg.syncer.dws_dequeue_cs * factor,
                       uws_dequeue_cs=cfg.syncer.uws_dequeue_cs * factor,
                       dws_process=cfg.syncer.dws_process * factor,
                       uws_process=cfg.syncer.uws_process * factor,
                       per_item_cpu_overhead=(
                           cfg.syncer.per_item_cpu_overhead * factor)),
    )


if SCALE == "paper":
    PARAMS = {
        "pods_sweep": [1250, 2500, 5000, 10000],
        "tenants_default": 100,
        "tenants_small": 20,
        "tenants_sweep": [1, 20, 50, 100],
        "nodes": 100,
        "dws_sweep": [20, 40],
        "greedy": (10, 900),
        "regular": (40, 10),
        "submission_rate": 1000.0,
        "config": None,
        # Fig. 11 bound on regular users' mean creation time (paper:
        # "less than two seconds"; our pipeline floor puts the worst
        # regular user at ~2.0, so allow a 10% measurement margin).
        "regular_bound_s": 2.2,
    }
else:
    _FACTOR = 5
    PARAMS = {
        "pods_sweep": [250, 500, 1000, 2000],
        "tenants_default": 20,
        "tenants_small": 4,
        "tenants_sweep": [1, 4, 10, 20],
        "nodes": 20,
        "dws_sweep": [20, 40],
        "greedy": (4, 180),
        "regular": (16, 10),
        "submission_rate": 1000.0 / _FACTOR,
        "config": _scaled_config(_FACTOR),
        # The slowed service rates raise the unloaded latency floor to
        # ~2.6 s, so the paper's 2 s bound scales accordingly.
        "regular_bound_s": 4.0,
    }

_run_cache = {}


def vc_run(num_pods, num_tenants, dws_workers=20, fair=True, seed=0):
    key = ("vc", num_pods, num_tenants, dws_workers, fair, seed)
    if key not in _run_cache:
        _run_cache[key] = run_vc_stress(
            num_pods=num_pods, num_tenants=num_tenants,
            dws_workers=dws_workers, fair=fair,
            submission_rate=PARAMS["submission_rate"],
            num_nodes=PARAMS["nodes"], seed=seed, timeout=1800.0,
            keep_env=True, config=PARAMS["config"])
    return _run_cache[key]


def baseline_run(num_pods, num_threads, seed=0):
    key = ("baseline", num_pods, num_threads, seed)
    if key not in _run_cache:
        _run_cache[key] = run_baseline_stress(
            num_pods=num_pods, num_threads=num_threads,
            submission_rate=PARAMS["submission_rate"],
            num_nodes=PARAMS["nodes"], seed=seed, timeout=1800.0,
            config=PARAMS["config"])
    return _run_cache[key]


def fairness_run(fair, seed=0):
    key = ("fairness", fair, seed)
    if key not in _run_cache:
        greedy_users, greedy_pods = PARAMS["greedy"]
        regular_users, regular_pods = PARAMS["regular"]
        _run_cache[key] = run_fairness_stress(
            num_greedy=greedy_users, num_regular=regular_users,
            greedy_pods=greedy_pods, regular_pods=regular_pods,
            fair=fair, num_nodes=PARAMS["nodes"], seed=seed,
            timeout=3600.0, config=PARAMS["config"])
    return _run_cache[key]


def registry_family(result, name):
    """The named metric family from a StressResult's telemetry snapshot."""
    for family in result.telemetry["families"]:
        if family["name"] == name:
            return family
    raise AssertionError(
        f"metric family {name!r} missing from telemetry snapshot")


@pytest.fixture
def params():
    return PARAMS


def once(benchmark, fn):
    """Run ``fn`` exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, rounds=1, iterations=1,
                              warmup_rounds=0)
