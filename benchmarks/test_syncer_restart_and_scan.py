"""§IV-C text results: syncer restart time and periodic-scan cost.

Paper: with 100 tenant control planes and 10,000 Pods, re-initializing
all informer caches after a syncer restart took under 21 seconds, and a
full periodic scan of 10,000 Pods (one scanning thread per tenant,
running in parallel) finished in under two seconds on average.
"""

from benchmarks.conftest import PARAMS, once, vc_run


def test_syncer_restart_time(benchmark):
    num_pods = PARAMS["pods_sweep"][-1]
    tenants = PARAMS["tenants_default"]

    def run():
        result = vc_run(num_pods, tenants)
        env = getattr(result, "env", None)
        if env is None:
            # Re-create the populated environment for the restart probe.
            from repro.workloads import run_vc_stress

            result = run_vc_stress(
                num_pods=num_pods, num_tenants=tenants,
                submission_rate=PARAMS["submission_rate"],
                num_nodes=PARAMS["nodes"], timeout=1800.0, keep_env=True,
                config=PARAMS["config"])
            env = result.env
        elapsed = env.run_coroutine(env.syncer.simulate_restart())
        return elapsed, env

    elapsed, env = once(benchmark, run)
    print(f"\nsyncer restart: re-primed all informer caches in "
          f"{elapsed:.2f} simulated seconds "
          f"({len(env.syncer.tenants)} tenants)")
    benchmark.extra_info["restart_seconds"] = round(elapsed, 2)
    # Paper bound: < 21 s at full scale; proportionally comfortable here.
    assert elapsed < 21.0
    # And the caches really are primed.
    pods_cached = len(env.syncer.super_informer("pods").cache)
    assert pods_cached >= num_pods


def test_periodic_scan_cost(benchmark):
    num_pods = PARAMS["pods_sweep"][-1]
    tenants = PARAMS["tenants_default"]

    def run():
        from repro.workloads import run_vc_stress

        result = run_vc_stress(
            num_pods=num_pods, num_tenants=tenants,
            submission_rate=PARAMS["submission_rate"],
            num_nodes=PARAMS["nodes"], timeout=1800.0, keep_env=True,
            config=PARAMS["config"])
        env = result.env

        def scan_all():
            processes = [
                env.sim.process(env.syncer.scanner.scan_tenant(tenant))
                for tenant in env.syncer.tenants
            ]
            yield env.sim.all_of(processes)

        start = env.sim.now
        env.run_coroutine(scan_all())
        return env.sim.now - start, env

    elapsed, env = once(benchmark, run)
    scanned = env.syncer.scanner.objects_scanned_total
    print(f"\nperiodic scan: {scanned} objects across "
          f"{len(env.syncer.tenants)} parallel tenant scanners in "
          f"{elapsed:.2f} simulated seconds")
    benchmark.extra_info["scan_seconds"] = round(elapsed, 2)
    benchmark.extra_info["objects_scanned"] = scanned
    # Paper bound: scanning 10,000 Pods takes < 2 s.
    assert elapsed < 2.0
    assert scanned >= num_pods
