"""Storage durability benchmark: crash storm, MTTR, zero-loss (§13).

Runs the same paced multi-tenant Pod workload twice against a
3-replica super-cluster store (WAL streaming + leader election):

- **nofault**: nobody dies (the reference state);
- **storm**: a seeded crash storm on the storage leader — a plain
  kill -9 mid-submission, then an *armed mid-transaction* kill -9
  (the leader dies between two WAL appends of one multi-op txn), each
  followed by the victim restarting from its own write-ahead log.

Asserts (DESIGN.md §13, EXPERIMENTS.md "storage durability" row):

- every failover record shows **zero committed-write loss** — the new
  leader's state covers exactly the victim's durable WAL image;
- storage MTTR (kill -> fenced promotion) stays within the store
  lease budget, far under the syncer's scan period;
- the mid-txn kill commits a *prefix* of the transaction: ops applied
  before the crash are durable everywhere, ops after it happened
  nowhere, and the client saw one retryable failure;
- the converged super store of the storm run is byte-identical to the
  no-fault run — crash/recovery/failover leave no artifacts.
"""

import json

import pytest

from benchmarks.conftest import once

from repro.apiserver.errors import ServerUnavailable
from repro.core import VirtualClusterEnv
from repro.core.crd import cluster_prefix
from repro.storage import StoreUnavailable

SCAN_INTERVAL = 15.0
NUM_TENANTS = 3
PODS_PER_TENANT = 20
SUBMIT_PERIOD = 1.0
STORE_REPLICAS = 3
KILL_AT = 8.0                # plain leader kill -9
RESTART_AFTER = 6.0          # victim comes back from its WAL
MIDTXN_AT = 22.0             # armed mid-txn kill
MIDTXN_OPS = 4               # ops in the doomed transaction
MIDTXN_SURVIVORS = 2         # ops applied (and durable) before death
TIMEOUT = 600.0
# Store lease is 3 s (StorageDurability defaults); election + fencing
# lands well inside two lease periods.
MTTR_BUDGET = 2 * 3.0 + 1.0

_SCRUB_ANNOTATIONS = ("tenancy.x-k8s.io/tenant-uid",)


class DurabilityResult:
    def __init__(self, env, latencies, midtxn):
        self.env = env
        self.latencies = latencies
        self.midtxn = midtxn

    @property
    def store(self):
        return self.env.super_cluster.api.store

    @property
    def recoveries(self):
        return list(self.store.recoveries)


def _run_scenario(mode):
    env = VirtualClusterEnv(
        seed=0, num_virtual_nodes=5, scan_interval=SCAN_INTERVAL,
        store_replicas=STORE_REPLICAS)
    env.bootstrap()
    tenants = [env.run_coroutine(env.create_tenant(f"tenant-{index}"))
               for index in range(NUM_TENANTS)]

    latencies = {}
    midtxn = {"raised": False, "committed": [], "lost": []}

    def pod_flow(tenant, name):
        submitted = env.sim.now
        yield from tenant.create_pod(name)
        while True:
            pod = yield from tenant.get_pod(name)
            if pod is not None and pod.status.phase == "Running":
                latencies[(tenant.name, name)] = env.sim.now - submitted
                return
            yield env.sim.timeout(0.25)

    def submitter(tenant):
        for index in range(PODS_PER_TENANT):
            env.sim.spawn(pod_flow(tenant, f"pod-{index}"),
                          name=f"{tenant.name}-pod-{index}")
            yield env.sim.timeout(SUBMIT_PERIOD)

    def storm():
        store = env.super_cluster.api.store
        # Plain kill -9 of the storage leader mid-submission.
        yield env.sim.timeout(KILL_AT)
        victim = store.kill_leader(reason="storm")
        yield env.sim.timeout(RESTART_AFTER)
        store.restart_replica(victim)

        # Armed mid-txn kill: the (new) leader dies between WAL
        # appends of a single multi-op transaction.
        yield env.sim.timeout(MIDTXN_AT - KILL_AT - RESTART_AFTER)
        keys = [f"/registry/configmaps/kube-system/storm-{index}"
                for index in range(MIDTXN_OPS)]
        store.arm_kill(MIDTXN_SURVIVORS)
        try:
            store.txn([
                lambda key=key: store.leader.store.create(key, {"storm": 1})
                for key in keys
            ])
        except (StoreUnavailable, ServerUnavailable):
            # Inside an apiserver the store's unavailable factory is
            # swapped for the retryable ServerUnavailable.
            midtxn["raised"] = True
        yield env.sim.timeout(RESTART_AFTER)  # failover + settle
        for key in keys:
            value, _revision = store.try_get(key)
            (midtxn["committed"] if value is not None
             else midtxn["lost"]).append(key)
        # Remove the storm's own writes so the converged state stays
        # comparable with the no-fault run.
        for key in midtxn["committed"]:
            store.delete(key)
        store.restart_replica()

    for tenant in tenants:
        env.sim.spawn(submitter(tenant), name=f"submit-{tenant.name}")
    if mode == "storm":
        env.sim.spawn(storm(), name="crash-storm")

    total = NUM_TENANTS * PODS_PER_TENANT
    env.run_until(lambda: len(latencies) == total, timeout=TIMEOUT)
    env.run_for(2 * SCAN_INTERVAL)  # let the syncer fully converge
    return DurabilityResult(env, latencies, midtxn)


_memo = {}


def _run(mode):
    if mode not in _memo:
        _memo[mode] = _run_scenario(mode)
    return _memo[mode]


def _scrub(value):
    meta = value.get("metadata", {})
    for field in ("uid", "creationTimestamp", "resourceVersion"):
        meta.pop(field, None)
    annotations = meta.get("annotations") or {}
    for annotation in _SCRUB_ANNOTATIONS:
        annotations.pop(annotation, None)
    value.pop("status", None)
    spec = value.get("spec")
    if isinstance(spec, dict):
        spec.pop("nodeName", None)
    string_data = value.get("stringData")
    if isinstance(string_data, dict):
        string_data.pop("cert-hash", None)
    return value


def canonical_super_state(result):
    """key -> canonical serialized bytes of the converged super store
    (same normalization as benchmarks/test_failover_mttr.py)."""
    env = result.env
    prefixes = {cluster_prefix(reg.vc): f"vc({tenant})"
                for tenant, reg in env.syncer.tenants.items()}

    def normalize(text):
        for prefix, token in prefixes.items():
            text = text.replace(prefix, token)
        return text

    store = env.super_cluster.api.store
    state = {}
    for key in sorted(store._data):
        if key.startswith("/registry/events/"):
            continue
        if key.startswith("/registry/leases/"):
            continue  # leases legitimately differ per scenario
        raw, _revision = store.get(key)
        state[normalize(key)] = normalize(
            json.dumps(_scrub(raw), sort_keys=True))
    return state


@pytest.mark.durability
class TestDurabilityStorm:
    def test_zero_committed_write_loss_across_storm(self, benchmark):
        storm = once(benchmark, lambda: _run("storm"))
        recoveries = storm.recoveries
        assert len(recoveries) >= 2, (
            f"expected both storm kills to fail over, got {recoveries}")
        for record in recoveries:
            assert record["lost_writes"] == 0, (
                f"{record['victim']} lost {record['lost_writes']} "
                f"committed writes (reason={record['reason']})")

    def test_recovery_mttr_within_lease_budget(self):
        for record in _run("storm").recoveries:
            assert record["mttr"] is not None, (
                f"{record['victim']} never recovered: {record}")
            assert record["mttr"] < MTTR_BUDGET, (
                f"storage MTTR {record['mttr']:.2f}s over budget "
                f"{MTTR_BUDGET:.1f}s")
            assert record["mttr"] < SCAN_INTERVAL

    def test_mid_txn_kill_commits_exact_prefix(self):
        midtxn = _run("storm").midtxn
        assert midtxn["raised"], "the doomed txn did not fail retryably"
        assert len(midtxn["committed"]) == MIDTXN_SURVIVORS
        assert len(midtxn["lost"]) == MIDTXN_OPS - MIDTXN_SURVIVORS
        # The prefix is a *prefix*: ops commit in order.
        committed_indexes = sorted(
            int(key.rsplit("-", 1)[1]) for key in midtxn["committed"])
        assert committed_indexes == list(range(MIDTXN_SURVIVORS))

    def test_converged_state_identical_to_no_fault_run(self):
        reference = canonical_super_state(_run("nofault"))
        storm = canonical_super_state(_run("storm"))
        assert set(reference) == set(storm), (
            "key sets differ: only-nofault="
            f"{sorted(set(reference) - set(storm))[:5]} "
            f"only-storm={sorted(set(storm) - set(reference))[:5]}")
        different = [key for key in reference
                     if reference[key] != storm[key]]
        assert not different, (
            f"{len(different)} keys diverge after the storm, first: "
            f"{different[0]}\n  nofault: {reference[different[0]]}\n"
            f"  storm:   {storm[different[0]]}")

    def test_durability_metrics_emitted(self):
        telemetry = _run("storm").env.sim.telemetry.snapshot()
        values = {}
        for family in telemetry["families"]:
            total = sum(series.get("value", 0)
                        for series in family.get("series", []))
            values[family["name"]] = total
        assert values.get("wal_appends_total", 0) > 0
        assert values.get("store_recoveries_total", 0) >= 2
        assert values.get("wal_fsyncs_total", 0) > 0
