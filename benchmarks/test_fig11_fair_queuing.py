"""Figure 11: the impact of fair queuing on fairness.

Paper setup: 10 greedy tenants issuing 900 concurrent Pod creations each
and 40 regular tenants issuing 10 sequential creations, equal weights.

- Fair queuing ON (a): every regular user's average Pod creation time is
  small (< 2 s); greedy users bear their own burst.
- Fair queuing OFF (b): the shared FIFO queue lets the greedy burst
  delay many regular users significantly.
"""

import pytest

from repro.metrics import format_table

from benchmarks.conftest import PARAMS, once, fairness_run, registry_family


def _tenant_rows(result):
    rows = []
    for tenant, mean in sorted(result.per_tenant_mean.items()):
        kind = "greedy" if tenant in result.greedy_means else "regular"
        rows.append((tenant.split("/")[-1], kind, mean))
    return rows


def test_fig11a_fair_queuing_enabled(benchmark):
    result = once(benchmark, lambda: fairness_run(fair=True))
    print()
    print(format_table(["tenant", "kind", "mean creation (s)"],
                       _tenant_rows(result),
                       title="Fig. 11(a): fair queuing enabled"))
    worst_regular = max(result.regular_means.values())
    best_greedy = min(result.greedy_means.values())
    benchmark.extra_info["worst_regular_s"] = round(worst_regular, 2)
    benchmark.extra_info["best_greedy_s"] = round(best_greedy, 2)

    # Paper: all regular users' averages under two seconds (bound is
    # rescaled with the service-rate scaling at small scale).
    assert worst_regular < PARAMS["regular_bound_s"]
    # Greedy users suffer much higher averages than regular users.
    assert best_greedy > 2 * worst_regular

    # The registry tells the same story: per-tenant means recomputed
    # from the pod_creation_seconds family match the trace store, and
    # fairqueue_dispatch_total shows the WRR rotation actually served
    # every tenant on the downward queue.
    creation = registry_family(result, "pod_creation_seconds")
    for series in creation["series"]:
        tenant = series["labels"]["tenant"]
        assert series["sum"] / series["count"] == pytest.approx(
            result.per_tenant_mean[tenant])
    dispatch = registry_family(result, "fairqueue_dispatch_total")
    served = {s["labels"]["tenant"]: s["value"]
              for s in dispatch["series"]
              if s["labels"]["queue"].endswith("-downward")}
    for tenant in result.per_tenant_mean:
        assert served.get(tenant, 0) > 0
    print(format_table(
        ["tenant", "downward dispatches"],
        sorted((t.split("/")[-1], int(v)) for t, v in served.items())[:10],
        title="Registry: fairqueue_dispatch_total (first 10 tenants)"))


def test_fig11b_fair_queuing_disabled(benchmark):
    unfair = once(benchmark, lambda: fairness_run(fair=False))
    fair = fairness_run(fair=True)
    print()
    print(format_table(["tenant", "kind", "mean creation (s)"],
                       _tenant_rows(unfair),
                       title="Fig. 11(b): fair queuing disabled"))
    fair_worst = max(fair.regular_means.values())
    unfair_worst = max(unfair.regular_means.values())
    benchmark.extra_info["fair_worst_regular_s"] = round(fair_worst, 2)
    benchmark.extra_info["unfair_worst_regular_s"] = round(unfair_worst, 2)

    # Regular users are significantly delayed by the greedy burst.
    assert unfair_worst > 1.4 * fair_worst
    # And the greedy users are not better off under fair queuing —
    # fairness redistributes delay, it does not create throughput.
    assert max(unfair.greedy_means.values()) < \
        1.5 * max(fair.greedy_means.values())
