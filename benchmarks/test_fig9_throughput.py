"""Figure 9: Pod creation throughput.

(a) Fixed Pods, varying tenants: the tenant count does not affect
    throughput; VirtualCluster sits a roughly constant ~21% below the
    baseline.
(b) Fixed tenants, varying Pods: VC throughput is roughly constant;
    the baseline's decays as the pod count grows (scheduler backlog),
    with a maximal VC degradation around ~34%.
"""

import pytest

from repro.metrics import format_table

from benchmarks.conftest import PARAMS, baseline_run, once, vc_run


def test_fig9a_throughput_vs_tenants(benchmark):
    num_pods = PARAMS["pods_sweep"][-1]
    tenant_counts = [t for t in PARAMS["tenants_sweep"] if t <= num_pods]

    def run():
        rows = []
        for tenants in tenant_counts:
            vc = vc_run(num_pods, tenants)
            base = baseline_run(num_pods, tenants)
            rows.append((tenants, vc.throughput, base.throughput,
                         100 * (1 - vc.throughput / base.throughput)))
        return rows

    rows = once(benchmark, run)
    print()
    print(format_table(
        ["tenants", "VC pods/s", "baseline pods/s", "degradation %"],
        rows, title=f"Fig. 9(a): throughput at {num_pods} pods"))

    vc_throughputs = [vc for _t, vc, _b, _d in rows]
    degradations = [d for _t, _vc, _b, d in rows]
    benchmark.extra_info["degradations_pct"] = [round(d, 1)
                                                for d in degradations]
    # Tenant count does not affect VC throughput (within 25%).
    assert max(vc_throughputs) <= 1.25 * min(vc_throughputs)
    # VC is consistently slower than baseline, by a moderate margin.
    for degradation in degradations:
        assert 2.0 < degradation < 45.0


def test_fig9b_throughput_vs_pods(benchmark):
    tenants = PARAMS["tenants_default"]

    def run():
        rows = []
        for num_pods in PARAMS["pods_sweep"]:
            vc = vc_run(num_pods, tenants)
            base = baseline_run(num_pods, tenants)
            rows.append((num_pods, vc.throughput, base.throughput,
                         100 * (1 - vc.throughput / base.throughput)))
        return rows

    rows = once(benchmark, run)
    print()
    print(format_table(
        ["pods", "VC pods/s", "baseline pods/s", "degradation %"],
        rows, title=f"Fig. 9(b): throughput at {tenants} tenants"))

    degradations = [d for _p, _vc, _b, d in rows]
    benchmark.extra_info["max_degradation_pct"] = round(max(degradations), 1)
    # Maximal degradation moderate (paper ~34%).
    assert max(degradations) < 50.0
    # VC throughput roughly constant across pod counts at the high end
    # (both pipelines need enough pods to saturate; compare the largest
    # two runs).
    large = [vc for _p, vc, _b, _d in rows[-2:]]
    assert max(large) <= 1.3 * min(large)
