"""Figure 1 (motivation): the impact of sharing one control plane.

The paper's motivating scenario: "a buggy or overwhelming tenant can
completely crowd out others by issuing many queries against a large
number of resources.  For instance, tenants may frequently query all
Pods in their namespace, making the requests from other tenants
significantly delayed."

This benchmark quantifies three worlds:

1. **shared** — both tenants use one apiserver (the Fig. 1 problem);
2. **shared + APF** — the upstream priority-and-fairness mitigation the
   paper cites (per-user concurrency shares);
3. **VirtualCluster** — dedicated tenant control planes: the victim's
   latency is unaffected no matter what the aggressor does.
"""

from dataclasses import replace

from repro.apiserver import ADMIN, APIServer, Credential
from repro.clientgo import Client
from repro.config import DEFAULT_CONFIG
from repro.metrics import format_table
from repro.objects import make_namespace, make_pod
from repro.simkernel import Simulation

from benchmarks.conftest import once

HEAVY_OBJECTS = 500      # pods the aggressor repeatedly lists
AGGRESSOR_STREAMS = 48   # concurrent list loops
VICTIM_PROBES = 40       # victim request count to sample latency
STORM_SECONDS = 10.0

# Expensive LISTs (large objects, no pagination): 0.5 ms/item makes one
# full list occupy an apiserver slot for ~250 ms, as the paper's
# "queries against a large number of resources" scenario intends.
_HEAVY_LIST_CONFIG = DEFAULT_CONFIG.with_overrides(
    apiserver=replace(DEFAULT_CONFIG.apiserver, list_per_item=0.0005))


def _populate(sim, client, namespace, count):
    def fill():
        yield from client.create(make_namespace(namespace))
        for index in range(count):
            yield from client.create(
                make_pod(f"bulk-{index:05d}", namespace=namespace))

    sim.run(until=sim.process(fill()))


def _victim_latencies(sim, client, namespace):
    latencies = []

    def probe():
        for _ in range(VICTIM_PROBES):
            start = sim.now
            yield from client.get("pods", "bulk-00000",
                                  namespace=namespace)
            latencies.append(sim.now - start)
            yield sim.timeout(0.05)

    process = sim.process(probe())
    sim.run(until=process)
    return latencies


def _aggress(sim, client, namespace, duration=STORM_SECONDS):
    def storm():
        while sim.now < duration:
            try:
                yield from client.list("pods", namespace=namespace)
            except Exception:
                yield sim.timeout(0.01)

    for _ in range(AGGRESSOR_STREAMS):
        sim.process(storm())


def _run_shared(per_user_inflight=None):
    sim = Simulation()
    api = APIServer(sim, "shared", config=_HEAVY_LIST_CONFIG,
                    per_user_inflight=per_user_inflight)
    # A modest concurrency ceiling makes interference visible, like a
    # production apiserver under memory pressure.
    api._inflight._semaphore.capacity = 24
    aggressor = api.authenticator.register(Credential("aggressor"))
    victim = api.authenticator.register(Credential("victim"))
    admin_client = Client(sim, api, ADMIN, qps=1e6, burst=1e6)
    _populate(sim, admin_client, "aggressor-ns", HEAVY_OBJECTS)

    victim_client = Client(sim, api, victim, qps=1e6, burst=1e6,
                           user_agent="victim")

    def setup_victim():
        yield from victim_client.create(make_namespace("victim-ns"))
        yield from victim_client.create(make_pod("bulk-00000",
                                                 namespace="victim-ns"))

    sim.run(until=sim.process(setup_victim()))

    aggressor_client = Client(sim, api, aggressor, qps=1e6, burst=1e6,
                              user_agent="aggressor")
    _aggress(sim, aggressor_client, "aggressor-ns")
    return _victim_latencies(sim, victim_client, "victim-ns")


def _run_virtualcluster():
    """Each tenant has its own apiserver; the aggressor floods its own."""
    sim = Simulation()
    aggressor_api = APIServer(sim, "aggressor-cp",
                              config=_HEAVY_LIST_CONFIG)
    aggressor_api._inflight._semaphore.capacity = 24
    victim_api = APIServer(sim, "victim-cp", config=_HEAVY_LIST_CONFIG)
    victim_api._inflight._semaphore.capacity = 24

    aggressor_client = Client(sim, aggressor_api, ADMIN, qps=1e6,
                              burst=1e6)
    _populate(sim, aggressor_client, "aggressor-ns", HEAVY_OBJECTS)

    victim_client = Client(sim, victim_api, ADMIN, qps=1e6, burst=1e6)

    def setup_victim():
        yield from victim_client.create(make_namespace("victim-ns"))
        yield from victim_client.create(make_pod("bulk-00000",
                                                 namespace="victim-ns"))

    sim.run(until=sim.process(setup_victim()))
    _aggress(sim, aggressor_client, "aggressor-ns")
    return _victim_latencies(sim, victim_client, "victim-ns")


def _p99(latencies):
    ordered = sorted(latencies)
    return ordered[min(len(ordered) - 1,
                       round(0.99 * (len(ordered) - 1)))]


def test_fig1_shared_control_plane_interference(benchmark):
    def run():
        shared = _run_shared()
        with_apf = _run_shared(per_user_inflight=8)
        virtual_cluster = _run_virtualcluster()
        return shared, with_apf, virtual_cluster

    shared, with_apf, vc = once(benchmark, run)
    rows = [
        ("shared apiserver", 1000 * sum(shared) / len(shared),
         1000 * _p99(shared)),
        ("shared + APF", 1000 * sum(with_apf) / len(with_apf),
         1000 * _p99(with_apf)),
        ("VirtualCluster", 1000 * sum(vc) / len(vc), 1000 * _p99(vc)),
    ]
    print()
    print(format_table(
        ["victim's control plane", "mean GET (ms)", "p99 GET (ms)"],
        rows, title="Fig. 1: victim latency while a tenant floods LISTs"))
    benchmark.extra_info["shared_p99_ms"] = round(rows[0][2], 1)
    benchmark.extra_info["apf_p99_ms"] = round(rows[1][2], 1)
    benchmark.extra_info["vc_p99_ms"] = round(rows[2][2], 1)

    shared_p99, apf_p99, vc_p99 = rows[0][2], rows[1][2], rows[2][2]
    # The Fig. 1 problem: sharing makes the victim much slower.
    assert shared_p99 > 5 * vc_p99
    # APF mitigates but cannot beat full isolation.
    assert apf_p99 < shared_p99
    assert vc_p99 <= apf_p99 * 1.2
