"""Figure 10: the syncer's CPU and memory usage.

Paper findings (top: CPU, bottom: memory):

- accumulated CPU time grows roughly linearly with the number of Pods;
  at 10,000 Pods the syncer consumed ~138 s of CPU over ~23 s wall
  (~6 CPUs) — far above normal-case needs;
- peak RSS grows ~40 KB per Pod (~1.2 GB at 10,000 Pods), dominated by
  the informer caches (two copies of every synced object).
"""

from repro.metrics import format_table

from benchmarks.conftest import PARAMS, once, vc_run


def test_fig10_syncer_cpu_and_memory(benchmark):
    tenants = PARAMS["tenants_default"]

    def run():
        rows = []
        for num_pods in PARAMS["pods_sweep"]:
            result = vc_run(num_pods, tenants)
            rows.append((
                num_pods,
                result.cpu_seconds,
                result.duration,
                result.cpu_seconds / result.duration,
                result.peak_memory_bytes / 1e6,
                result.peak_memory_bytes / num_pods / 1024,
            ))
        return rows

    rows = once(benchmark, run)
    print()
    print(format_table(
        ["pods", "CPU (s)", "wall (s)", "CPUs", "peak mem (MB)",
         "KB/pod"],
        rows, title="Fig. 10: syncer resource usage"))

    pods = [row[0] for row in rows]
    cpu = [row[1] for row in rows]
    mem = [row[4] for row in rows]
    kb_per_pod = [row[5] for row in rows]
    benchmark.extra_info["cpus_at_max"] = round(rows[-1][3], 2)
    benchmark.extra_info["kb_per_pod"] = round(kb_per_pod[-1], 1)

    # CPU and memory increase monotonically with pod count...
    assert cpu == sorted(cpu)
    assert mem == sorted(mem)
    # ...and roughly linearly: doubling pods less than triples both.
    for index in range(1, len(rows)):
        pod_ratio = pods[index] / pods[index - 1]
        assert cpu[index] / cpu[index - 1] < 1.6 * pod_ratio
        assert mem[index] / mem[index - 1] < 1.6 * pod_ratio
    # Per-pod memory growth in the tens of kilobytes (paper ~40 KB).
    assert 10 < kb_per_pod[-1] < 120
    # Under burst the syncer needs multiple CPUs (paper ~6), far above
    # the 1-2 CPU recommendation for normal loads.
    assert rows[-1][3] > 1.5

    # Kernel heap occupancy stays bounded at the largest sweep point:
    # far timers wait in the wheel and abandoned any_of losers are
    # cancelled or lazily skipped, so the ready heap holds only the
    # current burst — orders of magnitude below total dispatches.
    stats = vc_run(pods[-1], tenants).env.sim.kernel_stats()
    benchmark.extra_info["peak_heap"] = stats["peak_heap"]
    assert stats["wheel_scheduled"] > 0
    assert stats["timers_cancelled"] + stats["orphans_skipped"] > 0
    assert stats["peak_heap"] < stats["dispatched"] / 50
