"""Figure 7: Pod creation time histograms.

Paper setup: {1250, 2500, 5000, 10000} Pods x {20, 100} tenants x
{20, 40} downward worker threads, VirtualCluster vs baseline.  Findings
to reproduce:

- VC does not significantly lengthen Pod creation time; most operations
  fall within the baseline latency range, with a moderately longer tail;
- latency depends on the number of Pods, not the number of tenants;
- adding downward workers beyond 20 does not reduce latency (the super
  cluster scheduler is the bottleneck).
"""

import pytest

from repro.metrics import format_histogram, format_telemetry, summarize

from benchmarks.conftest import (
    PARAMS,
    baseline_run,
    once,
    registry_family,
    vc_run,
)


@pytest.mark.parametrize("num_pods", PARAMS["pods_sweep"])
def test_fig7_vc_vs_baseline_histograms(benchmark, num_pods):
    tenants = PARAMS["tenants_default"]

    def run():
        return vc_run(num_pods, tenants), baseline_run(num_pods, tenants)

    vc, base = once(benchmark, run)
    print()
    print(summarize(vc))
    print(summarize(base))
    print(format_histogram(vc.creation_times, title="VC creation times"))
    print(format_histogram(base.creation_times,
                           title="baseline creation times"))
    benchmark.extra_info["vc_p99"] = vc.percentile(99)
    benchmark.extra_info["baseline_p99"] = base.percentile(99)

    # Shape: everything completes, and the VC tail is within a small
    # multiple of the baseline tail (paper: 3 vs 1 ... 14 vs 8 seconds).
    assert len(vc.creation_times) == num_pods
    assert len(base.creation_times) == num_pods
    assert vc.percentile(99) <= 4 * max(base.percentile(99), 1.0)
    # A large share of VC operations fall within the baseline latency
    # *range* (its maximum), and the VC median stays within a small
    # multiple of the baseline tail -- the paper's "does not
    # significantly lengthen Pod creation time".
    baseline_range = max(base.creation_times)
    within = sum(1 for value in vc.creation_times
                 if value <= baseline_range)
    assert within / num_pods > 0.2
    assert vc.percentile(50) <= 2.5 * base.percentile(99)

    # The same distribution, read back from the telemetry registry: the
    # pod_creation_seconds histogram family (one series per tenant) must
    # account for every pod and agree with the trace-store totals.
    family = registry_family(vc, "pod_creation_seconds")
    assert sum(s["count"] for s in family["series"]) == num_pods
    assert sum(s["sum"] for s in family["series"]) == pytest.approx(
        sum(vc.creation_times))
    print(format_telemetry(
        vc.telemetry, title="Registry view (Fig. 7 sources)",
        families=("pod_creation_seconds", "pod_phase_seconds")))


def test_fig7_tenant_count_does_not_change_latency(benchmark):
    num_pods = PARAMS["pods_sweep"][-2]

    def run():
        few = vc_run(num_pods, PARAMS["tenants_small"])
        many = vc_run(num_pods, PARAMS["tenants_default"])
        return few, many

    few, many = once(benchmark, run)
    print()
    print(summarize(few))
    print(summarize(many))
    # Same pod count, different tenant counts: means within 30%.
    assert few.mean == pytest.approx(many.mean, rel=0.35)


def test_fig7_more_downward_workers_do_not_help(benchmark):
    num_pods = PARAMS["pods_sweep"][-1]
    tenants = PARAMS["tenants_default"]

    def run():
        with_20 = vc_run(num_pods, tenants, dws_workers=20)
        with_40 = vc_run(num_pods, tenants, dws_workers=40)
        return with_20, with_40

    with_20, with_40 = once(benchmark, run)
    print()
    print("20 workers:", summarize(with_20))
    print("40 workers:", summarize(with_40))
    # Doubling workers does not meaningfully reduce the mean (the
    # serialized dequeue + scheduler dominate).
    assert with_40.mean > 0.7 * with_20.mean
