"""Overload robustness at fleet scale (DESIGN.md §15).

Two headline claims of the admission + scale-to-zero design:

- **Scale-to-zero pays for the fleet.** With thousands of tenant
  control planes and a long idle tail, ≥95% of planes page out, the
  resident footprint collapses, and a staggered flash-crowd wake-up
  still lands under the wake SLO because page-ins are gated.
- **Tiers isolate the front door.** A free-tier abuser running a
  ``TenantStorm`` against the super apiserver is shed with structured
  429 + Retry-After while a platinum tenant's p99 stays within 2x its
  unloaded baseline.

``REPRO_SCALE=paper`` runs the paper-scale fleet (10,000 tenants); the
default small scale (400) keeps the same shape assertions.
"""

import random
from dataclasses import replace

from repro.chaos.faults import TenantStorm
from repro.config import DEFAULT_CONFIG
from repro.core.controlplane import SuperCluster, TenantControlPlane
from repro.core.swapper import IdleSwapper
from repro.simkernel import Simulation

from benchmarks.conftest import SCALE, once

FLEET_TENANTS = 10_000 if SCALE == "paper" else 400
# Stagger the flash crowd at ~20 wakes/s: cold wake is 0.8 s and the
# gate admits 32 concurrent page-ins, so the gate runs at ~50%
# utilization and queueing stays well inside the SLO headroom.
WAKE_INTERVAL = 0.05

APF_CONFIG = DEFAULT_CONFIG.with_overrides(
    apf=replace(DEFAULT_CONFIG.apf, enabled=True))


def tier_for(index):
    """10% platinum / 60% standard / 30% free, deterministic by index."""
    slot = index % 10
    if slot == 0:
        return "platinum"
    if slot < 7:
        return "standard"
    return "free"


def test_fleet_scale_to_zero_and_flash_crowd(benchmark):
    """≥95% of an idle fleet swaps out; a gated flash crowd wakes in SLO."""

    def run():
        sim = Simulation(seed=42)
        swapper = IdleSwapper(
            sim, idle_threshold=20.0, check_interval=5.0,
            wake_latency=DEFAULT_CONFIG.swapper.cold_wake_latency,
            swapout_latency=DEFAULT_CONFIG.swapper.swapout_latency,
            warm_pool=DEFAULT_CONFIG.swapper.warm_pool,
            warm_wake_latency=DEFAULT_CONFIG.swapper.warm_wake_latency,
            wake_concurrency=DEFAULT_CONFIG.swapper.wake_concurrency,
            wake_slo=DEFAULT_CONFIG.swapper.wake_slo)
        swapper.start()
        # Bare control planes — no per-tenant KCM, which is exactly the
        # point: a swapped plane costs only its residual bytes.
        planes = []
        for index in range(FLEET_TENANTS):
            plane = TenantControlPlane(sim, f"vc-{index}", APF_CONFIG)
            swapper.track(plane, tier=tier_for(index))
            planes.append(plane)
        before = swapper.total_resident_bytes()

        def touch(plane):
            client = plane.client(credential=plane.tenant_credential,
                                  user_agent=f"{plane.name}-user")
            yield from client.list("pods", namespace="default")

        # A brief burst of activity, then the whole fleet goes idle.
        for plane in planes[:50]:
            sim.spawn(touch(plane), name=f"burst-{plane.name}")
        sim.run(until=sim.now + 60.0)
        swapped = swapper.swapped_count()
        after = swapper.total_resident_bytes()

        # Flash crowd: every tenant comes back, staggered.
        for offset, plane in enumerate(planes):
            def waker(plane=plane, delay=offset * WAKE_INTERVAL):
                yield sim.timeout(delay)
                yield from touch(plane)

            sim.spawn(waker(), name=f"wake-{plane.name}")
        sim.run(until=sim.now + FLEET_TENANTS * WAKE_INTERVAL + 30.0)
        return {
            "before": before, "after": after, "swapped": swapped,
            "wakes": len(swapper.wake_samples),
            "warm": sum(1 for _t, kind, _e in swapper.wake_samples
                        if kind == "warm"),
            "p99": swapper.wake_p99(),
            "p99_platinum": swapper.wake_p99("platinum"),
            "slo": swapper.wake_slo,
        }

    stats = once(benchmark, run)
    print(f"\nfleet={FLEET_TENANTS}: {stats['swapped']} swapped, resident "
          f"{stats['before'] / 1e9:.1f} GB -> {stats['after'] / 1e9:.1f} GB")
    print(f"flash crowd: {stats['wakes']} wakes ({stats['warm']} warm), "
          f"p99 {stats['p99']:.2f} s (platinum {stats['p99_platinum']:.2f} s,"
          f" SLO {stats['slo']:.1f} s)")
    benchmark.extra_info["swapped"] = stats["swapped"]
    benchmark.extra_info["wake_p99_s"] = round(stats["p99"], 3)
    # ≥95% of the idle fleet paged out, and the footprint followed.
    assert stats["swapped"] >= 0.95 * FLEET_TENANTS
    assert stats["after"] < 0.35 * stats["before"]
    # Everyone who was swapped paid a page-in, under the SLO.
    assert stats["wakes"] >= stats["swapped"]
    assert stats["p99"] <= stats["slo"]
    assert stats["p99_platinum"] <= stats["slo"]


def test_storm_shed_platinum_slo(benchmark):
    """Free-tier TenantStorm sheds with Retry-After; platinum p99 holds."""

    def run():
        def p99(samples):
            ordered = sorted(samples)
            index = min(len(ordered) - 1,
                        int(0.99 * (len(ordered) - 1) + 0.5))
            return ordered[index]

        def platinum_latencies(sim, super_cluster, count=300):
            credential = super_cluster.register_user("tenant-gold")
            super_cluster.apf.classifier.assign("tenant-gold", "platinum")
            client = super_cluster.client(credential=credential,
                                          user_agent="gold", qps=10_000,
                                          burst=20_000)
            samples = []

            def loop():
                for _ in range(count):
                    started = sim.now
                    yield from client.list("pods", namespace="default")
                    samples.append(sim.now - started)
                    yield sim.timeout(0.01)

            sim.run(until=sim.spawn(loop(), name="gold-loop"))
            return samples

        # Unloaded baseline: APF on, nobody else at the front door.
        sim = Simulation(seed=7)
        quiet = SuperCluster(sim, APF_CONFIG)
        baseline = p99(platinum_latencies(sim, quiet))

        # Same measurement under a free-tier storm.
        sim = Simulation(seed=7)
        stormy = SuperCluster(sim, APF_CONFIG)
        storm = TenantStorm(stormy, user="tenant-abuser", qps=400.0,
                            concurrency=200, tier="free")
        storm.bind(sim, random.Random(7))
        storm.inject()
        sim.run(until=sim.now + 2.0)      # storm reaches steady state

        # Probe the abused flow directly: concurrent free-tier arrivals
        # must overflow the flow's shuffle-shard hand and surface a
        # structured 429 with a positive Retry-After hint.
        from repro.apiserver.errors import TooManyRequests

        shed_hints = []

        def probe(index):
            client = stormy.client(credential=storm._credential,
                                   user_agent=f"probe-{index}",
                                   qps=10_000, burst=20_000)
            client.max_retries = 0
            try:
                yield from client.list("pods", namespace="default")
            except TooManyRequests as exc:
                shed_hints.append(exc.retry_after)

        for index in range(60):
            sim.spawn(probe(index), name=f"probe-{index}")
        sim.run(until=sim.now + 1.0)

        loaded = p99(platinum_latencies(sim, stormy))
        storm.restore()
        return {
            "baseline_p99": baseline, "loaded_p99": loaded,
            "storm_ok": storm.requests_ok,
            "storm_shed": storm.requests_shed,
            "shed_hints": shed_hints,
        }

    stats = once(benchmark, run)
    print(f"\nplatinum p99: {stats['baseline_p99'] * 1000:.2f} ms unloaded "
          f"-> {stats['loaded_p99'] * 1000:.2f} ms under storm")
    print(f"storm: {stats['storm_ok']} served, {stats['storm_shed']} shed, "
          f"{len(stats['shed_hints'])} probes shed")
    benchmark.extra_info["baseline_p99_ms"] = round(
        stats["baseline_p99"] * 1000, 2)
    benchmark.extra_info["loaded_p99_ms"] = round(
        stats["loaded_p99"] * 1000, 2)
    benchmark.extra_info["storm_shed"] = stats["storm_shed"]
    # The storm is shed, not served: structured 429s with a hint.
    assert stats["storm_shed"] > 0
    assert stats["shed_hints"], "no probe saw a 429 during the storm"
    assert all(hint > 0 for hint in stats["shed_hints"])
    # Tier isolation: platinum p99 within 2x its unloaded baseline.
    assert stats["loaded_p99"] <= 2.0 * stats["baseline_p99"]


def test_apf_stays_opt_in():
    """The default config ships with the whole subsystem off."""
    assert DEFAULT_CONFIG.apf.enabled is False
    assert DEFAULT_CONFIG.swapper.enabled is False
