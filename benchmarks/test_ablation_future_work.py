"""Ablations for the paper's §V future-work features (implemented here).

- custom tenant weights (footnote 2): WRR shares follow the weights;
- idle control-plane swapping: fleet memory savings vs wake latency;
- multiple super clusters: capacity scales with members while tenant
  experience is unchanged.
"""

from repro.core import IdleSwapper, SuperClusterFleet, VirtualClusterEnv
from repro.core.swapper import control_plane_memory
from repro.metrics import format_table
from repro.workloads import LoadGenerator, TenantLoadPattern

from benchmarks.conftest import PARAMS, once


def test_tenant_weight_latency_shares(benchmark):
    """Two equally greedy tenants, weights 4:1."""

    def run():
        env = VirtualClusterEnv(num_virtual_nodes=PARAMS["nodes"],
                                config=PARAMS["config"],
                                scan_interval=60.0)
        env.bootstrap()
        heavy = env.run_coroutine(env.create_tenant("premium", weight=4))
        light = env.run_coroutine(env.create_tenant("basic", weight=1))
        env.run_for(1)
        generator = LoadGenerator(env.sim)
        burst = PARAMS["pods_sweep"][0]
        jobs = [(tenant.client, TenantLoadPattern(burst, mode="burst",
                                                  name_prefix=prefix))
                for tenant, prefix in ((heavy, "h"), (light, "l"))]
        env.run_coroutine(generator.run_all(jobs))
        env.run_until(
            lambda: len(env.syncer.trace_store.completed()) >= 2 * burst,
            timeout=1800, poll=0.5)
        means = env.syncer.trace_store.mean_creation_time_by_tenant()
        return means[heavy.key], means[light.key]

    heavy_mean, light_mean = once(benchmark, run)
    print(f"\nweight=4 tenant mean creation: {heavy_mean:.2f} s")
    print(f"weight=1 tenant mean creation: {light_mean:.2f} s")
    benchmark.extra_info["heavy_mean_s"] = round(heavy_mean, 2)
    benchmark.extra_info["light_mean_s"] = round(light_mean, 2)
    assert heavy_mean < light_mean


def test_idle_swapping_memory_vs_wakeup(benchmark):
    """Cost/performance trade-off of swapping idle control planes."""

    def run():
        env = VirtualClusterEnv(num_virtual_nodes=4, scan_interval=600.0)
        env.bootstrap()
        swapper = IdleSwapper(env.sim, idle_threshold=30.0,
                              check_interval=5.0, wake_latency=0.8)
        swapper.start()
        tenants = [env.run_coroutine(env.create_tenant(f"t{i}"))
                   for i in range(10)]
        for tenant in tenants:
            swapper.track(tenant.control_plane)
        before = swapper.total_resident_bytes()
        env.run_for(60)  # everyone idles out
        after = swapper.total_resident_bytes()
        # Wake one tenant; measure the first-request penalty.
        start = env.sim.now
        env.run_coroutine(tenants[0].client.list("pods",
                                                 namespace="default"))
        wake = env.sim.now - start
        return before, after, wake, swapper.swapped_count()

    before, after, wake, swapped = once(benchmark, run)
    print(f"\nresident control-plane memory: {before / 1e6:.0f} MB awake "
          f"-> {after / 1e6:.0f} MB with {swapped} tenants swapped "
          f"(wake-up penalty {wake:.2f} s)")
    benchmark.extra_info["savings_pct"] = round(100 * (1 - after / before))
    benchmark.extra_info["wake_s"] = round(wake, 2)
    assert after < 0.4 * before
    assert 0.5 < wake < 2.0


def test_fleet_scales_capacity(benchmark):
    """Two super clusters double schedulable capacity transparently."""

    def run():
        fleet = SuperClusterFleet(num_super_clusters=2,
                                  nodes_per_cluster=3,
                                  scan_interval=60.0)
        fleet.bootstrap()
        handles = []
        for index in range(6):
            handle = fleet.run_coroutine(
                fleet.create_tenant(f"tenant-{index}"))
            fleet.run_coroutine(handle.create_pod("w"))
            fleet.run_until_pods_ready(handle, ["default/w"], timeout=120)
            handles.append(handle)
        return fleet, handles

    fleet, handles = once(benchmark, run)
    rows = [(name, used, total)
            for name, (used, total) in sorted(fleet.utilization().items())]
    print()
    print(format_table(["super cluster", "pods used", "pod capacity"],
                       rows, title="fleet utilization"))
    placements = {}
    for handle in handles:
        member = fleet.member_of(handle).name
        placements[member] = placements.get(member, 0) + 1
    benchmark.extra_info["placements"] = placements
    # Both members took tenants; no tenant-visible difference.
    assert len(placements) == 2
    for handle in handles:
        pod = fleet.run_coroutine(handle.get_pod("w"))
        assert pod.status.is_ready
