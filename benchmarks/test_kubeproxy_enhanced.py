"""§IV-E: the enhanced kubeproxy's latency.

Paper setup: thirty Kata Pods on one real worker node, with one hundred
pre-created services, so the enhanced kubeproxy injects one hundred
routing rules into each new guest OS before the workload starts.

Findings to reproduce:

- the extra Pod start latency from rule injection is ~1 second on
  average (gRPC + guest iptables updates);
- scanning all thirty Pods' rule tables takes ~300 ms, lengthening the
  proxy's periodic reconcile loop;
- overall, the cost of supporting cluster-IP services is small.
"""

from repro.core import VirtualClusterEnv
from repro.objects import make_service

from benchmarks.conftest import once

NUM_SERVICES = 100
NUM_PODS = 30


def _run_experiment():
    env = VirtualClusterEnv(num_real_nodes=1, scan_interval=120.0)
    env.bootstrap(settle=3.0)
    admin = env.super_admin_client()

    def create_services():
        for index in range(NUM_SERVICES):
            yield from admin.create(make_service(
                f"artificial-{index:03d}", namespace="default",
                selector={"app": f"a{index}"}, port=1000 + index))

    env.run_coroutine(create_services())
    env.run_for(5)  # proxy learns all services

    tenant = env.run_coroutine(env.create_tenant("acme"))

    def create_pods():
        for index in range(NUM_PODS):
            yield from tenant.create_pod(f"kata-{index:02d}",
                                         runtime_class="kata")

    env.run_coroutine(create_pods())
    keys = [f"default/kata-{index:02d}" for index in range(NUM_PODS)]
    env.run_until_pods_ready(tenant, keys, timeout=600)

    node_name = next(iter(env.real_kubelets))
    proxy = env.kube_proxies[node_name]
    env.run_coroutine(proxy.scan_all_guests())
    return env, proxy


def test_enhanced_kubeproxy_injection_and_scan(benchmark):
    env, proxy = once(benchmark, _run_experiment)

    print(f"\nguests connected: {proxy.connected_guests}")
    print(f"mean rule-injection latency: "
          f"{proxy.mean_injection_latency:.3f} s "
          f"({NUM_SERVICES} rules per guest)")
    print(f"scan of all {proxy.connected_guests} guests' rules: "
          f"{proxy.last_scan_duration * 1000:.0f} ms")
    benchmark.extra_info["mean_injection_s"] = round(
        proxy.mean_injection_latency, 3)
    benchmark.extra_info["scan_ms"] = round(
        proxy.last_scan_duration * 1000, 1)

    assert proxy.connected_guests == NUM_PODS
    assert proxy.injection_count == NUM_PODS
    # Paper: ~1 s extra latency to inject one hundred rules.
    assert 0.3 < proxy.mean_injection_latency < 2.0
    # Paper: ~300 ms to scan thirty Pods' rules.
    assert 0.05 < proxy.last_scan_duration < 1.0

    # Every guest ends up with the full rule set.
    kubelet = env.real_kubelets[next(iter(env.real_kubelets))]
    runtime = kubelet.runtimes["kata"]
    for sandbox in runtime.sandboxes.values():
        assert sandbox.network_stack.iptables.rule_count() >= NUM_SERVICES


def test_workload_start_gated_on_rules(benchmark):
    """The init container holds the workload until rules are ready, so
    readiness time includes the injection latency."""

    def run():
        env = VirtualClusterEnv(num_real_nodes=1, scan_interval=120.0)
        env.bootstrap(settle=3.0)
        admin = env.super_admin_client()

        def create_services():
            for index in range(NUM_SERVICES):
                yield from admin.create(make_service(
                    f"pre-{index:03d}", namespace="default",
                    selector={"app": "x"}, port=2000 + index))

        env.run_coroutine(create_services())
        env.run_for(5)
        tenant = env.run_coroutine(env.create_tenant("acme"))

        start = env.sim.now
        env.run_coroutine(tenant.create_pod("gated", runtime_class="kata"))
        env.run_until_pods_ready(tenant, ["default/gated"], timeout=300)
        with_rules = env.sim.now - start

        # Contrast: a runc pod on the host network needs no injection.
        start = env.sim.now
        env.run_coroutine(tenant.create_pod("plain"))
        env.run_until_pods_ready(tenant, ["default/plain"], timeout=300)
        without = env.sim.now - start
        return with_rules, without

    with_rules, without = once(benchmark, run)
    print(f"\nkata+injection pod ready in {with_rules:.2f} s; "
          f"plain runc pod in {without:.2f} s")
    benchmark.extra_info["kata_ready_s"] = round(with_rules, 2)
    benchmark.extra_info["runc_ready_s"] = round(without, 2)
    # The gated Kata pod pays the sandbox boot + ~1 s injection.
    assert with_rules > without
    assert with_rules - without < 10.0  # "the cost ... is small"
