"""Chaos degradation: blast-radius containment under a tenant outage.

One tenant's control plane goes down hard while three healthy tenants
submit a burst of Pod creations.  The dead tenant's upward work fails
slowly (each attempt burns a full client retry sequence), so without
containment it monopolises the shared UWS workers and the outage leaks
into every other tenant's latency.

- Circuit breaker ON: the health tracker trips after a few consecutive
  retryable failures, parks the dead tenant's items, and frees the
  workers — healthy tenants' p95 creation latency stays within ~2x of
  the fault-free run.
- Circuit breaker OFF (ablation): the failed items hot-loop through the
  workers and the healthy tenants stall behind them.
"""

from repro.core.env import VirtualClusterEnv
from repro.metrics import format_table

from benchmarks.conftest import once

#: Sequential creations measured per healthy tenant after the outage.
BURST = 6
#: Hard cap on how long we wait for any single benchmark pod (s).
CAP = 60.0
#: Steady-state window between the crash and the measured burst: long
#: enough for the breaker to trip (or, in the ablation, for the failed
#: items to settle into their retry hot-loop).
SETTLE = 6.0


def _run(circuit_breaker, crash):
    env = VirtualClusterEnv(seed=0, num_virtual_nodes=3, scan_interval=5.0,
                            dws_workers=3, uws_workers=2,
                            circuit_breaker=circuit_breaker)
    env.bootstrap()
    healthy = [env.run_coroutine(env.create_tenant(f"healthy-{i}"))
               for i in range(3)]
    doomed = env.run_coroutine(env.create_tenant("doomed"))
    for handle in healthy + [doomed]:
        env.run_coroutine(handle.create_pod("warm"))
    for handle in healthy + [doomed]:
        env.run_until_pods_ready(handle, ["default/warm"], timeout=60.0)

    if crash:
        # In-flight work for the doomed tenant, then the outage.
        for index in range(10):
            env.run_coroutine(doomed.create_pod(f"hot-{index}"))
        env.run_for(0.3)
        doomed.control_plane.api.crash()
    env.run_for(SETTLE)

    start = env.sim.now
    for handle in healthy:
        for index in range(BURST):
            env.run_coroutine(handle.create_pod(f"bench-{index}"))
    latencies = []
    for handle in healthy:
        for index in range(BURST):
            remaining = max(1e-9, CAP - (env.sim.now - start))
            try:
                env.run_until_pods_ready(handle,
                                         [f"default/bench-{index}"],
                                         timeout=remaining)
                latencies.append(env.sim.now - start)
            except TimeoutError:
                latencies.append(CAP)
    latencies.sort()
    p95 = latencies[int(0.95 * (len(latencies) - 1))]
    mean = sum(latencies) / len(latencies)
    return {"p95": p95, "mean": mean, "stats": env.syncer.stats()}


def _report(rows):
    print()
    print(format_table(
        ["scenario", "p95 (s)", "mean (s)"],
        [(name, round(r["p95"], 2), round(r["mean"], 2))
         for name, r in rows],
        title="Healthy-tenant Pod creation during a one-tenant outage"))


def test_breaker_bounds_healthy_tenant_p95(benchmark):
    def scenario():
        return (_run(circuit_breaker=True, crash=False),
                _run(circuit_breaker=True, crash=True))

    baseline, degraded = once(benchmark, scenario)
    _report([("fault-free", baseline), ("breaker + outage", degraded)])
    counters = degraded["stats"]["counters"]
    benchmark.extra_info["baseline_p95_s"] = round(baseline["p95"], 2)
    benchmark.extra_info["degraded_p95_s"] = round(degraded["p95"], 2)
    benchmark.extra_info["breaker_opens"] = counters.get("breaker_open", 0)

    # The breaker actually engaged and parked the dead tenant's work.
    assert counters.get("breaker_open", 0) >= 1
    assert degraded["stats"]["parked_items"] >= 1
    # Blast-radius bound: healthy tenants' p95 within ~2x of fault-free.
    assert degraded["p95"] <= 2.0 * baseline["p95"]


def test_ablation_no_breaker_stalls_healthy_tenants(benchmark):
    def scenario():
        return (_run(circuit_breaker=True, crash=False),
                _run(circuit_breaker=False, crash=True))

    baseline, ablation = once(benchmark, scenario)
    _report([("fault-free", baseline), ("no breaker + outage", ablation)])
    benchmark.extra_info["baseline_p95_s"] = round(baseline["p95"], 2)
    benchmark.extra_info["ablation_p95_s"] = round(ablation["p95"], 2)

    # Without the breaker the circuit never opens...
    assert ablation["stats"]["counters"].get("breaker_open", 0) == 0
    # ...the dead tenant's items keep hot-looping through the workers...
    assert ablation["stats"]["counters"].get("uws_api_error", 0) >= 5
    # ...and the outage leaks into healthy tenants' latency (observed
    # ~6x; assert a conservative 3x stall to stay robust to tuning).
    assert ablation["p95"] >= 3.0 * baseline["p95"]
    assert ablation["mean"] >= 3.0 * baseline["mean"]
