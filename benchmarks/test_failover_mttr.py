"""Syncer HA failover benchmark: MTTR and tenant-visible impact.

Runs the same paced multi-tenant Pod workload three times:

- **nofault**: 2 warm replicas, nobody dies (the reference state);
- **hot**: the serving leader is crashed mid-run; the warm standby
  (informer caches already synced) must win the lease, fence, replay a
  startup scan, and take over;
- **cold**: the no-warm-standby ablation — same kill, but the standby
  starts its informers only at takeover, so the tenants wait out a
  full relist on top of the lease expiry.

Asserts (DESIGN.md §10, EXPERIMENTS.md "failover MTTR" row):

- hot-standby MTTR stays under one scanner period;
- the warm standby's takeover sync is far cheaper than the cold one's,
  and tenant-visible p95 latency with a hot standby is bounded by the
  ablation's;
- zero duplicate or conflicting downward writes: the converged super
  etcd state of the kill run is byte-identical to the no-fault run
  (fencing + scanner remediation leave no split-brain artifacts).
"""

import json

from benchmarks.conftest import once

from repro.core import VirtualClusterEnv
from repro.core.crd import cluster_prefix

SCAN_INTERVAL = 15.0
NUM_TENANTS = 3
PODS_PER_TENANT = 30
SUBMIT_PERIOD = 1.0          # one Pod per tenant per second
KILL_AT = 12.0               # mid-submission, between scans
TIMEOUT = 600.0

_SCRUB_ANNOTATIONS = ("tenancy.x-k8s.io/tenant-uid",)


class FailoverResult:
    def __init__(self, env, latencies):
        self.env = env
        self.latencies = latencies

    @property
    def p95(self):
        ordered = sorted(self.latencies.values())
        return ordered[int(0.95 * (len(ordered) - 1))]

    @property
    def failover(self):
        """The takeover record for the mid-run kill (last failover)."""
        return self.env.syncer_ha.failovers[-1]


def _run_scenario(mode):
    env = VirtualClusterEnv(
        seed=0, num_virtual_nodes=5, scan_interval=SCAN_INTERVAL,
        syncer_replicas=2, warm_standby=(mode != "cold"))
    env.bootstrap()
    tenants = [env.run_coroutine(env.create_tenant(f"tenant-{index}"))
               for index in range(NUM_TENANTS)]
    env.run_until(lambda: env.syncer_ha.active is not None, timeout=30)

    latencies = {}

    def pod_flow(tenant, name):
        submitted = env.sim.now
        yield from tenant.create_pod(name)
        while True:
            pod = yield from tenant.get_pod(name)
            if pod is not None and pod.status.phase == "Running":
                latencies[(tenant.name, name)] = env.sim.now - submitted
                return
            yield env.sim.timeout(0.25)

    def submitter(tenant):
        for index in range(PODS_PER_TENANT):
            env.sim.spawn(pod_flow(tenant, f"pod-{index}"),
                          name=f"{tenant.name}-pod-{index}")
            yield env.sim.timeout(SUBMIT_PERIOD)

    def killer():
        yield env.sim.timeout(KILL_AT)
        env.syncer_ha.kill_leader(mode="crash")

    for tenant in tenants:
        env.sim.spawn(submitter(tenant), name=f"submit-{tenant.name}")
    if mode != "nofault":
        env.sim.spawn(killer(), name="leader-killer")

    total = NUM_TENANTS * PODS_PER_TENANT
    env.run_until(lambda: len(latencies) == total, timeout=TIMEOUT)
    return FailoverResult(env, latencies)


_memo = {}


def _run(mode):
    if mode not in _memo:
        _memo[mode] = _run_scenario(mode)
    return _memo[mode]


def _scrub(value):
    meta = value.get("metadata", {})
    for field in ("uid", "creationTimestamp", "resourceVersion"):
        meta.pop(field, None)
    annotations = meta.get("annotations") or {}
    for annotation in _SCRUB_ANNOTATIONS:
        annotations.pop(annotation, None)
    value.pop("status", None)
    spec = value.get("spec")
    if isinstance(spec, dict):
        spec.pop("nodeName", None)
    string_data = value.get("stringData")
    if isinstance(string_data, dict):
        string_data.pop("cert-hash", None)
    return value


def canonical_super_state(result):
    """key -> canonical serialized bytes of the converged super store
    (same normalization as benchmarks/test_syncer_hotpath.py: stable
    per-tenant namespace tokens, run-order fields scrubbed, Events and
    the leader Lease excluded)."""
    env = result.env
    prefixes = {cluster_prefix(reg.vc): f"vc({tenant})"
                for tenant, reg in env.syncer.tenants.items()}

    def normalize(text):
        for prefix, token in prefixes.items():
            text = text.replace(prefix, token)
        return text

    store = env.super_cluster.api.store
    state = {}
    for key in sorted(store._data):
        if key.startswith("/registry/events/"):
            continue
        if key.startswith("/registry/leases/"):
            continue  # the lease legitimately differs per scenario
        raw, _revision = store.get(key)
        state[normalize(key)] = normalize(
            json.dumps(_scrub(raw), sort_keys=True))
    return state


class TestFailoverMttr:
    def test_hot_standby_mttr_under_one_scan_period(self, benchmark):
        hot = once(benchmark, lambda: _run("hot"))
        record = hot.failover
        assert record["mttr"] is not None
        assert record["mttr"] < SCAN_INTERVAL, (
            f"hot-standby MTTR {record['mttr']:.2f}s >= one scan period "
            f"({SCAN_INTERVAL}s)")

    def test_warm_caches_make_takeover_sync_cheap(self):
        hot_sync = _run("hot").failover["sync_seconds"]
        cold_sync = _run("cold").failover["sync_seconds"]
        assert hot_sync < 1.0
        assert hot_sync < cold_sync, (
            f"warm takeover sync {hot_sync:.3f}s not cheaper than cold "
            f"relist {cold_sync:.3f}s")
        assert _run("hot").failover["mttr"] <= _run("cold").failover["mttr"]

    def test_tenant_p95_bounded_vs_cold_ablation(self):
        nofault, hot, cold = (_run(m) for m in ("nofault", "hot", "cold"))
        # A hot standby never does worse than the cold ablation, and the
        # failover penalty over the fault-free run is bounded by the
        # lease expiry + takeover window.
        assert hot.p95 <= cold.p95 * 1.05
        budget = hot.failover["mttr"] + SCAN_INTERVAL
        assert hot.p95 <= nofault.p95 + budget, (
            f"hot p95 {hot.p95:.2f}s exceeds no-fault p95 "
            f"{nofault.p95:.2f}s + failover budget {budget:.2f}s")

    def test_no_duplicate_or_conflicting_downward_writes(self):
        reference = canonical_super_state(_run("nofault"))
        killed = canonical_super_state(_run("hot"))
        assert set(reference) == set(killed), (
            "key sets differ: only-nofault="
            f"{sorted(set(reference) - set(killed))[:5]} "
            f"only-killed={sorted(set(killed) - set(reference))[:5]}")
        different = [key for key in reference
                     if reference[key] != killed[key]]
        assert not different, (
            f"{len(different)} keys diverge after failover, first: "
            f"{different[0]}\n  nofault: {reference[different[0]]}\n"
            f"  killed:  {killed[different[0]]}")

    def test_fencing_saw_no_rejections_in_crash_mode(self):
        # A crashed leader emits nothing post-mortem, so the fence floor
        # advances without ever firing; the kill run must also record
        # fenced writes from the new leader's stamped transactions.
        env = _run("hot").env
        assert env.syncer_ha.stats()["fenced_writes"] > 0
        assert env.super_cluster.api.store.fencing_rejections == 0
