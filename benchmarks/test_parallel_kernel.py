"""Kernel-speedup ablation and parallel-backend equivalence benchmark.

``REPRO_KERNEL_LEGACY=1`` restores the seed's kernel and store behavior
(interpreted per-field serde, no timer wheel, set-based prefix index
with a full sort per list/count), so one environment variable ablates
every optimization this suite measures.  Because the flag is read at
import time, the legacy arm runs in a subprocess.

Three claims, in decreasing order of importance:

1. **Equivalence** — legacy mode, fast mode, and every parallel worker
   count produce byte-identical store-event digests.  This is the hard
   invariant (DESIGN.md §16); it is asserted exactly.
2. **Heap occupancy** — the timer wheel and orphan cancellation keep the
   ready heap small: peak occupancy stays far below total dispatches,
   and any_of-loser timers are cancelled instead of carried to their
   deadline.  Deterministic counters, asserted exactly.
3. **Speedup** — the optimized kernel is faster than the seed's.  Wall
   and CPU time on a shared box are noisy, so the run takes the min of
   three interleaved pairs, records the measured ratio in
   ``extra_info`` (EXPERIMENTS.md quotes those numbers), and asserts
   only a conservative floor.
"""

import json
import os
import subprocess
import sys

import pytest

from benchmarks.conftest import once

PODS = 600
TENANTS = 6
NODES = 8
RATE = 150.0

_RUNNER = r"""
import json, time
from repro.analysis import ReplayRecorder
from repro.core import VirtualClusterEnv
from repro.simkernel import Simulation
from repro.workloads import run_vc_stress

workers = {workers}
sim = Simulation(seed=0, workers=workers)
recorder = ReplayRecorder(sim)
env = VirtualClusterEnv(seed=0, sim=sim, num_virtual_nodes={nodes})
env.bootstrap()
cpu0, wall0 = time.process_time(), time.perf_counter()
run_vc_stress(num_pods={pods}, num_tenants={tenants},
              submission_rate={rate}, num_nodes={nodes}, seed=0,
              timeout=3600.0, env=env)
cpu, wall = time.process_time() - cpu0, time.perf_counter() - wall0
sim.close()
print(json.dumps({{"digest": recorder.final_digest,
                   "events": len(recorder.digests),
                   "cpu": cpu, "wall": wall,
                   "stats": sim.kernel_stats()}}))
"""


def _run_arm(legacy, workers=0):
    env = dict(os.environ)
    env["PYTHONPATH"] = "src" + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else "")
    if legacy:
        env["REPRO_KERNEL_LEGACY"] = "1"
    else:
        env.pop("REPRO_KERNEL_LEGACY", None)
    script = _RUNNER.format(workers=workers, pods=PODS, tenants=TENANTS,
                            nodes=NODES, rate=RATE)
    out = subprocess.run([sys.executable, "-c", script], env=env,
                         capture_output=True, text=True, check=True,
                         timeout=1200)
    return json.loads(out.stdout.strip().splitlines()[-1])


def test_legacy_and_fast_kernels_byte_identical(benchmark):
    def run():
        return _run_arm(legacy=True), _run_arm(legacy=False)

    legacy, fast = once(benchmark, run)
    assert legacy["events"] > 0
    assert (fast["digest"], fast["events"]) == (legacy["digest"],
                                                legacy["events"])
    # The optimizations change *where* timers wait and how objects
    # serialize, never what is dispatched or when.
    assert fast["stats"]["dispatched"] == legacy["stats"]["dispatched"]


_RACE_RUNNER = r"""
import json
from repro.simkernel import Simulation

sim = Simulation(seed=0)
N = {racers}

def racer(index):
    fast = sim.timeout(0.5 + (index % 100) * 0.01)
    slow = sim.timeout(600.0)  # the loser: a long watchdog deadline
    yield sim.any_of([fast, slow])

def launcher():
    # Staggered starts, as a real workload would arrive: the heap should
    # only ever hold the in-flight sliver, never the loser population.
    for index in range(N):
        sim.process(racer(index))
        yield sim.timeout(0.001)

sim.process(launcher())
sim.run()
print(json.dumps({{"now": sim.now, "stats": sim.kernel_stats()}}))
"""


def _run_race_arm(legacy, racers=4000):
    env = dict(os.environ)
    env["PYTHONPATH"] = "src" + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else "")
    if legacy:
        env["REPRO_KERNEL_LEGACY"] = "1"
    else:
        env.pop("REPRO_KERNEL_LEGACY", None)
    script = _RACE_RUNNER.format(racers=racers)
    out = subprocess.run([sys.executable, "-c", script], env=env,
                         capture_output=True, text=True, check=True,
                         timeout=600)
    return json.loads(out.stdout.strip().splitlines()[-1])


def test_orphan_cancellation_cuts_heap_occupancy(benchmark):
    """The any_of-loser satellite, at benchmark scale.

    N processes race a short wait against a long watchdog Timeout.  The
    seed carried every losing timer in the ready heap until its deadline
    — the heap held all N losers at once and the run idled to t=600
    popping no-ops.  With the wheel + orphan cancellation the losers
    never reach the heap and the run ends when the last winner fires.
    """
    racers = 4000

    def run():
        return (_run_race_arm(legacy=True, racers=racers),
                _run_race_arm(legacy=False, racers=racers))

    legacy, fast = once(benchmark, run)
    lstats, fstats = legacy["stats"], fast["stats"]
    benchmark.extra_info["peak_heap_legacy"] = lstats["peak_heap"]
    benchmark.extra_info["peak_heap_fast"] = fstats["peak_heap"]
    benchmark.extra_info["timers_cancelled"] = fstats["timers_cancelled"]
    # The legacy heap held every loser at once; the wheel keeps them out.
    assert lstats["peak_heap"] >= racers
    assert fstats["peak_heap"] < lstats["peak_heap"] / 4
    # Losers are cancelled at flush, never dispatched...
    assert fstats["timers_cancelled"] == racers
    assert lstats["orphans_skipped"] >= racers
    # ...so the run ends at the last winner, not the loser deadline.
    assert legacy["now"] >= 600.0
    assert fast["now"] < 10.0


def test_kernel_ablation_speedup(benchmark):
    """Min-of-3 interleaved pairs; records the ratio, asserts a floor."""

    def run():
        pairs = [(_run_arm(legacy=True), _run_arm(legacy=False))
                 for _ in range(3)]
        legacy_cpu = min(p[0]["cpu"] for p in pairs)
        fast_cpu = min(p[1]["cpu"] for p in pairs)
        legacy_wall = min(p[0]["wall"] for p in pairs)
        fast_wall = min(p[1]["wall"] for p in pairs)
        return legacy_cpu, fast_cpu, legacy_wall, fast_wall

    legacy_cpu, fast_cpu, legacy_wall, fast_wall = once(benchmark, run)
    benchmark.extra_info["legacy_cpu_s"] = round(legacy_cpu, 2)
    benchmark.extra_info["fast_cpu_s"] = round(fast_cpu, 2)
    benchmark.extra_info["cpu_speedup"] = round(legacy_cpu / fast_cpu, 2)
    benchmark.extra_info["wall_speedup"] = round(
        legacy_wall / fast_wall, 2)
    # Floor, not target: co-tenant noise on shared CI boxes swamps the
    # true gap (EXPERIMENTS.md records representative measured ratios).
    assert legacy_cpu / fast_cpu > 1.03


@pytest.mark.parametrize("workers", [1, 2, 4])
def test_parallel_workers_byte_identical(benchmark, workers):
    """The Fig. 10-style stress digest is invariant to worker count."""

    def run():
        return _run_arm(legacy=False), _run_arm(legacy=False,
                                                workers=workers)

    serial, parallel = once(benchmark, run)
    assert serial["events"] > 0
    assert (parallel["digest"], parallel["events"]) == \
        (serial["digest"], serial["events"])
    assert parallel["stats"]["parallel_batches"] > 0
    assert parallel["stats"]["dispatched"] == serial["stats"]["dispatched"]
