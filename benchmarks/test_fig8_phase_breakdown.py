"""Figure 8: the average Pod-creation round-trip latency breakdown.

Paper (10,000 Pods, 100 tenants): the two syncer queues contribute ~75%
of the latency (48.5% downward + 25.3% upward), the super-cluster phase
~21%, and both synchronization processing steps are negligible.
"""

from repro.metrics import format_phase_breakdown

from benchmarks.conftest import PARAMS, once, vc_run


def test_fig8_phase_breakdown(benchmark):
    num_pods = PARAMS["pods_sweep"][-1]
    tenants = PARAMS["tenants_default"]

    result = once(benchmark, lambda: vc_run(num_pods, tenants))
    phases = result.phase_means
    total = sum(phases.values())
    shares = {name: value / total for name, value in phases.items()}

    print()
    print(format_phase_breakdown(
        phases, title=f"Fig. 8 breakdown ({num_pods} pods, "
                      f"{tenants} tenants)"))
    for name, share in shares.items():
        benchmark.extra_info[name] = round(share, 3)

    # Shape assertions straight from the paper's findings:
    # 1. The downward queue is the single largest contributor.
    assert shares["DWS-Queue"] == max(shares.values())
    # 2. The two queues together dominate (paper ~75%).
    assert shares["DWS-Queue"] + shares["UWS-Queue"] > 0.5
    # 3. Both synchronization steps are negligible.
    assert shares["DWS-Process"] < 0.05
    assert shares["UWS-Process"] < 0.05
    # 4. The super-cluster phase is visible but not dominant.
    assert 0.02 < shares["Super-Sched"] < 0.45
