#!/usr/bin/env python
"""cProfile harness for the sim kernel's hot paths.

Runs the Fig. 10-style VirtualCluster stress (Pods created through
tenant control planes, synced down by the centralized syncer) under
cProfile and prints the top-N hot spots by cumulative and by internal
time, so perf PRs start from data instead of guesses.

Usage::

    PYTHONPATH=src python scripts/profile_kernel.py
    PYTHONPATH=src python scripts/profile_kernel.py --pods 2000 --tenants 20
    PYTHONPATH=src python scripts/profile_kernel.py --workers 2 --top 30

``--pods 10000 --tenants 100 --nodes 100`` reproduces the paper-scale
Fig. 10 point (slow: a few minutes of wall clock on one core).
"""

import argparse
import cProfile
import io
import pstats
import sys
import time


def main(argv=None):
    parser = argparse.ArgumentParser(
        prog="python scripts/profile_kernel.py",
        description="profile the Fig. 10 stress run's kernel hot spots")
    parser.add_argument("--pods", type=int, default=2000)
    parser.add_argument("--tenants", type=int, default=20)
    parser.add_argument("--nodes", type=int, default=20)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--rate", type=float, default=200.0,
                        help="aggregate Pod submission rate (pods/s)")
    parser.add_argument("--workers", type=int, default=None,
                        help="parallel-backend worker count "
                             "(default: REPRO_WORKERS / 0)")
    parser.add_argument("--top", type=int, default=20,
                        help="rows per hot-spot table (default 20)")
    parser.add_argument("--sort", choices=["both", "cumulative", "tottime"],
                        default="both")
    args = parser.parse_args(argv)

    from repro.workloads import run_vc_stress

    def run():
        return run_vc_stress(
            num_pods=args.pods, num_tenants=args.tenants,
            submission_rate=args.rate, num_nodes=args.nodes,
            seed=args.seed, timeout=3600.0, workers=args.workers,
            keep_env=True)

    profiler = cProfile.Profile()
    started = time.perf_counter()
    profiler.enable()
    result = run()
    profiler.disable()
    elapsed = time.perf_counter() - started

    sim = result.env.sim
    stats = sim.kernel_stats()
    print(f"profiled run: {args.pods} pods / {args.tenants} tenants / "
          f"{args.nodes} nodes, seed={args.seed}")
    print(f"  wall clock        : {elapsed:.2f} s")
    print(f"  simulated time    : {sim.now:.1f} s")
    print(f"  events dispatched : {stats['dispatched']}")
    print(f"  events/s (wall)   : {stats['dispatched'] / elapsed:,.0f}")
    for key in ("batches", "peak_heap", "pending", "wheel_scheduled",
                "timers_cancelled", "orphans_skipped", "parallel_batches",
                "workers"):
        if key in stats:
            print(f"  {key:<18}: {stats[key]}")
    print()

    sorts = (["cumulative", "tottime"] if args.sort == "both"
             else [args.sort])
    for sort in sorts:
        buffer = io.StringIO()
        pstats.Stats(profiler, stream=buffer).sort_stats(sort).print_stats(
            args.top)
        print(f"=== top {args.top} by {sort} " + "=" * 40)
        print(buffer.getvalue())
    return 0


if __name__ == "__main__":
    sys.exit(main())
