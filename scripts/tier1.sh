#!/usr/bin/env bash
# Tier-1 gate: the fast correctness suite plus (when available) a
# coverage floor.
#
# Usage:  scripts/tier1.sh [extra pytest args...]
#         scripts/tier1.sh --chaos-smoke [seed]
#         scripts/tier1.sh --telemetry-smoke [seed]
#         scripts/tier1.sh --durability-smoke [seed]
#         scripts/tier1.sh --scenario-smoke [corpus-dir]
#         scripts/tier1.sh --apf-smoke [seed]
#         scripts/tier1.sh --parallel-smoke [seed]
#         scripts/tier1.sh --lint
#
# Runs the tier1-marked tests (every test except the long soak runs)
# exactly as the CI gate does.  The coverage floor is enforced only
# when pytest-cov is installed — the base image intentionally ships
# without it, so the gate degrades to a plain test run rather than
# failing on a missing plugin.  Install it with:
#
#     pip install -e ".[coverage]"
#
# --chaos-smoke runs two short seeded chaos convergence runs instead of
# the pytest gate: the base fault mix, then the HA mix (--kill-leader:
# leader crash with standby failover, tenant control-plane crash
# restored from its etcd snapshot, snapshot rollback).  Exit 0 means
# both runs healed.
#
# --telemetry-smoke runs a small seeded stress mix and exports the
# telemetry snapshot as JSON, asserting it parses and that every core
# metric family (apiserver, etcd, workqueue, informer, syncer,
# scheduler, kubelet, spans) is present with recorded activity.
#
# --durability-smoke runs the storage durability gate (DESIGN.md §13):
# a seeded chaos run with the replicated super store under leader
# kill -9 (plain and mid-txn), follower lag, and a torn WAL tail; a
# same-seed determinism double-run with a 2-replica store; and the
# durability-marked benchmark suite (crash storm: zero committed-write
# loss, MTTR within the lease budget, byte-identical convergence).
#
# --scenario-smoke verifies the golden scenario corpus (DESIGN.md §14):
# every scenario under scenarios/corpus replays to its recorded
# converged-state digest twice in a row (determinism), race-checked
# scenarios run under the vector-clock detector, and the
# scenario-marked conformance tests run.  Exit 0 means zero drift.
#
# --apf-smoke runs the overload/tiering gate (DESIGN.md §15): a seeded
# chaos run with APF admission + the scale-to-zero swapper enabled and
# a free-tier TenantStorm at the front door (the run must converge with
# the storm shed, not served); a same-seed determinism double-run with
# both features on; and the apf-marked suite (admission, swap state
# machine, Retry-After plumbing, fairness properties).
#
# --parallel-smoke runs the parallel-backend gate (DESIGN.md §16): the
# chaos config serially and with 2 kernel workers, failing on any
# store-event digest divergence; a 2-worker run under the vector-clock
# race detector; and the parallel-marked suite (merge-barrier
# determinism, timer-wheel ordering, digest-equality properties).
#
# --lint runs the determinism linter (repro.analysis) over src/ in
# strict mode against the committed allowlist, then the whole-program
# concurrency/protocol staticcheck (C001-C006) in strict mode, then
# the lint- and staticcheck-marked CLI smoke tests.  Exit 0 means zero
# non-allowlisted findings and no stale suppressions or allowlist
# entries in either pack.
set -euo pipefail
cd "$(dirname "$0")/.."

if [[ "${1:-}" == "--chaos-smoke" ]]; then
    seed="${2:-0}"
    echo "tier1: chaos smoke (seed=$seed), base fault mix" >&2
    PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}" \
        python -m repro.chaos --seed "$seed" --horizon 30
    echo "tier1: chaos smoke (seed=$seed), HA fault mix (--kill-leader)" >&2
    PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}" \
        python -m repro.chaos --seed "$seed" --horizon 30 --kill-leader
    exit 0
fi

if [[ "${1:-}" == "--durability-smoke" ]]; then
    seed="${2:-0}"
    echo "tier1: durability smoke (seed=$seed), storage fault mix" >&2
    # Replicated super store under leader kill -9 (plain + mid-txn),
    # follower lag, and a torn WAL tail — the run must converge.
    PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}" \
        python -m repro.chaos --seed "$seed" --horizon 30 \
        --kill-store --wal-corrupt
    echo "tier1: durability smoke (seed=$seed), determinism with replication" >&2
    # Two same-seed runs with a 2-replica store must stay byte-identical.
    PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}" \
        python -m repro.chaos --seed "$seed" --horizon 25 \
        --check-determinism --replicas-store 2
    echo "tier1: durability-marked benchmark suite" >&2
    PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}" \
        python -m pytest -x -q -m durability
    exit 0
fi

if [[ "${1:-}" == "--telemetry-smoke" ]]; then
    seed="${2:-0}"
    echo "tier1: telemetry smoke (seed=$seed), JSON export + core families" >&2
    out="$(mktemp)"
    trap 'rm -f "$out"' EXIT
    PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}" \
        python -m repro.telemetry --seed "$seed" --pods 40 --tenants 3 \
        --nodes 6 --format json --output "$out" --check
    python -c "import json,sys; json.load(open(sys.argv[1]))" "$out"
    echo "tier1: telemetry smoke OK (JSON parses, core families active)" >&2
    exit 0
fi

if [[ "${1:-}" == "--scenario-smoke" ]]; then
    corpus="${2:-scenarios/corpus}"
    echo "tier1: scenario corpus verify (2x replay vs golden digests)" >&2
    PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}" \
        python -m repro.scenarios verify "$corpus"
    echo "tier1: scenario-marked conformance tests" >&2
    PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}" \
        python -m pytest -x -q -m scenario
    exit 0
fi

if [[ "${1:-}" == "--apf-smoke" ]]; then
    seed="${2:-0}"
    echo "tier1: apf smoke (seed=$seed), tenant storm under APF + swapper" >&2
    PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}" \
        python -m repro.chaos --seed "$seed" --horizon 30 \
        --apf --tenant-storm
    echo "tier1: apf smoke (seed=$seed), determinism with APF + swapper" >&2
    PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}" \
        python -m repro.chaos --seed "$seed" --horizon 25 \
        --check-determinism --apf --tenant-storm
    echo "tier1: apf-marked suite" >&2
    PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}" \
        python -m pytest -x -q -m apf
    exit 0
fi

if [[ "${1:-}" == "--parallel-smoke" ]]; then
    seed="${2:-0}"
    echo "tier1: parallel smoke (seed=$seed), 2-worker digest equality" >&2
    PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}" \
        python -m repro.chaos --seed "$seed" --horizon 25 \
        --compare-workers 2
    echo "tier1: parallel smoke (seed=$seed), race detector, 2 workers" >&2
    PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}" \
        python -m repro.chaos --seed "$seed" --horizon 25 \
        --workers 2 --detect-races
    echo "tier1: parallel-marked suite" >&2
    PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}" \
        python -m pytest -x -q -m parallel
    exit 0
fi

if [[ "${1:-}" == "--lint" ]]; then
    echo "tier1: determinism lint (strict) over src/" >&2
    PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}" \
        python -m repro.analysis lint src --strict \
        --allowlist analysis-allowlist.txt
    echo "tier1: concurrency/protocol staticcheck (strict) over src/" >&2
    PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}" \
        python -m repro.analysis staticcheck src --strict \
        --allowlist analysis-allowlist.txt
    echo "tier1: lint- and staticcheck-marked CLI smoke tests" >&2
    PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}" \
        python -m pytest -x -q -m "lint or staticcheck"
    exit 0
fi

COV_ARGS=()
if python -c "import pytest_cov" >/dev/null 2>&1; then
    COV_ARGS=(--cov=repro --cov-fail-under=75)
else
    echo "tier1: pytest-cov not installed; skipping coverage floor" >&2
fi

PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}" \
    python -m pytest -x -q -m tier1 "${COV_ARGS[@]}" "$@"
