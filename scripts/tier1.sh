#!/usr/bin/env bash
# Tier-1 gate: the fast correctness suite plus (when available) a
# coverage floor.
#
# Usage:  scripts/tier1.sh [extra pytest args...]
#
# Runs the tier1-marked tests (every test except the long soak runs)
# exactly as the CI gate does.  The coverage floor is enforced only
# when pytest-cov is installed — the base image intentionally ships
# without it, so the gate degrades to a plain test run rather than
# failing on a missing plugin.  Install it with:
#
#     pip install -e ".[coverage]"
set -euo pipefail
cd "$(dirname "$0")/.."

COV_ARGS=()
if python -c "import pytest_cov" >/dev/null 2>&1; then
    COV_ARGS=(--cov=repro --cov-fail-under=75)
else
    echo "tier1: pytest-cov not installed; skipping coverage floor" >&2
fi

PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}" \
    python -m pytest -x -q -m tier1 "${COV_ARGS[@]}" "$@"
