"""Parallel-backend determinism: any worker count, identical results.

The merge barrier serializes dispatch effects in global ``(time, seq)``
order, so ``Simulation(workers=N)`` must be *byte-identical* to the
serial kernel for every N — there is no configuration in which results
may legally differ (DESIGN.md §16).  Two layers of evidence:

- hypothesis drives randomized kernel workloads (mixed delays, heavy
  same-timestamp batching, tenant affinities) and compares full dispatch
  traces across worker counts;
- the full VirtualCluster stack runs a small Fig. 10-style stress under
  a :class:`ReplayRecorder` and compares the cumulative store-event
  digest — the same digest the replay bisector would use to localize any
  divergence.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import ReplayRecorder
from repro.core import VirtualClusterEnv
from repro.simkernel import Simulation
from repro.workloads import run_vc_stress

pytestmark = pytest.mark.parallel

DELAYS = [0.0, 0.05, 0.1, 0.25, 0.5, 1.0, 2.0, 17.0]


def _kernel_trace(workers, seed, num_procs, steps):
    """Run a batching-heavy kernel workload; return its dispatch trace."""
    sim = Simulation(seed=seed, workers=workers)
    trace = []

    def worker(index):
        tenant = f"tenant-{index % 3}"
        for step in range(steps):
            delay = sim.rng.choice(DELAYS)
            yield sim.timeout(delay)
            trace.append((round(sim.now, 9), index, step, tenant))

    for index in range(num_procs):
        sim.process(worker(index), affinity=f"tenant-{index % 3}")
    sim.run()
    stats = sim.kernel_stats()
    sim.close()
    return trace, stats


class TestKernelTraceEquality:
    @settings(max_examples=12, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=2**32 - 1),
           workers=st.integers(min_value=1, max_value=4),
           num_procs=st.integers(min_value=2, max_value=12),
           steps=st.integers(min_value=1, max_value=8))
    def test_any_worker_count_matches_serial(self, seed, workers,
                                             num_procs, steps):
        serial, _ = _kernel_trace(0, seed, num_procs, steps)
        parallel, stats = _kernel_trace(workers, seed, num_procs, steps)
        assert parallel == serial
        assert stats["workers"] == workers

    @settings(max_examples=8, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=2**32 - 1))
    def test_serial_kernel_is_reproducible(self, seed):
        first, _ = _kernel_trace(0, seed, 6, 5)
        second, _ = _kernel_trace(0, seed, 6, 5)
        assert first == second


def _digest_run(workers, seed):
    """A small full-stack stress run; returns its store-event digest."""
    sim = Simulation(seed=seed, workers=workers)
    recorder = ReplayRecorder(sim)
    env = VirtualClusterEnv(seed=seed, sim=sim, num_virtual_nodes=4)
    env.bootstrap()
    run_vc_stress(num_pods=40, num_tenants=4, submission_rate=100.0,
                  num_nodes=4, seed=seed, timeout=600.0, env=env)
    sim.close()
    return recorder.final_digest, len(recorder.digests), sim.kernel_stats()


class TestFullStackDigestEquality:
    @pytest.mark.parametrize("seed", [0, 7])
    def test_parallel_digest_matches_serial(self, seed):
        serial_digest, serial_events, _ = _digest_run(0, seed)
        assert serial_events > 0
        for workers in (1, 2):
            digest, events, stats = _digest_run(workers, seed)
            assert (digest, events) == (serial_digest, serial_events)
            assert stats["parallel_batches"] > 0

    def test_worker_count_does_not_leak_into_timeline(self):
        _, _, stats2 = _digest_run(2, seed=3)
        _, _, stats0 = _digest_run(0, seed=3)
        # Identical dispatch counts: the backend changes *where* a
        # dispatch executes, never whether or when.
        assert stats2["dispatched"] == stats0["dispatched"]
        assert stats2["batches"] == stats0["batches"]
