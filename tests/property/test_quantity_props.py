"""Property-based tests for resource quantities."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.objects.quantity import Quantity, add_resource_lists, fits_within

millis = st.integers(min_value=-10 ** 15, max_value=10 ** 15)
quantities = millis.map(Quantity)

suffixes = st.sampled_from(["", "m", "k", "M", "G", "Ki", "Mi", "Gi"])
small_numbers = st.integers(min_value=0, max_value=10 ** 6)


@given(quantities)
def test_str_round_trip_preserves_value(q):
    assert Quantity.parse(str(q)) == q


@given(small_numbers, suffixes)
def test_parse_never_crashes_on_valid_input(number, suffix):
    q = Quantity.parse(f"{number}{suffix}")
    assert isinstance(q.milli, int)


@given(quantities, quantities)
def test_addition_commutative(a, b):
    assert a + b == b + a


@given(quantities, quantities, quantities)
def test_addition_associative(a, b, c):
    assert (a + b) + c == a + (b + c)


@given(quantities)
def test_add_zero_identity(q):
    assert q + Quantity.zero() == q


@given(quantities, quantities)
def test_subtraction_inverts_addition(a, b):
    assert (a + b) - b == a


@given(quantities, quantities)
def test_ordering_total(a, b):
    assert (a < b) or (a > b) or (a == b)


@given(quantities, quantities)
def test_ordering_consistent_with_milli(a, b):
    assert (a < b) == (a.milli < b.milli)


@given(st.dictionaries(st.sampled_from(["cpu", "memory", "pods"]),
                       quantities, max_size=3),
       st.dictionaries(st.sampled_from(["cpu", "memory", "pods"]),
                       quantities, max_size=3))
def test_add_resource_lists_contains_all_keys(a, b):
    total = add_resource_lists(a, b)
    assert set(total) == set(a) | set(b)
    for key in set(a) & set(b):
        assert total[key] == a[key] + b[key]


@given(st.dictionaries(st.sampled_from(["cpu", "memory"]),
                       millis.map(lambda m: Quantity(abs(m))), max_size=2))
@settings(max_examples=50)
def test_request_always_fits_within_itself(request):
    assert fits_within(request, request)


@given(st.dictionaries(st.sampled_from(["cpu", "memory"]),
                       millis.map(lambda m: Quantity(abs(m) + 1)),
                       min_size=1, max_size=2))
def test_request_never_fits_within_less(request):
    smaller = {name: q - Quantity(1) for name, q in request.items()}
    assert not fits_within(request, smaller)
