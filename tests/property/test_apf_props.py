"""Property-based tests for APF fairness invariants (DESIGN.md §15).

Three claims the admission design rests on, each checked over generated
configurations and request schedules:

- **Liveness / no starvation** — whatever the arrival order, every
  request resolves: admitted (and the seat accounting returns to zero)
  or shed with a structured 429.  A nonempty queue is never left
  waiting forever while seats turn over, because the bounded wait
  converts any stall into a shed.
- **Shares within rounding** — the seat split across priority levels
  matches the configured shares up to integer rounding, and occupancy
  never exceeds a level's borrow cap nor the pool total.  Under
  sustained all-tier saturation, occupancy converges to the nominal
  shares exactly (starved-first dispatch drains any borrowing).
- **Shuffle sharding is deterministic per seed** — a flow's dealt hand
  depends only on (seed, level, flow): stable across limiter instances,
  unique queue indices, correct hand size.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apiserver import APFLimiter
from repro.apiserver.apf import PriorityLevel
from repro.apiserver.auth import Credential
from repro.apiserver.errors import TooManyRequests
from repro.config import ApfConfig, ApfTier
from repro.simkernel import Simulation

pytestmark = pytest.mark.apf

USERS = ["tenant-a", "tenant-b", "tenant-c", "tenant-d"]
TIERS = ["platinum", "standard", "free"]

share_triples = st.tuples(st.integers(1, 50), st.integers(1, 50),
                          st.integers(1, 50))


def build_config(shares, total_seats, queue_wait=0.5):
    return ApfConfig(
        enabled=True, total_seats=total_seats,
        tiers=tuple(
            [ApfTier(name="system", shares=0, exempt=True)]
            + [ApfTier(name=name, shares=share, queues=4, hand_size=2,
                       queue_limit=10, queue_wait=queue_wait)
               for name, share in zip(TIERS, shares)]))


# ----------------------------------------------------------------------
# Shares within rounding (static allocation)
# ----------------------------------------------------------------------


@given(share_triples, st.integers(4, 64))
@settings(max_examples=200)
def test_seat_split_matches_shares_within_rounding(shares, total_seats):
    sim = Simulation(seed=0)
    limiter = APFLimiter(sim, build_config(shares, total_seats))
    share_sum = sum(shares)
    seats = []
    for name, share in zip(TIERS, shares):
        level = limiter.levels[name]
        expected = max(1, round(total_seats * share / share_sum))
        assert level.seats == expected
        assert level.seats <= level.borrow_cap <= total_seats
        seats.append(level.seats)
    # Integer rounding (plus the >=1 floor) is the only slack allowed.
    assert abs(sum(seats) - total_seats) <= len(TIERS)


# ----------------------------------------------------------------------
# Liveness: every request resolves, accounting returns to zero
# ----------------------------------------------------------------------

request_schedules = st.lists(
    st.tuples(st.sampled_from(USERS), st.sampled_from(TIERS),
              st.integers(0, 4)),    # hold time in tenths of a second
    min_size=1, max_size=50)


@given(request_schedules, share_triples)
@settings(max_examples=50, deadline=None)
def test_every_request_admitted_or_shed(schedule, shares):
    sim = Simulation(seed=11)
    limiter = APFLimiter(sim, build_config(shares, total_seats=4))
    for user, tier, _hold in schedule:
        limiter.classifier.assign(user, tier)
    outcomes = []

    def request(user, hold):
        try:
            ticket = yield from limiter.acquire(Credential(user))
        except TooManyRequests as exc:
            assert exc.retry_after > 0
            outcomes.append("shed")
            return
        # Pool invariants hold at every admission.
        assert limiter.total_in_use <= limiter.total_seats
        assert ticket.level.in_use <= ticket.level.borrow_cap
        yield sim.timeout(hold / 10.0)
        limiter.release(ticket)
        outcomes.append("admitted")

    for index, (user, tier, hold) in enumerate(schedule):
        sim.spawn(request(user, hold), name=f"req-{index}")
    sim.run(until=sim.now + 120.0)
    # Liveness: nothing is parked forever — admitted or shed, and all
    # seat/queue accounting drained back to zero.
    assert len(outcomes) == len(schedule)
    assert limiter.total_in_use == 0
    for level in limiter.levels.values():
        assert level.in_use == 0
        assert level.waiting == 0


small_share_triples = st.tuples(st.integers(1, 6), st.integers(1, 6),
                                st.integers(1, 6))


@given(small_share_triples)
@settings(max_examples=20, deadline=None)
def test_saturation_converges_to_nominal_shares(shares):
    # total_seats == share sum makes the nominal split exact (no
    # rounding slack), so convergence can be asserted with equality.
    # Shares are kept small: 2x-seats closed-loop drivers per tier get
    # expensive fast, and the convergence argument is size-independent.
    total = sum(shares)
    sim = Simulation(seed=23)
    limiter = APFLimiter(sim, build_config(shares, total_seats=total,
                                           queue_wait=30.0))
    for name in TIERS:
        limiter.classifier.assign(f"tenant-{name}", name)

    def churn(user, stop_at):
        while sim.now < stop_at:
            try:
                ticket = yield from limiter.acquire(Credential(user))
            except TooManyRequests:
                continue
            yield sim.timeout(0.05)
            limiter.release(ticket)

    # Outsized demand on every tier: 2x its seats in closed-loop
    # drivers, so each level always has waiters.
    for name, share in zip(TIERS, shares):
        level = limiter.levels[name]
        for index in range(2 * level.seats):
            sim.spawn(churn(f"tenant-{name}", stop_at=8.0),
                      name=f"churn-{name}-{index}")
    sim.run(until=5.0)
    # Mid-saturation: starved-first dispatch has drained any early
    # borrowing — every level sits exactly on its nominal share.
    for name in TIERS:
        level = limiter.levels[name]
        assert level.in_use == level.seats
    sim.run(until=sim.now + 40.0)
    assert limiter.total_in_use == 0


# ----------------------------------------------------------------------
# Shuffle sharding
# ----------------------------------------------------------------------

flow_names = st.sampled_from([f"tenant-{i}" for i in range(12)])


@given(flow_names, st.integers(0, 2**31), st.integers(2, 16),
       st.integers(1, 4))
@settings(max_examples=200)
def test_shuffle_shard_hand_is_deterministic_per_seed(flow, seed, queues,
                                                      hand_size):
    spec = ApfTier(name="standard", shares=10, queues=queues,
                   hand_size=hand_size)
    level_a = PriorityLevel(spec, seats=2, borrow_cap=4)
    level_b = PriorityLevel(spec, seats=2, borrow_cap=4)
    hand_a = level_a.hand_for(flow, seed)
    hand_b = level_b.hand_for(flow, seed)
    # Same (seed, level name, flow) -> same hand on a fresh instance.
    assert hand_a == hand_b
    # Dealt without replacement, correct size, valid indices.
    assert len(hand_a) == len(set(hand_a)) == min(hand_size, queues)
    assert all(0 <= index < queues for index in hand_a)
    # Memoized: repeat lookups never re-deal.
    assert level_a.hand_for(flow, seed) is hand_a


@given(st.integers(0, 2**31), st.integers(0, 2**31))
@settings(max_examples=50)
def test_different_seeds_give_different_dealing(seed_a, seed_b):
    # Not a strict requirement per pair (collisions are legal), but
    # across a dozen flows the dealing must actually depend on the
    # seed: identical hands for every flow under different seeds would
    # mean the seed is ignored.
    if seed_a == seed_b:
        return
    spec = ApfTier(name="standard", shares=10, queues=16, hand_size=2)
    level_a = PriorityLevel(spec, seats=2, borrow_cap=4)
    level_b = PriorityLevel(spec, seats=2, borrow_cap=4)
    flows = [f"tenant-{i}" for i in range(12)]
    hands_a = [tuple(level_a.hand_for(flow, seed_a)) for flow in flows]
    hands_b = [tuple(level_b.hand_for(flow, seed_b)) for flow in flows]
    assert hands_a != hands_b
