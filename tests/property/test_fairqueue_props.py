"""Property-based tests for work-queue invariants.

The paper's fairness and boundedness arguments rest on two queue
invariants: every added key is eventually dispatched (no loss), and no
key is pending twice (dedup).  The WRR queue must additionally bound how
long any tenant's item can wait relative to others.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.clientgo import FairWorkQueue, WorkQueue
from repro.simkernel import Simulation

tenant_names = st.sampled_from(["t0", "t1", "t2", "t3"])
key_names = st.sampled_from([f"k{i}" for i in range(8)])
add_sequences = st.lists(st.tuples(tenant_names, key_names),
                         min_size=1, max_size=60)


def drain_fair(queue, sim):
    taken = []

    def worker():
        while len(queue):
            tenant, key, _t = yield queue.get()
            taken.append((tenant, key))
            queue.done(tenant, key)

    sim.run(until=sim.process(worker()))
    return taken


@given(add_sequences)
@settings(max_examples=200)
def test_every_unique_item_dispatched_exactly_once(adds):
    sim = Simulation()
    queue = FairWorkQueue(sim)
    for tenant, key in adds:
        queue.add(tenant, key)
    taken = drain_fair(queue, sim)
    assert sorted(set(taken)) == sorted(set(adds))
    assert len(taken) == len(set(taken))


@given(add_sequences, st.booleans())
@settings(max_examples=100)
def test_fair_and_unfair_dispatch_same_set(adds, fair):
    sim = Simulation()
    queue = FairWorkQueue(sim, fair=fair)
    for tenant, key in adds:
        queue.add(tenant, key)
    taken = drain_fair(queue, sim)
    assert set(taken) == set(adds)


@given(st.integers(min_value=1, max_value=30),
       st.integers(min_value=1, max_value=30))
@settings(max_examples=50)
def test_wrr_interleaving_bound(greedy_count, regular_count):
    """With equal weights, between two consecutive dispatches of one
    tenant every other backlogged tenant is served at least once."""
    sim = Simulation()
    queue = FairWorkQueue(sim)
    for i in range(greedy_count):
        queue.add("greedy", f"g{i}")
    for i in range(regular_count):
        queue.add("regular", f"r{i}")
    taken = drain_fair(queue, sim)
    greedy_streak = 0
    regular_left = regular_count
    for tenant, _key in taken:
        if tenant == "greedy":
            greedy_streak += 1
            if regular_left > 0:
                assert greedy_streak <= 2
        else:
            greedy_streak = 0
            regular_left -= 1


@given(add_sequences)
@settings(max_examples=100)
def test_plain_workqueue_preserves_first_add_order(adds):
    sim = Simulation()
    queue = WorkQueue(sim)
    first_positions = {}
    for index, (tenant, key) in enumerate(adds):
        item = (tenant, key)
        if item not in first_positions:
            first_positions[item] = index
        queue.add(item)
    taken = []

    def worker():
        while len(queue):
            item, _t = yield queue.get()
            taken.append(item)
            queue.done(item)

    sim.run(until=sim.process(worker()))
    expected = sorted(first_positions, key=first_positions.get)
    assert taken == expected


@given(add_sequences)
@settings(max_examples=50)
def test_depth_never_exceeds_unique_items(adds):
    sim = Simulation()
    queue = FairWorkQueue(sim)
    for tenant, key in adds:
        queue.add(tenant, key)
        assert len(queue) <= len(set(adds))
