"""Property-based tests for work-queue invariants.

The paper's fairness and boundedness arguments rest on two queue
invariants: every added key is eventually dispatched (no loss), and no
key is pending twice (dedup).  The WRR queue must additionally bound how
long any tenant's item can wait relative to others.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.clientgo import (
    FairWorkQueue,
    ShardedFairWorkQueue,
    WorkQueue,
    shard_hash,
)
from repro.simkernel import Simulation

tenant_names = st.sampled_from(["t0", "t1", "t2", "t3"])
key_names = st.sampled_from([f"k{i}" for i in range(8)])
add_sequences = st.lists(st.tuples(tenant_names, key_names),
                         min_size=1, max_size=60)


def drain_fair(queue, sim):
    taken = []

    def worker():
        while len(queue):
            tenant, key, _t = yield queue.get()
            taken.append((tenant, key))
            queue.done(tenant, key)

    sim.run(until=sim.process(worker()))
    return taken


@given(add_sequences)
@settings(max_examples=200)
def test_every_unique_item_dispatched_exactly_once(adds):
    sim = Simulation()
    queue = FairWorkQueue(sim)
    for tenant, key in adds:
        queue.add(tenant, key)
    taken = drain_fair(queue, sim)
    assert sorted(set(taken)) == sorted(set(adds))
    assert len(taken) == len(set(taken))


@given(add_sequences, st.booleans())
@settings(max_examples=100)
def test_fair_and_unfair_dispatch_same_set(adds, fair):
    sim = Simulation()
    queue = FairWorkQueue(sim, fair=fair)
    for tenant, key in adds:
        queue.add(tenant, key)
    taken = drain_fair(queue, sim)
    assert set(taken) == set(adds)


@given(st.integers(min_value=1, max_value=30),
       st.integers(min_value=1, max_value=30))
@settings(max_examples=50)
def test_wrr_interleaving_bound(greedy_count, regular_count):
    """With equal weights, between two consecutive dispatches of one
    tenant every other backlogged tenant is served at least once."""
    sim = Simulation()
    queue = FairWorkQueue(sim)
    for i in range(greedy_count):
        queue.add("greedy", f"g{i}")
    for i in range(regular_count):
        queue.add("regular", f"r{i}")
    taken = drain_fair(queue, sim)
    greedy_streak = 0
    regular_left = regular_count
    for tenant, _key in taken:
        if tenant == "greedy":
            greedy_streak += 1
            if regular_left > 0:
                assert greedy_streak <= 2
        else:
            greedy_streak = 0
            regular_left -= 1


@given(add_sequences)
@settings(max_examples=100)
def test_plain_workqueue_preserves_first_add_order(adds):
    sim = Simulation()
    queue = WorkQueue(sim)
    first_positions = {}
    for index, (tenant, key) in enumerate(adds):
        item = (tenant, key)
        if item not in first_positions:
            first_positions[item] = index
        queue.add(item)
    taken = []

    def worker():
        while len(queue):
            item, _t = yield queue.get()
            taken.append(item)
            queue.done(item)

    sim.run(until=sim.process(worker()))
    expected = sorted(first_positions, key=first_positions.get)
    assert taken == expected


@given(add_sequences)
@settings(max_examples=50)
def test_depth_never_exceeds_unique_items(adds):
    sim = Simulation()
    queue = FairWorkQueue(sim)
    for tenant, key in adds:
        queue.add(tenant, key)
        assert len(queue) <= len(set(adds))


# ----------------------------------------------------------------------
# ShardedFairWorkQueue (DESIGN.md §9): the sharded dispatch path must
# keep every single-queue invariant — exactly-once, dedup, WRR bounds —
# while routing each tenant to exactly one shard and surviving a shard
# rebalance without losing or duplicating items.
# ----------------------------------------------------------------------

shard_counts = st.integers(min_value=1, max_value=4)


def drain_sharded(queue, sim, record_shards=None):
    """Drain every shard with one worker each; returns (tenant, key)s."""
    taken = []

    def worker(shard):
        subqueue = queue.shards[shard]
        while len(subqueue):
            tenant, key, _t = yield queue.get(shard)
            taken.append((tenant, key))
            if record_shards is not None:
                record_shards.setdefault(tenant, set()).add(shard)
            queue.done(tenant, key)

    processes = [sim.process(worker(shard))
                 for shard in range(queue.num_shards)]
    for process in processes:
        sim.run(until=process)
    return taken


@given(add_sequences, shard_counts)
@settings(max_examples=150)
def test_sharded_every_unique_item_dispatched_exactly_once(adds, shards):
    sim = Simulation()
    queue = ShardedFairWorkQueue(sim, shards=shards)
    for tenant, key in adds:
        queue.add(tenant, key)
    taken = drain_sharded(queue, sim)
    assert sorted(set(taken)) == sorted(set(adds))
    assert len(taken) == len(set(taken))


@given(add_sequences, shard_counts)
@settings(max_examples=100)
def test_sharded_tenant_served_by_exactly_one_shard(adds, shards):
    sim = Simulation()
    queue = ShardedFairWorkQueue(sim, shards=shards)
    for tenant, key in adds:
        queue.add(tenant, key)
    served_by = {}
    drain_sharded(queue, sim, record_shards=served_by)
    for tenant, shard_set in served_by.items():
        assert len(shard_set) == 1
        (shard,) = shard_set
        assert shard == shard_hash(tenant) % shards


@given(add_sequences, shard_counts, st.integers(min_value=0, max_value=3))
@settings(max_examples=100)
def test_sharded_rebalance_preserves_items(adds, shards, dead):
    """Deactivating a shard re-routes its backlog: nothing lost, nothing
    duplicated, and the dead shard ends up empty."""
    sim = Simulation()
    queue = ShardedFairWorkQueue(sim, shards=shards)
    for tenant, key in adds:
        queue.add(tenant, key)
    dead %= shards
    queue.deactivate_shard(dead)
    if shards > 1:
        assert len(queue.shards[dead]) == 0
        assert dead not in queue.active_shards
    taken = drain_sharded(queue, sim)
    assert sorted(set(taken)) == sorted(set(adds))
    assert len(taken) == len(set(taken))


@given(st.integers(min_value=1, max_value=30),
       st.integers(min_value=1, max_value=30))
@settings(max_examples=50)
def test_sharded_wrr_bound_within_a_shard(greedy_count, regular_count):
    """Two equal-weight tenants forced onto the same shard keep the
    single-queue interleaving bound (greedy streak <= 2 while the
    regular tenant is backlogged)."""
    # Find two tenant names that collide under crc32 % 2.
    names = [f"tenant-{i}" for i in range(16)]
    shard0 = [name for name in names if shard_hash(name) % 2 == 0]
    greedy, regular = shard0[0], shard0[1]
    sim = Simulation()
    queue = ShardedFairWorkQueue(sim, shards=2)
    for i in range(greedy_count):
        queue.add(greedy, f"g{i}")
    for i in range(regular_count):
        queue.add(regular, f"r{i}")
    taken = drain_sharded(queue, sim)
    greedy_streak = 0
    regular_left = regular_count
    for tenant, _key in taken:
        if tenant == greedy:
            greedy_streak += 1
            if regular_left > 0:
                assert greedy_streak <= 2
        else:
            greedy_streak = 0
            regular_left -= 1


@given(add_sequences)
@settings(max_examples=100)
def test_single_shard_matches_unsharded_dispatch_order(adds):
    """shards=1 (the paper-faithful default) is byte-for-byte the
    unsharded queue: identical dispatch sequence, not just the same set."""
    sim_a, sim_b = Simulation(), Simulation()
    flat = FairWorkQueue(sim_a)
    sharded = ShardedFairWorkQueue(sim_b, shards=1)
    for tenant, key in adds:
        flat.add(tenant, key)
        sharded.add(tenant, key)
    assert drain_fair(flat, sim_a) == drain_sharded(sharded, sim_b)


def test_rebalance_after_chaos_worker_kill():
    """Reuses the repro.chaos WorkerCrash fault: a shard's worker is
    killed mid-drain, the shard is deactivated (rebalance), and the
    surviving shard's worker finishes every item exactly once."""
    import random
    from types import SimpleNamespace

    from repro.chaos.faults import WorkerCrash

    sim = Simulation()
    queue = ShardedFairWorkQueue(sim, shards=2)
    tenants = [f"tenant-{i}" for i in range(8)]
    added = set()
    for tenant in tenants:
        for i in range(10):
            queue.add(tenant, f"k{i}")
            added.add((tenant, f"k{i}"))
    per_shard = {shard: [t for t in tenants
                         if queue.shard_of(t) == shard] for shard in (0, 1)}
    assert per_shard[0] and per_shard[1], "need tenants on both shards"

    taken = []
    worker_processes = {}

    def worker(shard):
        from repro.simkernel.errors import Interrupt
        try:
            while True:
                tenant, key, _t = yield queue.get(shard)
                yield sim.timeout(0.01)  # hold the item so the kill lands
                taken.append((tenant, key))
                queue.done(tenant, key)
        except Interrupt:
            return  # chaos kill: die like a real syncer worker

    for shard in (0, 1):
        worker_processes[f"dws-{shard}"] = sim.process(worker(shard))

    fake_syncer = SimpleNamespace(name="sharded-syncer",
                                  worker_processes=worker_processes)
    crash = WorkerCrash(fake_syncer, count=1, labels=["dws-1"])
    crash.bind(sim, random.Random(7))

    sim.run(until=0.25)  # both workers mid-drain
    crash.inject()
    assert crash.workers_killed == 1
    queue.deactivate_shard(1)  # operator rebalance: shard 1 has no worker
    assert queue.active_shards == [0]
    assert queue.stats()["rebalances"] == 1

    while len(queue):
        sim.run(until=sim.now + 1.0)
    dispatched = set(taken)
    # At most the one item in flight on the killed worker may be missing
    # (its done() never ran; the periodic scanner remediates that case) —
    # every *pending* item survived the rebalance.
    missing = added - dispatched
    assert len(missing) <= 1
    assert len(taken) == len(dispatched)  # exactly-once for all dispatched
