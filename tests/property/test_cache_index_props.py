"""Property-based tests for ObjectCache secondary indexes.

DESIGN.md §9 replaces the syncer's linear cache scans with index
lookups; the safety argument is that *every* index query is equivalent
to the brute-force ``select()`` it replaced, under any interleaving of
``upsert``/``delete``/``replace``.  Hypothesis drives the cache through
random operation sequences and checks that equivalence after every
step, plus the bookkeeping invariants (postings never go stale, the
access counters attribute reads to the right path).
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.clientgo import INDEX_LABELS, INDEX_NAMESPACE, ObjectCache
from repro.objects import make_pod

NAMESPACES = ["ns-a", "ns-b", "ns-c"]
NAMES = [f"pod-{i}" for i in range(6)]
LABEL_KEYS = ["app", "tier"]
LABEL_VALUES = ["web", "db", "cache"]

labels_st = st.dictionaries(st.sampled_from(LABEL_KEYS),
                            st.sampled_from(LABEL_VALUES), max_size=2)
pod_st = st.builds(
    lambda ns, name, labels: _pod(ns, name, labels),
    st.sampled_from(NAMESPACES), st.sampled_from(NAMES), labels_st)

operation_st = st.one_of(
    st.tuples(st.just("upsert"), pod_st),
    st.tuples(st.just("delete"),
              st.sampled_from([f"{ns}/{name}" for ns in NAMESPACES
                               for name in NAMES])),
    st.tuples(st.just("replace"), st.lists(pod_st, max_size=8)),
)


def _pod(namespace, name, labels):
    pod = make_pod(name, namespace=namespace)
    pod.metadata.labels = dict(labels)
    return pod


def _apply(cache, operations):
    for op, arg in operations:
        if op == "upsert":
            cache.upsert(arg)
        elif op == "delete":
            cache.delete(arg)
        else:
            # replace() keeps the *last* object per key, like a relist.
            deduped = {obj.key: obj for obj in arg}
            cache.replace(list(deduped.values()))


def _brute_namespace(cache, namespace):
    return [obj for obj in cache._items.values()
            if obj.metadata.namespace == namespace]


def _brute_label(cache, key, value):
    return [obj for obj in cache._items.values()
            if (obj.metadata.labels or {}).get(key) == value]


def _keys(objs):
    return sorted(obj.key for obj in objs)


@given(st.lists(operation_st, max_size=40))
@settings(max_examples=200)
def test_namespace_index_matches_brute_force(operations):
    cache = ObjectCache()
    _apply(cache, operations)
    for namespace in NAMESPACES:
        assert _keys(cache.by_namespace(namespace)) == _keys(
            _brute_namespace(cache, namespace))


@given(st.lists(operation_st, max_size=40))
@settings(max_examples=200)
def test_label_index_matches_brute_force(operations):
    cache = ObjectCache()
    _apply(cache, operations)
    for key in LABEL_KEYS:
        for value in LABEL_VALUES:
            assert _keys(cache.by_label(key, value)) == _keys(
                _brute_label(cache, key, value))


@given(st.lists(operation_st, max_size=40), labels_st,
       st.one_of(st.none(), st.sampled_from(NAMESPACES)))
@settings(max_examples=200)
def test_select_labels_matches_brute_force(operations, selector, namespace):
    cache = ObjectCache()
    _apply(cache, operations)
    expected = [
        obj for obj in cache._items.values()
        if selector
        and all((obj.metadata.labels or {}).get(k) == v
                for k, v in selector.items())
        and (namespace is None or obj.metadata.namespace == namespace)
    ]
    got = cache.select_labels(selector, namespace=namespace)
    assert _keys(got) == _keys(expected)


@given(st.lists(operation_st, max_size=40))
@settings(max_examples=200)
def test_custom_index_matches_brute_force(operations):
    """A caller-registered index (the syncer's tenant index shape) stays
    consistent whether registered before or after the mutations."""
    def by_name_prefix(obj):
        return (obj.metadata.name.rsplit("-", 1)[0],)

    before = ObjectCache()
    before.add_index("prefix", by_name_prefix)
    after = ObjectCache()
    _apply(before, operations)
    _apply(after, operations)
    after.add_index("prefix", by_name_prefix)  # backfill path
    for value in ["pod", "other"]:
        brute = [obj for obj in before._items.values()
                 if by_name_prefix(obj)[0] == value]
        assert _keys(before.by_index("prefix", value)) == _keys(brute)
        assert (before.index_keys("prefix", value)
                == after.index_keys("prefix", value))


@given(st.lists(operation_st, max_size=40))
@settings(max_examples=100)
def test_postings_never_go_stale(operations):
    """Every posted key exists and still yields the posted value; every
    live object is findable through each of its index values."""
    cache = ObjectCache()
    _apply(cache, operations)
    for name, postings in cache._postings.items():
        func = cache._index_funcs[name]
        for value, keys in postings.items():
            for key in keys:
                assert key in cache._items
                assert value in tuple(func(cache._items[key]))
    for key, obj in cache._items.items():
        for name, func in cache._index_funcs.items():
            for value in tuple(func(obj)):
                assert key in cache._postings[name].get(value, ())


@given(st.lists(operation_st, min_size=1, max_size=20))
@settings(max_examples=50)
def test_access_counters_attribute_reads(operations):
    """Index queries never bump full_scans; select()/items() never bump
    index_lookups — the counters tests use to pin hot paths are honest."""
    cache = ObjectCache()
    _apply(cache, operations)
    cache.by_namespace("ns-a")
    cache.by_label("app", "web")
    cache.select_labels({"app": "web"})
    assert cache.full_scans == 0
    assert cache.index_lookups == 3
    cache.items()
    cache.select(lambda obj: True)
    assert cache.full_scans == 2
    assert cache.index_lookups == 3
