"""Shard-routing determinism: crc32 routing is bytes-deterministic.

The sharded fair queue routes tenants with ``crc32(tenant.encode())``
— a pure function of the tenant name's UTF-8 bytes, identical in every
Python process.  The golden values below were computed once and
committed: if ``shard_hash`` ever picks up process-dependent input
(``str()`` of an object, ``hash()``, ``id()``) or a different digest,
these pins fail — the "across process restarts" guarantee in test
form, since a fresh interpreter must reproduce the same constants.
"""

import zlib

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.clientgo import ShardedFairWorkQueue, shard_hash
from repro.simkernel import Simulation

# (tenant, crc32, shard at shards=2, shard at shards=4) — committed
# constants from a separate interpreter run; never recompute in-test.
GOLDEN = [
    ("tenant-0", 2364029289, 1, 1),
    ("tenant-1", 4226746879, 1, 3),
    ("tenant-2", 1659263045, 1, 1),
    ("alpha", 3504355690, 0, 2),
    ("beta", 2408645731, 1, 3),
    ("prod/team-a", 2449238821, 1, 1),
]


class TestGoldenRouting:
    @pytest.mark.parametrize("tenant,crc,shard2,shard4", GOLDEN)
    def test_shard_hash_pinned(self, tenant, crc, shard2, shard4):
        assert shard_hash(tenant) == crc
        assert shard_hash(tenant) % 2 == shard2
        assert shard_hash(tenant) % 4 == shard4

    @pytest.mark.parametrize("tenant,crc,shard2,shard4", GOLDEN)
    def test_queue_routes_by_pinned_hash(self, tenant, crc, shard2,
                                         shard4):
        queue = ShardedFairWorkQueue(Simulation(), shards=4)
        assert queue.shard_of(tenant) == shard4


class TestHashProperties:
    @given(st.text(min_size=1, max_size=40))
    def test_matches_crc32_of_utf8_bytes(self, tenant):
        assert shard_hash(tenant) == zlib.crc32(tenant.encode("utf-8"))

    @given(st.text(min_size=1, max_size=40))
    def test_stable_across_calls(self, tenant):
        assert shard_hash(tenant) == shard_hash(tenant)

    @given(st.text(min_size=1, max_size=40),
           st.integers(min_value=1, max_value=8))
    def test_routing_in_range(self, tenant, shards):
        assert 0 <= shard_hash(tenant) % shards < shards

    @pytest.mark.parametrize("bad", [None, 7, 3.5, b"tenant-0",
                                     ("tenant", 0), object()])
    def test_non_str_rejected(self, bad):
        """D006 guard: no silent str() fallback onto default reprs."""
        with pytest.raises(TypeError):
            shard_hash(bad)


class TestAssignmentStability:
    @given(st.lists(st.sampled_from(
        [t for t, _, _, _ in GOLDEN]), min_size=1, max_size=20))
    def test_two_fresh_queues_agree(self, tenants):
        """Same tenant stream → same shard map in a rebuilt queue,
        regardless of first-use order (restart simulation)."""
        forward = ShardedFairWorkQueue(Simulation(), shards=4)
        backward = ShardedFairWorkQueue(Simulation(), shards=4)
        for tenant in tenants:
            forward.shard_of(tenant)
        for tenant in reversed(tenants):
            backward.shard_of(tenant)
        for tenant in set(tenants):
            assert forward.shard_of(tenant) == backward.shard_of(tenant)
