"""Property-based tests for the scenario DSL (DESIGN.md §14).

Three invariants the golden corpus rests on:

1. **Round-trip**: ``loads(dumps(s)) == s`` for any valid scenario —
   the YAML layer adds or loses nothing, so a file pins exactly one
   model.
2. **Seed determinism**: compiling the same scenario twice yields
   byte-identical action plans (the pure half of the runner; without
   it, golden digests could never match).
3. **Integral accuracy**: for the continuous shapes, the number of
   compiled arrivals matches the integral of the declared rate curve to
   within one Pod (the documented quantization bound of the midpoint
   integrator) — declared rates are honest, not approximate.
"""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.scenarios import (
    BurstShape,
    ConstantShape,
    DiurnalShape,
    FlashCrowdShape,
    RollingUpgradeShape,
    Scenario,
    SequentialShape,
    TenantSpec,
    TopologySpec,
    PoolSpec,
    WorkloadSpec,
    compile_load,
    dumps,
    loads,
)
from repro.scenarios.shapes import INTEGRATION_STEP

rate_st = st.floats(min_value=0.1, max_value=8.0, allow_nan=False,
                    allow_infinity=False)
duration_st = st.floats(min_value=1.0, max_value=20.0, allow_nan=False,
                        allow_infinity=False)

constant_st = st.builds(ConstantShape, rate=rate_st, duration=duration_st)

diurnal_st = st.builds(
    lambda base, extra, period, duration: DiurnalShape(
        base_rate=base, peak_rate=base + extra, period=period,
        duration=duration),
    base=rate_st, extra=st.floats(min_value=0.0, max_value=6.0),
    period=st.floats(min_value=2.0, max_value=30.0),
    duration=duration_st)

flash_st = st.builds(
    lambda base, extra, at, ramp, hold: FlashCrowdShape(
        base_rate=base, peak_rate=base + extra, at=at, ramp=ramp,
        hold=hold, duration=at + 2 * ramp + hold + 1.0),
    base=rate_st, extra=st.floats(min_value=0.0, max_value=8.0),
    at=st.floats(min_value=0.0, max_value=6.0),
    ramp=st.floats(min_value=0.1, max_value=3.0),
    hold=st.floats(min_value=0.0, max_value=4.0))

burst_st = st.builds(BurstShape, count=st.integers(1, 50),
                     at=st.floats(min_value=0.0, max_value=5.0))

sequential_st = st.builds(SequentialShape, count=st.integers(1, 20),
                          think=st.floats(min_value=0.0, max_value=1.0))

rolling_st = st.builds(
    lambda count, rate, batch, interval, waves: RollingUpgradeShape(
        count=count, startup_rate=rate, batch=min(batch, count),
        interval=interval, waves=waves,
        first_wave=count / rate + 1.0),
    count=st.integers(2, 20),
    rate=st.floats(min_value=0.5, max_value=8.0),
    batch=st.integers(1, 6),
    interval=st.floats(min_value=0.5, max_value=5.0),
    waves=st.integers(0, 5))

any_shape_st = st.one_of(constant_st, diurnal_st, flash_st, burst_st,
                         sequential_st, rolling_st)
continuous_shape_st = st.one_of(constant_st, diurnal_st, flash_st)

name_st = st.from_regex(r"[a-z][a-z0-9-]{0,6}[a-z0-9]", fullmatch=True)


@st.composite
def scenario_st(draw):
    tenant_names = draw(st.lists(name_st, min_size=1, max_size=3,
                                 unique=True))
    tenants = []
    for tenant_name in tenant_names:
        workload_names = draw(st.lists(name_st, min_size=1, max_size=2,
                                       unique=True))
        workloads = [
            WorkloadSpec(
                workload_name, draw(any_shape_st),
                start=draw(st.floats(min_value=0.0, max_value=3.0)),
                jitter=draw(st.floats(min_value=0.0, max_value=0.2)))
            for workload_name in workload_names
        ]
        tenants.append(TenantSpec(
            tenant_name, weight=draw(st.integers(1, 8)),
            workloads=workloads))
    scenario = Scenario(
        name=draw(name_st), seed=draw(st.integers(0, 2**31)),
        horizon=500.0,  # generous: every generated window fits
        topology=TopologySpec(pools=[
            PoolSpec("pool", nodes=draw(st.integers(1, 8)))]),
        tenants=tenants)
    return scenario.validate()


class TestRoundTrip:
    @settings(max_examples=60, deadline=None)
    @given(scenario=scenario_st())
    def test_yaml_round_trip_is_identity(self, scenario):
        assert loads(dumps(scenario)) == scenario

    @settings(max_examples=60, deadline=None)
    @given(scenario=scenario_st())
    def test_dump_is_stable(self, scenario):
        text = dumps(scenario)
        assert dumps(loads(text)) == text


class TestSeedDeterminism:
    @settings(max_examples=40, deadline=None)
    @given(scenario=scenario_st())
    def test_compile_twice_identical(self, scenario):
        first = compile_load(scenario)
        second = compile_load(scenario)
        assert len(first) == len(second)
        for a, b in zip(first, second):
            assert (a.tenant, a.workload, a.start) == \
                (b.tenant, b.workload, b.start)
            assert a.actions == b.actions

    @settings(max_examples=20, deadline=None)
    @given(scenario=scenario_st(), other_seed=st.integers(0, 2**31))
    def test_round_tripped_scenario_compiles_identically(self, scenario,
                                                         other_seed):
        clone = loads(dumps(scenario))
        for a, b in zip(compile_load(scenario), compile_load(clone)):
            assert a.actions == b.actions


class TestIntegralAccuracy:
    @settings(max_examples=80, deadline=None)
    @given(shape=continuous_shape_st, seed=st.integers(0, 2**31))
    def test_arrival_count_matches_rate_integral(self, shape, seed):
        import random

        shape.validate("shape")
        actions, concurrent = shape.compile(random.Random(seed))
        assert not concurrent
        # Reference integral of the declared curve on a finer grid than
        # the compiler's, so quantization error stays on its side.
        step = INTEGRATION_STEP / 4.0
        steps = int(math.ceil(shape.duration / step))
        integral = 0.0
        for i in range(steps):
            t0 = i * step
            width = min(step, shape.duration - t0)
            integral += shape.rate_at(t0 + width / 2.0) * width
        # One whole Pod of quantization plus the fine-grid residue.
        assert abs(len(actions) - integral) <= 1.0 + 1e-6

    @settings(max_examples=40, deadline=None)
    @given(shape=continuous_shape_st, seed=st.integers(0, 2**31))
    def test_arrivals_sorted_and_in_window(self, shape, seed):
        import random

        actions, _concurrent = shape.compile(random.Random(seed))
        times = [when for when, _op, _index in actions]
        assert times == sorted(times)
        assert all(0.0 <= t <= shape.duration for t in times)
        assert [op for _w, op, _i in actions] == ["create"] * len(actions)
