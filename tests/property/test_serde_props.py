"""Property-based serde round-trips for randomly generated API objects."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.crd import make_virtual_cluster
from repro.core.syncer.conversion import tenant_origin, to_super
from repro.objects import Pod, Quantity, Service, make_pod, make_service

names = st.from_regex(r"[a-z][a-z0-9-]{0,20}[a-z0-9]", fullmatch=True)
namespaces = st.sampled_from(["default", "prod", "team-a"])
label_dicts = st.dictionaries(
    st.sampled_from(["app", "tier", "env", "ver"]),
    st.from_regex(r"[a-z0-9]{1,10}", fullmatch=True),
    max_size=4,
)
cpu_values = st.sampled_from(["100m", "250m", "1", "2", "1500m"])
memory_values = st.sampled_from(["64Mi", "128Mi", "1Gi", "512Mi"])


@st.composite
def pods(draw):
    pod = make_pod(draw(names), namespace=draw(namespaces),
                   labels=draw(label_dicts),
                   cpu=draw(cpu_values), memory=draw(memory_values))
    if draw(st.booleans()):
        pod.spec.node_selector = draw(label_dicts)
    if draw(st.booleans()):
        pod.spec.node_name = draw(names)
    if draw(st.booleans()):
        pod.status.phase = draw(st.sampled_from(
            ["Pending", "Running", "Succeeded", "Failed"]))
        pod.status.pod_ip = "10.0.0.1"
    return pod


@st.composite
def services(draw):
    return make_service(draw(names), namespace=draw(namespaces),
                        selector=draw(label_dicts),
                        port=draw(st.integers(1, 65535)))


@given(pods())
@settings(max_examples=200)
def test_pod_round_trip(pod):
    assert Pod.from_dict(pod.to_dict()) == pod


@given(pods())
@settings(max_examples=100)
def test_pod_copy_equals_original(pod):
    clone = pod.copy()
    assert clone == pod
    clone.metadata.labels["mutant"] = "x"
    assert clone != pod or "mutant" in (pod.metadata.labels or {})
    # Deep copy: mutation must not reach the original.
    assert "mutant" not in (pod.metadata.labels or {}) or \
        pod.metadata.labels is clone.metadata.labels


@given(services())
@settings(max_examples=100)
def test_service_round_trip(service):
    assert Service.from_dict(service.to_dict()) == service


@given(pods())
@settings(max_examples=100)
def test_double_round_trip_stable(pod):
    once = Pod.from_dict(pod.to_dict())
    twice = Pod.from_dict(once.to_dict())
    assert once.to_dict() == twice.to_dict()


@given(pods())
@settings(max_examples=100)
def test_requests_survive_round_trip_exactly(pod):
    again = Pod.from_dict(pod.to_dict())
    for original, restored in zip(pod.spec.containers,
                                  again.spec.containers):
        for name, quantity in original.resources.requests.items():
            assert restored.resources.requests[name] == \
                Quantity.parse(quantity)


@given(pods())
@settings(max_examples=100)
def test_to_super_round_trips_origin(pod):
    vc = make_virtual_cluster("acme")
    vc.metadata.uid = "uid-777"
    translated = to_super(pod, vc)
    origin = tenant_origin(translated)
    assert origin == (vc.key, pod.metadata.namespace, pod.metadata.name)
    # Translation is itself serializable.
    assert Pod.from_dict(translated.to_dict()) == translated
