"""Property-based tests for lease-based leader election (DESIGN.md §10).

The safety claim the whole HA design rests on: **at most one
LeaderElector considers itself leader of a given lease at any simulated
instant**, no matter how replicas crash, restart, stop gracefully,
partition, or heal, and regardless of renew jitter.  Hypothesis drives
a group of electors through random schedules of those events while a
monitor process samples the invariant on a fine grid; the fencing
tokens handed to ``on_started_leading`` must additionally be strictly
monotonic across the whole run (each term is a new, higher token).

Liveness is checked loosely: if the final stretch of the schedule
leaves at least one healthy contender alone long enough, somebody must
end up leading.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apiserver import ADMIN, APIServer
from repro.clientgo import Client, LEASE_NAMESPACE, LeaderElector
from repro.objects import make_namespace
from repro.simkernel import Simulation

N_ELECTORS = 3
LEASE_DURATION = 4.0
SAMPLE_INTERVAL = 0.05

ACTIONS = ["crash", "stop", "start", "partition", "heal"]

event_st = st.tuples(
    st.floats(min_value=0.1, max_value=5.0,
              allow_nan=False, allow_infinity=False),
    st.sampled_from(ACTIONS),
    st.integers(min_value=0, max_value=N_ELECTORS - 1),
)
schedule_st = st.lists(event_st, min_size=0, max_size=12)


def build(seed):
    sim = Simulation(seed=seed)
    api = APIServer(sim, "prop-api")
    sim.run(until=sim.process(
        api.create(ADMIN, make_namespace(LEASE_NAMESPACE))))
    terms = []
    electors = []
    for index in range(N_ELECTORS):
        identity = f"replica-{index}"
        client = Client(sim, api, ADMIN, user_agent=identity,
                        qps=10_000, burst=20_000)
        electors.append(LeaderElector(
            sim, client, "prop-lease", identity,
            lease_duration=LEASE_DURATION, renew_interval=1.5,
            retry_interval=0.4, jitter=0.3,
            on_started_leading=(
                lambda token, i=identity: terms.append((i, token)))))
    return sim, electors, terms


def apply_action(elector, action):
    if action == "crash":
        elector.crash()
    elif action == "stop":
        elector.stop(release=True)
    elif action == "start":
        elector.start()
    elif action == "partition":
        elector.partition(notice_delay=1.0)
    elif action == "heal":
        elector.heal()


@given(schedule=schedule_st, seed=st.integers(min_value=0, max_value=2**16))
@settings(max_examples=30, deadline=None)
def test_at_most_one_leader_at_any_instant(schedule, seed):
    sim, electors, terms = build(seed)
    violations = []
    horizon = sum(delay for delay, _, _ in schedule) + 4 * LEASE_DURATION

    def monitor():
        while sim.now < horizon:
            leaders = [e.identity for e in electors if e.is_leader]
            if len(leaders) > 1:
                violations.append((sim.now, leaders))
            yield sim.timeout(SAMPLE_INTERVAL)

    def driver():
        for delay, action, index in schedule:
            yield sim.timeout(delay)
            apply_action(electors[index], action)
        # Settle phase: heal and restart everybody so liveness holds.
        for elector in electors:
            elector.heal()
            elector.start()

    for elector in electors:
        elector.start()
    sim.spawn(monitor(), name="monitor")
    sim.spawn(driver(), name="driver")
    sim.run(until=horizon)

    # Safety: mutual exclusion held at every sampled instant.
    assert not violations, f"multiple leaders observed: {violations[:3]}"

    # Safety: fencing tokens are strictly monotonic across terms — a
    # later leader can always fence out a deposed one in storage.
    tokens = [token for _, token in terms]
    assert tokens == sorted(tokens)
    assert len(set(tokens)) == len(tokens)

    # Liveness: after the settle phase every replica is healthy and
    # contending, so the lease must have a live holder by the horizon.
    assert any(e.is_leader for e in electors)
