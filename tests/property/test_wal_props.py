"""Property-based tests for the write-ahead log (DESIGN.md §13).

Two invariants carry the durability story:

- **Replay is idempotent and order-preserving**: recovering a store
  from its WAL reproduces exactly the state the mutations built, and
  recovering again changes nothing.
- **Crash at any record boundary recovers a committed prefix**: however
  many records were fsynced when the power went out — and even with the
  last one torn mid-write — recovery yields the state after the first
  K committed mutations, never a torn suffix or a gap.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.simkernel import Simulation
from repro.storage import (
    EtcdStore,
    KeyAlreadyExists,
    KeyNotFound,
    WriteAheadLog,
)

keys = st.sampled_from([f"/registry/pods/ns/{c}" for c in "abcde"])
values = st.dictionaries(st.sampled_from(["x", "y"]),
                         st.integers(0, 9), max_size=2)
operations = st.lists(
    st.tuples(st.sampled_from(["create", "update", "delete"]), keys, values),
    min_size=1, max_size=30,
)


def make_store(fsync_interval=0.0):
    sim = Simulation(seed=0)
    wal = WriteAheadLog(sim, "props", segment_records=4,
                        fsync_interval=fsync_interval)
    return EtcdStore(sim, name="props", wal=wal)


def apply_one(store, op, key, value):
    """Apply one mutation; returns True when the store changed."""
    try:
        if op == "create":
            store.create(key, value)
        elif op == "update":
            store.update(key, value)
        else:
            store.delete(key)
        return True
    except (KeyAlreadyExists, KeyNotFound):
        return False


def model_states(ops):
    """The model dict after each *effective* mutation (prefix states).

    ``states[k]`` is the expected store content once exactly the first
    ``k`` committed records have been replayed; ``states[0]`` is empty.
    """
    model = {}
    scratch = make_store()
    states = [dict(model)]
    for op, key, value in ops:
        if apply_one(scratch, op, key, value):
            if op == "delete":
                model.pop(key, None)
            else:
                model[key] = value
            states.append(dict(model))
    return states


def store_content(store):
    items, _revision = store.list_prefix("/registry/pods/")
    return {key: value for key, value, _rev in items}


@given(operations)
@settings(max_examples=100, deadline=None)
def test_wal_replay_is_idempotent_and_order_preserving(ops):
    store = make_store()
    for op, key, value in ops:
        apply_one(store, op, key, value)
    expected = store_content(store)
    revision = store.revision

    store.power_off()
    if revision == 0:
        # No mutation took effect: the log is empty and recovery says so.
        from repro.storage import CompactedError
        import pytest

        with pytest.raises(CompactedError):
            store.recover_from_wal()
        return
    assert store.recover_from_wal() == revision
    assert store_content(store) == expected
    # Idempotence: a second replay of the same log is a no-op.
    assert store.recover_from_wal() == revision
    assert store_content(store) == expected


@given(operations, st.integers(min_value=0, max_value=30),
       st.booleans())
@settings(max_examples=100, deadline=None)
def test_crash_at_any_boundary_recovers_committed_prefix(ops, synced, torn):
    """Sync the first ``synced`` records, optionally tear the last
    synced one, kill -9 — recovery must equal the model state after
    the committed prefix, never a torn suffix."""
    store = make_store(fsync_interval=1e9)  # manual fsync only
    for op, key, value in ops:
        apply_one(store, op, key, value)
        if store.wal.record_count == synced:
            store.wal.sync()
    states = model_states(ops)
    total = len(states) - 1
    # The one sync fires only when the log reaches exactly ``synced``
    # records; a larger target means the power died before any fsync.
    committed = synced if synced <= total else 0

    store.power_off()  # volatile tail gone (never reached the disk)
    if torn and committed > 0:
        # The last record that *did* hit the disk was torn mid-write.
        store.wal.tear_tail()
        committed -= 1
    if committed == 0:
        # Nothing durable: recovery reports an empty/gapped log and the
        # store stays empty.
        from repro.storage import CompactedError

        try:
            store.recover_from_wal()
        except CompactedError:
            store.wipe()
        assert store_content(store) == {}
        return
    store.recover_from_wal()
    assert store_content(store) == states[committed], (
        f"crash after {committed} committed records did not recover "
        f"that exact prefix")
    assert store.revision == committed


@given(operations)
@settings(max_examples=50, deadline=None)
def test_recovery_after_anchor_preserves_full_state(ops):
    """Snapshot-anchored compaction never loses post-anchor records."""
    store = make_store()
    half = max(1, len(ops) // 2)
    for op, key, value in ops[:half]:
        apply_one(store, op, key, value)
    store.anchor_wal(store.snapshot())
    for op, key, value in ops[half:]:
        apply_one(store, op, key, value)
    expected = store_content(store)
    revision = store.revision
    store.power_off()
    assert store.recover_from_wal() == revision
    assert store_content(store) == expected
