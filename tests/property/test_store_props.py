"""Property-based tests: the etcd store versus a model dictionary, and
watch-replay equivalence."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.simkernel import Simulation
from repro.storage import (
    EVENT_DELETE,
    EtcdStore,
    KeyAlreadyExists,
    KeyNotFound,
)

keys = st.sampled_from([f"/registry/pods/ns/{c}" for c in "abcde"])
values = st.dictionaries(st.sampled_from(["x", "y"]),
                         st.integers(0, 9), max_size=2)
operations = st.lists(
    st.tuples(st.sampled_from(["create", "update", "delete"]), keys, values),
    min_size=1, max_size=40,
)


def apply_ops(store, ops, model=None):
    """Apply ops to the store; mirror effects into a plain dict model."""
    model = {} if model is None else model
    for op, key, value in ops:
        if op == "create":
            try:
                store.create(key, value)
                model[key] = value
            except KeyAlreadyExists:
                assert key in model
        elif op == "update":
            try:
                store.update(key, value)
                model[key] = value
            except KeyNotFound:
                assert key not in model
        else:
            try:
                store.delete(key)
                del model[key]
            except KeyNotFound:
                assert key not in model
    return model


@given(operations)
@settings(max_examples=200)
def test_store_matches_model(ops):
    store = EtcdStore(Simulation())
    model = apply_ops(store, ops)
    items, _revision = store.list_prefix("/registry/pods/")
    assert {key: value for key, value, _rev in items} == model


@given(operations)
@settings(max_examples=100)
def test_revisions_strictly_increase(ops):
    store = EtcdStore(Simulation())
    seen = []
    watch = store.watch("/registry/")
    apply_ops(store, ops)
    while len(watch.channel):
        event = watch.channel._items.popleft()
        seen.append(event.revision)
    assert seen == sorted(set(seen))


@given(operations, st.integers(min_value=0, max_value=20))
@settings(max_examples=100)
def test_watch_replay_equals_live_watch(ops, split):
    """Watching from revision R replays exactly the events a live watcher
    registered at R would have seen."""
    split = min(split, len(ops))
    store = EtcdStore(Simulation())
    model = apply_ops(store, ops[:split])
    checkpoint = store.revision

    live = store.watch("/registry/pods/")
    apply_ops(store, ops[split:], model=model)

    replayed = store.watch("/registry/pods/", from_revision=checkpoint)
    live_events = [(e.type, e.key, e.revision)
                   for e in list(live.channel._items)]
    replay_events = [(e.type, e.key, e.revision)
                     for e in list(replayed.channel._items)]
    assert live_events == replay_events


@given(operations)
@settings(max_examples=100)
def test_final_state_reconstructible_from_watch(ops):
    """Applying the full event stream to an empty dict reproduces the
    final store contents (the invariant reflectors rely on)."""
    store = EtcdStore(Simulation())
    watch = store.watch("/registry/pods/")
    model = apply_ops(store, ops)

    rebuilt = {}
    for event in list(watch.channel._items):
        if event.type == EVENT_DELETE:
            rebuilt.pop(event.key, None)
        else:
            rebuilt[event.key] = event.value
    assert rebuilt == model
