"""Property-based tests for telemetry invariants.

The registry's correctness arguments: a label set identifies exactly one
child regardless of keyword order, histogram cumulative bucket counts
are monotone with the total in the +Inf bucket, counters never decrease,
and snapshots are a pure function of the recorded events (same events →
byte-identical JSON export).
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.telemetry import MetricsRegistry
from repro.telemetry.export import render_json

label_values = st.sampled_from(["a", "b", "c", "d"])
observations = st.lists(
    st.floats(min_value=0.0, max_value=100.0,
              allow_nan=False, allow_infinity=False),
    min_size=0, max_size=60)


@given(st.lists(st.tuples(label_values, label_values),
                min_size=1, max_size=40))
@settings(max_examples=200)
def test_label_set_identity(pairs):
    """Equal label values resolve to the same child; distinct values to
    distinct children — inc-ing through any alias sums correctly."""
    registry = MetricsRegistry()
    family = registry.counter("c_total", labels=("x", "y"))
    for x, y in pairs:
        # Keyword order must not matter.
        assert family.labels(x=x, y=y) is family.labels(y=y, x=x)
        family.labels(x=x, y=y).inc()
    assert family.total() == len(pairs)
    assert len(family.children()) == len(set(pairs))
    for (x, y), count in _counts(pairs).items():
        assert family.labels(x=x, y=y).value == count


def _counts(pairs):
    out = {}
    for pair in pairs:
        out[pair] = out.get(pair, 0) + 1
    return out


@given(observations)
@settings(max_examples=200)
def test_histogram_buckets_monotone_and_complete(values):
    registry = MetricsRegistry()
    hist = registry.histogram("h_seconds")._solo()
    for value in values:
        hist.observe(value)
    cumulative = hist.cumulative()
    assert all(a <= b for a, b in zip(cumulative, cumulative[1:]))
    assert cumulative[-1] == len(values)  # +Inf holds every observation
    assert hist.count == len(values)
    assert abs(hist.sum - sum(values)) < 1e-6


@given(st.lists(st.floats(min_value=0.0, max_value=1000.0,
                          allow_nan=False, allow_infinity=False),
                min_size=0, max_size=60))
@settings(max_examples=200)
def test_counter_never_decreases(increments):
    registry = MetricsRegistry()
    counter = registry.counter("c_total")._solo()
    last = 0.0
    for amount in increments:
        counter.inc(amount)
        assert counter.value >= last
        last = counter.value


@given(st.lists(st.tuples(label_values, st.integers(min_value=1,
                                                    max_value=5)),
                min_size=0, max_size=30))
@settings(max_examples=100)
def test_snapshot_is_pure_function_of_events(events):
    """Replaying the same event sequence into two registries yields
    byte-identical JSON exports."""

    def build():
        registry = MetricsRegistry(clock=lambda: 7.0)
        counter = registry.counter("ops_total", labels=("op",))
        hist = registry.histogram("dur_seconds", labels=("op",))
        for op, amount in events:
            counter.labels(op=op).inc(amount)
            hist.labels(op=op).observe(float(amount))
        return render_json(registry.snapshot())

    assert build() == build()
