"""End-to-end tests for the analysis suite against the full system.

Acceptance anchors for the static-analysis PR:

* a full default-config :class:`VirtualClusterEnv` run under the race
  detector reports **zero** conflicts (every cross-control-plane write
  is CAS-serialized or event-ordered);
* same-seed runs are byte-identical at the store-event level, and a
  deliberately perturbed run is bisected to its exact first divergent
  event with component attribution;
* the linter CLI exits clean over ``src/`` with the committed
  allowlist (the ``lint``-marked smoke test mirrors
  ``scripts/tier1.sh --lint``).
"""

from pathlib import Path

import pytest

from repro.analysis.__main__ import main as analysis_main
from repro.analysis.bisect import bisect_seed
from repro.analysis.racedetect import run_under_detector

REPO_ROOT = Path(__file__).resolve().parents[2]


class TestRaceDetectorFullEnv:
    def test_default_config_run_has_zero_conflicts(self):
        detector = run_under_detector(seed=0, horizon=20.0)
        assert detector.ok, detector.report()
        assert detector.conflicts == []

    def test_detector_saw_the_whole_deployment(self):
        """The clean verdict covers real work, not an idle sim."""
        detector = run_under_detector(seed=0, horizon=20.0)
        # Dozens of processes registered (syncer workers, kubelets,
        # controllers) — a handful would mean instrumentation fell off.
        assert len(detector._clocks) > 50

    def test_second_seed_also_clean(self):
        detector = run_under_detector(seed=7, horizon=15.0)
        assert detector.ok, detector.report()


class TestReplayDeterminismFullEnv:
    def test_same_seed_runs_are_byte_identical(self):
        divergence, run_a, run_b = bisect_seed(0, horizon=15.0)
        assert divergence is None
        assert run_a.final_digest == run_b.final_digest
        assert len(run_a.digests) > 50  # real workload, not an idle sim

    def test_perturbed_run_bisected_to_first_event(self):
        """Flipping one dispatch order mid-run is localized exactly."""
        clean, run_a, _ = bisect_seed(0, horizon=15.0)
        assert clean is None
        divergence, _, run_p = bisect_seed(0, horizon=15.0, perturb=200)
        assert divergence is not None
        # Exact localization: every event before the divergence index
        # is identical across runs, the one at it differs.
        index = divergence.index
        assert run_a.digests[:index] == run_p.digests[:index]
        assert run_a.digests[index] != run_p.digests[index]
        assert divergence.component  # attributed to a sim process


class TestChaosIntegration:
    def test_chaos_check_determinism_ok(self):
        from repro.chaos.__main__ import check_determinism

        assert check_determinism(seed=3, horizon=15.0,
                                 convergence_timeout=120.0)

    def test_chaos_detect_races_clean(self):
        from repro.chaos.__main__ import run

        converged, engine = run(seed=3, horizon=15.0, detect_races=True,
                                convergence_timeout=120.0)
        assert converged
        assert engine.env.sim.race_detector.ok


@pytest.mark.lint
class TestLintCli:
    def test_lint_src_clean_with_committed_allowlist(self):
        """Mirror of ``scripts/tier1.sh --lint``: src/ lints clean."""
        exit_code = analysis_main([
            "lint", str(REPO_ROOT / "src"), "--strict",
            "--allowlist", str(REPO_ROOT / "analysis-allowlist.txt")])
        assert exit_code == 0

    def test_lint_finds_planted_violation(self, tmp_path, capsys):
        bad = tmp_path / "bad.py"
        bad.write_text("import time\nnow = time.time()\n")
        exit_code = analysis_main(["lint", str(bad)])
        assert exit_code == 2
        out = capsys.readouterr().out
        assert "D001" in out

    def test_rules_subcommand_lists_catalog(self, capsys):
        assert analysis_main(["rules"]) == 0
        out = capsys.readouterr().out
        for code in ("D001", "D002", "D003", "D004", "D005", "D006"):
            assert code in out


class TestAnalysisCliRuns:
    def test_race_subcommand_clean_exit(self):
        assert analysis_main([
            "race", "--seed", "0", "--horizon", "10"]) == 0

    def test_bisect_subcommand_deterministic_exit(self):
        assert analysis_main([
            "bisect", "--seed", "0", "--horizon", "10"]) == 0

    def test_bisect_subcommand_perturbed_exit(self, capsys):
        exit_code = analysis_main([
            "bisect", "--seed", "0", "--horizon", "15",
            "--perturb", "200"])
        assert exit_code == 2
        out = capsys.readouterr().out
        assert "diverg" in out.lower()
