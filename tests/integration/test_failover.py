"""HA failover and crash recovery end to end (DESIGN.md §10).

Hot-standby syncer takeover after a leader kill, storage fencing
against the deposed leader, tenant control-plane crash restored from
its etcd snapshot, and the deprovision hook tearing down syncer state
no matter how the deletion arrived.
"""

import pytest

from repro.apiserver import ADMIN, FencingConflict
from repro.core import VirtualClusterEnv


@pytest.fixture
def ha_env():
    environment = VirtualClusterEnv(
        num_virtual_nodes=3, scan_interval=5.0, syncer_replicas=2)
    environment.bootstrap()
    return environment


@pytest.fixture
def ha_tenant(ha_env):
    return ha_env.run_coroutine(ha_env.create_tenant("acme"))


class TestHotStandbyFailover:
    def test_standby_takes_over_after_leader_crash(self, ha_env, ha_tenant):
        ha = ha_env.syncer_ha
        ha_env.run_until(lambda: ha.active is not None, timeout=30)
        old_leader = ha.active
        ha_env.run_coroutine(ha_tenant.create_pod("web-1"))
        ha_env.run_until_pods_ready(ha_tenant, ["default/web-1"])

        victim = ha.kill_leader(mode="crash")
        assert victim is old_leader
        ha_env.run_until(lambda: ha.active is not None, timeout=60)
        assert ha.active is not old_leader
        assert len(ha.failovers) >= 2  # initial election + this takeover
        record = ha.failovers[-1]
        assert record["identity"] == ha.active.name
        assert record["mttr"] is not None and record["mttr"] > 0

        # The new leader serves: a pod created after the kill converges.
        ha_env.run_coroutine(ha_tenant.create_pod("web-2"))
        ha_env.run_until_pods_ready(ha_tenant, ["default/web-2"],
                                    timeout=120)

    def test_warm_standby_takeover_sync_is_fast(self, ha_env, ha_tenant):
        ha = ha_env.syncer_ha
        ha_env.run_until(lambda: ha.active is not None, timeout=30)
        ha.kill_leader(mode="crash")
        ha_env.run_until(lambda: ha.active is not None, timeout=60)
        record = ha.failovers[-1]
        # Warm caches: the winner needs no full relist before serving.
        assert record["sync_seconds"] < 1.0

    def test_killed_replica_can_rejoin_as_standby(self, ha_env, ha_tenant):
        ha = ha_env.syncer_ha
        ha_env.run_until(lambda: ha.active is not None, timeout=30)
        victim = ha.kill_leader(mode="crash")
        ha_env.run_until(lambda: ha.active is not None, timeout=60)
        ha.restart_replica(victim)
        ha_env.run_for(5.0)
        # Rejoined as a warm standby, not a second leader.
        assert ha.active is not victim
        assert ha.elector_for(victim).is_leader is False
        # Kill again: the rejoined replica must win this time.
        ha.kill_leader(mode="crash")
        ha_env.run_until(lambda: ha.active is victim, timeout=60)


class TestFencing:
    def test_deposed_leader_token_is_fenced_out(self, ha_env, ha_tenant):
        ha = ha_env.syncer_ha
        ha_env.run_until(lambda: ha.active is not None, timeout=30)
        deposed = ha.active
        old_fence = deposed.current_fence()
        assert old_fence is not None

        # Partition, don't crash: the deposed leader keeps "working"
        # with its stale token while the standby takes over.
        ha.kill_leader(mode="partition", notice_delay=3.0)
        ha_env.run_until(
            lambda: ha.active is not None and ha.active is not deposed,
            timeout=60)

        new_fence = ha.active.current_fence()
        assert new_fence[1] > old_fence[1]
        # Any write still in flight from the deposed leader dies at the
        # storage fence (the new leader's barrier raised the floor).
        api = ha_env.super_cluster.api
        with pytest.raises(FencingConflict):
            ha_env.run_coroutine(
                api.transaction(ADMIN, [], fencing=old_fence))
        assert api.store.fencing_rejections >= 1


class TestControlPlaneCrashRecovery:
    def test_crash_is_restored_from_snapshot(self, ha_env, ha_tenant):
        operator = ha_env.tenant_operator
        key = ha_tenant.key
        ha_env.run_coroutine(ha_tenant.create_pod("web-1"))
        ha_env.run_until_pods_ready(ha_tenant, ["default/web-1"])
        assert operator.snapshot_now(key) is not None

        assert operator.crash_control_plane(key)
        ha_env.run_until(lambda: operator.restores_total == 1, timeout=60)

        # The snapshotted pod survived the total data loss.
        pod = ha_env.run_coroutine(ha_tenant.get_pod("web-1"))
        assert pod is not None
        # The restored control plane serves new work: reflectors relist
        # across the restore and the syncer pushes the pod downward.
        ha_env.run_coroutine(ha_tenant.create_pod("web-2"))
        ha_env.run_until_pods_ready(ha_tenant, ["default/web-2"],
                                    timeout=120)

    def test_crash_before_any_snapshot_restores_empty(self, ha_env,
                                                      ha_tenant):
        operator = ha_env.tenant_operator
        key = ha_tenant.key
        assert key not in operator.snapshots
        assert operator.crash_control_plane(key)
        ha_env.run_until(lambda: operator.restores_total == 1, timeout=60)
        # No snapshot existed: the control plane comes back empty but
        # healthy, and still serves new work.
        ha_env.run_coroutine(ha_tenant.create_namespace("default"))
        ha_env.run_coroutine(ha_tenant.create_pod("fresh"))
        ha_env.run_until_pods_ready(ha_tenant, ["default/fresh"],
                                    timeout=120)

    def test_crashed_control_plane_is_not_snapshotted(self, ha_env,
                                                      ha_tenant):
        operator = ha_env.tenant_operator
        key = ha_tenant.key
        operator.snapshot_now(key)
        good = operator.snapshots[key]
        operator.crash_control_plane(key)
        # A periodic snapshot pass must not capture the wiped store.
        operator.snapshot_all()
        assert operator.snapshots[key] is good


class TestDeprovisionHook:
    def test_direct_vc_delete_tears_down_syncer_state(self, ha_env,
                                                      ha_tenant):
        """Regression: deleting the VC at the super apiserver (not via
        env.delete_tenant) must still reach Syncer.drop_tenant through
        the operator's on_deprovisioned hook."""
        key = ha_tenant.key
        assert key in ha_env.syncer.tenants
        admin = ha_env.super_admin_client()
        ha_env.run_coroutine(admin.delete(
            "virtualclusters", ha_tenant.name, namespace="vc-manager"))

        def torn_down():
            return (key not in ha_env.syncer.tenants
                    and key not in ha_env.tenants)

        ha_env.run_until(torn_down, timeout=60)
        # Every replica dropped the tenant, not just the leader.
        for replica in ha_env.syncer_ha.replicas:
            assert key not in replica.tenants
