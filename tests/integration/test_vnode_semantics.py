"""vNode semantics (paper Fig. 6): one vNode per physical node, so node
scheduling constraints remain visible to the tenant — unlike virtual
kubelet, which collapses everything onto one synthetic node object."""

from repro.objects import make_pod, with_anti_affinity


class TestVNodeLifecycle:
    def test_vnode_appears_when_pod_binds(self, env, tenant):
        nodes, _rv = env.run_coroutine(tenant.client.list("nodes"))
        assert nodes == []  # no pods yet -> no vNodes
        env.run_coroutine(tenant.create_pod("web"))
        env.run_until_pods_ready(tenant, ["default/web"], timeout=60)
        nodes, _rv = env.run_coroutine(tenant.client.list("nodes"))
        assert len(nodes) == 1

    def test_vnode_removed_when_last_pod_gone(self, env, tenant):
        env.run_coroutine(tenant.create_pod("only"))
        env.run_until_pods_ready(tenant, ["default/only"], timeout=60)
        env.run_coroutine(
            tenant.client.delete("pods", "only", namespace="default"))

        def no_vnodes():
            nodes, _rv = env.run_coroutine(tenant.client.list("nodes"))
            return nodes == []

        env.run_until(no_vnodes, timeout=30)

    def test_vnode_survives_while_other_pod_bound(self, env, tenant):
        def create_two():
            yield from tenant.create_pod("a")
            yield from tenant.create_pod("b")

        env.run_coroutine(create_two())
        env.run_until_pods_ready(tenant, ["default/a", "default/b"],
                                 timeout=60)
        pod_a = env.run_coroutine(tenant.get_pod("a"))
        pod_b = env.run_coroutine(tenant.get_pod("b"))
        if pod_a.spec.node_name != pod_b.spec.node_name:
            return  # scheduler spread them; nothing shared to test
        env.run_coroutine(
            tenant.client.delete("pods", "a", namespace="default"))
        env.run_for(5)
        nodes, _rv = env.run_coroutine(tenant.client.list("nodes"))
        assert pod_b.spec.node_name in {node.name for node in nodes}

    def test_vnode_mirrors_physical_node_identity(self, env, tenant):
        env.run_coroutine(tenant.create_pod("web"))
        env.run_until_pods_ready(tenant, ["default/web"], timeout=60)
        pod = env.run_coroutine(tenant.get_pod("web"))
        vnode = env.run_coroutine(
            tenant.client.get("nodes", pod.spec.node_name))
        admin = env.super_admin_client()
        physical = env.run_coroutine(
            admin.get("nodes", pod.spec.node_name))
        assert vnode.name == physical.name
        assert vnode.status.capacity == physical.status.capacity
        # The vNode points at the vn-agent port, not the kubelet port.
        port = vnode.status.daemon_endpoints["kubeletEndpoint"]["Port"]
        assert port == env.syncer.vn_agent_port

    def test_heartbeats_reach_vnodes(self, env, tenant):
        env.syncer.vnodes.heartbeat_interval = 2.0
        env.run_coroutine(tenant.create_pod("web"))
        env.run_until_pods_ready(tenant, ["default/web"], timeout=60)
        env.run_for(6)
        assert env.syncer.vnodes.heartbeats_sent >= 1
        pod = env.run_coroutine(tenant.get_pod("web"))
        vnode = env.run_coroutine(
            tenant.client.get("nodes", pod.spec.node_name))
        ready = vnode.status.get_condition("Ready")
        assert ready is not None and ready.last_heartbeat_time is not None


class TestFig6AntiAffinity:
    def test_anti_affine_pods_visibly_on_distinct_vnodes(self, env, tenant):
        """Fig. 6(a): the tenant can *observe* that the anti-affinity
        constraint held, because the two pods are bound to two different
        vNodes that each map to a real physical node."""
        pod_a = make_pod("pod-a", labels={"app": "critical"})
        pod_b = with_anti_affinity(
            make_pod("pod-b", labels={"app": "critical"}),
            "app", "critical")

        def create():
            yield from tenant.client.create(pod_a)
            yield from tenant.client.create(pod_b)

        env.run_coroutine(create())
        env.run_until_pods_ready(tenant, ["default/pod-a", "default/pod-b"],
                                 timeout=60)
        bound_a = env.run_coroutine(tenant.get_pod("pod-a"))
        bound_b = env.run_coroutine(tenant.get_pod("pod-b"))
        assert bound_a.spec.node_name != bound_b.spec.node_name
        nodes, _rv = env.run_coroutine(tenant.client.list("nodes"))
        names = {node.name for node in nodes}
        assert {bound_a.spec.node_name, bound_b.spec.node_name} <= names

    def test_virtual_kubelet_contrast_single_node_view(self):
        """Fig. 6(b): with a plain virtual kubelet both pods land on the
        same synthetic node object, so the constraint is invisible."""
        from repro.apiserver import ADMIN, APIServer
        from repro.clientgo import Client, InformerFactory
        from repro.config import DEFAULT_CONFIG
        from repro.objects import make_namespace
        from repro.simkernel import Simulation
        from repro.virtualkubelet import VirtualKubelet

        sim = Simulation()
        api = APIServer(sim, "vk-only")
        client = Client(sim, api, ADMIN, qps=100000, burst=100000)
        informers = InformerFactory(sim, client)
        vk = VirtualKubelet(sim, "the-one-vk", client, DEFAULT_CONFIG,
                            informers)

        def setup():
            yield from client.create(make_namespace("default"))
            yield from vk.start()
            # Both pods are force-bound to the single vk node — there is
            # no second node object for anti-affinity to separate them.
            yield from client.create(make_pod("pod-a",
                                              node_name="the-one-vk"))
            yield from client.create(make_pod("pod-b",
                                              node_name="the-one-vk"))

        sim.run(until=sim.process(setup()))
        sim.run(until=sim.now + 3)

        def fetch():
            items, _rv = yield from client.list("pods",
                                                namespace="default")
            return items

        pods = sim.run(until=sim.process(fetch()))
        assert {pod.spec.node_name for pod in pods} == {"the-one-vk"}
