"""Tenant isolation: the control-plane problems of Fig. 1, solved."""

from repro.apiserver import NotFound, Unauthorized
from repro.core.crd import cluster_prefix


class TestControlPlaneIsolation:
    def test_tenants_get_distinct_control_planes(self, env, two_tenants):
        a, b = two_tenants
        assert a.control_plane is not b.control_plane
        assert a.control_plane.api.store is not b.control_plane.api.store

    def test_namespace_listing_shows_only_own_namespaces(self, env,
                                                         two_tenants):
        """The paper's motivating API gap: the namespace List API cannot
        filter by tenant in shared Kubernetes — with dedicated control
        planes each tenant only ever sees its own."""
        a, b = two_tenants
        env.run_coroutine(a.create_namespace("acme-secret-project"))
        namespaces, _rv = env.run_coroutine(b.client.list("namespaces"))
        names = {namespace.name for namespace in namespaces}
        assert "acme-secret-project" not in names

    def test_tenant_objects_invisible_to_other_tenant(self, env,
                                                      two_tenants):
        a, b = two_tenants
        env.run_coroutine(a.create_pod("private-pod"))
        try:
            env.run_coroutine(b.get_pod("private-pod"))
            raise AssertionError("tenant B saw tenant A's pod")
        except NotFound:
            pass

    def test_same_names_do_not_collide_in_super(self, env, two_tenants):
        """Both tenants create default/web; the namespace prefix keeps the
        super-cluster names unique (paper §III-B(2))."""
        a, b = two_tenants
        env.run_coroutine(a.create_pod("web"))
        env.run_coroutine(b.create_pod("web"))
        env.run_until_pods_ready(a, ["default/web"], timeout=60)
        env.run_until_pods_ready(b, ["default/web"], timeout=60)
        admin = env.super_admin_client()
        pods, _rv = env.run_coroutine(admin.list("pods", namespace=None))
        web_pods = [pod for pod in pods if pod.name == "web"]
        assert len(web_pods) == 2
        namespaces = {pod.namespace for pod in web_pods}
        assert len(namespaces) == 2
        for namespace in namespaces:
            assert namespace.startswith(("acme-", "globex-"))

    def test_tenant_cannot_access_super_cluster(self, env, tenant):
        credential = tenant.credential
        admin_api = env.super_cluster.api

        def attempt():
            return (yield from admin_api.list(credential, "pods",
                                              namespace=None))

        try:
            env.run_coroutine(attempt())
            raise AssertionError("tenant credential worked on super cluster")
        except Unauthorized:
            pass

    def test_tenant_crd_does_not_leak_to_other_tenant(self, env,
                                                      two_tenants):
        from repro.objects import CustomResourceDefinition

        a, b = two_tenants
        crd = CustomResourceDefinition()
        crd.metadata.name = "widgets.acme.io"
        crd.spec.group = "acme.io"
        crd.spec.names.kind = "Widget"
        crd.spec.names.plural = "widgets"
        env.run_coroutine(a.client.create(crd))
        a.control_plane.api.registry.register_crd(crd)
        assert not b.control_plane.api.registry.has("widgets")
        crds, _rv = env.run_coroutine(
            b.client.list("customresourcedefinitions"))
        assert crds == []

    def test_cluster_prefix_is_per_vc_unique(self, env, two_tenants):
        a, b = two_tenants
        assert cluster_prefix(a.vc) != cluster_prefix(b.vc)

    def test_control_plane_crash_blast_radius_is_one_tenant(self, env,
                                                            two_tenants):
        a, b = two_tenants
        a.control_plane.api.crash()
        # Tenant B is unaffected.
        env.run_coroutine(b.create_pod("survivor"))
        env.run_until_pods_ready(b, ["default/survivor"], timeout=60)
        a.control_plane.api.recover()


class TestPerformanceIsolation:
    def test_super_reads_served_by_tenant_apiservers(self, env,
                                                     two_tenants):
        """Tenant list/get traffic hits the tenant apiserver, not the
        super cluster (paper: read offloading)."""
        a, _b = two_tenants
        super_requests_before = env.super_cluster.api.request_count

        def hammer_reads():
            for _ in range(50):
                yield from a.client.list("pods", namespace="default")

        env.run_coroutine(hammer_reads())
        # The super cluster saw none of those 50 LISTs (background
        # controllers may add a handful of unrelated requests).
        delta = env.super_cluster.api.request_count - super_requests_before
        assert delta < 50
        assert a.control_plane.api.request_count >= 50
