"""Data-plane integration: Kata pods + enhanced kubeproxy + cluster-IP
services over a VPC (paper §III-B(4)-(5), evaluated in §IV-E)."""

import pytest

from repro.core import VirtualClusterEnv
from repro.core.crd import super_namespace
from repro.network import ConnectivityChecker
from repro.objects import make_service


@pytest.fixture
def dp_env():
    environment = VirtualClusterEnv(num_real_nodes=1, scan_interval=30.0)
    environment.bootstrap(settle=3.0)
    return environment


def _ready_kata_pod(env, tenant, name, labels=None):
    env.run_coroutine(tenant.create_pod(name, runtime_class="kata",
                                        labels=labels or {}))
    env.run_until_pods_ready(tenant, [f"default/{name}"], timeout=180)
    return env.run_coroutine(tenant.get_pod(name))


class TestKataDataPlane:
    def test_kata_pod_ip_is_vpc_address(self, dp_env):
        tenant = dp_env.run_coroutine(dp_env.create_tenant("acme"))
        pod = _ready_kata_pod(dp_env, tenant, "kata-pod")
        assert dp_env.vpc.reachable(pod.status.pod_ip)

    def test_cluster_ip_service_reachable_from_kata_guest(self, dp_env):
        """The headline data-plane scenario: a client pod in a Kata guest
        reaches a cluster-IP service whose backend is another Kata pod,
        with all traffic inside the VPC."""
        tenant = dp_env.run_coroutine(dp_env.create_tenant("acme"))
        backend = _ready_kata_pod(dp_env, tenant, "backend",
                                  labels={"app": "backend"})
        client = _ready_kata_pod(dp_env, tenant, "client")

        admin = dp_env.super_admin_client()
        super_ns = super_namespace(tenant.vc, "default")
        service = make_service("backend-svc", namespace=super_ns,
                               selector={"app": "backend"}, port=80,
                               target_port=80)
        service = dp_env.run_coroutine(admin.create(service))
        dp_env.run_for(8)  # endpoints controller + rule push

        node_name = client.spec.node_name
        kubelet = dp_env.real_kubelets[node_name]
        client_sandbox = kubelet.sandbox_for(super_ns, "client")
        checker = ConnectivityChecker(dp_env.vpc)
        resolved = checker.resolve(client_sandbox.network_stack,
                                   service.spec.cluster_ip, 80)
        assert resolved is not None
        assert resolved[0] == backend.status.pod_ip

    def test_stock_rules_alone_would_not_reach(self, dp_env):
        """Counterfactual: host-only rules leave the guest dark."""
        tenant = dp_env.run_coroutine(dp_env.create_tenant("acme"))
        client = _ready_kata_pod(dp_env, tenant, "client")
        node_name = client.spec.node_name
        kubelet = dp_env.real_kubelets[node_name]
        super_ns = super_namespace(tenant.vc, "default")
        sandbox = kubelet.sandbox_for(super_ns, "client")

        host_stack = dp_env.kube_proxies[node_name].host_stack
        host_stack.iptables.replace_service("10.111.0.1", 80,
                                            [("172.16.0.99", 80)])
        checker = ConnectivityChecker(dp_env.vpc)
        assert not checker.can_reach(sandbox.network_stack,
                                     "10.111.0.1", 80)

    def test_workload_waits_for_rule_injection(self, dp_env):
        """The init-container gate: rules are in place before Ready."""
        admin = dp_env.super_admin_client()
        for index in range(10):
            dp_env.run_coroutine(admin.create(make_service(
                f"pre-{index}", namespace="default",
                selector={"x": "y"}, port=1000 + index)))
        dp_env.run_for(3)

        tenant = dp_env.run_coroutine(dp_env.create_tenant("acme"))
        pod = _ready_kata_pod(dp_env, tenant, "gated")
        kubelet = dp_env.real_kubelets[pod.spec.node_name]
        super_ns = super_namespace(tenant.vc, "default")
        sandbox = kubelet.sandbox_for(super_ns, "gated")
        agent = sandbox.extra["agent"]
        assert agent.rules_ready
        assert sandbox.network_stack.iptables.rule_count() >= 10

    def test_rule_injection_latency_measured(self, dp_env):
        admin = dp_env.super_admin_client()
        for index in range(20):
            dp_env.run_coroutine(admin.create(make_service(
                f"svc-{index}", namespace="default",
                selector={"x": "y"}, port=2000 + index)))
        dp_env.run_for(3)
        tenant = dp_env.run_coroutine(dp_env.create_tenant("acme"))
        pod = _ready_kata_pod(dp_env, tenant, "measured")
        proxy = dp_env.kube_proxies[pod.spec.node_name]
        assert proxy.injection_count >= 1
        # 20 rules at ~5.5 ms each plus gRPC: order 0.1-0.2 s.
        assert 0.05 < proxy.mean_injection_latency < 1.0
