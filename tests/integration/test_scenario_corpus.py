"""Golden-corpus conformance: every scenario replays to its digest.

Parameterized over ``scenarios/corpus/*.yaml``.  Each test runs the
scenario once and asserts:

- the converged-state sha256 digest equals the recorded golden (and the
  store-event count matches — a cheap first differentiator when it
  doesn't);
- the declared expectations hold (convergence, pod floors, telemetry
  bounds, race cleanliness for race-checked scenarios).

Everything here carries the ``scenario`` marker (excluded from the
tier-1 auto-marking); the scenarios whose YAML says ``tier1: true``
additionally run in the tier-1 gate, giving it a fast three-scenario
conformance smoke.  The determinism double-replay lives in
``python -m repro.scenarios verify`` (and ``scripts/tier1.sh
--scenario-smoke``); here each file runs once to keep plain ``pytest``
wall-clock sane.
"""

import os

import pytest

from repro.scenarios import corpus_paths, load_scenario, run_scenario

CORPUS_DIR = os.path.join(os.path.dirname(__file__), os.pardir, os.pardir,
                          "scenarios", "corpus")


def _corpus_params():
    params = []
    for path in corpus_paths(os.path.abspath(CORPUS_DIR)):
        scenario = load_scenario(path)
        marks = [pytest.mark.scenario]
        if scenario.tier1:
            marks.append(pytest.mark.tier1)
        params.append(pytest.param(path, id=scenario.name,
                                   marks=tuple(marks)))
    return params


@pytest.mark.parametrize("path", _corpus_params())
def test_scenario_matches_golden(path):
    scenario = load_scenario(path)
    assert scenario.golden is not None, (
        f"{os.path.basename(path)} has no golden block; run "
        f"'python -m repro.scenarios record {path}'")
    result = run_scenario(scenario)
    assert result.failures == [], (
        f"{scenario.name} failed expectations: {result.failures}")
    assert result.store_events == scenario.golden.store_events, (
        f"{scenario.name} emitted {result.store_events} store events, "
        f"golden recorded {scenario.golden.store_events}")
    assert result.digest == scenario.golden.digest, (
        f"{scenario.name} diverged from its golden digest "
        f"(recorded {scenario.golden.digest[:16]}…, replayed "
        f"{result.digest[:16]}…); if intentional, re-record with "
        f"'python -m repro.scenarios record {path}'")


@pytest.mark.scenario
def test_corpus_covers_required_axes():
    """The corpus must keep exercising every axis the DSL claims."""
    scenarios = [load_scenario(path)
                 for path in corpus_paths(os.path.abspath(CORPUS_DIR))]
    assert len(scenarios) >= 10
    kinds = {w.shape.kind for s in scenarios
             for t in s.tenants for w in t.workloads}
    assert {"constant", "diurnal", "flash-crowd", "burst", "sequential",
            "rolling-upgrade"} <= kinds
    assert any(p.link is not None for s in scenarios
               for p in s.topology.pools), "no edge-link scenario"
    assert any(p.elastic is not None for s in scenarios
               for p in s.topology.pools), "no elastic-pool scenario"
    assert any(s.chaos for s in scenarios), "no chaos-overlay scenario"
    assert any(s.race_check for s in scenarios), "no race-checked scenario"
    assert sum(1 for s in scenarios if s.tier1) >= 3
    assert all(s.golden is not None for s in scenarios)
