"""Events flow: super-cluster component events reach the tenant.

The scheduler and kubelet record Events about synced pods in the
prefixed super namespaces; the syncer's event reconciler copies them
into the owning tenant control plane so the tenant can see why its pod
is (not) progressing.
"""

from repro.objects import make_pod


class TestEventsUpward:
    def test_failed_scheduling_event_reaches_tenant(self, env, tenant):
        pod = make_pod("impossible", cpu="4000")  # no node fits 4000 cores
        env.run_coroutine(tenant.client.create(pod))

        def tenant_sees_event():
            events, _rv = env.run_coroutine(
                tenant.client.list("events", namespace="default"))
            return any(event.reason == "FailedScheduling"
                       for event in events)

        env.run_until(tenant_sees_event, timeout=60)
        events, _rv = env.run_coroutine(
            tenant.client.list("events", namespace="default"))
        failed = [event for event in events
                  if event.reason == "FailedScheduling"]
        assert failed
        assert failed[0].type == "Warning"
        assert failed[0].involved_object.name == "impossible"
        # The involved object reference is rewritten to the *tenant*
        # namespace, not the prefixed super namespace.
        assert failed[0].involved_object.namespace == "default"

    def test_event_counts_aggregate(self, env, tenant):
        pod = make_pod("still-impossible", cpu="4000")
        env.run_coroutine(tenant.client.create(pod))
        env.run_for(10)  # several scheduling retries -> repeated events

        events, _rv = env.run_coroutine(
            tenant.client.list("events", namespace="default"))
        failed = [event for event in events
                  if event.reason == "FailedScheduling"]
        # Aggregated into few events (with counts), not one per retry.
        assert 1 <= len(failed) <= 3

    def test_no_cross_tenant_event_leak(self, env, two_tenants):
        a, b = two_tenants
        env.run_coroutine(a.client.create(make_pod("impossible",
                                                   cpu="4000")))
        env.run_for(8)
        events, _rv = env.run_coroutine(
            b.client.list("events", namespace="default"))
        assert all(event.involved_object.name != "impossible"
                   for event in events)
