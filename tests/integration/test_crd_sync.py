"""CRD synchronization (§V future work #1, implemented here).

A tenant installs a CRD in its own control plane; the super-cluster
administrator allowlists it for synchronization; custom objects then flow
downward like built-in resources — enabling super-cluster scheduler
extensions to act on them.
"""

import pytest

from repro.apiserver import NotFound
from repro.core.crd import super_namespace
from repro.core.syncer.crd_sync import CrdSyncError
from repro.objects import CustomResourceDefinition


def _install_crd(env, tenant, group="acme.io", kind="TrainingJob",
                 plural="trainingjobs"):
    crd = CustomResourceDefinition()
    crd.metadata.name = f"{plural}.{group}"
    crd.spec.group = group
    crd.spec.names.kind = kind
    crd.spec.names.plural = plural
    env.run_coroutine(tenant.client.create(crd))
    custom_type = tenant.control_plane.api.registry.register_crd(crd)
    return crd, custom_type


class TestCrdSync:
    def test_custom_objects_sync_downward(self, env, tenant):
        crd, custom_type = _install_crd(env, tenant)
        env.syncer.enable_crd_sync(tenant.key, crd)

        job = custom_type()
        job.metadata.name = "train-1"
        job.metadata.namespace = "default"
        job.spec = {"gpus": 8, "framework": "torch"}
        env.run_coroutine(tenant.client.create(job))

        admin = env.super_admin_client()
        sns = super_namespace(tenant.vc, "default")

        def synced():
            try:
                obj = env.run_coroutine(admin.get("trainingjobs", "train-1",
                                                  namespace=sns))
                return obj.spec.get("gpus") == 8
            except NotFound:
                return False

        env.run_until(synced, timeout=60)

    def test_custom_object_delete_propagates(self, env, tenant):
        crd, custom_type = _install_crd(env, tenant)
        env.syncer.enable_crd_sync(tenant.key, crd)
        job = custom_type()
        job.metadata.name = "ephemeral"
        job.metadata.namespace = "default"
        job.spec = {"gpus": 1}
        env.run_coroutine(tenant.client.create(job))
        admin = env.super_admin_client()
        sns = super_namespace(tenant.vc, "default")

        def synced():
            try:
                env.run_coroutine(admin.get("trainingjobs", "ephemeral",
                                            namespace=sns))
                return True
            except NotFound:
                return False

        env.run_until(synced, timeout=60)
        env.run_coroutine(tenant.client.delete("trainingjobs", "ephemeral",
                                               namespace="default"))

        def gone():
            try:
                env.run_coroutine(admin.get("trainingjobs", "ephemeral",
                                            namespace=sns))
                return False
            except NotFound:
                return True

        env.run_until(gone, timeout=60)

    def test_unsynced_crd_objects_stay_tenant_local(self, env, tenant):
        _crd, custom_type = _install_crd(env, tenant, plural="secretjobs",
                                         kind="SecretJob")
        # Note: sync NOT enabled.
        job = custom_type()
        job.metadata.name = "local-only"
        job.metadata.namespace = "default"
        env.run_coroutine(tenant.client.create(job))
        env.run_for(10)
        assert not env.super_cluster.api.registry.has("secretjobs")

    def test_scanner_covers_synced_crds(self, env, tenant):
        crd, custom_type = _install_crd(env, tenant)
        env.syncer.enable_crd_sync(tenant.key, crd)
        job = custom_type()
        job.metadata.name = "resilient"
        job.metadata.namespace = "default"
        job.spec = {"gpus": 2}
        env.run_coroutine(tenant.client.create(job))
        admin = env.super_admin_client()
        sns = super_namespace(tenant.vc, "default")

        def synced():
            try:
                env.run_coroutine(admin.get("trainingjobs", "resilient",
                                            namespace=sns))
                return True
            except NotFound:
                return False

        env.run_until(synced, timeout=60)
        # Remove the super copy behind the syncer's back.
        env.run_coroutine(admin.delete("trainingjobs", "resilient",
                                       namespace=sns))
        env.run_until(synced, timeout=60)  # scanner resurrects it

    def test_conflicting_kind_rejected(self, env, two_tenants):
        a, b = two_tenants
        crd_a, _ = _install_crd(env, a, kind="Widget", plural="widgets")
        env.syncer.enable_crd_sync(a.key, crd_a)
        crd_b, _ = _install_crd(env, b, kind="Gadget", plural="widgets")
        with pytest.raises(CrdSyncError):
            env.syncer.enable_crd_sync(b.key, crd_b)

    def test_same_crd_shared_by_two_tenants(self, env, two_tenants):
        a, b = two_tenants
        crd_a, type_a = _install_crd(env, a)
        crd_b, type_b = _install_crd(env, b)
        env.syncer.enable_crd_sync(a.key, crd_a)
        env.syncer.enable_crd_sync(b.key, crd_b)
        for tenant, custom_type in ((a, type_a), (b, type_b)):
            job = custom_type()
            job.metadata.name = "shared-name"
            job.metadata.namespace = "default"
            env.run_coroutine(tenant.client.create(job))
        admin = env.super_admin_client()

        def both_synced():
            found = 0
            for tenant in (a, b):
                sns = super_namespace(tenant.vc, "default")
                try:
                    env.run_coroutine(admin.get("trainingjobs",
                                                "shared-name",
                                                namespace=sns))
                    found += 1
                except NotFound:
                    pass
            return found == 2

        env.run_until(both_synced, timeout=60)
