"""Custom tenant weights (paper footnote 2: listed as future work).

The fair queue's weighted round-robin already supports per-tenant
weights; the VC spec carries ``tenant_weight`` and the syncer registers
tenants with it.  A higher-weight tenant receives proportionally more
downward dispatches under contention.
"""

import pytest

from repro.core import VirtualClusterEnv
from repro.workloads import LoadGenerator, TenantLoadPattern


@pytest.fixture(scope="module")
def weighted_run():
    env = VirtualClusterEnv(num_virtual_nodes=10, scan_interval=60.0)
    env.bootstrap()
    heavy = env.run_coroutine(env.create_tenant("premium", weight=4))
    light = env.run_coroutine(env.create_tenant("basic", weight=1))
    env.run_for(1)

    generator = LoadGenerator(env.sim)
    jobs = [
        (heavy.client, TenantLoadPattern(500, mode="burst",
                                         name_prefix="h")),
        (light.client, TenantLoadPattern(500, mode="burst",
                                         name_prefix="l")),
    ]
    env.run_coroutine(generator.run_all(jobs))
    env.run_until(
        lambda: len(env.syncer.trace_store.completed()) >= 1000,
        timeout=600, poll=0.5)
    return env, heavy, light


class TestTenantWeights:
    def test_weight_recorded_from_vc_spec(self, weighted_run):
        env, heavy, light = weighted_run
        assert env.syncer.tenants[heavy.key].weight == 4
        assert env.syncer.tenants[light.key].weight == 1

    def test_heavier_tenant_finishes_sooner(self, weighted_run):
        env, heavy, light = weighted_run
        means = env.syncer.trace_store.mean_creation_time_by_tenant()
        assert means[heavy.key] < means[light.key]

    def test_dispatch_ratio_tracks_weights(self, weighted_run):
        env, heavy, light = weighted_run
        # While both sub-queues were backlogged the WRR served the heavy
        # tenant ~4x as often; measure over the first dispatches.
        heavy_waits = env.syncer.downward.wait_time_by_tenant[heavy.key]
        light_waits = env.syncer.downward.wait_time_by_tenant[light.key]
        assert heavy_waits < light_waits

    def test_all_pods_complete(self, weighted_run):
        env, _heavy, _light = weighted_run
        assert len(env.syncer.trace_store.completed()) == 1000
