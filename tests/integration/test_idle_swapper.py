"""Idle control-plane swapping (§V future work #2, implemented here)."""

import pytest

from repro.core.swapper import IdleSwapper, control_plane_memory


@pytest.fixture
def swapper(env):
    swapper = IdleSwapper(env.sim, idle_threshold=20.0, check_interval=5.0,
                          wake_latency=0.8)
    swapper.start()
    return swapper


class TestIdleSwapping:
    def test_idle_tenant_swapped_out(self, env, tenant, swapper):
        swapper.track(tenant.control_plane)
        awake_bytes = control_plane_memory(tenant.control_plane)
        env.run_for(40)  # no tenant activity
        assert tenant.control_plane.api.swap_state.swapped
        swapped_bytes = control_plane_memory(tenant.control_plane)
        assert swapped_bytes < 0.25 * awake_bytes

    def test_first_request_pays_wake_latency(self, env, tenant, swapper):
        swapper.track(tenant.control_plane)
        env.run_for(40)
        assert tenant.control_plane.api.swap_state.swapped
        start = env.sim.now
        env.run_coroutine(tenant.client.list("pods", namespace="default"))
        elapsed = env.sim.now - start
        assert elapsed >= 0.8  # the page-in cost
        assert not tenant.control_plane.api.swap_state.swapped
        assert tenant.control_plane.api.swap_state.swap_ins == 1

    def test_subsequent_requests_fast_again(self, env, tenant, swapper):
        swapper.track(tenant.control_plane)
        env.run_for(40)
        env.run_coroutine(tenant.client.list("pods", namespace="default"))
        start = env.sim.now
        env.run_coroutine(tenant.client.list("pods", namespace="default"))
        assert env.sim.now - start < 0.1

    def test_active_tenant_never_swapped(self, env, tenant, swapper):
        swapper.track(tenant.control_plane)

        def keep_busy():
            for _ in range(20):
                yield from tenant.client.list("pods", namespace="default")
                yield env.sim.timeout(2.0)

        env.run_coroutine(keep_busy())
        assert not tenant.control_plane.api.swap_state.swapped
        assert tenant.control_plane.api.swap_state.swap_outs == 0

    def test_fleet_memory_savings(self, env, swapper):
        """The paper's cost argument: with many idle tenants the control
        plane pool's resident memory shrinks substantially."""
        tenants = [env.run_coroutine(env.create_tenant(f"idle-{i}"))
                   for i in range(5)]
        for handle in tenants:
            swapper.track(handle.control_plane)
        before = swapper.total_resident_bytes()
        env.run_for(60)
        after = swapper.total_resident_bytes()
        assert swapper.swapped_count() == 5
        assert after < 0.3 * before

    def test_workloads_still_run_after_wake(self, env, tenant, swapper):
        swapper.track(tenant.control_plane)
        env.run_for(40)
        assert tenant.control_plane.api.swap_state.swapped
        env.run_coroutine(tenant.create_pod("after-nap"))
        env.run_until_pods_ready(tenant, ["default/after-nap"], timeout=60)
