"""Small-scale fair-queuing integration (the Fig. 11 mechanism).

The full-size experiment (10 greedy x 900 + 40 regular x 10) lives in
benchmarks/; here a scaled-down version verifies the mechanism quickly.
"""

import pytest

from repro.workloads import run_fairness_stress


@pytest.fixture(scope="module")
def fairness_results():
    fair = run_fairness_stress(num_greedy=2, num_regular=6, greedy_pods=900,
                               regular_pods=5, fair=True, num_nodes=10,
                               seed=7)
    unfair = run_fairness_stress(num_greedy=2, num_regular=6,
                                 greedy_pods=900, regular_pods=5,
                                 fair=False, num_nodes=10, seed=7)
    return fair, unfair


class TestFairQueuing:
    def test_regular_users_fast_under_fair_queuing(self, fairness_results):
        fair, _unfair = fairness_results
        worst_regular = max(fair.regular_means.values())
        assert worst_regular < 2.0  # paper: "less than two seconds"

    def test_greedy_users_bear_their_own_burst(self, fairness_results):
        fair, _unfair = fairness_results
        best_greedy = min(fair.greedy_means.values())
        worst_regular = max(fair.regular_means.values())
        assert best_greedy > worst_regular

    def test_disabled_fairness_starves_regular_users(self, fairness_results):
        fair, unfair = fairness_results
        fair_worst = max(fair.regular_means.values())
        unfair_worst = max(unfair.regular_means.values())
        # Without fair queuing regular users queue behind the burst.
        assert unfair_worst > 1.4 * fair_worst

    def test_all_pods_complete_either_way(self, fairness_results):
        fair, unfair = fairness_results
        expected = 2 * 900 + 6 * 5
        assert len(fair.creation_times) == expected
        assert len(unfair.creation_times) == expected
