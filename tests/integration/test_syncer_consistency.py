"""Syncer consistency under races and failures (paper §III-C).

The syncer is eventually consistent and must tolerate objects vanishing
mid-sync; whatever slips through is remediated by the periodic scanner.
"""

from repro.apiserver import NotFound
from repro.core.crd import super_namespace


class TestRaceTolerance:
    def test_delete_immediately_after_create(self, env, tenant):
        """The object may be gone by the time its ADD event is handled."""

        def create_then_delete():
            yield from tenant.create_pod("flash")
            yield from tenant.client.delete("pods", "flash",
                                            namespace="default")

        env.run_coroutine(create_then_delete())
        env.run_for(10)
        admin = env.super_admin_client()
        super_ns = super_namespace(tenant.vc, "default")
        try:
            env.run_coroutine(admin.get("pods", "flash",
                                        namespace=super_ns))
            leaked = True
        except NotFound:
            leaked = False
        assert not leaked

    def test_rapid_create_delete_create_converges(self, env, tenant):
        def churn():
            yield from tenant.create_pod("churny")
            yield from tenant.client.delete("pods", "churny",
                                            namespace="default")
            yield from tenant.create_pod("churny")

        env.run_coroutine(churn())
        env.run_until_pods_ready(tenant, ["default/churny"], timeout=60)
        pod = env.run_coroutine(tenant.get_pod("churny"))
        assert pod.status.is_ready


class TestScannerRemediation:
    def test_scanner_recreates_lost_super_object(self, env, tenant):
        """Simulate a permanently-lost downward sync: delete the super pod
        behind the syncer's back; the periodic scan resurrects it."""
        env.run_coroutine(tenant.create_pod("resilient"))
        env.run_until_pods_ready(tenant, ["default/resilient"], timeout=60)

        admin = env.super_admin_client()
        super_ns = super_namespace(tenant.vc, "default")
        env.run_coroutine(admin.delete("pods", "resilient",
                                       namespace=super_ns))

        def resurrected():
            try:
                pod = env.run_coroutine(admin.get("pods", "resilient",
                                                  namespace=super_ns))
                return pod is not None
            except NotFound:
                return False

        # scan_interval for the integration env is 5s.
        env.run_until(resurrected, timeout=60)
        assert env.syncer.scanner.mismatches_found >= 1

    def test_scanner_deletes_orphaned_super_object(self, env, tenant):
        """A super object whose tenant object is gone must be removed."""
        env.run_coroutine(tenant.create_pod("orphan"))
        env.run_until_pods_ready(tenant, ["default/orphan"], timeout=60)

        # Remove the tenant pod directly from the tenant store, bypassing
        # the watch path the syncer would normally react to.
        tenant_api = tenant.control_plane.api
        tenant_api.store.delete("/registry/pods/default/orphan")
        # Drop the event from the syncer's informer cache too, mimicking a
        # missed notification: force the cache out of sync.
        cache = env.syncer.tenant_informer(tenant.key, "pods").cache
        cache.delete("default/orphan")

        admin = env.super_admin_client()
        super_ns = super_namespace(tenant.vc, "default")

        def orphan_gone():
            try:
                env.run_coroutine(admin.get("pods", "orphan",
                                            namespace=super_ns))
                return False
            except NotFound:
                return True

        env.run_until(orphan_gone, timeout=60)

    def test_scanner_remediates_missed_upward_status(self, env, tenant):
        """A lost upward status write: the super pod is Ready but the
        tenant pod regressed behind the UWS's back; the scan re-enqueues
        the upward sync."""
        env.run_coroutine(tenant.create_pod("statusless"))
        env.run_until_pods_ready(tenant, ["default/statusless"], timeout=60)

        def regress():
            pod = yield from tenant.get_pod("statusless")
            pod.status.phase = "Pending"
            pod.status.conditions = []
            yield from tenant.client.update_status(pod)

        # A status-only change produces no downward work and no super
        # event, so nothing but the scanner can repair it.
        env.run_coroutine(regress())

        def ready_again():
            pod = env.run_coroutine(tenant.get_pod("statusless"))
            return pod.status.is_ready

        env.run_until(ready_again, timeout=60)
        assert env.syncer.scanner.upward_status_mismatches >= 1

    def test_scanner_removes_stale_vnode(self, env, tenant):
        """A vNode whose removal was missed must be garbage-collected."""
        env.run_coroutine(tenant.create_pod("pinned"))
        env.run_until_pods_ready(tenant, ["default/pinned"], timeout=60)
        vnodes = env.syncer.vnodes.vnodes_for(tenant.key)
        assert vnodes  # the bound pod created its vNode
        node = vnodes[0]

        # Simulate a lost removal: drop the binding record behind the
        # manager's back, leaving the tenant-side vNode object orphaned.
        env.syncer.vnodes._bindings[tenant.key].pop(node)
        assert env.run_coroutine(tenant.client.get("nodes", node)) is not None

        def vnode_gone():
            try:
                env.run_coroutine(tenant.client.get("nodes", node))
                return False
            except NotFound:
                return True

        env.run_until(vnode_gone, timeout=60)
        assert env.syncer.scanner.vnode_mismatches >= 1

    def test_scan_duration_tracked(self, env, tenant):
        env.run_coroutine(tenant.create_pod("p"))
        env.run_until_pods_ready(tenant, ["default/p"], timeout=60)
        env.run_for(12)  # at least two 5s scan intervals
        assert env.syncer.scanner.scans_completed >= 1
        assert env.syncer.scanner.objects_scanned_total >= 1


class TestSyncerRestart:
    def test_restart_relists_and_recovers(self, env, tenant):
        env.run_coroutine(tenant.create_pod("pre-restart"))
        env.run_until_pods_ready(tenant, ["default/pre-restart"],
                                 timeout=60)

        elapsed = env.run_coroutine(env.syncer.simulate_restart())
        assert elapsed > 0
        # Caches are re-primed with the existing state.
        assert env.syncer.tenant_informer(
            tenant.key, "pods").cache.get("default/pre-restart") is not None

        # And the pipeline still works for new pods.
        env.run_coroutine(tenant.create_pod("post-restart"))
        env.run_until_pods_ready(tenant, ["default/post-restart"],
                                 timeout=60)

    def test_super_apiserver_crash_recovery(self, env, tenant):
        env.run_coroutine(tenant.create_pod("before-crash"))
        env.run_until_pods_ready(tenant, ["default/before-crash"],
                                 timeout=60)
        env.super_cluster.api.crash()
        env.run_for(1)
        env.super_cluster.api.recover()
        env.run_for(3)  # reflectors relist
        env.run_coroutine(tenant.create_pod("after-crash"))
        env.run_until_pods_ready(tenant, ["default/after-crash"],
                                 timeout=120)


class TestQueueHygiene:
    def test_dedup_prevents_queue_blowup(self, env, tenant):
        """Hammering updates on one object must coalesce in the queue."""
        env.run_coroutine(tenant.create_pod("hot"))
        env.run_until_pods_ready(tenant, ["default/hot"], timeout=60)

        def hammer():
            for index in range(30):
                pod = yield from tenant.get_pod("hot")
                pod.metadata.labels["rev"] = str(index)
                yield from tenant.client.update(pod)

        env.run_coroutine(hammer())
        env.run_for(5)
        stats = env.syncer.downward.stats()
        assert stats["deduped"] >= 1
        assert stats["depth"] == 0  # fully drained
