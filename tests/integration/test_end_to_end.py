"""End-to-end pipeline tests: tenant -> syncer -> super -> node -> tenant."""

import pytest

from repro.apiserver import NotFound
from repro.core.crd import super_namespace
from repro.objects import make_namespace, make_pod


class TestPodLifecycle:
    def test_pod_created_in_tenant_runs_in_super(self, env, tenant):
        env.run_coroutine(tenant.create_pod("web"))
        env.run_until_pods_ready(tenant, ["default/web"], timeout=60)
        pod = env.run_coroutine(tenant.get_pod("web"))
        assert pod.status.phase == "Running"
        assert pod.status.is_ready
        assert pod.status.pod_ip

        super_ns = super_namespace(tenant.vc, "default")
        admin = env.super_admin_client()
        super_pod = env.run_coroutine(
            admin.get("pods", "web", namespace=super_ns))
        assert super_pod.status.is_ready
        assert super_pod.spec.node_name.startswith("vk-node-")

    def test_tenant_pod_bound_to_vnode_matching_physical_node(self, env,
                                                              tenant):
        env.run_coroutine(tenant.create_pod("web"))
        env.run_until_pods_ready(tenant, ["default/web"], timeout=60)
        pod = env.run_coroutine(tenant.get_pod("web"))
        super_ns = super_namespace(tenant.vc, "default")
        admin = env.super_admin_client()
        super_pod = env.run_coroutine(
            admin.get("pods", "web", namespace=super_ns))
        # One-to-one vNode mapping: same node name on both sides.
        assert pod.spec.node_name == super_pod.spec.node_name
        vnode = env.run_coroutine(
            tenant.client.get("nodes", pod.spec.node_name))
        assert vnode is not None

    def test_tenant_pod_delete_propagates_to_super(self, env, tenant):
        env.run_coroutine(tenant.create_pod("doomed"))
        env.run_until_pods_ready(tenant, ["default/doomed"], timeout=60)
        env.run_coroutine(
            tenant.client.delete("pods", "doomed", namespace="default"))
        super_ns = super_namespace(tenant.vc, "default")
        admin = env.super_admin_client()

        def gone():
            try:
                env.run_coroutine(admin.get("pods", "doomed",
                                            namespace=super_ns))
                return False
            except NotFound:
                return True

        env.run_until(gone, timeout=30)

    def test_tenant_namespace_creates_prefixed_super_namespace(self, env,
                                                               tenant):
        env.run_coroutine(tenant.create_namespace("team-a"))
        env.run_coroutine(tenant.create_pod("p", namespace="team-a"))
        env.run_until_pods_ready(tenant, ["team-a/p"], timeout=60)
        admin = env.super_admin_client()
        sname = super_namespace(tenant.vc, "team-a")
        namespace = env.run_coroutine(admin.get("namespaces", sname))
        assert namespace is not None

    def test_many_pods_all_become_ready(self, env, tenant):
        def create_many():
            for index in range(20):
                yield from tenant.create_pod(f"w-{index:02d}")

        env.run_coroutine(create_many())
        keys = [f"default/w-{index:02d}" for index in range(20)]
        env.run_until_pods_ready(tenant, keys, timeout=120)
        pods, _rv = env.run_coroutine(tenant.list_pods())
        assert sum(1 for pod in pods if pod.status.is_ready) == 20

    def test_secrets_and_configmaps_sync_down(self, env, tenant):
        from repro.objects import ConfigMap, Secret

        secret = Secret()
        secret.metadata.name = "creds"
        secret.metadata.namespace = "default"
        secret.string_data = {"token": "s3cr3t"}
        configmap = ConfigMap()
        configmap.metadata.name = "settings"
        configmap.metadata.namespace = "default"
        configmap.data = {"mode": "fast"}

        def create():
            yield from tenant.client.create(secret)
            yield from tenant.client.create(configmap)

        env.run_coroutine(create())
        admin = env.super_admin_client()
        super_ns = super_namespace(tenant.vc, "default")

        def synced():
            try:
                s = env.run_coroutine(admin.get("secrets", "creds",
                                                namespace=super_ns))
                c = env.run_coroutine(admin.get("configmaps", "settings",
                                                namespace=super_ns))
                return (s.string_data.get("token") == "s3cr3t"
                        and c.data.get("mode") == "fast")
            except NotFound:
                return False

        env.run_until(synced, timeout=30)

    def test_service_syncs_down_with_fresh_cluster_ip(self, env, tenant):
        env.run_coroutine(tenant.create_service(
            "svc", selector={"app": "web"}, port=80))
        tenant_svc = env.run_coroutine(
            tenant.client.get("services", "svc", namespace="default"))
        assert tenant_svc.spec.cluster_ip  # tenant-side allocation
        admin = env.super_admin_client()
        super_ns = super_namespace(tenant.vc, "default")

        def synced():
            try:
                super_svc = env.run_coroutine(
                    admin.get("services", "svc", namespace=super_ns))
                return bool(super_svc.spec.cluster_ip)
            except NotFound:
                return False

        env.run_until(synced, timeout=30)

    def test_pod_status_conditions_copied_upward(self, env, tenant):
        env.run_coroutine(tenant.create_pod("web"))
        env.run_until_pods_ready(tenant, ["default/web"], timeout=60)
        pod = env.run_coroutine(tenant.get_pod("web"))
        for condition_type in ("PodScheduled", "Initialized",
                               "ContainersReady", "Ready"):
            condition = pod.status.get_condition(condition_type)
            assert condition is not None and condition.status == "True"


class TestTenantExperience:
    """The tenant sees an intact Kubernetes (paper's API-compat claim)."""

    def test_tenant_can_create_namespaces_freely(self, env, tenant):
        for name in ("dev", "staging", "prod"):
            env.run_coroutine(tenant.create_namespace(name))
        namespaces, _rv = env.run_coroutine(
            tenant.client.list("namespaces"))
        names = {namespace.name for namespace in namespaces}
        assert {"dev", "staging", "prod", "default"} <= names

    def test_tenant_can_install_crds(self, env, tenant):
        from repro.objects import CustomResourceDefinition

        crd = CustomResourceDefinition()
        crd.metadata.name = "widgets.acme.io"
        crd.spec.group = "acme.io"
        crd.spec.names.kind = "Widget"
        crd.spec.names.plural = "widgets"
        env.run_coroutine(tenant.client.create(crd))
        widget_type = tenant.control_plane.api.registry.register_crd(crd)
        widget = widget_type()
        widget.metadata.name = "w"
        widget.metadata.namespace = "default"
        widget.spec = {"size": 1}
        env.run_coroutine(tenant.client.create(widget))
        items, _rv = env.run_coroutine(
            tenant.client.list("widgets", namespace="default"))
        assert len(items) == 1

    def test_tenant_deployments_work(self, env, tenant):
        from repro.objects import Deployment, LabelSelector, make_pod

        deployment = Deployment()
        deployment.metadata.name = "web"
        deployment.metadata.namespace = "default"
        deployment.spec.replicas = 3
        deployment.spec.selector = LabelSelector(match_labels={"app": "web"})
        deployment.spec.template.metadata.labels = {"app": "web"}
        deployment.spec.template.spec = make_pod("t").spec
        env.run_coroutine(tenant.client.create(deployment))

        def three_ready():
            pods, _rv = env.run_coroutine(tenant.list_pods())
            return sum(1 for pod in pods if pod.status.is_ready) == 3

        env.run_until(three_ready, timeout=120)
        fresh = env.run_coroutine(tenant.client.get(
            "deployments", "web", namespace="default"))
        assert fresh.status.ready_replicas == 3
