"""Chaos soak: seeded random fault schedules + full convergence.

The fast smoke test rides in tier-1; the multi-seed soak runs are marked
``soak`` (``pytest -m soak``) and are what the robustness claim rests
on: for every seed, after the fault plan ends the system converges —
every tenant pod matched by an equally-ready super pod, no orphans, the
queues drained, every circuit closed — and the whole run is replayable
bit-for-bit from its seed.
"""

import pytest

from repro.chaos import ChaosEngine, random_plan
from repro.chaos.engine import check_convergence
from repro.core.env import VirtualClusterEnv
from repro.simkernel.errors import Interrupt

SOAK_SEEDS = (1, 7, 23, 101)


def build_env(seed, tenants=2, pods_per_tenant=2, nodes=3):
    env = VirtualClusterEnv(seed=seed, num_virtual_nodes=nodes,
                            scan_interval=5.0, dws_workers=4, uws_workers=4)
    env.bootstrap()
    handles = []
    for index in range(tenants):
        handle = env.run_coroutine(env.create_tenant(f"tenant-{index}"))
        handles.append(handle)
        for pod_index in range(pods_per_tenant):
            env.run_coroutine(handle.create_pod(f"pod-{pod_index}"))
    for handle in handles:
        env.run_until_pods_ready(
            handle,
            [f"default/pod-{i}" for i in range(pods_per_tenant)],
            timeout=120.0)
    return env, handles


def churn_process(env, handles, period=3.0):
    """Create/delete pods *during* the chaos window so faults land on
    in-flight work, not just a quiesced system."""

    def churn():
        index = 0
        while True:
            try:
                yield env.sim.timeout(period)
                handle = handles[index % len(handles)]
                name = f"churn-{index}"
                index += 1
                try:
                    yield from handle.create_pod(name)
                except Exception:  # injected failure: fine, that's chaos
                    continue
                yield env.sim.timeout(period)
                try:
                    yield from handle.client.delete("pods", name,
                                                    namespace="default")
                except Exception:
                    continue
            except Interrupt:
                return

    return env.sim.spawn(churn(), name="churn")


def run_chaos(seed, horizon, tenants=2, pods_per_tenant=2, churn=True):
    env, handles = build_env(seed, tenants=tenants,
                             pods_per_tenant=pods_per_tenant)
    engine = ChaosEngine(env, seed=seed)
    random_plan(engine, horizon=horizon)
    churner = churn_process(env, handles) if churn else None
    engine.start()
    env.run_for(horizon)
    engine.stop()
    if churner is not None:
        churner.interrupt("chaos over")
    detail = engine.verify_convergence(timeout=300.0)
    return env, engine, detail


class TestChaosSmoke:
    """Fast seeded smoke in tier-1: one short horizon, full verification."""

    def test_smoke_converges_after_faults(self):
        env, engine, detail = run_chaos(seed=3, horizon=20.0, churn=False)
        assert detail["missing"] == []
        assert detail["orphaned"] == []
        assert detail["open_circuits"] == []
        report = engine.report()
        assert report["seed"] == 3
        assert sum(f["injections"] for f in report["faults"]) > 0
        # Worker crashes happened and the watchdog brought workers back.
        assert sum(env.syncer.worker_restarts.values()) > 0
        assert len(env.syncer.worker_processes) == 8


@pytest.mark.soak
class TestChaosSoak:
    @pytest.mark.parametrize("seed", SOAK_SEEDS)
    def test_soak_converges(self, seed):
        env, engine, detail = run_chaos(seed=seed, horizon=60.0, tenants=3,
                                        pods_per_tenant=3)
        ok, final = check_convergence(env)
        assert ok, final
        assert sum(env.syncer.worker_restarts.values()) > 0
        # Post-chaos liveness: brand-new work still flows end to end.
        handle = next(iter(env.tenants.values()))
        env.run_coroutine(handle.create_pod("post-chaos"))
        env.run_until_pods_ready(handle, ["default/post-chaos"],
                                 timeout=120.0)

    def test_same_seed_same_run(self):
        """Determinism: one seed, two fresh builds, identical histories."""
        _env_a, engine_a, _ = run_chaos(seed=11, horizon=30.0)
        _env_b, engine_b, _ = run_chaos(seed=11, horizon=30.0)
        report_a, report_b = engine_a.report(), engine_b.report()
        assert report_a["timeline"] == report_b["timeline"]
        assert report_a["faults"] == report_b["faults"]

    def test_different_seeds_differ(self):
        _env_a, engine_a, _ = run_chaos(seed=1, horizon=30.0)
        _env_b, engine_b, _ = run_chaos(seed=2, horizon=30.0)
        assert (engine_a.report()["timeline"]
                != engine_b.report()["timeline"])
