"""Failure injection: the syncer's resilience guarantees under crashes.

The paper's §III-C design argument: rather than enumerate every race and
failure combination, the syncer relies on relisting reflectors plus the
periodic scanner to converge after arbitrary disruptions.  These tests
inject crashes mid-flight and assert convergence.
"""

from repro.objects import make_pod


class TestTenantApiserverCrash:
    def test_crash_during_pod_creation_converges(self, env, tenant):
        def create_some():
            for index in range(5):
                yield from tenant.create_pod(f"pre-{index}")

        env.run_coroutine(create_some())
        # Crash the tenant control plane while the syncer is mid-flight.
        tenant.control_plane.api.crash()
        env.run_for(2)
        tenant.control_plane.api.recover()
        env.run_for(3)  # reflectors relist

        def create_more():
            for index in range(5):
                yield from tenant.create_pod(f"post-{index}")

        env.run_coroutine(create_more())
        keys = ([f"default/pre-{i}" for i in range(5)]
                + [f"default/post-{i}" for i in range(5)])
        env.run_until_pods_ready(tenant, keys, timeout=180)

    def test_repeated_crashes(self, env, tenant):
        for round_number in range(3):
            env.run_coroutine(tenant.create_pod(f"round-{round_number}"))
            tenant.control_plane.api.crash()
            env.run_for(1)
            tenant.control_plane.api.recover()
            env.run_for(2)
        keys = [f"default/round-{i}" for i in range(3)]
        env.run_until_pods_ready(tenant, keys, timeout=240)


class TestSuperApiserverCrash:
    def test_crash_with_load_in_flight(self, env, tenant):
        def create_load():
            for index in range(10):
                yield from tenant.create_pod(f"load-{index}")

        env.run_coroutine(create_load())
        env.run_for(0.2)  # some pods synced, some still queued
        env.super_cluster.api.crash()
        env.run_for(2)
        env.super_cluster.api.recover()
        keys = [f"default/load-{i}" for i in range(10)]
        env.run_until_pods_ready(tenant, keys, timeout=240)

    def test_store_compaction_during_watch(self, env, tenant):
        env.run_coroutine(tenant.create_pod("survivor-1"))
        env.run_until_pods_ready(tenant, ["default/survivor-1"],
                                 timeout=60)
        # Aggressive compaction invalidates watch replay windows; the
        # reflectors must relist rather than wedge.
        env.super_cluster.api.store.compact(keep=1)
        env.run_coroutine(tenant.create_pod("survivor-2"))
        env.run_until_pods_ready(tenant, ["default/survivor-2"],
                                 timeout=120)


class TestCombinedDisruption:
    def test_both_sides_crash_then_full_reconcile(self, env, tenant):
        env.run_coroutine(tenant.create_pod("anchor"))
        env.run_until_pods_ready(tenant, ["default/anchor"], timeout=60)

        tenant.control_plane.api.crash()
        env.super_cluster.api.crash()
        env.run_for(2)
        tenant.control_plane.api.recover()
        env.super_cluster.api.recover()
        env.run_for(5)

        env.run_coroutine(tenant.create_pod("phoenix"))
        env.run_until_pods_ready(tenant, ["default/phoenix"], timeout=240)
        # The pre-crash pod is still consistent on both sides.
        pod = env.run_coroutine(tenant.get_pod("anchor"))
        assert pod.status.is_ready

    def test_deletion_during_super_outage_reconciles(self, env, tenant):
        env.run_coroutine(tenant.create_pod("doomed"))
        env.run_until_pods_ready(tenant, ["default/doomed"], timeout=60)
        env.super_cluster.api.crash()
        env.run_coroutine(
            tenant.client.delete("pods", "doomed", namespace="default"))
        env.run_for(1)
        env.super_cluster.api.recover()

        from repro.apiserver import NotFound
        from repro.core.crd import super_namespace

        admin = env.super_admin_client()
        sns = super_namespace(tenant.vc, "default")

        def gone():
            try:
                env.run_coroutine(admin.get("pods", "doomed",
                                            namespace=sns))
                return False
            except NotFound:
                return True

        env.run_until(gone, timeout=120)
