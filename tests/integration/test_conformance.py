"""Conformance battery: a tenant control plane behaves like an intact
Kubernetes.

The paper reports VirtualCluster passes all Kubernetes conformance tests
except one (the subdomain test).  This suite runs the same API battery
against (a) the super cluster directly and (b) a tenant control plane,
asserting identical behaviour — and includes the one known exception.
"""

import pytest

from repro.apiserver import AlreadyExists, Conflict, Invalid, NotFound
from repro.core.crd import super_namespace
from repro.objects import make_namespace, make_pod, make_service


def _update_with_retry(run, client, name, namespace, mutate, subresource=None):
    """Get-mutate-update with conflict retry (controllers and conformance
    tests must tolerate concurrent writers such as the scheduler)."""
    for _attempt in range(10):
        current = run(client.get("pods", name, namespace=namespace))
        mutate(current)
        try:
            if subresource == "status":
                return run(client.update_status(current))
            return run(client.update(current))
        except Conflict:
            continue
    raise AssertionError("update kept conflicting")


def _battery(run, client):
    """API behaviours every conformant control plane must exhibit.

    Returns a dict of observation name -> value so the two sides can be
    compared verbatim.
    """
    observations = {}

    run(client.create(make_namespace("conf")))

    # Create/get round trip.
    pod = run(client.create(make_pod("alpha", namespace="conf",
                                     labels={"app": "a"})))
    observations["uid_assigned"] = bool(pod.metadata.uid)
    fetched = run(client.get("pods", "alpha", namespace="conf"))
    observations["get_matches_create"] = fetched.name == "alpha"

    # Duplicate create.
    try:
        run(client.create(make_pod("alpha", namespace="conf")))
        observations["duplicate_create"] = "allowed"
    except AlreadyExists:
        observations["duplicate_create"] = "AlreadyExists"

    # List with selector.
    from repro.objects import parse_selector

    run(client.create(make_pod("beta", namespace="conf",
                               labels={"app": "b"})))
    items, _rv = run(client.list("pods", namespace="conf",
                                 label_selector=parse_selector("app=a")))
    observations["selector_list"] = sorted(p.name for p in items)

    # Optimistic concurrency.
    stale = fetched.copy()
    _update_with_retry(run, client, "alpha", "conf",
                       lambda pod: pod.metadata.labels.update(rev="1"))
    stale.metadata.labels["rev"] = "conflict"
    try:
        run(client.update(stale))
        observations["stale_update"] = "allowed"
    except Conflict:
        observations["stale_update"] = "Conflict"

    # Spec immutability (retry conflicts; the Invalid must come through).
    def mutate_image(pod):
        pod.spec.containers[0].image = "mutated"

    try:
        _update_with_retry(run, client, "alpha", "conf", mutate_image)
        observations["spec_mutation"] = "allowed"
    except Invalid:
        observations["spec_mutation"] = "Invalid"

    # Status subresource isolation.
    def mutate_status(pod):
        pod.status.phase = "Running"
        pod.metadata.labels["smuggled"] = "x"

    updated = _update_with_retry(run, client, "alpha", "conf",
                                 mutate_status, subresource="status")
    after = run(client.get("pods", "alpha", namespace="conf"))
    observations["status_subresource"] = (
        updated.status.phase,  # the write took effect...
        "smuggled" in (after.metadata.labels or {}),  # ...labels did not
    )

    # Service cluster IP allocation.
    service = run(client.create(make_service("svc", namespace="conf")))
    observations["cluster_ip_allocated"] = bool(service.spec.cluster_ip)

    # generateName.
    generated = make_pod("x", namespace="conf")
    generated.metadata.name = None
    generated.metadata.generate_name = "gen-"
    created = run(client.create(generated))
    observations["generate_name"] = created.metadata.name.startswith("gen-")

    # Missing object behaviour.
    try:
        run(client.get("pods", "ghost", namespace="conf"))
        observations["missing_get"] = "found"
    except NotFound:
        observations["missing_get"] = "NotFound"

    # Delete + namespace emptying.
    run(client.delete("pods", "beta", namespace="conf"))
    try:
        run(client.get("pods", "beta", namespace="conf"))
        observations["delete"] = "still-there"
    except NotFound:
        observations["delete"] = "NotFound"

    return observations


class TestConformance:
    def test_tenant_control_plane_matches_super_cluster(self, env, tenant):
        admin = env.super_admin_client()
        super_observations = _battery(env.run_coroutine, admin)
        tenant_observations = _battery(env.run_coroutine, tenant.client)
        assert tenant_observations == super_observations

    def test_expected_observations(self, env, tenant):
        observations = _battery(env.run_coroutine, tenant.client)
        assert observations["duplicate_create"] == "AlreadyExists"
        assert observations["stale_update"] == "Conflict"
        assert observations["spec_mutation"] == "Invalid"
        assert observations["status_subresource"] == ("Running", False)
        assert observations["selector_list"] == ["alpha"]
        assert observations["cluster_ip_allocated"]
        assert observations["generate_name"]

    def test_known_failure_subdomain_not_propagated(self, env, tenant):
        """The one conformance test the paper says fails: the super
        cluster does not use the subdomain specified in the tenant
        control plane.  We assert that (documented) divergence."""
        pod = make_pod("subby")
        pod.spec.hostname = "subby"
        pod.spec.subdomain = "tenant-chosen-subdomain"
        env.run_coroutine(tenant.client.create(pod))
        env.run_until_pods_ready(tenant, ["default/subby"], timeout=60)
        admin = env.super_admin_client()
        super_ns = super_namespace(tenant.vc, "default")
        super_pod = env.run_coroutine(
            admin.get("pods", "subby", namespace=super_ns))
        # The subdomain is synced as-is, but the super cluster's DNS name
        # would be formed in the *prefixed* namespace -- i.e. the FQDN
        # "subby.tenant-chosen-subdomain.default.svc" the tenant expects
        # does not exist on the super side.
        expected_fqdn = "subby.tenant-chosen-subdomain.default.svc"
        super_fqdn = (f"subby.{super_pod.spec.subdomain}."
                      f"{super_pod.metadata.namespace}.svc")
        assert super_fqdn != expected_fqdn
