"""End-to-end telemetry: cross-component spans, per-seed determinism,
and the ``python -m repro.telemetry`` export CLI."""

import itertools
import json

from repro.objects import meta
from repro.telemetry import CORE_FAMILIES
from repro.telemetry.__main__ import main, run_snapshot
from repro.telemetry.export import check_core_families, render_json


def test_same_seed_snapshots_byte_identical():
    """Telemetry must be a pure observer: two same-seed runs export
    byte-identical snapshots (instrumentation never touches sim.rng or
    the event schedule)."""
    # Object uids come from a process-global counter; per-VC label values
    # embed a hash of the VC uid.  Pin the counter to the same start for
    # both runs so the comparison is over telemetry, not uid allocation.
    saved = meta._uid_counter
    try:
        meta._uid_counter = itertools.count(10_000_000)
        first = run_snapshot(seed=3, pods=16, tenants=2, nodes=4)
        meta._uid_counter = itertools.count(10_000_000)
        second = run_snapshot(seed=3, pods=16, tenants=2, nodes=4)
    finally:
        meta._uid_counter = saved
    assert render_json(first) == render_json(second)


def test_stress_run_covers_core_families_and_spans():
    snapshot = run_snapshot(seed=1, pods=16, tenants=2, nodes=4)
    assert check_core_families(snapshot) == []
    # The cross-component span set: request -> syncer -> bind.
    for name in ("apiserver.create", "apiserver.update",
                 "syncer.dws", "syncer.uws", "scheduler.bind"):
        assert snapshot["spans"][name]["count"] > 0, name
    # Span counters mirror the aggregates exactly.
    spans_total = {
        series["labels"]["name"]: series["value"]
        for family in snapshot["families"]
        if family["name"] == "spans_total"
        for series in family["series"]
    }
    for name, agg in snapshot["spans"].items():
        assert spans_total[name] == agg["count"]


def test_cli_writes_parseable_json_with_core_families(tmp_path):
    out = tmp_path / "snapshot.json"
    code = main(["--seed", "1", "--pods", "12", "--tenants", "2",
                 "--nodes", "4", "--format", "json",
                 "--output", str(out), "--check"])
    assert code == 0
    snapshot = json.loads(out.read_text())
    assert check_core_families(snapshot) == []
    names = {family["name"] for family in snapshot["families"]}
    assert set(CORE_FAMILIES) <= names
