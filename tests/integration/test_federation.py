"""Multiple super clusters (§V future work #3, implemented here)."""

import pytest

from repro.core.federation import FleetCapacityError, SuperClusterFleet


@pytest.fixture
def fleet():
    fleet = SuperClusterFleet(num_super_clusters=2, nodes_per_cluster=2,
                              scan_interval=30.0)
    fleet.bootstrap()
    return fleet


class TestFleetPlacement:
    def test_tenants_spread_across_members(self, fleet):
        handles = [fleet.run_coroutine(fleet.create_tenant(f"t{i}"))
                   for i in range(4)]
        # Place pods so load alternates members.
        for handle in handles:
            fleet.run_coroutine(handle.create_pod("w"))
            fleet.run_until_pods_ready(handle, ["default/w"], timeout=60)
        members = {fleet.member_of(handle).name for handle in handles}
        assert len(members) == 2  # both super clusters in use

    def test_tenant_unaware_of_fleet(self, fleet):
        handle = fleet.run_coroutine(fleet.create_tenant("oblivious"))
        fleet.run_coroutine(handle.create_pod("w"))
        fleet.run_until_pods_ready(handle, ["default/w"], timeout=60)
        # The tenant's view contains no fleet/member concepts: it sees
        # one vNode (named after a physical node of *its* member) and its
        # own namespaces — the same experience as a single super cluster.
        nodes, _rv = fleet.run_coroutine(handle.client.list("nodes"))
        assert len(nodes) == 1
        pod = fleet.run_coroutine(handle.get_pod("w"))
        assert pod.status.is_ready

    def test_full_member_skipped(self, fleet):
        # Shrink member 0's capacity to (almost) nothing by marking its
        # nodes unschedulable-equivalent: fill its pod capacity count.
        member0 = fleet.members[0]
        used, total = fleet.capacity_of(member0)
        admin = member0.super_admin_client()

        def cram():
            from repro.objects import make_pod

            for index in range(total - used):
                yield from admin.create(
                    make_pod(f"filler-{index:04d}", namespace="default",
                             node_name="unknown-node"))

        fleet.run_coroutine(cram())
        chosen = fleet.pick_member()
        assert chosen is fleet.members[1]

    def test_capacity_error_when_all_full(self):
        fleet = SuperClusterFleet(num_super_clusters=1, nodes_per_cluster=0)
        fleet.bootstrap()
        with pytest.raises(FleetCapacityError):
            fleet.pick_member()

    def test_isolated_control_planes_across_members(self, fleet):
        a = fleet.run_coroutine(fleet.create_tenant("alpha"))
        b = fleet.run_coroutine(fleet.create_tenant("beta"))
        fleet.run_coroutine(a.create_pod("w"))
        fleet.run_until_pods_ready(a, ["default/w"], timeout=60)
        # Regardless of member placement, tenant B sees nothing of A.
        pods, _rv = fleet.run_coroutine(b.client.list("pods",
                                                      namespace="default"))
        assert pods == []

    def test_delete_tenant_releases_member(self, fleet):
        handle = fleet.run_coroutine(fleet.create_tenant("short-lived"))
        member = fleet.member_of(handle)
        fleet.run_coroutine(fleet.delete_tenant(handle))
        assert fleet.member_of(handle) is None
        assert handle.key not in member.syncer.tenants
