"""Shared fixtures for integration tests: a small VirtualCluster deployment."""

import pytest

from repro.core import VirtualClusterEnv


@pytest.fixture
def env():
    """3 virtual-kubelet nodes, fast tenant provisioning."""
    environment = VirtualClusterEnv(num_virtual_nodes=3, scan_interval=5.0)
    environment.bootstrap()
    return environment


@pytest.fixture
def tenant(env):
    return env.run_coroutine(env.create_tenant("acme"))


@pytest.fixture
def two_tenants(env):
    a = env.run_coroutine(env.create_tenant("acme"))
    b = env.run_coroutine(env.create_tenant("globex"))
    return a, b
