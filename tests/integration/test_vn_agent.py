"""vn-agent proxy: tenant logs/exec via the vNode (paper §III-B(3)).

Uses a real node (runc + Kata runtimes) so there is an actual kubelet
holding containers to stream logs from.
"""

import pytest

from repro.apiserver import Credential, NotFound, Unauthorized
from repro.core import VirtualClusterEnv


@pytest.fixture
def real_env():
    environment = VirtualClusterEnv(num_real_nodes=2, scan_interval=30.0)
    environment.bootstrap(settle=3.0)
    return environment


@pytest.fixture
def real_tenant(real_env):
    return real_env.run_coroutine(real_env.create_tenant("acme"))


class TestVnAgentProxy:
    def test_tenant_logs_via_vn_agent(self, real_env, real_tenant):
        real_env.run_coroutine(real_tenant.create_pod("logger"))
        real_env.run_until_pods_ready(real_tenant, ["default/logger"],
                                      timeout=120)
        lines = real_env.run_coroutine(real_tenant.logs("logger"))
        assert any("started" in line for line in lines)

    def test_tenant_exec_via_vn_agent(self, real_env, real_tenant):
        real_env.run_coroutine(real_tenant.create_pod("shell"))
        real_env.run_until_pods_ready(real_tenant, ["default/shell"],
                                      timeout=120)
        output = real_env.run_coroutine(
            real_tenant.exec("shell", ["echo", "hi"]))
        assert "exec(echo hi)" in output

    def test_unknown_certificate_rejected(self, real_env, real_tenant):
        real_env.run_coroutine(real_tenant.create_pod("guarded"))
        real_env.run_until_pods_ready(real_tenant, ["default/guarded"],
                                      timeout=120)
        pod = real_env.run_coroutine(real_tenant.get_pod("guarded"))
        agent = real_env.vn_agents[pod.spec.node_name]
        impostor = Credential("impostor")

        def attempt():
            return (yield from agent.logs(impostor, "default", "guarded"))

        with pytest.raises(Unauthorized):
            real_env.run_coroutine(attempt())

    def test_namespace_translation_is_tenant_scoped(self, real_env):
        """Two tenants, same pod name: each tenant's cert maps to its own
        prefixed super namespace, so logs never cross tenants."""
        tenant_a = real_env.run_coroutine(real_env.create_tenant("alpha"))
        tenant_b = real_env.run_coroutine(real_env.create_tenant("beta"))
        real_env.run_coroutine(tenant_a.create_pod("same-name"))
        real_env.run_until_pods_ready(tenant_a, ["default/same-name"],
                                      timeout=120)
        # Tenant B never created the pod; its translated namespace has no
        # such pod, so the vn-agent refuses.
        pod = real_env.run_coroutine(tenant_a.get_pod("same-name"))
        agent = real_env.vn_agents[pod.spec.node_name]

        def cross_tenant_attempt():
            return (yield from agent.logs(tenant_b.credential, "default",
                                          "same-name"))

        with pytest.raises(NotFound):
            real_env.run_coroutine(cross_tenant_attempt())
        assert agent.requests_rejected >= 1

    def test_proxy_counts_requests(self, real_env, real_tenant):
        real_env.run_coroutine(real_tenant.create_pod("counted"))
        real_env.run_until_pods_ready(real_tenant, ["default/counted"],
                                      timeout=120)
        pod = real_env.run_coroutine(real_tenant.get_pod("counted"))
        agent = real_env.vn_agents[pod.spec.node_name]
        before = agent.requests_proxied
        real_env.run_coroutine(real_tenant.logs("counted"))
        assert agent.requests_proxied == before + 1
