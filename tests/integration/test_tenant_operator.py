"""Tenant operator lifecycle: provision, kubeconfig secret, deprovision."""

from repro.apiserver import NotFound
from repro.core.crd import cluster_prefix, make_virtual_cluster


class TestProvisioning:
    def test_vc_reaches_running(self, env, tenant):
        assert tenant.vc.status.phase == "Running"
        assert tenant.vc.status.control_plane_endpoint

    def test_kubeconfig_secret_stored_in_super(self, env, tenant):
        admin = env.super_admin_client()
        secret_name = f"{cluster_prefix(tenant.vc)}-kubeconfig"
        secret = env.run_coroutine(
            admin.get("secrets", secret_name, namespace="vc-manager"))
        assert secret.string_data["cert-hash"] == \
            tenant.credential.cert_hash

    def test_cert_hash_recorded_in_vc_status(self, env, tenant):
        assert tenant.vc.status.cert_hash == tenant.credential.cert_hash

    def test_operator_finds_vc_by_cert_hash(self, env, tenant):
        found = env.tenant_operator.find_vc_by_cert_hash(
            tenant.credential.cert_hash)
        assert found is not None and found.name == tenant.name
        assert env.tenant_operator.find_vc_by_cert_hash("bogus") is None

    def test_finalizer_added(self, env, tenant):
        admin = env.super_admin_client()
        vc = env.run_coroutine(admin.get("virtualclusters", tenant.name,
                                         namespace="vc-manager"))
        assert "tenancy.x-k8s.io/vc-protection" in vc.metadata.finalizers

    def test_tenant_control_plane_has_no_scheduler(self, env, tenant):
        assert tenant.control_plane.scheduler is None
        assert env.super_cluster.scheduler is not None

    def test_cloud_mode_takes_longer(self, env):
        admin = env.super_admin_client()
        vc = make_virtual_cluster("slowpoke", namespace="vc-manager",
                                  mode="cloud")
        start = env.sim.now
        env.run_coroutine(admin.create(vc))

        def provisioned():
            return env.tenant_operator.control_plane_for(
                "vc-manager/slowpoke") is not None

        env.run_until(provisioned, timeout=60)
        assert env.sim.now - start >= 15.0  # cloud provisioning delay


class TestDeprovisioning:
    def test_delete_tenant_removes_control_plane(self, env, tenant):
        key = tenant.key
        env.run_coroutine(env.delete_tenant(tenant))

        def gone():
            return env.tenant_operator.control_plane_for(key) is None

        env.run_until(gone, timeout=30)

    def test_vc_object_fully_removed_after_finalization(self, env, tenant):
        env.run_coroutine(env.delete_tenant(tenant))
        admin = env.super_admin_client()

        def vc_gone():
            try:
                env.run_coroutine(admin.get(
                    "virtualclusters", tenant.name, namespace="vc-manager"))
                return False
            except NotFound:
                return True

        env.run_until(vc_gone, timeout=30)

    def test_syncer_detached_on_delete(self, env, tenant):
        key = tenant.key
        assert key in env.syncer.tenants
        env.run_coroutine(env.delete_tenant(tenant))
        assert key not in env.syncer.tenants
