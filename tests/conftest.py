"""Shared test configuration: tier-1 marking.

Every test under ``tests/`` is auto-marked ``tier1`` unless it opted
into a slower bucket (currently ``soak``), so the tier-1 gate can be
invoked as ``pytest -m tier1`` — see ``scripts/tier1.sh``, which also
enforces the coverage floor when ``pytest-cov`` is installed.
"""

import pytest


def pytest_collection_modifyitems(items):
    for item in items:
        if "soak" not in item.keywords:
            item.add_marker(pytest.mark.tier1)
