"""Shared test configuration: tier-1 marking.

Every test under ``tests/`` is auto-marked ``tier1`` unless it opted
into a slower bucket (``soak``, or the ``scenario`` corpus conformance
suite — which marks its own fast subset tier1 explicitly), so the
tier-1 gate can be invoked as ``pytest -m tier1`` — see
``scripts/tier1.sh``, which also enforces the coverage floor when
``pytest-cov`` is installed.
"""

import pytest

_SLOW_BUCKETS = ("soak", "scenario")


def pytest_collection_modifyitems(items):
    for item in items:
        if all(bucket not in item.keywords for bucket in _SLOW_BUCKETS):
            item.add_marker(pytest.mark.tier1)
