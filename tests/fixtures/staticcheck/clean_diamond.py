"""Clean fixture: a diamond of nested acquisitions with one global
order (A before B, always).  Two callers nest the same way through
different paths; there is no inversion and staticcheck must stay
silent.
"""

from repro.simkernel import Lock


class Diamond:
    def __init__(self, sim):
        self.lock_a = Lock(sim)
        self.lock_b = Lock(sim)

    def _inner(self):
        yield self.lock_b.acquire()
        try:
            pass
        finally:
            self.lock_b.release()

    def left(self):
        yield self.lock_a.acquire()
        try:
            yield from self._inner()
        finally:
            self.lock_a.release()

    def right(self):
        yield self.lock_a.acquire()
        try:
            yield self.lock_b.acquire()
            try:
                pass
            finally:
                self.lock_b.release()
        finally:
            self.lock_a.release()
