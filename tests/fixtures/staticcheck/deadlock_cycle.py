"""C002 fixture: two lock families acquired in opposite orders.

``transfer_forward`` takes A then B; ``transfer_back`` takes B then A
(through a helper, so the cycle is only visible interprocedurally).
Two processes entering from different ends deadlock under the right
schedule — staticcheck must flag the A->B->A cycle.
"""

from repro.simkernel import Lock


class Ledger:
    def __init__(self, sim):
        self.lock_a = Lock(sim)
        self.lock_b = Lock(sim)

    def transfer_forward(self):
        yield self.lock_a.acquire()
        try:
            yield self.lock_b.acquire()
            try:
                pass
            finally:
                self.lock_b.release()
        finally:
            self.lock_a.release()

    def _grab_a(self):
        yield self.lock_a.acquire()
        try:
            pass
        finally:
            self.lock_a.release()

    def transfer_back(self):
        yield self.lock_b.acquire()
        try:
            yield from self._grab_a()
        finally:
            self.lock_b.release()
