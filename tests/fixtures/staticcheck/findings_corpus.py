"""Golden corpus: one deliberate instance of every C-rule.

The expected findings (exact rule codes, lines, and messages) live in
``findings_corpus.expected``; the conformance test fails on any drift
in either direction — a new false positive and a lost true positive
both break the byte-exact comparison.
"""

from repro.simkernel import Lock, Timeout

SHARED_REGISTRY = {}


class CorpusWorker:
    def __init__(self, sim):
        self.sim = sim
        self.lock_a = Lock(sim)
        self.lock_b = Lock(sim)

    def hold_across_wait(self):
        yield self.lock_a.acquire()
        try:
            yield self.sim.timeout(1.0)
        finally:
            self.lock_a.release()

    def forward(self):
        yield self.lock_a.acquire()
        try:
            yield self.lock_b.acquire()
            self.lock_b.release()
        finally:
            self.lock_a.release()

    def backward(self):
        yield self.lock_b.acquire()
        try:
            yield self.lock_a.acquire()
            self.lock_a.release()
        finally:
            self.lock_b.release()

    def write_registry(self, key):
        yield self.sim.timeout(0.1)
        SHARED_REGISTRY[key] = self.sim.now

    def drop_timer(self):
        orphan = self.sim.timeout(5.0)
        yield self.sim.timeout(0.1)

    def spawn_for(self, tenant):
        yield self.sim.timeout(0.1)
        self.sim.spawn(self.write_registry(tenant), name=f"w-{tenant}")


class ControllerManager:
    def __init__(self, sim, client, store):
        self.sim = sim
        self.client = client
        self.store = store

    def reconcile(self, ops):
        yield self.client.transaction([], ops)
        self.store.put("/registry/x", b"value")
