"""Pure unit tests for the vn-agent (stubbed kubelet and operator)."""

import pytest

from repro.apiserver import Credential, NotFound, Unauthorized
from repro.core.crd import make_virtual_cluster, super_namespace
from repro.core.vn_agent import VnAgent
from repro.simkernel import Simulation


class StubKubelet:
    """Records the namespaces it is asked about."""

    def __init__(self):
        self.log_requests = []
        self.exec_requests = []

    def get_logs(self, namespace, pod_name, container_name=None, tail=None):
        self.log_requests.append((namespace, pod_name, tail))
        if pod_name == "ghost":
            raise NotFound("no such pod")
        return [f"log line from {namespace}/{pod_name}"]

    def exec_in_pod(self, namespace, pod_name, command,
                    container_name=None):
        self.exec_requests.append((namespace, pod_name, tuple(command)))
        yield from ()
        return f"ran {' '.join(command)}"


class StubOperator:
    def __init__(self, mapping):
        self._mapping = mapping  # cert_hash -> vc

    def find_vc_by_cert_hash(self, cert_hash):
        return self._mapping.get(cert_hash)


@pytest.fixture
def setup():
    sim = Simulation()
    vc = make_virtual_cluster("acme")
    vc.metadata.uid = "uid-42"
    credential = Credential("tenant-acme")
    vc.status.cert_hash = credential.cert_hash
    kubelet = StubKubelet()
    operator = StubOperator({credential.cert_hash: vc})
    agent = VnAgent(sim, "node-1", kubelet, operator)
    return sim, agent, kubelet, credential, vc


def run(sim, coroutine):
    return sim.run(until=sim.process(coroutine))


class TestVnAgentUnit:
    def test_namespace_translated_to_prefixed(self, setup):
        sim, agent, kubelet, credential, vc = setup
        lines = run(sim, agent.logs(credential, "default", "web"))
        assert lines == [f"log line from "
                         f"{super_namespace(vc, 'default')}/web"]
        namespace, _pod, _tail = kubelet.log_requests[0]
        assert namespace == super_namespace(vc, "default")

    def test_unknown_cert_rejected_before_kubelet(self, setup):
        sim, agent, kubelet, _credential, _vc = setup
        impostor = Credential("impostor")
        with pytest.raises(Unauthorized):
            run(sim, agent.logs(impostor, "default", "web"))
        assert kubelet.log_requests == []
        assert agent.requests_rejected == 1

    def test_exec_proxied(self, setup):
        sim, agent, kubelet, credential, vc = setup
        result = run(sim, agent.exec(credential, "default", "web",
                                     ["ls", "-l"]))
        assert result == "ran ls -l"
        assert kubelet.exec_requests[0] == (
            super_namespace(vc, "default"), "web", ("ls", "-l"))

    def test_missing_pod_propagates_not_found(self, setup):
        sim, agent, _kubelet, credential, _vc = setup
        with pytest.raises(NotFound):
            run(sim, agent.logs(credential, "default", "ghost"))

    def test_proxy_latency_charged(self, setup):
        sim, agent, _kubelet, credential, _vc = setup
        run(sim, agent.logs(credential, "default", "web"))
        assert sim.now >= agent.proxy_latency

    def test_request_counters(self, setup):
        sim, agent, _kubelet, credential, _vc = setup
        run(sim, agent.logs(credential, "default", "web", tail=5))
        run(sim, agent.exec(credential, "default", "web", ["id"]))
        assert agent.requests_proxied == 2
