"""Swap state machine edge cases (DESIGN.md §15).

The scale-to-zero lifecycle has three races the benchmark's flash crowd
will hit constantly; each gets a focused test here:

- a tenant request arriving *mid-page-out* must abort the swap for free
  (the memory never left);
- two requests waking the same plane must coalesce onto one page-in
  (double wake pays the latency once);
- a waker killed mid-page-in (leader failover tears down its process)
  must roll the state back so a joined waiter restarts the wake.

Plus the warm-pool retention policy and the WakeGate's tier priority.
"""

import pytest

from repro.core.swapper import (
    RESIDENT,
    SWAPPED,
    SWAPPING_OUT,
    WAKING,
    IdleSwapper,
    SwapState,
    WakeGate,
)
from repro.simkernel import Simulation
from repro.simkernel.errors import Interrupt

pytestmark = pytest.mark.apf


def run_awake(sim, state, box=None, name="requester"):
    def proc():
        started = sim.now
        yield from state.ensure_awake()
        if box is not None:
            box.append(sim.now - started)

    return sim.spawn(proc(), name=name)


class TestSwapStateMachine:
    def test_request_mid_swapout_aborts_for_free(self):
        sim = Simulation(seed=1)
        swapper = IdleSwapper(sim, swapout_latency=0.5)
        state = SwapState(sim, swapper=swapper, name="cp")
        entry = {"control_plane": None, "tier": "standard"}
        # Drive the page-out window by hand (no control plane needed).
        state._swap_epoch += 1
        state.state = SWAPPING_OUT
        sim.spawn(swapper._swapout_window(entry, state, state._swap_epoch),
                  name="swapout")
        sim.run(until=sim.now + 0.2)      # mid-window
        elapsed = []
        run_awake(sim, state, elapsed)
        sim.run(until=sim.now + 1.0)
        assert elapsed == [0.0]           # aborted, no wake latency paid
        assert state.state == RESIDENT
        assert state.swapout_aborts == 1
        assert state.swap_outs == 0       # the stale window finisher lost

    def test_double_wake_pays_latency_once(self):
        sim = Simulation(seed=1)
        state = SwapState(sim, wake_latency=1.0)
        state.swapped = True
        elapsed = []
        run_awake(sim, state, elapsed, name="first")
        sim.run(until=sim.now + 0.3)
        assert state.state == WAKING
        run_awake(sim, state, elapsed, name="second")
        sim.run(until=sim.now + 2.0)
        assert state.swap_ins == 1
        assert elapsed[0] == pytest.approx(1.0)
        # The joiner waited only the remaining 0.7s of the same page-in.
        assert elapsed[1] == pytest.approx(0.7)
        assert state.state == RESIDENT

    def test_waker_death_rolls_back_and_waiter_restarts(self):
        sim = Simulation(seed=1)
        state = SwapState(sim, wake_latency=1.0)
        state.swapped = True

        def doomed():
            try:
                yield from state.ensure_awake()
            except Interrupt:
                pass

        waker = sim.spawn(doomed(), name="doomed-waker")
        sim.run(until=sim.now + 0.4)
        assert state.state == WAKING
        elapsed = []
        run_awake(sim, state, elapsed, name="survivor")
        sim.run(until=sim.now + 0.1)
        waker.interrupt("leader failover")
        sim.run(until=sim.now + 3.0)
        # Rollback happened, then the survivor restarted the page-in.
        assert state.swap_ins == 1
        assert state.state == RESIDENT
        # The survivor joined at 0.4, saw the rollback at 0.5, then paid
        # a full 1.0s wake of its own.
        assert elapsed[0] == pytest.approx(1.1)

    def test_wake_during_failover_without_swapper_is_cold(self):
        sim = Simulation(seed=1)
        state = SwapState(sim, wake_latency=0.8)
        state.swapped = True
        elapsed = []
        run_awake(sim, state, elapsed)
        sim.run(until=sim.now + 2.0)
        assert elapsed == [pytest.approx(0.8)]
        assert state.swap_ins == 1


class TestWakeGate:
    def test_platinum_jumps_the_wake_queue(self):
        sim = Simulation(seed=1)
        gate = WakeGate(sim, capacity=1)
        order = []

        def holder():
            yield gate.acquire(0)
            yield sim.timeout(1.0)
            gate.release()

        def waiter(rank, label):
            yield gate.acquire(rank)
            order.append(label)
            yield sim.timeout(0.1)
            gate.release()

        sim.spawn(holder(), name="holder")
        sim.run(until=sim.now + 0.1)
        sim.spawn(waiter(3, "free"), name="free")
        sim.run(until=sim.now + 0.1)
        sim.spawn(waiter(2, "standard"), name="standard")
        sim.run(until=sim.now + 0.1)
        sim.spawn(waiter(1, "platinum"), name="platinum")
        sim.run(until=sim.now + 5.0)
        assert order == ["platinum", "standard", "free"]

    def test_dead_waiter_skipped_on_release(self):
        sim = Simulation(seed=1)
        gate = WakeGate(sim, capacity=1)
        taken = []

        def holder():
            yield gate.acquire(0)
            yield sim.timeout(1.0)
            gate.release()

        def doomed():
            try:
                yield gate.acquire(1)
                taken.append("doomed")
            except Interrupt:
                pass

        def live():
            yield gate.acquire(2)
            taken.append("live")
            gate.release()

        sim.spawn(holder(), name="holder")
        sim.run(until=sim.now + 0.1)
        dead = sim.spawn(doomed(), name="doomed")
        sim.run(until=sim.now + 0.1)
        sim.spawn(live(), name="live")
        sim.run(until=sim.now + 0.1)
        dead.interrupt("gone")
        sim.run(until=sim.now + 5.0)
        assert taken == ["live"]


class TestWarmPool:
    def test_warm_hit_then_cold(self):
        sim = Simulation(seed=1)
        swapper = IdleSwapper(sim, wake_latency=0.8, warm_pool=2,
                              warm_wake_latency=0.15)
        swapper._warm_admit("cp-a", "standard")
        latency, kind = swapper.wake_latency_for("cp-a")
        assert (latency, kind) == (0.15, "warm")
        # The slot was consumed: the next wake of the same plane is cold.
        latency, kind = swapper.wake_latency_for("cp-a")
        assert (latency, kind) == (0.8, "cold")

    def test_eviction_prefers_dropping_low_tiers(self):
        sim = Simulation(seed=1)
        swapper = IdleSwapper(sim, warm_pool=2)
        swapper._warm_admit("cp-free", "free")
        swapper._warm_admit("cp-plat", "platinum")
        swapper._warm_admit("cp-std", "standard")
        # Pool of 2: the free-tier plane was evicted first.
        assert set(swapper._warm) == {"cp-plat", "cp-std"}

    def test_eviction_drops_oldest_within_a_tier(self):
        sim = Simulation(seed=1)
        swapper = IdleSwapper(sim, warm_pool=2)
        swapper._warm_admit("cp-1", "standard")
        swapper._warm_admit("cp-2", "standard")
        swapper._warm_admit("cp-3", "standard")
        assert set(swapper._warm) == {"cp-2", "cp-3"}
