"""Edge cases in the simulation kernel: failures, conditions, helpers."""

import pytest

from repro.simkernel import (
    Channel,
    ChannelClosed,
    Event,
    Lock,
    Simulation,
)


class TestEventFailure:
    def test_condition_fails_when_member_fails(self):
        sim = Simulation()
        bad = sim.event()
        good = sim.timeout(10)
        caught = []

        def waiter():
            try:
                yield sim.all_of([good, bad])
            except RuntimeError as exc:
                caught.append(str(exc))

        def failer():
            yield sim.timeout(1)
            bad.fail(RuntimeError("member failed"))

        sim.process(waiter())
        sim.process(failer())
        sim.run()
        assert caught == ["member failed"]

    def test_fail_requires_exception(self):
        sim = Simulation()
        event = sim.event()
        with pytest.raises(TypeError):
            event.fail("not an exception")

    def test_late_callback_on_processed_event(self):
        sim = Simulation()
        event = sim.event()
        event.succeed("value")
        sim.run()
        seen = []
        event.add_callback(lambda e: seen.append(e.value))
        sim.run()
        assert seen == ["value"]

    def test_value_before_trigger_raises(self):
        sim = Simulation()
        event = sim.event()
        with pytest.raises(AttributeError):
            _ = event.value


class TestProcessEdge:
    def test_process_returning_immediately(self):
        sim = Simulation()

        def instant():
            return 42
            yield  # pragma: no cover

        assert sim.run(until=sim.process(instant())) == 42

    def test_nested_yield_from(self):
        sim = Simulation()

        def inner():
            yield sim.timeout(1)
            return "inner-value"

        def outer():
            value = yield from inner()
            yield sim.timeout(1)
            return f"outer({value})"

        assert sim.run(until=sim.process(outer())) == "outer(inner-value)"
        assert sim.now == 2

    def test_interrupt_cause_accessible(self):
        from repro.simkernel import Interrupt

        sim = Simulation()
        seen = []

        def victim():
            try:
                yield sim.timeout(100)
            except Interrupt as intr:
                seen.append(intr.cause)

        process = sim.process(victim())

        def interrupter():
            yield sim.timeout(1)
            process.interrupt({"reason": "structured cause"})

        sim.process(interrupter())
        sim.run()
        assert seen == [{"reason": "structured cause"}]


class TestResourceEdge:
    def test_lock_locked_section_helper(self):
        sim = Simulation()
        lock = Lock(sim)
        order = []

        def body(name):
            order.append(f"{name}-in")
            yield sim.timeout(1)
            order.append(f"{name}-out")
            return name

        def runner(name):
            result = yield from lock.locked_section(body(name))
            return result

        a = sim.process(runner("a"))
        b = sim.process(runner("b"))
        sim.run()
        assert order == ["a-in", "a-out", "b-in", "b-out"]
        assert not lock.locked
        assert a.value == "a"
        assert b.value == "b"

    def test_locked_section_releases_on_exception(self):
        sim = Simulation()
        lock = Lock(sim)

        def exploding():
            yield sim.timeout(1)
            raise ValueError("boom")

        def runner():
            try:
                yield from lock.locked_section(exploding())
            except ValueError:
                pass

        sim.run(until=sim.process(runner()))
        assert not lock.locked

    def test_channel_close_fails_blocked_putter(self):
        sim = Simulation()
        channel = Channel(sim, capacity=1)
        outcomes = []

        def producer():
            yield channel.put(1)  # fills capacity
            try:
                yield channel.put(2)  # blocks
            except ChannelClosed:
                outcomes.append("putter-failed")

        def closer():
            yield sim.timeout(1)
            channel.close()

        sim.process(producer())
        sim.process(closer())
        sim.run()
        assert outcomes == ["putter-failed"]

    def test_event_unhandled_failure_without_waiter_raises_at_loop(self):
        sim = Simulation()

        def crasher():
            yield sim.timeout(1)
            raise KeyError("nobody catches this")

        sim.process(crasher())
        with pytest.raises(KeyError):
            sim.run()


class TestDeterminismAcrossComponents:
    def test_same_seed_same_full_pipeline(self):
        from repro.core import VirtualClusterEnv

        def run_once(seed):
            env = VirtualClusterEnv(seed=seed, num_virtual_nodes=2,
                                    scan_interval=60.0)
            env.bootstrap()
            tenant = env.run_coroutine(env.create_tenant("t"))
            env.run_coroutine(tenant.create_pod("p"))
            env.run_until_pods_ready(tenant, ["default/p"], timeout=60)
            trace = env.syncer.trace_store.get(tenant.key, "default/p")
            return (round(env.sim.now, 9), round(trace.total, 9))

        assert run_once(123) == run_once(123)
