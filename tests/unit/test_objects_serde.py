"""Serialization, deep copy, and equality of API objects."""

from repro.objects import (
    Container,
    Endpoints,
    EndpointSubset,
    Namespace,
    Pod,
    Quantity,
    Service,
    make_node,
    make_pod,
    make_service,
    with_anti_affinity,
)
from repro.objects.base import fast_deep_copy
from repro.objects.service import EndpointAddress


class TestWireFormat:
    def test_pod_has_type_meta(self):
        data = make_pod("p").to_dict()
        assert data["apiVersion"] == "v1"
        assert data["kind"] == "Pod"

    def test_camel_case_wire_names(self):
        pod = make_pod("p", cpu="500m")
        data = pod.to_dict()
        assert "nodeSelector" not in data["spec"]  # empty omitted
        assert data["spec"]["serviceAccountName"] == "default"
        assert data["spec"]["containers"][0]["resources"]["requests"][
            "cpu"] == "500m"

    def test_empty_collections_omitted(self):
        data = make_pod("p").to_dict()
        assert "tolerations" not in data["spec"]
        assert "labels" not in data["metadata"]

    def test_round_trip_pod(self):
        pod = make_pod("web", namespace="prod", labels={"app": "web"},
                       cpu="250m", memory="128Mi")
        pod.spec.node_selector = {"disk": "ssd"}
        again = Pod.from_dict(pod.to_dict())
        assert again == pod
        assert again.spec.containers[0].resources.requests["cpu"] == \
            Quantity.parse("250m")

    def test_round_trip_service(self):
        service = make_service("svc", selector={"app": "web"}, port=8080)
        again = Service.from_dict(service.to_dict())
        assert again == service
        assert again.spec.ports[0].port == 8080

    def test_round_trip_node(self):
        node = make_node("n1", cpu="96", memory="328Gi")
        again = type(node).from_dict(node.to_dict())
        assert again == node
        assert again.status.allocatable["cpu"] == Quantity.parse("96")

    def test_round_trip_endpoints(self):
        endpoints = Endpoints()
        endpoints.metadata.name = "svc"
        endpoints.metadata.namespace = "default"
        endpoints.subsets = [EndpointSubset(
            addresses=[EndpointAddress(ip="10.0.0.1", node_name="n1")])]
        again = Endpoints.from_dict(endpoints.to_dict())
        assert again.ready_ips() == ["10.0.0.1"]

    def test_unknown_wire_keys_ignored(self):
        data = make_pod("p").to_dict()
        data["spec"]["futureField"] = {"x": 1}
        pod = Pod.from_dict(data)
        assert pod.name == "p"

    def test_anti_affinity_round_trip(self):
        pod = with_anti_affinity(make_pod("a"), "app", "web")
        again = Pod.from_dict(pod.to_dict())
        terms = again.spec.affinity.pod_anti_affinity.required_terms
        assert terms[0].label_selector.matches({"app": "web"})
        assert terms[0].topology_key == "kubernetes.io/hostname"


class TestCopy:
    def test_copy_is_deep(self):
        pod = make_pod("p", labels={"app": "web"})
        clone = pod.copy()
        clone.metadata.labels["app"] = "changed"
        clone.spec.containers[0].image = "other"
        assert pod.metadata.labels["app"] == "web"
        assert pod.spec.containers[0].image != "other"

    def test_copy_untyped_payload_is_deep(self):
        namespace = Namespace()
        namespace.metadata.name = "ns"
        clone = namespace.copy()
        clone.spec.finalizers.append("extra")
        assert namespace.spec.finalizers == ["kubernetes"]

    def test_from_dict_does_not_alias_input(self):
        data = make_pod("p").to_dict()
        data["metadata"]["annotations"] = {"k": "v"}
        pod = Pod.from_dict(data)
        pod.metadata.annotations["k"] = "mutated"
        assert data["metadata"]["annotations"]["k"] == "v"


class TestEquality:
    def test_equal_objects(self):
        assert make_pod("p") == make_pod("p")

    def test_unequal_objects(self):
        assert make_pod("p") != make_pod("q")

    def test_cross_type_not_equal(self):
        assert make_pod("p") != make_service("p")

    def test_status_affects_equality(self):
        a = make_pod("p")
        b = make_pod("p")
        b.status.phase = "Running"
        assert a != b


class TestHelpers:
    def test_key_namespaced(self):
        assert make_pod("p", namespace="ns").key == "ns/p"

    def test_key_cluster_scoped(self):
        assert make_node("n1").key == "n1"

    def test_unknown_constructor_field_rejected(self):
        import pytest

        with pytest.raises(TypeError):
            Container(name="c", image="i", bogus=True)

    def test_fast_deep_copy(self):
        value = {"a": [1, {"b": 2}], "c": "s"}
        clone = fast_deep_copy(value)
        clone["a"][1]["b"] = 99
        assert value["a"][1]["b"] == 2

    def test_pod_total_requests(self):
        pod = make_pod("p", cpu="500m", memory="128Mi")
        pod.spec.containers.append(
            Container(name="side", image="img"))
        pod.spec.containers[1].resources.requests["cpu"] = \
            Quantity.parse("250m")
        totals = pod.spec.total_requests()
        assert totals["cpu"] == Quantity.parse("750m")
        assert totals["memory"] == Quantity.parse("128Mi")

    def test_init_container_requests_use_max(self):
        pod = make_pod("p", cpu="200m")
        init = Container(name="init", image="img")
        init.resources.requests["cpu"] = Quantity.parse("1")
        pod.spec.init_containers.append(init)
        assert pod.spec.total_requests()["cpu"] == Quantity.parse("1")

    def test_pod_conditions(self):
        pod = make_pod("p")
        assert pod.status.set_condition("Ready", "True", now=1.0)
        assert pod.status.is_ready
        changed = pod.status.set_condition("Ready", "True", now=2.0)
        assert not changed
        pod.status.set_condition("Ready", "False", now=3.0)
        assert not pod.status.is_ready
        condition = pod.status.get_condition("Ready")
        assert condition.last_transition_time == 3.0
