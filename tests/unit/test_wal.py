"""WAL unit tests: durability contract of the write-ahead log.

Covers the crash surface one piece at a time — fsync batching,
power-off tail loss, torn tail records, recovery truncation, segment
rolling, and snapshot-anchored compaction (DESIGN.md §13).
"""

import pytest

from repro.simkernel import Simulation
from repro.storage import (
    EVENT_PUT,
    CompactedError,
    EtcdStore,
    WalTornRecord,
    WatchEvent,
    WriteAheadLog,
)


def make_store(sim, name="wal-test", **wal_kwargs):
    wal = WriteAheadLog(sim, name, **wal_kwargs)
    return EtcdStore(sim, name=name, wal=wal)


def fill(store, count, prefix="/registry/pods/ns/p"):
    for index in range(count):
        store.create(f"{prefix}{index:03d}", {"n": index})


class TestAppendAndSync:
    def test_every_append_durable_with_immediate_fsync(self):
        sim = Simulation(seed=1)
        store = make_store(sim)
        fill(store, 5)
        assert store.wal.durable_revision == store.revision
        assert store.wal.durable_lsn == 5

    def test_batched_fsync_leaves_volatile_tail(self):
        sim = Simulation(seed=1)
        store = make_store(sim, fsync_interval=1.0)
        fill(store, 4)
        assert store.wal.durable_revision == 0  # nothing synced yet
        sim.run(until=1.5)  # one fsync tick
        assert store.wal.durable_revision == store.revision

    def test_power_off_drops_unsynced_tail(self):
        sim = Simulation(seed=1)
        store = make_store(sim, fsync_interval=10.0)
        fill(store, 3)
        store.wal.sync()
        fill(store, 2, prefix="/registry/pods/ns/v")  # never fsynced
        dropped = store.wal.power_off()
        assert dropped == 2
        assert store.wal.durable_revision == 3

    def test_segments_roll_at_configured_size(self):
        sim = Simulation(seed=1)
        store = make_store(sim, segment_records=4)
        fill(store, 10)
        assert len(store.wal.segments) == 3


class TestRecovery:
    def test_recover_rebuilds_identical_state(self):
        sim = Simulation(seed=2)
        store = make_store(sim)
        fill(store, 8)
        store.update("/registry/pods/ns/p003", {"n": 333})
        store.delete("/registry/pods/ns/p000")
        expected = dict(store.dump())
        revision = store.revision

        store.power_off()
        assert not store.available
        recovered = store.recover_from_wal()
        assert recovered == revision
        assert store.available
        assert dict(store.dump()) == expected
        assert store.recoveries == 1

    def test_recover_is_idempotent(self):
        sim = Simulation(seed=2)
        store = make_store(sim)
        fill(store, 6)
        expected = dict(store.dump())
        store.power_off()
        store.recover_from_wal()
        first = dict(store.dump())
        store.recover_from_wal()
        assert dict(store.dump()) == first == expected

    def test_empty_wal_raises_compacted(self):
        sim = Simulation(seed=2)
        store = make_store(sim)
        with pytest.raises(CompactedError):
            store.recover_from_wal()

    def test_recovery_preserves_fencing_floor(self):
        sim = Simulation(seed=2)
        store = make_store(sim)
        fill(store, 2)
        store.check_fence("syncer", 7)
        store.power_off()
        store.recover_from_wal()
        assert store._fences.get("syncer") == 7


class TestTornTail:
    def test_torn_record_fails_checksum(self):
        sim = Simulation(seed=3)
        store = make_store(sim)
        fill(store, 3)
        record = store.wal.tear_tail()
        assert record.torn
        with pytest.raises(WalTornRecord):
            record.decode()

    def test_recovery_keeps_committed_prefix_only(self):
        sim = Simulation(seed=3)
        store = make_store(sim)
        fill(store, 5)
        store.wal.tear_tail()
        store.power_off()
        recovered = store.recover_from_wal()
        assert recovered == 4  # the torn fifth record is dropped
        assert "/registry/pods/ns/p004" not in dict(store.dump())

    def test_recovery_truncates_torn_suffix_for_future_appends(self):
        # After recovering past a tear, new appends must extend a clean
        # log: a second crash/recovery keeps them (nothing stranded
        # behind a torn record).
        sim = Simulation(seed=3)
        store = make_store(sim)
        fill(store, 4)
        store.wal.tear_tail()
        store.power_off()
        store.recover_from_wal()
        fill(store, 2, prefix="/registry/pods/ns/q")
        post_tear = dict(store.dump())
        store.power_off()
        assert store.recover_from_wal() == store.revision
        assert dict(store.dump()) == post_tear


class TestCompaction:
    def test_anchor_drops_covered_segments(self):
        sim = Simulation(seed=4)
        store = make_store(sim, segment_records=4)
        fill(store, 12)
        before = store.wal.record_count
        store.anchor_wal(store.snapshot())
        assert store.wal.record_count < before
        assert store.wal.anchor_revision == store.revision

    def test_records_since_below_anchor_raises(self):
        sim = Simulation(seed=4)
        store = make_store(sim, segment_records=2)
        fill(store, 8)
        store.anchor_wal(store.snapshot())
        with pytest.raises(CompactedError) as err:
            store.wal.records_since(0)
        assert err.value.first_replay_revision == store.wal.anchor_revision

    def test_recover_through_anchor_plus_tail(self):
        sim = Simulation(seed=4)
        store = make_store(sim, segment_records=2)
        fill(store, 6)
        store.anchor_wal(store.snapshot())
        fill(store, 3, prefix="/registry/pods/ns/q")  # post-anchor tail
        expected = dict(store.dump())
        revision = store.revision
        store.power_off()
        assert store.recover_from_wal() == revision
        assert dict(store.dump()) == expected


class TestRestoreReplayGap:
    def test_gapped_replay_raises_compacted_error(self):
        # Snapshot at revision 2, replay starting at revision 5: the
        # events for 3..4 were compacted away, so restore must refuse
        # up front (CompactedError) instead of building a gapped store.
        sim = Simulation(seed=6)
        store = make_store(sim)
        fill(store, 2)
        snapshot = store.snapshot()
        gapped = [WatchEvent(EVENT_PUT, "/registry/pods/ns/z",
                             {"n": 9}, 5)]
        with pytest.raises(CompactedError) as err:
            store.restore(snapshot, replay=gapped)
        assert err.value.snapshot_revision == 2
        assert err.value.first_replay_revision == 5
        # The failed restore mutated nothing.
        assert store.revision == 2
        assert len(dict(store.dump())) == 2

    def test_contiguous_replay_restores_cleanly(self):
        sim = Simulation(seed=6)
        store = make_store(sim)
        fill(store, 2)
        snapshot = store.snapshot()
        fill(store, 2, prefix="/registry/pods/ns/q")
        replay = list(store.events_since(2))
        expected = dict(store.dump())
        store.restore(snapshot, replay=replay)
        assert dict(store.dump()) == expected


class TestDurableState:
    def test_durable_state_matches_store(self):
        sim = Simulation(seed=5)
        store = make_store(sim)
        fill(store, 4)
        store.delete("/registry/pods/ns/p001")
        state = store.wal.durable_state()
        assert set(state) == set(dict(store.dump()))
        for key, (value, mod_revision) in state.items():
            stored, revision = store.get(key)
            assert stored == value
            assert revision == mod_revision

    def test_durable_state_excludes_volatile_tail(self):
        sim = Simulation(seed=5)
        store = make_store(sim, fsync_interval=10.0)
        fill(store, 2)
        store.wal.sync()
        fill(store, 2, prefix="/registry/pods/ns/v")
        state = store.wal.durable_state()
        assert len(state) == 2
        assert all(not key.startswith("/registry/pods/ns/v")
                   for key in state)
