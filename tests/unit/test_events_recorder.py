"""Unit tests for the event recorder."""

import pytest

from repro.apiserver import ADMIN, APIServer
from repro.clientgo import Client
from repro.clientgo.events import EventRecorder, NullRecorder
from repro.objects import make_namespace, make_pod
from repro.simkernel import Simulation


@pytest.fixture
def setup():
    sim = Simulation()
    api = APIServer(sim, "api")
    client = Client(sim, api, ADMIN, qps=100000, burst=100000)
    sim.run(until=sim.process(client.create(make_namespace("default"))))
    recorder = EventRecorder(sim, client, "test-component")
    return sim, api, client, recorder


def list_events(sim, client):
    def fetch():
        items, _rv = yield from client.list("events", namespace="default")
        return items

    return sim.run(until=sim.process(fetch()))


class TestEventRecorder:
    def test_event_created_with_reference(self, setup):
        sim, _api, client, recorder = setup
        pod = make_pod("p")
        pod.metadata.uid = "uid-p"
        recorder.event(pod, "Started", "Container started")
        sim.run(until=sim.now + 1)
        events = list_events(sim, client)
        assert len(events) == 1
        event = events[0]
        assert event.reason == "Started"
        assert event.involved_object.name == "p"
        assert event.involved_object.kind == "Pod"
        assert event.source["component"] == "test-component"
        assert event.count == 1

    def test_repeat_events_aggregate(self, setup):
        sim, _api, client, recorder = setup
        pod = make_pod("p")
        pod.metadata.uid = "uid-p"
        for _ in range(4):
            recorder.event(pod, "BackOff", "restarting")
            sim.run(until=sim.now + 0.5)
        events = list_events(sim, client)
        backoffs = [e for e in events if e.reason == "BackOff"]
        assert len(backoffs) == 1
        assert backoffs[0].count == 4

    def test_different_reasons_distinct_events(self, setup):
        sim, _api, client, recorder = setup
        pod = make_pod("p")
        pod.metadata.uid = "uid-p"
        recorder.event(pod, "Pulled", "image pulled")
        recorder.event(pod, "Started", "container started")
        sim.run(until=sim.now + 1)
        events = list_events(sim, client)
        assert {e.reason for e in events} == {"Pulled", "Started"}

    def test_warning_type(self, setup):
        sim, _api, client, recorder = setup
        pod = make_pod("p")
        recorder.event(pod, "Failed", "boom", event_type="Warning")
        sim.run(until=sim.now + 1)
        events = list_events(sim, client)
        assert events[0].type == "Warning"

    def test_recorder_survives_api_errors(self, setup):
        sim, api, _client, recorder = setup
        api.crash()
        pod = make_pod("p")
        recorder.event(pod, "Started", "msg")
        sim.run(until=sim.now + 2)
        assert recorder.dropped >= 1
        api.recover()

    def test_null_recorder_noop(self, setup):
        sim, _api, client, _recorder = setup
        null = NullRecorder()
        null.event(make_pod("p"), "Whatever", "nothing happens")
        sim.run(until=sim.now + 1)
        assert list_events(sim, client) == []
