"""Conversion round-trips for every synced resource type.

The syncer's namespace-prefix scheme (paper §III-B(2)) must be lossless
for all thirteen watched resource types: translating a tenant object
into the super cluster and reading the origin annotations back must
reproduce the tenant-side key exactly — including names at or near the
253-character DNS-1123 limit, where the composed ``<vc>-<uidhash>-name``
form overflows and ``fit_name`` truncation kicks in.
"""

import pytest

from repro.core.crd import (
    NAME_LIMIT,
    fit_name,
    make_virtual_cluster,
    super_name,
    super_namespace,
)
from repro.core.syncer.conversion import (
    is_managed,
    super_key_for,
    tenant_key,
    tenant_origin,
    to_super,
    to_super_pod,
)
from repro.core.syncer.syncer import SUPER_WATCHED
from repro.objects import (
    ConfigMap,
    Endpoints,
    Namespace,
    Node,
    PersistentVolume,
    PersistentVolumeClaim,
    Secret,
    Service,
    ServiceAccount,
    make_pod,
)
from repro.objects.misc import Event, ResourceQuota, StorageClass
from repro.objects.pod import Pod
from repro.objects.validation import validate_name

TYPE_FOR_PLURAL = {
    "pods": Pod,
    "namespaces": Namespace,
    "services": Service,
    "secrets": Secret,
    "configmaps": ConfigMap,
    "serviceaccounts": ServiceAccount,
    "persistentvolumeclaims": PersistentVolumeClaim,
    "resourcequotas": ResourceQuota,
    "endpoints": Endpoints,
    "nodes": Node,
    "events": Event,
    "persistentvolumes": PersistentVolume,
    "storageclasses": StorageClass,
}

# Name lengths that probe the DNS limit: short, just under, at the
# limit, and the longest prefix-composition survivors.
NAME_LENGTHS = [8, 200, NAME_LIMIT - 1, NAME_LIMIT]


@pytest.fixture
def vc():
    vc = make_virtual_cluster("acme")
    vc.metadata.uid = "uid-0001"
    return vc


def _make(obj_type, name, namespace="default"):
    if obj_type is Pod:
        return make_pod(name, namespace=namespace)
    obj = obj_type()
    obj.metadata.name = name
    if obj_type.NAMESPACED:
        obj.metadata.namespace = namespace
    return obj


def _name_of_length(length):
    return ("n" * (length - 1) + "x")[:length]


def test_all_thirteen_watched_types_covered():
    assert sorted(TYPE_FOR_PLURAL) == sorted(SUPER_WATCHED)
    assert len(SUPER_WATCHED) == 13


@pytest.mark.parametrize("plural", sorted(SUPER_WATCHED))
@pytest.mark.parametrize("length", NAME_LENGTHS)
def test_roundtrip_preserves_tenant_key(vc, plural, length):
    obj_type = TYPE_FOR_PLURAL[plural]
    name = _name_of_length(length)
    obj = _make(obj_type, name)
    translate = to_super_pod if obj_type is Pod else to_super
    translated = translate(obj, vc)

    # Forward: the super-side identifiers fit the DNS limit and validate.
    validate_name(translated.metadata.name)
    if obj_type.NAMESPACED:
        validate_name(translated.metadata.namespace)
        assert len(translated.metadata.namespace) <= NAME_LIMIT
    assert len(translated.metadata.name) <= NAME_LIMIT

    # Reverse: origin annotations round-trip the tenant key losslessly
    # (never parsed out of the possibly-truncated super name).
    assert is_managed(translated)
    assert tenant_key(translated) == obj.key
    vc_key, _namespace, tenant_name = tenant_origin(translated)
    assert vc_key == vc.key
    assert tenant_name == name

    # Key mapping: super_key_for agrees with the translated object's key.
    assert super_key_for(obj_type, vc, obj.key) == translated.key


@pytest.mark.parametrize("plural", sorted(SUPER_WATCHED))
def test_two_tenants_never_collide_at_the_limit(plural):
    """The same 253-char tenant name in two VCs maps to distinct super
    keys — truncation hashes the full composed name, prefix included."""
    vc_a = make_virtual_cluster("acme")
    vc_a.metadata.uid = "uid-000a"
    vc_b = make_virtual_cluster("acme")
    vc_b.metadata.uid = "uid-000b"
    obj_type = TYPE_FOR_PLURAL[plural]
    obj = _make(obj_type, _name_of_length(NAME_LIMIT))
    key_a = super_key_for(obj_type, vc_a, obj.key)
    key_b = super_key_for(obj_type, vc_b, obj.key)
    assert key_a != key_b


class TestFitName:
    def test_short_names_unchanged(self):
        assert fit_name("web-0") == "web-0"
        assert fit_name("x" * NAME_LIMIT) == "x" * NAME_LIMIT

    def test_long_names_truncate_to_limit(self):
        fitted = fit_name("x" * (NAME_LIMIT + 1))
        assert len(fitted) == NAME_LIMIT
        validate_name(fitted)

    def test_distinct_long_names_stay_distinct(self):
        # Same 242-char head, different tails: only the hash suffix can
        # tell them apart.
        head = "a" * 300
        assert fit_name(head + "-one") != fit_name(head + "-two")

    def test_truncation_is_deterministic(self):
        name = "b" * 400
        assert fit_name(name) == fit_name(name)

    def test_super_namespace_and_name_apply_fit(self):
        vc = make_virtual_cluster("acme")
        vc.metadata.uid = "uid-0001"
        long = _name_of_length(NAME_LIMIT)
        assert len(super_namespace(vc, long)) <= NAME_LIMIT
        assert len(super_name(vc, long)) <= NAME_LIMIT
