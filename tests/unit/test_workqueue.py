"""Unit tests for client-go style work queues."""

import pytest

from repro.clientgo import DelayingQueue, RateLimitingQueue, ShutDown, WorkQueue
from repro.simkernel import Simulation


@pytest.fixture
def sim():
    return Simulation()


def drain(sim, queue, count, process_time=0.0):
    """Run a worker that takes ``count`` items; returns [(item, t), ...]."""
    taken = []

    def worker():
        for _ in range(count):
            item, _enqueued = yield queue.get()
            if process_time:
                yield sim.timeout(process_time)
            taken.append((item, sim.now))
            queue.done(item)

    process = sim.process(worker())
    sim.run(until=process)
    return taken


class TestWorkQueue:
    def test_fifo_order(self, sim):
        queue = WorkQueue(sim)
        for item in ["a", "b", "c"]:
            queue.add(item)
        assert [item for item, _t in drain(sim, queue, 3)] == ["a", "b", "c"]

    def test_dedup_while_queued(self, sim):
        queue = WorkQueue(sim)
        queue.add("a")
        queue.add("a")
        queue.add("a")
        assert len(queue) == 1
        assert queue.deduped_total == 2

    def test_readd_while_processing_requeues_after_done(self, sim):
        queue = WorkQueue(sim)
        queue.add("a")
        order = []

        def worker():
            item, _t = yield queue.get()
            order.append(("first", item))
            queue.add("a")  # re-added while processing
            assert len(queue) == 0  # goes to dirty, not the queue
            queue.done(item)
            item, _t = yield queue.get()
            order.append(("second", item))
            queue.done(item)

        sim.run(until=sim.process(worker()))
        assert order == [("first", "a"), ("second", "a")]

    def test_get_blocks_until_add(self, sim):
        queue = WorkQueue(sim)
        got = []

        def worker():
            item, _t = yield queue.get()
            got.append((item, sim.now))

        def producer():
            yield sim.timeout(4)
            queue.add("late")

        sim.process(worker())
        sim.process(producer())
        sim.run()
        assert got == [("late", 4)]

    def test_wait_time_accounting(self, sim):
        queue = WorkQueue(sim)

        def producer():
            queue.add("a")
            yield sim.timeout(0)

        def worker():
            yield sim.timeout(3)
            item, enqueued_at = yield queue.get()
            assert sim.now - enqueued_at == pytest.approx(3)
            queue.done(item)

        sim.process(producer())
        process = sim.process(worker())
        sim.run(until=process)
        assert queue.wait_time_total == pytest.approx(3)

    def test_shutdown_fails_waiters(self, sim):
        queue = WorkQueue(sim)
        failures = []

        def worker():
            try:
                yield queue.get()
            except ShutDown:
                failures.append(True)

        def closer():
            yield sim.timeout(1)
            queue.shutdown()

        sim.process(worker())
        sim.process(closer())
        sim.run()
        assert failures == [True]

    def test_add_after_shutdown_is_noop(self, sim):
        queue = WorkQueue(sim)
        queue.shutdown()
        queue.add("x")
        assert len(queue) == 0

    def test_two_workers_share_items(self, sim):
        queue = WorkQueue(sim)
        for i in range(10):
            queue.add(i)
        seen = []

        def worker(name):
            while True:
                try:
                    item, _t = yield queue.get()
                except ShutDown:
                    return
                yield sim.timeout(1)
                seen.append((name, item))
                queue.done(item)

        sim.process(worker("w1"))
        sim.process(worker("w2"))
        sim.run(until=10)
        queue.shutdown()
        sim.run()
        assert len(seen) == 10
        assert {name for name, _item in seen} == {"w1", "w2"}


class TestDelayingQueue:
    def test_add_after(self, sim):
        queue = DelayingQueue(sim)
        queue.add_after("a", 5)
        got = drain(sim, queue, 1)
        assert got[0][1] == 5

    def test_add_after_zero_is_immediate(self, sim):
        queue = DelayingQueue(sim)
        queue.add_after("a", 0)
        assert len(queue) == 1


class TestRateLimitingQueue:
    def test_backoff_grows_exponentially(self, sim):
        queue = RateLimitingQueue(sim, base_delay=1.0, max_delay=100.0,
                                  jitter=0.0)
        times = []

        def worker():
            for _ in range(3):
                item, _t = yield queue.get()
                times.append(sim.now)
                queue.done(item)
                queue.add_rate_limited(item)

        queue.add_rate_limited("x")  # first failure: 1s delay
        process = sim.process(worker())
        sim.run(until=process)
        # Delays: 1, then 2, then 4 -> cumulative 1, 3, 7.
        assert times == [1, 3, 7]

    def test_forget_resets_backoff(self, sim):
        queue = RateLimitingQueue(sim, base_delay=1.0)
        queue.add_rate_limited("x")
        assert queue.num_requeues("x") == 1
        queue.forget("x")
        assert queue.num_requeues("x") == 0

    def test_max_delay_cap(self, sim):
        queue = RateLimitingQueue(sim, base_delay=1.0, max_delay=4.0,
                                  jitter=0.0)
        for _ in range(10):
            queue.num_requeues("x")
            queue._failures["x"] = queue._failures.get("x", 0) + 1
        queue.add_rate_limited("x")
        got = drain(sim, queue, 1)
        assert got[0][1] <= 4.0 + 1e-9
