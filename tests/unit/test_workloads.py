"""Unit tests for the load generator and stress-result containers."""

import pytest

from repro.apiserver import ADMIN, APIServer
from repro.clientgo import Client
from repro.objects import make_namespace
from repro.simkernel import Simulation
from repro.workloads import LoadGenerator, StressResult, TenantLoadPattern


@pytest.fixture
def setup():
    sim = Simulation()
    api = APIServer(sim, "api")
    client = Client(sim, api, ADMIN, qps=100000, burst=100000)
    sim.run(until=sim.process(client.create(make_namespace("default"))))
    return sim, api, client


def pod_count(api):
    return api.store.count_prefix("/registry/pods/")


class TestLoadGenerator:
    def test_paced_submission_rate(self, setup):
        sim, api, client = setup
        generator = LoadGenerator(sim)
        pattern = TenantLoadPattern(10, mode="paced", rate=2.0)
        sim.run(until=sim.process(
            generator.run_tenant_load(client, pattern)))
        assert generator.submitted == 10
        assert pod_count(api) == 10
        # 10 pods at 2/s: last submit near 4.5-5s.
        assert generator.last_submit >= 4.0

    def test_burst_submission_is_concurrent(self, setup):
        sim, api, client = setup
        generator = LoadGenerator(sim)
        pattern = TenantLoadPattern(50, mode="burst")
        sim.run(until=sim.process(
            generator.run_tenant_load(client, pattern)))
        assert generator.submitted == 50
        # Burst: everything lands within a fraction of a second.
        assert generator.last_submit - generator.first_submit < 0.5

    def test_sequential_submission(self, setup):
        sim, api, client = setup
        generator = LoadGenerator(sim)
        pattern = TenantLoadPattern(5, mode="sequential")
        sim.run(until=sim.process(
            generator.run_tenant_load(client, pattern)))
        assert generator.submitted == 5

    def test_run_all_fans_out(self, setup):
        sim, api, client = setup
        generator = LoadGenerator(sim)
        jobs = [(client, TenantLoadPattern(5, mode="burst",
                                           name_prefix=f"j{i}"))
                for i in range(3)]
        sim.run(until=sim.process(generator.run_all(jobs)))
        assert generator.submitted == 15
        assert pod_count(api) == 15

    def test_errors_counted_not_raised(self, setup):
        sim, api, client = setup
        generator = LoadGenerator(sim)
        # Same name prefix + same indices = duplicate names -> errors.
        pattern = TenantLoadPattern(3, mode="sequential",
                                    name_prefix="dup")
        sim.run(until=sim.process(
            generator.run_tenant_load(client, pattern)))
        sim.run(until=sim.process(
            generator.run_tenant_load(client, pattern)))
        assert generator.errors == 3
        assert generator.submitted == 3


class TestStressResult:
    def _result(self, values):
        return StressResult(mode="t", num_pods=len(values), num_tenants=1,
                            creation_times=values)

    def test_mean_and_percentiles(self):
        result = self._result([1.0, 2.0, 3.0, 4.0])
        assert result.mean == 2.5
        assert result.percentile(0) == 1.0
        assert result.percentile(100) == 4.0
        assert result.percentile(50) in (2.0, 3.0)

    def test_empty(self):
        result = self._result([])
        assert result.mean == 0.0
        assert result.percentile(99) == 0.0

    def test_histogram_buckets(self):
        result = self._result([0.1, 0.9, 1.5, 2.4, 2.6])
        histogram = dict(result.histogram(bucket_width=1.0))
        assert histogram[0.0] == 2
        assert histogram[1.0] == 1
        assert histogram[2.0] == 2
