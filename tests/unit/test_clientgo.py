"""Unit tests for client, reflector, and shared informer."""

import pytest

from repro.apiserver import ADMIN, APIServer, TooManyRequests
from repro.clientgo import Client, InformerFactory, SharedInformer
from repro.objects import make_namespace, make_pod
from repro.simkernel import Simulation


@pytest.fixture
def sim():
    return Simulation()


@pytest.fixture
def api(sim):
    return APIServer(sim, "api")


@pytest.fixture
def client(sim, api):
    return Client(sim, api, ADMIN, user_agent="test", qps=10000, burst=10000)


def run(sim, coroutine):
    return sim.run(until=sim.process(coroutine))


def bootstrap(sim, client):
    run(sim, client.create(make_namespace("default")))


class TestClient:
    def test_qps_throttling_spaces_requests(self, sim, api):
        slow = Client(sim, api, ADMIN, qps=2, burst=1, user_agent="slow")
        bootstrap(sim, slow)
        times = []

        def burst():
            for i in range(3):
                yield from slow.create(make_pod(f"p{i}"))
                times.append(sim.now)

        run(sim, burst())
        # 2 qps with burst 1: requests roughly 0.5s apart.
        assert times[1] - times[0] >= 0.45
        assert times[2] - times[1] >= 0.45

    def test_retry_on_retryable_error(self, sim, api, client):
        bootstrap(sim, client)
        calls = []
        original = api.get

        def flaky_get(credential, plural, name, namespace=None):
            calls.append(1)
            if len(calls) < 3:
                raise TooManyRequests("slow down")
            return (yield from original(credential, plural, name,
                                        namespace=namespace))

        run(sim, client.create(make_pod("p")))
        api.get = flaky_get
        pod = run(sim, client.get("pods", "p", namespace="default"))
        assert pod.name == "p"
        assert len(calls) == 3

    def test_non_retryable_error_propagates(self, sim, api, client):
        from repro.apiserver import NotFound

        bootstrap(sim, client)
        with pytest.raises(NotFound):
            run(sim, client.get("pods", "missing", namespace="default"))

    def test_cpu_account_charged(self, sim, api):
        account = sim.accounting.cpu_account("syncer-test")
        charged = Client(sim, api, ADMIN, cpu_account=account,
                         user_agent="charged")
        bootstrap(sim, charged)
        assert account.seconds > 0

    def test_kubeconfig_builds_client(self, sim, api):
        from repro.clientgo import Kubeconfig

        kubeconfig = Kubeconfig(api, ADMIN)
        built = kubeconfig.client(sim)
        bootstrap(sim, built)
        pod = run(sim, built.create(make_pod("p")))
        assert pod.metadata.uid


class TestInformer:
    def test_initial_list_populates_cache(self, sim, client):
        bootstrap(sim, client)
        run(sim, client.create(make_pod("pre-existing")))
        informer = SharedInformer(sim, client, "pods")
        informer.start()
        sim.run(until=sim.now + 1)
        assert informer.has_synced
        assert "default/pre-existing" in informer.cache

    def test_watch_events_update_cache(self, sim, client):
        bootstrap(sim, client)
        informer = SharedInformer(sim, client, "pods")
        informer.start()
        sim.run(until=sim.now + 0.5)
        run(sim, client.create(make_pod("new")))
        sim.run(until=sim.now + 0.5)
        assert informer.cache.get("default/new") is not None

    def test_handlers_fire_in_order(self, sim, client):
        bootstrap(sim, client)
        events = []
        informer = SharedInformer(sim, client, "pods")
        informer.add_handlers(
            on_add=lambda o: events.append(("add", o.name)),
            on_update=lambda old, new: events.append(("update", new.name)),
            on_delete=lambda o: events.append(("delete", o.name)),
        )
        informer.start()
        sim.run(until=sim.now + 0.5)

        def mutate():
            pod = yield from client.create(make_pod("p"))
            pod.metadata.labels["x"] = "1"
            yield from client.update(pod)
            yield from client.delete("pods", "p", namespace="default")

        run(sim, mutate())
        sim.run(until=sim.now + 0.5)
        assert events == [("add", "p"), ("update", "p"), ("delete", "p")]

    def test_get_copy_isolated_from_cache(self, sim, client):
        bootstrap(sim, client)
        informer = SharedInformer(sim, client, "pods")
        informer.start()
        run(sim, client.create(make_pod("p")))
        sim.run(until=sim.now + 0.5)
        copy1 = informer.cache.get_copy("default/p")
        copy1.status.phase = "Mutated"
        assert informer.cache.get("default/p").status.phase == "Pending"

    def test_relist_after_apiserver_crash(self, sim, api, client):
        bootstrap(sim, client)
        informer = SharedInformer(sim, client, "pods")
        informer.start()
        run(sim, client.create(make_pod("before")))
        sim.run(until=sim.now + 0.5)
        api.crash()
        sim.run(until=sim.now + 0.5)
        api.recover()
        run(sim, client.create(make_pod("after")))
        sim.run(until=sim.now + 3)
        assert informer.cache.get("default/after") is not None
        assert informer.reflector.list_count >= 2

    def test_cache_byte_accounting(self, sim, client):
        bootstrap(sim, client)
        informer = SharedInformer(sim, client, "pods", size_factor=10.0,
                                  size_overhead=100)
        informer.start()
        sim.run(until=sim.now + 0.2)
        assert informer.cache.total_bytes == 0
        run(sim, client.create(make_pod("p")))
        sim.run(until=sim.now + 0.5)
        first = informer.cache.total_bytes
        assert first > 100
        run(sim, client.delete("pods", "p", namespace="default"))
        sim.run(until=sim.now + 0.5)
        assert informer.cache.total_bytes == 0

    def test_field_selector_informer_scopes_cache(self, sim, client):
        bootstrap(sim, client)
        factory = InformerFactory(sim, client)
        scoped = factory.informer("pods",
                                  field_selector={"spec.nodeName": "n1"})
        scoped.start()
        sim.run(until=sim.now + 0.2)
        run(sim, client.create(make_pod("a", node_name="n1")))
        run(sim, client.create(make_pod("b", node_name="n2")))
        sim.run(until=sim.now + 0.5)
        assert "default/a" in scoped.cache
        assert "default/b" not in scoped.cache

    def test_factory_reuses_informers(self, sim, client):
        factory = InformerFactory(sim, client)
        assert factory.informer("pods") is factory.informer("pods")
        assert factory.informer("pods") is not factory.informer("services")


class TestWorkQueueShutdown:
    """Shutdown-path audit: waiters wake, late done() never raises."""

    def test_shutdown_wakes_blocked_waiters(self, sim):
        from repro.clientgo import ShutDown, WorkQueue

        queue = WorkQueue(sim)
        outcomes = []

        def worker():
            try:
                yield queue.get()
            except ShutDown:
                outcomes.append("shutdown")

        for _ in range(3):
            sim.spawn(worker())
        sim.run(until=sim.now + 0.1)
        queue.shutdown()
        sim.run(until=sim.now + 0.1)
        assert outcomes == ["shutdown", "shutdown", "shutdown"]

    def test_done_after_shutdown_is_noop(self, sim):
        from repro.clientgo import WorkQueue

        queue = WorkQueue(sim)
        queue.add("a")

        def worker():
            item, _t = yield queue.get()
            queue.add(item)  # goes dirty while processing
            queue.shutdown()
            queue.done(item)  # must not raise nor re-queue

        sim.run(until=sim.spawn(worker()))
        assert len(queue) == 0
        assert not queue._dirty

    def test_interrupted_waiter_does_not_swallow_items(self, sim):
        """A worker interrupted while blocked in get() leaves a dead
        event queued; items must skip it and reach live consumers."""
        from repro.clientgo import WorkQueue

        queue = WorkQueue(sim)
        got = []

        def doomed():
            try:
                yield queue.get()
            except Exception:
                return

        def survivor():
            item, _t = yield queue.get()
            got.append(item)
            queue.done(item)

        victim = sim.spawn(doomed())
        sim.run(until=sim.now + 0.05)
        victim.interrupt("killed while waiting")
        sim.run(until=sim.now + 0.05)
        sim.spawn(survivor())
        sim.run(until=sim.now + 0.05)
        queue.add("x")
        sim.run(until=sim.now + 0.05)
        assert got == ["x"]
        assert not queue._processing

    def test_fair_queue_interrupted_waiter_and_shutdown(self, sim):
        from repro.clientgo import FairWorkQueue, ShutDown

        queue = FairWorkQueue(sim)
        queue.register_tenant("t1")
        got, outcomes = [], []

        def doomed():
            try:
                yield queue.get()
            except Exception:
                return

        def survivor():
            try:
                tenant, key, _t = yield queue.get()
                got.append((tenant, key))
                queue.done(tenant, key)
            except ShutDown:
                outcomes.append("shutdown")

        victim = sim.spawn(doomed())
        sim.run(until=sim.now + 0.05)
        victim.interrupt("killed while waiting")
        sim.run(until=sim.now + 0.05)
        sim.spawn(survivor())
        sim.run(until=sim.now + 0.05)
        queue.add("t1", "k")
        sim.run(until=sim.now + 0.05)
        assert got == [("t1", "k")]

        blocked = sim.spawn(survivor())
        sim.run(until=sim.now + 0.05)
        queue.shutdown()
        sim.run(until=sim.now + 0.05)
        assert not blocked.is_alive
        assert outcomes == ["shutdown"]

    def test_fair_queue_done_after_remove_tenant(self, sim):
        """A late done() must not resurrect a removed tenant's queue."""
        from repro.clientgo import FairWorkQueue

        queue = FairWorkQueue(sim)
        queue.add("t1", "k")

        def worker():
            tenant, key, _t = yield queue.get()
            queue.add(tenant, key)  # dirty while processing
            queue.remove_tenant(tenant)
            queue.done(tenant, key)  # must not re-register t1

        sim.run(until=sim.spawn(worker()))
        assert "t1" not in queue.tenants
        assert len(queue) == 0

    def test_fair_queue_done_after_shutdown(self, sim):
        from repro.clientgo import FairWorkQueue

        queue = FairWorkQueue(sim)
        queue.add("t1", "k")

        def worker():
            tenant, key, _t = yield queue.get()
            queue.add(tenant, key)
            queue.shutdown()
            queue.done(tenant, key)  # no raise, no re-queue

        sim.run(until=sim.spawn(worker()))
        assert len(queue) == 0


class TestReflectorStop:
    def test_stop_during_inflight_list_leaves_no_streams(self, sim, api,
                                                         client):
        """stop() while the initial LIST is in flight must not leak the
        watch stream or the server/store registrations."""
        bootstrap(sim, client)
        run(sim, client.create(make_pod("p")))
        informer = SharedInformer(sim, client, "pods")
        informer.start()
        # A hair of sim time: inside the LIST, before the WATCH opens.
        sim.run(until=sim.now + 1e-6)
        assert not informer.has_synced
        informer.stop()
        sim.run(until=sim.now + 2.0)
        assert api._watch_streams == []
        assert len(api.store._watches) == 0
        assert not informer.has_synced  # never completed a list

    def test_stop_after_sync_unregisters_stream(self, sim, api, client):
        bootstrap(sim, client)
        informer = SharedInformer(sim, client, "pods")
        informer.start()
        sim.run(until=sim.now + 1.0)
        assert informer.has_synced
        assert len(api._watch_streams) == 1
        informer.stop()
        sim.run(until=sim.now + 1.0)
        assert api._watch_streams == []
        assert len(api.store._watches) == 0

    def test_repeated_crash_relists_do_not_accumulate_streams(self, sim, api,
                                                              client):
        """Reflector relists after each crash; dead streams must be
        deregistered rather than pile up on the server."""
        bootstrap(sim, client)
        informer = SharedInformer(sim, client, "pods")
        informer.start()
        sim.run(until=sim.now + 1.0)
        for _ in range(3):
            api.crash()
            sim.run(until=sim.now + 0.5)
            api.recover()
            sim.run(until=sim.now + 8.0)  # ride out relist backoff
        assert informer.has_synced
        assert len(api._watch_streams) == 1
        assert len(api.store._watches) == 1

    def test_relist_backoff_grows_and_resets(self, sim, api, client):
        from repro.clientgo import Reflector

        class NullDelegate:
            def on_replace(self, objs):
                pass

            def on_event(self, kind, obj):
                pass

        bootstrap(sim, client)
        reflector = Reflector(sim, client, "pods", NullDelegate(),
                              relist_backoff=1.0, max_relist_backoff=8.0,
                              backoff_jitter=0.0)
        reflector._consecutive_failures = 0
        assert reflector.next_backoff() == 1.0
        reflector._consecutive_failures = 2
        assert reflector.next_backoff() == 4.0
        reflector._consecutive_failures = 10
        assert reflector.next_backoff() == 8.0  # capped
        jittered = Reflector(sim, client, "pods", NullDelegate(),
                             relist_backoff=1.0, max_relist_backoff=8.0,
                             backoff_jitter=0.5)
        jittered._consecutive_failures = 1
        delay = jittered.next_backoff()
        assert 2.0 <= delay <= 3.0
