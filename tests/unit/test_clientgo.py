"""Unit tests for client, reflector, and shared informer."""

import pytest

from repro.apiserver import ADMIN, APIServer, TooManyRequests
from repro.clientgo import Client, InformerFactory, SharedInformer
from repro.objects import make_namespace, make_pod
from repro.simkernel import Simulation


@pytest.fixture
def sim():
    return Simulation()


@pytest.fixture
def api(sim):
    return APIServer(sim, "api")


@pytest.fixture
def client(sim, api):
    return Client(sim, api, ADMIN, user_agent="test", qps=10000, burst=10000)


def run(sim, coroutine):
    return sim.run(until=sim.process(coroutine))


def bootstrap(sim, client):
    run(sim, client.create(make_namespace("default")))


class TestClient:
    def test_qps_throttling_spaces_requests(self, sim, api):
        slow = Client(sim, api, ADMIN, qps=2, burst=1, user_agent="slow")
        bootstrap(sim, slow)
        times = []

        def burst():
            for i in range(3):
                yield from slow.create(make_pod(f"p{i}"))
                times.append(sim.now)

        run(sim, burst())
        # 2 qps with burst 1: requests roughly 0.5s apart.
        assert times[1] - times[0] >= 0.45
        assert times[2] - times[1] >= 0.45

    def test_retry_on_retryable_error(self, sim, api, client):
        bootstrap(sim, client)
        calls = []
        original = api.get

        def flaky_get(credential, plural, name, namespace=None):
            calls.append(1)
            if len(calls) < 3:
                raise TooManyRequests("slow down")
            return (yield from original(credential, plural, name,
                                        namespace=namespace))

        run(sim, client.create(make_pod("p")))
        api.get = flaky_get
        pod = run(sim, client.get("pods", "p", namespace="default"))
        assert pod.name == "p"
        assert len(calls) == 3

    def test_non_retryable_error_propagates(self, sim, api, client):
        from repro.apiserver import NotFound

        bootstrap(sim, client)
        with pytest.raises(NotFound):
            run(sim, client.get("pods", "missing", namespace="default"))

    def test_cpu_account_charged(self, sim, api):
        account = sim.accounting.cpu_account("syncer-test")
        charged = Client(sim, api, ADMIN, cpu_account=account,
                         user_agent="charged")
        bootstrap(sim, charged)
        assert account.seconds > 0

    def test_kubeconfig_builds_client(self, sim, api):
        from repro.clientgo import Kubeconfig

        kubeconfig = Kubeconfig(api, ADMIN)
        built = kubeconfig.client(sim)
        bootstrap(sim, built)
        pod = run(sim, built.create(make_pod("p")))
        assert pod.metadata.uid


class TestInformer:
    def test_initial_list_populates_cache(self, sim, client):
        bootstrap(sim, client)
        run(sim, client.create(make_pod("pre-existing")))
        informer = SharedInformer(sim, client, "pods")
        informer.start()
        sim.run(until=sim.now + 1)
        assert informer.has_synced
        assert "default/pre-existing" in informer.cache

    def test_watch_events_update_cache(self, sim, client):
        bootstrap(sim, client)
        informer = SharedInformer(sim, client, "pods")
        informer.start()
        sim.run(until=sim.now + 0.5)
        run(sim, client.create(make_pod("new")))
        sim.run(until=sim.now + 0.5)
        assert informer.cache.get("default/new") is not None

    def test_handlers_fire_in_order(self, sim, client):
        bootstrap(sim, client)
        events = []
        informer = SharedInformer(sim, client, "pods")
        informer.add_handlers(
            on_add=lambda o: events.append(("add", o.name)),
            on_update=lambda old, new: events.append(("update", new.name)),
            on_delete=lambda o: events.append(("delete", o.name)),
        )
        informer.start()
        sim.run(until=sim.now + 0.5)

        def mutate():
            pod = yield from client.create(make_pod("p"))
            pod.metadata.labels["x"] = "1"
            yield from client.update(pod)
            yield from client.delete("pods", "p", namespace="default")

        run(sim, mutate())
        sim.run(until=sim.now + 0.5)
        assert events == [("add", "p"), ("update", "p"), ("delete", "p")]

    def test_get_copy_isolated_from_cache(self, sim, client):
        bootstrap(sim, client)
        informer = SharedInformer(sim, client, "pods")
        informer.start()
        run(sim, client.create(make_pod("p")))
        sim.run(until=sim.now + 0.5)
        copy1 = informer.cache.get_copy("default/p")
        copy1.status.phase = "Mutated"
        assert informer.cache.get("default/p").status.phase == "Pending"

    def test_relist_after_apiserver_crash(self, sim, api, client):
        bootstrap(sim, client)
        informer = SharedInformer(sim, client, "pods")
        informer.start()
        run(sim, client.create(make_pod("before")))
        sim.run(until=sim.now + 0.5)
        api.crash()
        sim.run(until=sim.now + 0.5)
        api.recover()
        run(sim, client.create(make_pod("after")))
        sim.run(until=sim.now + 3)
        assert informer.cache.get("default/after") is not None
        assert informer.reflector.list_count >= 2

    def test_cache_byte_accounting(self, sim, client):
        bootstrap(sim, client)
        informer = SharedInformer(sim, client, "pods", size_factor=10.0,
                                  size_overhead=100)
        informer.start()
        sim.run(until=sim.now + 0.2)
        assert informer.cache.total_bytes == 0
        run(sim, client.create(make_pod("p")))
        sim.run(until=sim.now + 0.5)
        first = informer.cache.total_bytes
        assert first > 100
        run(sim, client.delete("pods", "p", namespace="default"))
        sim.run(until=sim.now + 0.5)
        assert informer.cache.total_bytes == 0

    def test_field_selector_informer_scopes_cache(self, sim, client):
        bootstrap(sim, client)
        factory = InformerFactory(sim, client)
        scoped = factory.informer("pods",
                                  field_selector={"spec.nodeName": "n1"})
        scoped.start()
        sim.run(until=sim.now + 0.2)
        run(sim, client.create(make_pod("a", node_name="n1")))
        run(sim, client.create(make_pod("b", node_name="n2")))
        sim.run(until=sim.now + 0.5)
        assert "default/a" in scoped.cache
        assert "default/b" not in scoped.cache

    def test_factory_reuses_informers(self, sim, client):
        factory = InformerFactory(sim, client)
        assert factory.informer("pods") is factory.informer("pods")
        assert factory.informer("pods") is not factory.informer("services")
