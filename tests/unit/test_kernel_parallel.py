"""Unit tests for the kernel's execution machinery added for the
parallel backend: the hierarchical timer wheel, the deterministic merge
barrier, orphan-timer cancellation, and the kernel-correctness bugfix
sweep (late-failing ``any_of`` losers, waiter-abandonment defusing, and
the Event-wide undefused-failure check)."""

import threading

import pytest

from repro.simkernel import Simulation
from repro.simkernel.parallel import MergeBarrier, ParallelExecutor, shard_hash
from repro.simkernel.timerwheel import GRANULARITY, MIN_WHEEL_DELAY, SPAN


# ----------------------------------------------------------------------
# Timer wheel
# ----------------------------------------------------------------------


class TestTimerWheel:
    def test_far_timers_are_staged_off_the_heap(self):
        sim = Simulation()
        fired = []
        for delay in (1.0, 10.0, 300.0):
            sim.timeout(delay).add_callback(
                lambda e, d=delay: fired.append((sim.now, d)))
        stats = sim.kernel_stats()
        assert stats["wheel_scheduled"] == 3
        assert len(sim._heap) == 0  # nothing due: all staged in the wheel
        sim.run()
        assert fired == [(1.0, 1.0), (10.0, 10.0), (300.0, 300.0)]

    def test_near_timers_bypass_the_wheel(self):
        sim = Simulation()
        sim.timeout(MIN_WHEEL_DELAY / 2).add_callback(lambda e: None)
        assert sim.kernel_stats()["wheel_scheduled"] == 0
        assert len(sim._heap) == 1

    def test_wheel_and_heap_tie_fires_in_creation_order(self):
        """Same fire time, one entry staged in the wheel and one in the
        heap: the original (time, seq) keys decide, not the staging path."""
        sim = Simulation()
        order = []
        # seq 1: delay 0.5 from t=0 -> wheel.
        sim.timeout(0.5).add_callback(lambda e: order.append("wheel"))
        sim.run(until=0.3)
        # seq 2: delay 0.2 from t=0.3 -> heap, same fire time 0.5.
        sim.timeout(0.2).add_callback(lambda e: order.append("heap"))
        sim.run()
        assert sim.now == 0.5
        assert order == ["wheel", "heap"]

    def test_same_time_wheel_entries_keep_seq_order(self):
        sim = Simulation()
        order = []
        for name in ("a", "b", "c"):
            sim.timeout(2.0).add_callback(
                lambda e, n=name: order.append(n))
        sim.run()
        assert order == ["a", "b", "c"]

    def test_long_timers_cascade_across_levels(self):
        # Level 1 starts at GRANULARITY * SPAN, level 2 at
        # GRANULARITY * SPAN**2; both must step down and fire exactly.
        level1_delay = GRANULARITY * SPAN * 3      # 48 s
        level2_delay = GRANULARITY * SPAN ** 2 * 2  # 2048 s
        sim = Simulation()
        fired = []
        sim.timeout(level2_delay).add_callback(
            lambda e: fired.append(sim.now))
        sim.timeout(level1_delay).add_callback(
            lambda e: fired.append(sim.now))
        sim.run()
        assert fired == [level1_delay, level2_delay]
        assert sim.now == level2_delay

    def test_interleaved_near_and_far_timers_dispatch_in_time_order(self):
        sim = Simulation()
        fired = []
        delays = [0.1, 7.0, 0.26, 100.0, 3.0, 0.24, 17.0, 0.5]
        for delay in delays:
            sim.timeout(delay).add_callback(
                lambda e, d=delay: fired.append((sim.now, d)))
        sim.run()
        assert fired == sorted((d, d) for d in delays)

    def test_peek_sees_wheel_entries(self):
        sim = Simulation()
        sim.timeout(5.0).add_callback(lambda e: None)
        assert sim.peek() == 5.0
        sim.run()
        assert sim.peek() is None

    def test_pending_counts_wheel_entries(self):
        sim = Simulation()
        sim.timeout(5.0).add_callback(lambda e: None)
        sim.timeout(0.1).add_callback(lambda e: None)
        assert sim.kernel_stats()["pending"] == 2


# ----------------------------------------------------------------------
# Orphan cancellation (the any_of-loser Timeout satellite)
# ----------------------------------------------------------------------


class TestOrphanCancellation:
    def test_any_of_loser_in_wheel_is_cancelled(self):
        """A losing Timeout staged in the wheel never reaches the heap:
        the run ends at the winner's time, not the loser's deadline."""
        sim = Simulation()

        def proc():
            yield sim.any_of([sim.timeout(1.0, value="fast"),
                              sim.timeout(600.0, value="slow")])

        sim.process(proc())
        sim.run()
        assert sim.now == 1.0  # pre-fix: the loop idled until t=600
        assert sim.kernel_stats()["timers_cancelled"] == 1
        assert sim.kernel_stats()["pending"] == 0

    def test_any_of_loser_in_heap_is_skipped(self):
        sim = Simulation()

        def proc():
            # Both delays below MIN_WHEEL_DELAY: both go to the heap, so
            # the loser is skipped at pop time instead of flush time.
            yield sim.any_of([sim.timeout(0.1, value="fast"),
                              sim.timeout(0.2, value="slow")])

        sim.process(proc())
        sim.run()
        assert sim.kernel_stats()["orphans_skipped"] >= 1

    def test_detached_condition_still_delivers_to_other_waiter(self):
        """Orphaning only drops the *condition's* callback: another
        process waiting on the loser directly still gets its value."""
        sim = Simulation()
        seen = []

        def waiter(event):
            value = yield event
            seen.append((sim.now, value))

        def racer(event):
            yield sim.any_of([sim.timeout(1.0, value="fast"), event])

        slow = sim.timeout(10.0, value="slow")
        sim.process(racer(slow))
        sim.process(waiter(slow))
        sim.run()
        assert seen == [(10.0, "slow")]


# ----------------------------------------------------------------------
# Bugfix sweep regressions
# ----------------------------------------------------------------------


class TestUndefusedFailures:
    def test_late_failure_of_any_of_loser_surfaces(self):
        """A constituent that fails *after* the condition already
        triggered must not be swallowed by Condition._on_event: with no
        other waiter, the undefused failure crashes the run loudly."""
        sim = Simulation()

        def loser():
            yield sim.timeout(5)
            raise RuntimeError("late boom")

        def racer():
            yield sim.any_of([sim.timeout(1), sim.process(loser())])

        sim.process(racer())
        with pytest.raises(RuntimeError, match="late boom"):
            sim.run()

    def test_late_failure_with_direct_waiter_is_delivered(self):
        sim = Simulation()
        caught = []

        def loser():
            yield sim.timeout(5)
            raise RuntimeError("late boom")

        def racer(proc):
            yield sim.any_of([sim.timeout(1), proc])

        def handler(proc):
            try:
                yield proc
            except RuntimeError as exc:
                caught.append(str(exc))

        proc = sim.process(loser())
        sim.process(racer(proc))
        sim.process(handler(proc))
        sim.run()
        assert caught == ["late boom"]

    def test_plain_event_unobserved_failure_crashes_run(self):
        """The undefused-failure check covers every Event, not only
        Process: a failed bare event with no waiter stops the run."""
        sim = Simulation()
        sim.event().fail(RuntimeError("nobody watching"))
        with pytest.raises(RuntimeError, match="nobody watching"):
            sim.run()

    def test_defused_event_failure_passes_silently(self):
        sim = Simulation()
        event = sim.event()
        event.fail(RuntimeError("handled elsewhere"))
        event.defused = True
        sim.run()
        assert sim.kernel_stats()["pending"] == 0

    def test_detaching_last_waiter_defuses_failed_event(self):
        """Walking away from a failed event (e.g. an interrupted worker
        abandoning a queue wait) counts as handling it."""
        sim = Simulation()
        event = sim.event()
        callback = lambda e: None  # noqa: E731
        event.add_callback(callback)
        event.fail(RuntimeError("queue shut down"))
        event._detach(callback)
        assert event.defused
        sim.run()  # must not raise

    def test_detaching_from_pending_event_does_not_defuse(self):
        sim = Simulation()
        event = sim.event()
        callback = lambda e: None  # noqa: E731
        event.add_callback(callback)
        event._detach(callback)
        assert not event.defused


# ----------------------------------------------------------------------
# Merge barrier & partitioning
# ----------------------------------------------------------------------


class TestMergeBarrier:
    def test_turns_granted_in_global_seq_order(self):
        barrier = MergeBarrier()
        barrier.start((3, 5, 9))
        order = []

        def worker(seq):
            assert barrier.acquire_turn(seq)
            order.append(seq)
            barrier.release_turn()

        threads = [threading.Thread(target=worker, args=(seq,))
                   for seq in (9, 5, 3)]  # deliberately reversed start
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=10)
        assert order == [3, 5, 9]

    def test_fail_denies_later_turns(self):
        barrier = MergeBarrier()
        barrier.start((1, 2))
        boom = RuntimeError("boom")
        barrier.fail(1, boom)
        assert barrier.acquire_turn(2) is False
        assert barrier.failure == (1, boom)


class TestPartitioning:
    def test_affinity_routes_like_the_sharded_queue(self):
        sim = Simulation()
        executor = ParallelExecutor(sim, workers=4)
        try:
            class Item:
                def __init__(self, affinity):
                    self.affinity = affinity

            entries = [(0.0, seq, Item(f"tenant-{seq % 3}"))
                       for seq in range(12)]
            parts = executor.partition(entries)
            for part in parts:
                for _when, seq, item in part:
                    expected = shard_hash(item.affinity) % 4
                    assert parts[expected] is part
        finally:
            executor.close()

    def test_no_affinity_round_robins(self):
        sim = Simulation()
        executor = ParallelExecutor(sim, workers=2)
        try:
            class Item:
                affinity = None

            entries = [(0.0, seq, Item()) for seq in range(4)]
            parts = executor.partition(entries)
            assert [len(part) for part in parts] == [2, 2]
        finally:
            executor.close()


class TestAffinityPropagation:
    def test_process_affinity_inherited_by_its_events(self):
        sim = Simulation()
        seen = {}

        def proc():
            timer = sim.timeout(1)
            seen["affinity"] = timer.affinity
            yield timer

        sim.process(proc(), affinity="tenant-a")
        sim.run()
        assert seen["affinity"] == "tenant-a"

    def test_events_without_process_have_no_affinity(self):
        sim = Simulation()
        assert sim.timeout(1).affinity is None


# ----------------------------------------------------------------------
# Parallel execution: serial equivalence on the kernel itself
# ----------------------------------------------------------------------


def _traced_run(workers, seed=7):
    """A same-timestamp-heavy workload; returns its dispatch trace."""
    sim = Simulation(seed=seed, workers=workers)
    trace = []

    def worker(index, tenant):
        for step in range(6):
            delay = sim.rng.choice([0.0, 0.1, 0.25, 0.5, 1.0])
            yield sim.timeout(delay)
            trace.append((round(sim.now, 9), index, step))

    for index in range(9):
        sim.process(worker(index, f"tenant-{index % 3}"),
                    affinity=f"tenant-{index % 3}")
    sim.run()
    stats = sim.kernel_stats()
    sim.close()
    return trace, stats


class TestParallelEquivalence:
    @pytest.mark.parametrize("workers", [1, 2, 4])
    def test_trace_identical_to_serial(self, workers):
        serial, _ = _traced_run(0)
        parallel, stats = _traced_run(workers)
        assert parallel == serial
        assert stats["workers"] == workers
        assert stats["parallel_batches"] > 0

    def test_batch_abort_leaves_serial_heap_state(self):
        """An undefused failure mid-batch re-pushes the untouched tail
        with original keys, identically in serial and parallel mode."""

        def run_once(workers):
            sim = Simulation(workers=workers)
            order = []
            for index in range(6):
                event = sim.event()
                if index == 2:
                    event.fail(RuntimeError("boom"))
                else:
                    event.succeed(index)
                    event.add_callback(
                        lambda e: order.append(e.value))
            with pytest.raises(RuntimeError, match="boom"):
                sim.run()
            at_abort = list(order)
            sim.run()  # resume: the re-pushed tail dispatches in order
            sim.close()
            return at_abort, order

        assert run_once(2) == run_once(0) == ([0, 1], [0, 1, 3, 4, 5])

    def test_run_until_event_stops_identically(self):
        def run_once(workers):
            sim = Simulation(workers=workers)
            order = []

            def maker(name):
                def proc():
                    yield sim.timeout(1.0)
                    order.append(name)
                    return name

                return proc()

            sim.process(maker("a"))
            stopper = sim.process(maker("b"))
            sim.process(maker("c"))
            result = sim.run(until=stopper)
            at_stop = list(order)
            sim.run()
            sim.close()
            return result, at_stop, order

        assert run_once(2) == run_once(0)

    def test_worker_validation(self):
        with pytest.raises(ValueError):
            Simulation(workers=-1)

    def test_env_var_selects_workers(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "3")
        sim = Simulation()
        assert sim.workers == 3
        monkeypatch.setenv("REPRO_WORKERS", "")
        assert Simulation().workers == 0


class TestShardHashReExport:
    def test_fairqueue_still_exports_shard_hash(self):
        from repro.clientgo.fairqueue import shard_hash as exported

        assert exported is shard_hash
