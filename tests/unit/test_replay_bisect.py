"""Unit tests for the replay-divergence bisector.

The e2e localization test uses the deliberate perturbation hook
(``Simulation(perturb_swap=K)`` dispatches the (K+1)-th ready item
before the K-th, once): the bisector must localize the divergence to
the exact first store event that moved and attribute it to the
component (sim process) that emitted it.
"""

from repro.analysis import Divergence, ReplayRecorder, first_divergence
from repro.simkernel import Simulation
from repro.storage import EtcdStore


def _recorded_run(seed, perturb=None):
    """Two writers racing to create keys at the same timestamp.

    With ``perturb_swap=1`` the dispatch order of their wakeups flips,
    so the store-event stream diverges at index 0.
    """
    sim = Simulation(seed=seed, perturb_swap=perturb)
    recorder = ReplayRecorder(sim)
    store = EtcdStore(sim, name="etcd")

    def writer(name):
        yield sim.timeout(1.0)
        store.create(f"/registry/x/{name}/a", {"writer": name})

    sim.process(writer("p1"), name="writer-p1")
    sim.process(writer("p2"), name="writer-p2")
    sim.run(until=5.0)
    return recorder


class TestRecorder:
    def test_records_every_store_emission(self):
        run = _recorded_run(seed=1)
        assert len(run.entries) == 2
        assert len(run.digests) == 2
        assert run.final_digest == run.digests[-1]

    def test_digests_are_cumulative(self):
        """Same event after different prefixes hashes differently."""
        run = _recorded_run(seed=1)
        assert run.digests[0] != run.digests[1]

    def test_component_attribution(self):
        run = _recorded_run(seed=1)
        assert {entry.component for entry in run.entries} == {
            "writer-p1", "writer-p2"}


class TestFirstDivergence:
    def test_identical_runs_return_none(self):
        run_a = _recorded_run(seed=1)
        run_b = _recorded_run(seed=1)
        assert run_a.final_digest == run_b.final_digest
        assert first_divergence(run_a, run_b) is None

    def test_perturbed_run_localized_to_first_event(self):
        """E2e: a flipped event order is bisected to its exact index."""
        run_a = _recorded_run(seed=1)
        run_b = _recorded_run(seed=1, perturb=1)
        assert run_a.final_digest != run_b.final_digest

        divergence = first_divergence(run_a, run_b)
        assert divergence is not None
        assert divergence.index == 0
        # The perturbation swapped the two writers' wakeups, so the
        # first store event belongs to a different component per run.
        assert {divergence.a.component, divergence.b.component} == {
            "writer-p1", "writer-p2"}
        assert divergence.a.key != divergence.b.key

    def test_divergence_format_names_component(self):
        run_a = _recorded_run(seed=1)
        run_b = _recorded_run(seed=1, perturb=1)
        divergence = first_divergence(run_a, run_b)
        text = divergence.format()
        assert "event 0" in text or "index 0" in text or "#0" in text
        assert "writer-p1" in text or "writer-p2" in text

    def test_length_mismatch_with_identical_prefix(self):
        """A truncated run diverges at the first missing index."""
        run_a = _recorded_run(seed=1)
        run_b = _recorded_run(seed=1)
        run_b.entries.pop()
        run_b.digests.pop()
        divergence = first_divergence(run_a, run_b)
        assert divergence is not None
        assert divergence.index == 1
        assert (divergence.a is None) != (divergence.b is None)

    def test_binary_search_on_long_streams(self):
        """Divergence deep in a long stream lands on the exact index."""
        digests_a = ["same"] * 40 + [f"a{i}" for i in range(24)]
        digests_b = ["same"] * 40 + [f"b{i}" for i in range(24)]

        class Run:
            def __init__(self, digests):
                self.digests = digests
                self.entries = [None] * len(digests)

        divergence = first_divergence(Run(digests_a), Run(digests_b))
        assert divergence.index == 40


class TestPerturbationHook:
    def test_perturb_is_one_shot(self):
        """Only the K-th dispatch is swapped; later order is untouched."""
        sim = Simulation(seed=1, perturb_swap=1)
        order = []

        def proc(name, delay):
            yield sim.timeout(delay)
            order.append(name)
            yield sim.timeout(1.0)
            order.append(name + "-late")

        sim.process(proc("a", 1.0), name="a")
        sim.process(proc("b", 1.0), name="b")
        sim.run(until=10.0)
        # Wakeups at t=1 swapped; the t=2 wakeups follow their (now
        # swapped) scheduling order deterministically.
        assert order[0] == "b"
        assert len(order) == 4

    def test_no_perturb_is_fifo(self):
        sim = Simulation(seed=1)
        order = []

        def proc(name):
            yield sim.timeout(1.0)
            order.append(name)

        sim.process(proc("a"), name="a")
        sim.process(proc("b"), name="b")
        sim.run(until=5.0)
        assert order == ["a", "b"]


class TestDivergenceObject:
    def test_component_property_prefers_a(self):
        class E:
            component = "syncer"
        divergence = Divergence(3, E(), None)
        assert divergence.component == "syncer"
