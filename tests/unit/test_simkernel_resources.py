"""Unit tests for simulated locks, semaphores, and channels."""

import pytest

from repro.simkernel import Channel, ChannelClosed, Lock, Semaphore, Simulation


def test_lock_mutual_exclusion():
    sim = Simulation()
    lock = Lock(sim)
    trace = []

    def worker(name, hold):
        yield lock.acquire()
        trace.append((f"{name}-in", sim.now))
        yield sim.timeout(hold)
        trace.append((f"{name}-out", sim.now))
        lock.release()

    sim.process(worker("a", 2))
    sim.process(worker("b", 3))
    sim.run()
    assert trace == [("a-in", 0), ("a-out", 2), ("b-in", 2), ("b-out", 5)]


def test_lock_counts_contention_and_wait_time():
    sim = Simulation()
    lock = Lock(sim)

    def worker(hold):
        yield lock.acquire()
        yield sim.timeout(hold)
        lock.release()

    for _ in range(3):
        sim.process(worker(1))
    sim.run()
    assert lock.acquisitions == 3
    assert lock.contentions == 2
    # Second waits 1s, third waits 2s.
    assert lock.wait_time == pytest.approx(3.0)


def test_lock_release_unlocked_raises():
    sim = Simulation()
    lock = Lock(sim)
    with pytest.raises(RuntimeError):
        lock.release()


def test_semaphore_caps_concurrency():
    sim = Simulation()
    sem = Semaphore(sim, capacity=2)
    active = []
    peak = []

    def worker():
        yield sem.acquire()
        active.append(1)
        peak.append(len(active))
        yield sim.timeout(1)
        active.pop()
        sem.release()

    for _ in range(5):
        sim.process(worker())
    sim.run()
    assert max(peak) == 2


def test_semaphore_bad_capacity():
    sim = Simulation()
    with pytest.raises(ValueError):
        Semaphore(sim, capacity=0)


def test_channel_put_then_get():
    sim = Simulation()
    chan = Channel(sim)
    got = []

    def producer():
        yield chan.put("x")
        yield sim.timeout(1)
        yield chan.put("y")

    def consumer():
        for _ in range(2):
            item = yield chan.get()
            got.append((item, sim.now))

    sim.process(producer())
    sim.process(consumer())
    sim.run()
    assert got == [("x", 0), ("y", 1)]


def test_channel_get_blocks_until_put():
    sim = Simulation()
    chan = Channel(sim)
    got = []

    def consumer():
        item = yield chan.get()
        got.append((item, sim.now))

    def producer():
        yield sim.timeout(5)
        yield chan.put("late")

    sim.process(consumer())
    sim.process(producer())
    sim.run()
    assert got == [("late", 5)]


def test_bounded_channel_blocks_producer():
    sim = Simulation()
    chan = Channel(sim, capacity=1)
    trace = []

    def producer():
        yield chan.put(1)
        trace.append(("put1", sim.now))
        yield chan.put(2)
        trace.append(("put2", sim.now))

    def consumer():
        yield sim.timeout(3)
        item = yield chan.get()
        trace.append((f"got{item}", sim.now))

    sim.process(producer())
    sim.process(consumer())
    sim.run()
    assert ("put1", 0) in trace
    assert ("got1", 3) in trace
    assert ("put2", 3) in trace


def test_channel_try_put_respects_capacity():
    sim = Simulation()
    chan = Channel(sim, capacity=1)
    assert chan.try_put(1) is True
    assert chan.try_put(2) is False
    assert len(chan) == 1


def test_channel_close_fails_getters():
    sim = Simulation()
    chan = Channel(sim)
    failures = []

    def consumer():
        try:
            yield chan.get()
        except ChannelClosed:
            failures.append(sim.now)

    def closer():
        yield sim.timeout(2)
        chan.close()

    sim.process(consumer())
    sim.process(closer())
    sim.run()
    assert failures == [2]


def test_channel_put_after_close_fails():
    sim = Simulation()
    chan = Channel(sim)
    chan.close()
    failures = []

    def producer():
        try:
            yield chan.put(1)
        except ChannelClosed:
            failures.append(True)

    sim.process(producer())
    sim.run()
    assert failures == [True]


def test_channel_fifo_order_many_items():
    sim = Simulation()
    chan = Channel(sim)
    got = []

    def producer():
        for i in range(100):
            yield chan.put(i)

    def consumer():
        for _ in range(100):
            item = yield chan.get()
            got.append(item)

    sim.process(producer())
    sim.process(consumer())
    sim.run()
    assert got == list(range(100))
