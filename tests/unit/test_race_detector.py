"""Unit tests for the vector-clock sim race detector.

The seeded injected race required by the analysis suite lives here:
two sim processes blind-writing the same etcd key with no
happens-before edge between them MUST be caught, while the same
access pattern ordered through an event edge (or serialized through
CAS guards) MUST stay silent.
"""

import pytest

from repro.analysis import RaceDetector
from repro.simkernel import Channel, Event, Simulation
from repro.storage import EtcdStore


def _drive(sim, until=10.0):
    sim.run(until=until)


class TestInjectedRace:
    def test_blind_writes_without_edge_are_caught(self):
        """The seeded injected race: unordered blind writes conflict."""
        sim = Simulation(seed=1)
        detector = RaceDetector(sim)
        store = EtcdStore(sim, name="etcd")
        store.create("/registry/x/a", {"v": 0})

        def writer(tag, delay):
            yield sim.timeout(delay)
            store.update("/registry/x/a", {"v": tag})

        sim.process(writer(1, 1.0), name="writer-1")
        sim.process(writer(2, 2.0), name="writer-2")
        _drive(sim)

        assert not detector.ok
        conflict = detector.conflicts[0]
        assert conflict.key == "/registry/x/a"
        assert conflict.kind == "write-write"
        assert {conflict.first_name, conflict.second_name} == {
            "writer-1", "writer-2"}

    def test_event_edge_suppresses_conflict(self):
        """Same writes, but ordered through an Event: no conflict."""
        sim = Simulation(seed=1)
        detector = RaceDetector(sim)
        store = EtcdStore(sim, name="etcd")
        store.create("/registry/x/a", {"v": 0})
        done = Event(sim)

        def first():
            yield sim.timeout(1.0)
            store.update("/registry/x/a", {"v": 1})
            done.succeed()

        def second():
            yield done
            store.update("/registry/x/a", {"v": 2})

        sim.process(first(), name="writer-1")
        sim.process(second(), name="writer-2")
        _drive(sim)

        assert detector.ok, detector.report()

    def test_cas_writes_do_not_conflict(self):
        """CAS-guarded updates serialize through observed revisions."""
        sim = Simulation(seed=1)
        detector = RaceDetector(sim)
        store = EtcdStore(sim, name="etcd")
        store.create("/registry/x/a", {"v": 0})

        def writer(tag, delay):
            yield sim.timeout(delay)
            _value, revision = store.get("/registry/x/a")
            store.update("/registry/x/a", {"v": tag},
                         expected_revision=revision)

        sim.process(writer(1, 1.0), name="writer-1")
        sim.process(writer(2, 2.0), name="writer-2")
        _drive(sim)

        assert detector.ok, detector.report()

    def test_conflict_reported_once_per_pair(self):
        sim = Simulation(seed=1)
        detector = RaceDetector(sim)
        store = EtcdStore(sim, name="etcd")
        store.create("/registry/x/a", {"v": 0})

        def writer(tag, delay):
            yield sim.timeout(delay)
            store.update("/registry/x/a", {"v": tag})
            yield sim.timeout(1.0)
            store.update("/registry/x/a", {"v": tag + 10})

        sim.process(writer(1, 1.0), name="writer-1")
        sim.process(writer(2, 1.5), name="writer-2")
        _drive(sim)

        keys = {(c.obj, c.key, c.kind) for c in detector.conflicts}
        assert len(keys) == len(detector.conflicts)


class TestReadTracking:
    def test_read_write_conflict_needs_track_reads(self):
        def build(track_reads):
            sim = Simulation(seed=1)
            detector = RaceDetector(sim, track_reads=track_reads)
            store = EtcdStore(sim, name="etcd")
            store.create("/registry/x/a", {"v": 0})

            def reader():
                yield sim.timeout(1.0)
                store.get("/registry/x/a")

            def writer():
                yield sim.timeout(2.0)
                store.update("/registry/x/a", {"v": 1})

            sim.process(reader(), name="reader")
            sim.process(writer(), name="writer")
            _drive(sim)
            return detector

        assert build(track_reads=False).ok
        detector = build(track_reads=True)
        assert not detector.ok
        assert any(c.kind == "read-write" for c in detector.conflicts)


class TestCarrierStamps:
    def test_channel_carries_producer_stamp(self):
        """A value handed through a Channel orders producer and consumer."""
        sim = Simulation(seed=1)
        detector = RaceDetector(sim)
        store = EtcdStore(sim, name="etcd")
        store.create("/registry/x/a", {"v": 0})
        channel = Channel(sim, capacity=4)

        def producer():
            yield sim.timeout(1.0)
            store.update("/registry/x/a", {"v": 1})
            yield channel.put("go")

        def consumer():
            yield channel.get()
            store.update("/registry/x/a", {"v": 2})

        sim.process(producer(), name="producer")
        sim.process(consumer(), name="consumer")
        _drive(sim)

        assert detector.ok, detector.report()

    def test_workqueue_carries_producer_stamp(self):
        from repro.clientgo import WorkQueue

        sim = Simulation(seed=1)
        detector = RaceDetector(sim)
        store = EtcdStore(sim, name="etcd")
        store.create("/registry/x/a", {"v": 0})
        queue = WorkQueue(sim)

        def producer():
            yield sim.timeout(1.0)
            store.update("/registry/x/a", {"v": 1})
            queue.add("item")

        def consumer():
            item, _enqueued = yield queue.get()
            assert item == "item"
            store.update("/registry/x/a", {"v": 2})
            queue.done(item)

        sim.process(producer(), name="producer")
        sim.process(consumer(), name="consumer")
        _drive(sim)

        assert detector.ok, detector.report()


class TestLifecycle:
    def test_reset_object_on_wipe(self):
        """wipe() clears per-key history so pre-wipe writes don't haunt."""
        sim = Simulation(seed=1)
        detector = RaceDetector(sim)
        store = EtcdStore(sim, name="etcd")

        def first():
            yield sim.timeout(1.0)
            store.create("/registry/x/a", {"v": 1})

        def wiper():
            yield sim.timeout(2.0)
            store.wipe()

        def second():
            yield sim.timeout(3.0)
            store.create("/registry/x/a", {"v": 2})

        sim.process(first(), name="writer-1")
        sim.process(wiper(), name="wiper")
        sim.process(second(), name="writer-2")
        _drive(sim)

        assert detector.ok, detector.report()

    def test_max_conflicts_caps_reporting(self):
        sim = Simulation(seed=1)
        detector = RaceDetector(sim, max_conflicts=1)
        store = EtcdStore(sim, name="etcd")
        for name in ("a", "b", "c"):
            store.create(f"/registry/x/{name}", {"v": 0})

        def writer(tag, delay):
            yield sim.timeout(delay)
            for name in ("a", "b", "c"):
                store.update(f"/registry/x/{name}", {"v": tag})

        sim.process(writer(1, 1.0), name="writer-1")
        sim.process(writer(2, 2.0), name="writer-2")
        _drive(sim)

        assert not detector.ok
        assert len(detector.conflicts) == 1

    def test_report_mentions_conflict_count(self):
        sim = Simulation(seed=1)
        detector = RaceDetector(sim)
        assert "0 conflict(s)" in detector.report()


class TestCacheProbe:
    def test_unsynchronized_cache_writes_conflict(self):
        from types import SimpleNamespace

        from repro.clientgo import ObjectCache

        sim = Simulation(seed=1)
        detector = RaceDetector(sim)
        cache = ObjectCache()
        cache.set_race_probe(detector.cache_probe("cache:test"))

        def writer(tag, delay):
            yield sim.timeout(delay)
            cache.upsert(SimpleNamespace(
                key="ns/a", value=tag,
                metadata=SimpleNamespace(namespace="ns", labels={})))

        sim.process(writer(1, 1.0), name="writer-1")
        sim.process(writer(2, 2.0), name="writer-2")
        _drive(sim)

        assert not detector.ok
        assert detector.conflicts[0].obj.startswith("cache:test")
