"""Kubelet probes and restart policy."""

import pytest

from repro.objects import Container, make_pod

from .test_kubelet import _NodeHarness


def probed_pod(name, liveness=False, readiness=False,
               restart_policy="Always"):
    container = Container(name="main", image="app:1")
    probe = {"periodSeconds": 1.0, "failureThreshold": 2,
             "initialDelaySeconds": 0.5}
    if liveness:
        container.liveness_probe = dict(probe)
    if readiness:
        container.readiness_probe = dict(probe)
    pod = make_pod(name, node_name="n1", containers=[container])
    pod.spec.restart_policy = restart_policy
    return pod


@pytest.fixture
def harness():
    return _NodeHarness()


def main_container(harness, name):
    return harness.kubelet._containers[f"default/{name}"]["main"]


class TestLivenessProbe:
    def test_unhealthy_container_restarted(self, harness):
        harness.run(harness.client.create(probed_pod("sick",
                                                     liveness=True)))
        harness.settle(3)
        container = main_container(harness, "sick")
        container.healthy = False
        harness.settle(8)
        restarted = main_container(harness, "sick")
        assert restarted.restart_count >= 1
        assert restarted.state == "running"
        pod = harness.get_pod("sick")
        assert pod.status.container_statuses[0].restart_count >= 1

    def test_healthy_container_untouched(self, harness):
        harness.run(harness.client.create(probed_pod("fine",
                                                     liveness=True)))
        harness.settle(8)
        assert main_container(harness, "fine").restart_count == 0

    def test_restart_policy_never_fails_pod(self, harness):
        harness.run(harness.client.create(
            probed_pod("fragile", liveness=True, restart_policy="Never")))
        harness.settle(3)
        main_container(harness, "fragile").healthy = False
        harness.settle(8)
        pod = harness.get_pod("fragile")
        assert pod.status.phase == "Failed"

    def test_recovered_container_not_restarted_again(self, harness):
        harness.run(harness.client.create(probed_pod("flaky",
                                                     liveness=True)))
        harness.settle(3)
        main_container(harness, "flaky").healthy = False
        harness.settle(6)
        first_restarts = main_container(harness, "flaky").restart_count
        assert first_restarts >= 1
        # New container is healthy by default; no further restarts.
        harness.settle(8)
        assert main_container(harness, "flaky").restart_count == \
            first_restarts


class TestReadinessProbe:
    def test_unready_flips_ready_condition(self, harness):
        harness.run(harness.client.create(probed_pod("warming",
                                                     readiness=True)))
        harness.settle(3)
        assert harness.get_pod("warming").status.is_ready
        main_container(harness, "warming").healthy = False
        harness.settle(6)
        pod = harness.get_pod("warming")
        assert not pod.status.is_ready
        assert pod.status.phase == "Running"  # running but not ready

    def test_recovery_restores_ready(self, harness):
        harness.run(harness.client.create(probed_pod("resilient",
                                                     readiness=True)))
        harness.settle(3)
        container = main_container(harness, "resilient")
        container.healthy = False
        harness.settle(6)
        assert not harness.get_pod("resilient").status.is_ready
        container.healthy = True
        harness.settle(6)
        assert harness.get_pod("resilient").status.is_ready

    def test_unready_pod_leaves_service_endpoints(self, harness):
        """Readiness drives endpoints membership end-to-end."""
        from repro.clientgo import InformerFactory
        from repro.controllers import EndpointsController
        from repro.objects import make_service

        factory = InformerFactory(harness.sim, harness.client)
        endpoints_controller = EndpointsController(
            harness.sim, harness.client, factory)
        factory.start_all()
        endpoints_controller.start()

        pod = probed_pod("backend", readiness=True)
        pod.metadata.labels = {"app": "web"}
        harness.run(harness.client.create(pod))
        harness.run(harness.client.create(
            make_service("web", selector={"app": "web"})))
        harness.settle(4)
        endpoints = harness.run(harness.client.get(
            "endpoints", "web", namespace="default"))
        assert len(endpoints.ready_ips()) == 1

        main_container(harness, "backend").healthy = False
        harness.settle(8)
        endpoints = harness.run(harness.client.get(
            "endpoints", "web", namespace="default"))
        assert endpoints.ready_ips() == []
