"""Unit tests for the data-plane substrate: iptables, VPC, gRPC."""

import pytest

from repro.network import (
    ConnectivityChecker,
    IpTables,
    NetworkStack,
    RpcChannel,
    RpcError,
    RpcServer,
    Vpc,
)
from repro.simkernel import Simulation


class TestIpTables:
    def test_translate_dnat(self):
        table = IpTables()
        table.replace_service("10.96.0.1", 80, [("172.16.0.5", 8080)])
        assert table.translate("10.96.0.1", 80) == ("172.16.0.5", 8080)

    def test_no_rule_returns_none(self):
        assert IpTables().translate("10.96.0.1", 80) is None

    def test_round_robin_endpoint_selection(self):
        table = IpTables()
        endpoints = [("a", 80), ("b", 80)]
        table.replace_service("10.96.0.1", 80, endpoints)
        picks = [table.translate("10.96.0.1", 80) for _ in range(4)]
        assert picks == [("a", 80), ("b", 80), ("a", 80), ("b", 80)]

    def test_replace_updates_endpoints(self):
        table = IpTables()
        table.replace_service("10.96.0.1", 80, [("a", 80)])
        table.replace_service("10.96.0.1", 80, [("b", 80)])
        assert table.translate("10.96.0.1", 80) == ("b", 80)
        assert table.rule_count() == 1

    def test_remove_service(self):
        table = IpTables()
        table.replace_service("10.96.0.1", 80, [("a", 80)])
        table.remove_service("10.96.0.1", 80)
        assert table.translate("10.96.0.1", 80) is None

    def test_port_and_protocol_matter(self):
        table = IpTables()
        table.replace_service("10.96.0.1", 80, [("a", 80)])
        assert table.translate("10.96.0.1", 443) is None
        assert table.translate("10.96.0.1", 80, protocol="UDP") is None

    def test_generation_counter(self):
        table = IpTables()
        start = table.generation
        table.replace_service("10.96.0.1", 80, [("a", 80)])
        assert table.generation == start + 1

    def test_rule_with_no_endpoints_blackholes(self):
        table = IpTables()
        table.replace_service("10.96.0.1", 80, [])
        assert table.translate("10.96.0.1", 80) is None


class TestVpc:
    def test_attach_allocates_unique_ips(self):
        vpc = Vpc("v1")
        stacks = [NetworkStack(f"s{i}") for i in range(3)]
        ips = {vpc.attach(stack).ip for stack in stacks}
        assert len(ips) == 3

    def test_reachability(self):
        vpc = Vpc("v1")
        stack = NetworkStack("s")
        eni = vpc.attach(stack)
        assert vpc.reachable(eni.ip)
        assert not vpc.reachable("9.9.9.9")

    def test_detach(self):
        vpc = Vpc("v1")
        stack = NetworkStack("s")
        eni = vpc.attach(stack)
        vpc.detach(eni.ip)
        assert not vpc.reachable(eni.ip)
        assert eni.ip not in stack.addresses

    def test_duplicate_ip_rejected(self):
        vpc = Vpc("v1")
        vpc.attach(NetworkStack("a"), ip="172.16.0.9")
        with pytest.raises(ValueError):
            vpc.attach(NetworkStack("b"), ip="172.16.0.9")


class TestConnectivity:
    """The paper's data-plane story in miniature."""

    def _setup(self):
        vpc = Vpc("tenant-vpc")
        guest = NetworkStack("kata-guest")
        backend = NetworkStack("backend-guest")
        vpc.attach(guest, ip="172.16.0.10")
        backend_eni = vpc.attach(backend, ip="172.16.0.20")
        host = NetworkStack("host")
        return vpc, guest, backend_eni, host

    def test_direct_pod_to_pod_works(self):
        vpc, guest, backend_eni, _host = self._setup()
        checker = ConnectivityChecker(vpc)
        assert checker.can_reach(guest, backend_eni.ip, 8080)

    def test_cluster_ip_fails_with_host_only_rules(self):
        """Stock kubeproxy: rules in host iptables; guest traffic bypasses
        the host stack, so the cluster IP is unreachable — the exact
        breakage the paper describes."""
        vpc, guest, backend_eni, host = self._setup()
        host.iptables.replace_service("10.96.0.1", 80,
                                      [(backend_eni.ip, 8080)])
        checker = ConnectivityChecker(vpc)
        assert not checker.can_reach(guest, "10.96.0.1", 80)

    def test_cluster_ip_works_with_guest_rules(self):
        """Enhanced kubeproxy: rules injected into the guest iptables."""
        vpc, guest, backend_eni, _host = self._setup()
        guest.iptables.replace_service("10.96.0.1", 80,
                                       [(backend_eni.ip, 8080)])
        checker = ConnectivityChecker(vpc)
        assert checker.resolve(guest, "10.96.0.1", 80) == \
            (backend_eni.ip, 8080)


class TestRpc:
    def test_call_round_trip(self):
        sim = Simulation()
        server = RpcServer(sim)

        def handler(payload):
            yield sim.timeout(0.001)
            return {"echo": payload["x"]}

        server.register("echo", handler)
        channel = RpcChannel(sim, server, round_trip_latency=0.01)

        def caller():
            result = yield from channel.call("echo", {"x": 42})
            return (result, sim.now)

        result, finished = sim.run(until=sim.process(caller()))
        assert result == {"echo": 42}
        assert finished == pytest.approx(0.011)

    def test_unknown_method_fails(self):
        sim = Simulation()
        server = RpcServer(sim)
        channel = RpcChannel(sim, server, round_trip_latency=0.01)

        def caller():
            try:
                yield from channel.call("nope", {})
            except RpcError:
                return "failed"

        assert sim.run(until=sim.process(caller())) == "failed"

    def test_unhealthy_server_fails(self):
        sim = Simulation()
        server = RpcServer(sim)
        server.register("m", lambda p: iter(()))
        server.healthy = False
        channel = RpcChannel(sim, server, round_trip_latency=0.01)

        def caller():
            try:
                yield from channel.call("m", {})
            except RpcError:
                return "down"

        assert sim.run(until=sim.process(caller())) == "down"
