"""Unit tests for the discrete-event simulation loop and processes."""

import pytest

from repro.simkernel import (
    Interrupt,
    Simulation,
    SimulationDeadlock,
)


def test_clock_starts_at_zero():
    sim = Simulation()
    assert sim.now == 0.0


def test_timeout_advances_clock():
    sim = Simulation()
    log = []

    def proc():
        yield sim.timeout(1.5)
        log.append(sim.now)
        yield sim.timeout(2.5)
        log.append(sim.now)

    sim.process(proc())
    sim.run()
    assert log == [1.5, 4.0]


def test_timeout_value_is_delivered():
    sim = Simulation()
    seen = []

    def proc():
        value = yield sim.timeout(1, value="hello")
        seen.append(value)

    sim.process(proc())
    sim.run()
    assert seen == ["hello"]


def test_negative_timeout_rejected():
    sim = Simulation()
    with pytest.raises(ValueError):
        sim.timeout(-1)


def test_run_until_time_stops_early():
    sim = Simulation()
    log = []

    def ticker():
        while True:
            yield sim.timeout(1)
            log.append(sim.now)

    sim.process(ticker())
    sim.run(until=3.5)
    assert log == [1, 2, 3]
    assert sim.now == 3.5


def test_run_until_time_in_past_rejected():
    sim = Simulation()
    with pytest.raises(ValueError):
        sim.run(until=-1)


def test_process_requires_generator():
    sim = Simulation()
    with pytest.raises(TypeError):
        sim.process(iter([]))


def test_run_until_event_returns_value():
    sim = Simulation()

    def proc():
        yield sim.timeout(2)
        return 42

    result = sim.run(until=sim.process(proc()))
    assert result == 42
    assert sim.now == 2


def test_process_return_value_via_yield():
    sim = Simulation()
    results = []

    def child():
        yield sim.timeout(1)
        return "child-result"

    def parent():
        value = yield sim.process(child())
        results.append(value)

    sim.process(parent())
    sim.run()
    assert results == ["child-result"]


def test_process_exception_propagates_to_waiter():
    sim = Simulation()
    caught = []

    def child():
        yield sim.timeout(1)
        raise ValueError("boom")

    def parent():
        try:
            yield sim.process(child())
        except ValueError as exc:
            caught.append(str(exc))

    sim.process(parent())
    sim.run()
    assert caught == ["boom"]


def test_unhandled_process_exception_crashes_run():
    sim = Simulation()

    def proc():
        yield sim.timeout(1)
        raise RuntimeError("unhandled")

    sim.process(proc())
    with pytest.raises(RuntimeError, match="unhandled"):
        sim.run()


def test_events_fire_in_fifo_order_at_same_time():
    sim = Simulation()
    order = []

    def make(name):
        def proc():
            yield sim.timeout(1)
            order.append(name)

        return proc()

    for name in ["a", "b", "c"]:
        sim.process(make(name))
    sim.run()
    assert order == ["a", "b", "c"]


def test_any_of_waits_for_first():
    sim = Simulation()
    seen = []

    def proc():
        fast = sim.timeout(1, value="fast")
        slow = sim.timeout(5, value="slow")
        result = yield sim.any_of([fast, slow])
        seen.append(list(result.values()))
        seen.append(sim.now)

    sim.process(proc())
    sim.run()
    assert seen[0] == ["fast"]
    assert seen[1] == 1


def test_all_of_waits_for_all():
    sim = Simulation()
    seen = []

    def proc():
        a = sim.timeout(1, value="a")
        b = sim.timeout(3, value="b")
        result = yield sim.all_of([a, b])
        seen.append(sorted(result.values()))
        seen.append(sim.now)

    sim.process(proc())
    sim.run()
    assert seen == [["a", "b"], 3]


def test_all_of_empty_succeeds_immediately():
    sim = Simulation()
    seen = []

    def proc():
        result = yield sim.all_of([])
        seen.append(result)

    sim.process(proc())
    sim.run()
    assert seen == [{}]


def test_interrupt_raises_in_process():
    sim = Simulation()
    log = []

    def victim():
        try:
            yield sim.timeout(100)
        except Interrupt as intr:
            log.append((sim.now, intr.cause))

    def interrupter(proc):
        yield sim.timeout(3)
        proc.interrupt("stop it")

    victim_proc = sim.process(victim())
    sim.process(interrupter(victim_proc))
    sim.run()
    assert log == [(3, "stop it")]


def test_interrupt_finished_process_is_noop():
    sim = Simulation()

    def victim():
        yield sim.timeout(1)

    def interrupter(proc):
        yield sim.timeout(5)
        proc.interrupt()

    victim_proc = sim.process(victim())
    sim.process(interrupter(victim_proc))
    sim.run()
    assert not victim_proc.is_alive


def test_run_until_event_never_triggered_raises_deadlock():
    sim = Simulation()
    never = sim.event()

    def proc():
        yield sim.timeout(1)

    sim.process(proc())
    with pytest.raises(SimulationDeadlock):
        sim.run(until=never)


def test_manual_event_succeed_wakes_waiter():
    sim = Simulation()
    gate = sim.event()
    log = []

    def waiter():
        value = yield gate
        log.append((sim.now, value))

    def opener():
        yield sim.timeout(7)
        gate.succeed("open")

    sim.process(waiter())
    sim.process(opener())
    sim.run()
    assert log == [(7, "open")]


def test_event_double_trigger_rejected():
    from repro.simkernel import EventAlreadyTriggered

    sim = Simulation()
    event = sim.event()
    event.succeed(1)
    with pytest.raises(EventAlreadyTriggered):
        event.succeed(2)


def test_determinism_same_seed_same_timeline():
    def build_and_run(seed):
        sim = Simulation(seed=seed)
        trace = []

        def worker(i):
            while sim.now < 20:
                delay = sim.rng.expovariate(1.0)
                yield sim.timeout(delay)
                trace.append((round(sim.now, 9), i))

        for i in range(3):
            sim.process(worker(i))
        sim.run(until=20)
        return trace

    assert build_and_run(42) == build_and_run(42)
    assert build_and_run(42) != build_and_run(43)


def test_yielding_non_event_fails_process():
    sim = Simulation()

    def bad():
        yield 5

    sim.process(bad())
    with pytest.raises(TypeError):
        sim.run()


def test_peek_returns_next_event_time():
    sim = Simulation()

    def proc():
        yield sim.timeout(4)

    sim.process(proc())
    # The process-start event is scheduled at t=0.
    assert sim.peek() == 0
    sim.run()
    assert sim.peek() is None
