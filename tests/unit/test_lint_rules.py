"""Unit tests for the determinism AST linter (repro.analysis.linter).

Each rule gets positive cases (must flag) and negative cases (must stay
silent), exercised through ``lint_source`` so tests are plain
source-text in / findings out.  Suppression comments, the committed
allowlist format, and --strict staleness checks are covered at the
``lint_paths`` level against temp files.
"""

import textwrap

import pytest

from repro.analysis import lint_paths, load_allowlist
from repro.analysis.linter import (
    format_report,
    lint_source,
    parse_suppressions,
)
from repro.analysis.rules import RULES, Finding


def codes(source):
    findings = lint_source(textwrap.dedent(source), "test.py")
    return [f.code for f in findings]


class TestD001WallClock:
    def test_time_time_flagged(self):
        assert codes("import time\nnow = time.time()\n") == ["D001"]

    def test_datetime_now_flagged(self):
        assert "D001" in codes(
            "import datetime\nstamp = datetime.datetime.now()\n")

    def test_perf_counter_flagged(self):
        assert "D001" in codes("import time\nt = time.perf_counter()\n")

    def test_sim_now_clean(self):
        assert codes("def f(sim):\n    return sim.now\n") == []


class TestD002UnseededRandom:
    def test_module_random_flagged(self):
        assert codes("import random\nx = random.random()\n") == ["D002"]

    def test_random_shuffle_flagged(self):
        assert "D002" in codes("import random\nrandom.shuffle([1, 2])\n")

    def test_seeded_instance_clean(self):
        assert codes(
            "import random\nrng = random.Random(7)\nx = rng.random()\n"
        ) == []


class TestD003SetIteration:
    def test_for_over_set_literal_flagged(self):
        assert "D003" in codes(
            "out = []\nfor x in {1, 2, 3}:\n    out.append(x)\n")

    def test_for_over_set_variable_flagged(self):
        assert "D003" in codes(
            "s = set()\nout = []\nfor x in s:\n    out.append(x)\n")

    def test_for_over_set_attribute_flagged(self):
        assert "D003" in codes(textwrap.dedent("""
            class C:
                def __init__(self):
                    self.pending = set()

                def run(self):
                    for x in self.pending:
                        print(x)
        """))

    def test_set_difference_flagged(self):
        assert "D003" in codes(
            "a = set()\nb = set()\nfor x in a - b:\n    print(x)\n")

    def test_sorted_set_clean(self):
        assert codes(
            "s = set()\nfor x in sorted(s):\n    print(x)\n") == []

    def test_order_insensitive_consumers_clean(self):
        assert codes(textwrap.dedent("""
            s = {1, 2, 3}
            total = sum(s)
            count = len(s)
            biggest = max(s)
            flag = any(x > 1 for x in s)
        """)) == []

    def test_list_of_set_flagged(self):
        assert "D003" in codes("s = set()\nitems = list(s)\n")

    def test_join_of_set_flagged(self):
        assert "D003" in codes('s = {"a", "b"}\nout = ",".join(s)\n')

    def test_dict_iteration_clean(self):
        """Dicts are insertion-ordered in CPython: not flagged."""
        assert codes(
            "d = {1: 'a'}\nfor k in d:\n    print(k)\n") == []


class TestD004IdentityOrdering:
    def test_id_call_flagged(self):
        assert "D004" in codes("x = object()\nkey = id(x)\n")

    def test_sort_key_id_flagged(self):
        assert "D004" in codes(
            "items = []\nitems.sort(key=id)\n")

    def test_id_inside_repr_clean(self):
        assert codes(textwrap.dedent("""
            class C:
                def __repr__(self):
                    return f"<C at {id(self):#x}>"
        """)) == []


class TestD005FloatPriorityAccumulation:
    def test_augmented_priority_flagged(self):
        assert "D005" in codes(textwrap.dedent("""
            import heapq
            heap = []
            deadline = 0.0
            def tick(dt):
                global deadline
                deadline += dt
                heapq.heappush(heap, (deadline, "item"))
        """))

    def test_constant_step_clean(self):
        assert codes(textwrap.dedent("""
            import heapq
            heap = []
            base = 5.0
            heapq.heappush(heap, (base, "item"))
        """)) == []


class TestD006NonCanonicalHashInput:
    def test_hash_of_repr_flagged(self):
        assert "D006" in codes(textwrap.dedent("""
            import hashlib
            def digest(obj):
                return hashlib.sha256(repr(obj).encode()).hexdigest()
        """))

    def test_hash_of_str_cast_flagged(self):
        assert "D006" in codes(textwrap.dedent("""
            import zlib
            def shard(tenant):
                return zlib.crc32(str(tenant).encode())
        """))

    def test_hash_of_utf8_str_clean(self):
        assert codes(textwrap.dedent("""
            import zlib
            def shard(tenant):
                return zlib.crc32(tenant.encode("utf-8"))
        """)) == []


class TestSuppressions:
    def test_inline_allow_comment_parsed(self):
        suppressions, errors = parse_suppressions(
            "import time\nnow = time.time()  # repro: allow[D001]\n",
            "test.py")
        assert suppressions == {2: {"D001"}}
        assert errors == []

    def test_multiple_codes_in_one_comment(self):
        suppressions, _errors = parse_suppressions(
            "x = 1  # repro: allow[D001, D003]\n", "test.py")
        assert suppressions == {2: {"D001", "D003"}} or \
            suppressions == {1: {"D001", "D003"}}

    def test_unknown_code_rejected(self):
        _suppressions, errors = parse_suppressions(
            "x = 1  # repro: allow[D999]\n", "test.py")
        assert len(errors) == 1
        assert errors[0].code == "D000"
        assert "D999" in errors[0].message

    def test_allow_in_string_literal_ignored(self):
        """Only real comments carry suppressions, not string contents."""
        suppressions, errors = parse_suppressions(
            "doc = 'use # repro: allow[D001] to suppress'\n", "test.py")
        assert suppressions == {}
        assert errors == []


class TestLintPaths:
    def _write(self, tmp_path, name, source):
        target = tmp_path / name
        target.write_text(textwrap.dedent(source))
        return target

    def test_active_finding_fails(self, tmp_path):
        self._write(tmp_path, "mod.py",
                    "import time\nnow = time.time()\n")
        result = lint_paths([tmp_path])
        assert not result.ok
        assert [f.code for f in result.active] == ["D001"]

    def test_suppressed_finding_passes(self, tmp_path):
        self._write(
            tmp_path, "mod.py",
            "import time\nnow = time.time()  # repro: allow[D001]\n")
        result = lint_paths([tmp_path])
        assert result.ok
        assert [f.code for f in result.suppressed] == ["D001"]

    def test_stale_suppression_fails_strict_only(self, tmp_path):
        self._write(tmp_path, "mod.py",
                    "x = 1  # repro: allow[D001]\n")
        assert lint_paths([tmp_path]).ok
        strict = lint_paths([tmp_path], strict=True)
        assert not strict.ok
        assert any(f.code == "D000" for f in strict.stale)

    def test_allowlist_entry_absorbs_finding(self, tmp_path):
        self._write(tmp_path, "mod.py",
                    "import time\nnow = time.time()\n")
        allowlist = (("mod.py", "D001", "test fixture"),)
        result = lint_paths([tmp_path], allowlist=allowlist)
        assert result.ok
        assert [f.code for f in result.allowlisted] == ["D001"]

    def test_stale_allowlist_entry_fails_strict(self, tmp_path):
        self._write(tmp_path, "mod.py", "x = 1\n")
        allowlist = (("mod.py", "D001", "obsolete"),)
        assert lint_paths([tmp_path], allowlist=allowlist).ok
        strict = lint_paths([tmp_path], allowlist=allowlist, strict=True)
        assert not strict.ok

    def test_unknown_suppression_code_always_fails(self, tmp_path):
        self._write(tmp_path, "mod.py",
                    "x = 1  # repro: allow[D999]\n")
        result = lint_paths([tmp_path])
        assert not result.ok
        assert any(f.code == "D000" for f in result.stale)

    def test_format_report_lists_findings(self, tmp_path):
        self._write(tmp_path, "mod.py",
                    "import time\nnow = time.time()\n")
        result = lint_paths([tmp_path])
        report = format_report(result)
        assert "D001" in report
        assert "mod.py" in report


class TestAllowlistFile:
    def test_load_allowlist_roundtrip(self, tmp_path):
        target = tmp_path / "allow.txt"
        target.write_text(
            "# comment line\n"
            "\n"
            "src/repro/x.py  D004  identity is fine here\n")
        entries = load_allowlist(target)
        assert entries == [("src/repro/x.py", "D004",
                            "identity is fine here")]

    def test_load_allowlist_rejects_unknown_code(self, tmp_path):
        target = tmp_path / "allow.txt"
        target.write_text("src/repro/x.py  D999  nope\n")
        with pytest.raises(ValueError):
            load_allowlist(target)

    def test_load_allowlist_requires_justification(self, tmp_path):
        target = tmp_path / "allow.txt"
        target.write_text("src/repro/x.py  D004\n")
        with pytest.raises(ValueError):
            load_allowlist(target)


class TestRuleCatalog:
    def test_all_rules_have_title_and_rationale(self):
        for code, rule in RULES.items():
            assert rule.code == code
            assert rule.title
            assert rule.rationale

    def test_finding_format_is_clickable(self):
        finding = Finding(path="src/x.py", line=3, col=1, code="D001",
                          message="wall clock")
        assert finding.format().startswith("src/x.py:3:1: D001")
