"""Unit tests for syncer internals: echo filtering, queue feeding, stats."""

import pytest

from repro.core import VirtualClusterEnv
from repro.core.syncer.syncer import Syncer
from repro.objects import make_pod


@pytest.fixture(scope="module")
def env_and_tenant():
    env = VirtualClusterEnv(num_virtual_nodes=2, scan_interval=120.0)
    env.bootstrap()
    tenant = env.run_coroutine(env.create_tenant("acme"))
    return env, tenant


class TestEchoFiltering:
    """The syncer must not re-sync its own upward writes downward."""

    def test_status_only_change_filtered(self):
        old = make_pod("p")
        new = old.copy()
        new.status.phase = "Running"
        assert not Syncer._downward_relevant_change(old, new)

    def test_node_name_change_filtered(self):
        """Binding is syncer-managed: nodeName-only diffs are echoes."""
        old = make_pod("p")
        new = old.copy()
        new.spec.node_name = "vk-node-001"
        assert not Syncer._downward_relevant_change(old, new)

    def test_spec_change_relevant(self):
        old = make_pod("p")
        new = old.copy()
        new.spec.containers[0].image = "other"
        assert Syncer._downward_relevant_change(old, new)

    def test_label_change_relevant(self):
        old = make_pod("p")
        new = old.copy()
        new.metadata.labels["team"] = "blue"
        assert Syncer._downward_relevant_change(old, new)

    def test_deletion_timestamp_relevant(self):
        old = make_pod("p")
        new = old.copy()
        new.metadata.deletion_timestamp = 5.0
        assert Syncer._downward_relevant_change(old, new)

    def test_data_change_relevant(self):
        from repro.objects import ConfigMap

        old = ConfigMap()
        old.metadata.name = "c"
        old.metadata.namespace = "default"
        new = old.copy()
        new.data = {"k": "v"}
        assert Syncer._downward_relevant_change(old, new)

    def test_none_old_is_relevant(self):
        assert Syncer._downward_relevant_change(None, make_pod("p"))


class TestSyncerBookkeeping:
    def test_stats_shape(self, env_and_tenant):
        env, _tenant = env_and_tenant
        stats = env.syncer.stats()
        assert stats["tenants"] == 1
        for key in ("downward", "upward", "dws_lock_contentions",
                    "cpu_seconds", "peak_memory_bytes", "traces"):
            assert key in stats

    def test_namespace_origin_mapping(self, env_and_tenant):
        env, tenant = env_and_tenant
        env.run_coroutine(tenant.create_pod("mapper"))
        env.run_until_pods_ready(tenant, ["default/mapper"], timeout=60)
        from repro.core.crd import super_namespace

        sname = super_namespace(tenant.vc, "default")
        origin = env.syncer.resolve_super_namespace(sname)
        assert origin == (tenant.key, "default")
        assert env.syncer.resolve_super_namespace("nonsense") is None

    def test_owns(self, env_and_tenant):
        env, tenant = env_and_tenant
        from repro.core.syncer.conversion import to_super

        translated = to_super(make_pod("x"), tenant.vc)
        assert env.syncer.owns(tenant.key, translated)
        assert not env.syncer.owns("other/vc", translated)
        assert not env.syncer.owns(tenant.key, make_pod("native"))

    def test_memory_meters_registered(self, env_and_tenant):
        env, tenant = env_and_tenant
        env.run_coroutine(tenant.create_pod("heavy"))
        env.run_until_pods_ready(tenant, ["default/heavy"], timeout=60)
        env.run_for(1)
        assert env.syncer.mem.peak > 0
        # Two copies: tenant-side cache and super-side cache both nonzero.
        snapshot = {name: fn()
                    for name, fn in env.syncer.mem._meters.items()}
        assert snapshot["super-informer-caches"] > 0
        assert snapshot["tenant-informer-caches"] > 0

    def test_unregister_tenant_removes_queues(self):
        env = VirtualClusterEnv(num_virtual_nodes=1, scan_interval=120.0)
        env.bootstrap()
        tenant = env.run_coroutine(env.create_tenant("gone"))
        assert tenant.key in env.syncer.downward.tenants
        env.syncer.unregister_tenant(tenant.key)
        assert tenant.key not in env.syncer.downward.tenants
        assert tenant.key not in env.syncer.upward.tenants

    def test_double_register_is_idempotent(self, env_and_tenant):
        env, tenant = env_and_tenant
        first = env.syncer.tenants[tenant.key]
        again = env.syncer.register_tenant(tenant.vc,
                                           tenant.control_plane)
        assert again is first
