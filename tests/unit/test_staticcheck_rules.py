"""Unit tests for the whole-program C-rule checker
(repro.analysis.staticcheck).

Each rule gets positive cases (must flag) and negative cases (must stay
silent) stated as inline programs written to a temp ``src/pkg/``
layout.  The committed fixtures under ``tests/fixtures/staticcheck/``
pin the deadlock-cycle / clean-diamond behavior and a byte-exact golden
findings corpus; CLI coverage (exit codes, --strict, JSON and SARIF
output) is marked ``staticcheck`` for the tier-1 lint gate.
"""

import json
import textwrap
from pathlib import Path

import pytest

from repro.analysis.linter import format_report
from repro.analysis.staticcheck import check_paths, format_json, format_sarif

REPO_ROOT = Path(__file__).resolve().parents[2]
FIXTURES = REPO_ROOT / "tests" / "fixtures" / "staticcheck"


def check_source(tmp_path, source, **kwargs):
    root = tmp_path / "src" / "pkg"
    root.mkdir(parents=True, exist_ok=True)
    (root / "mod.py").write_text(textwrap.dedent(source))
    return check_paths([tmp_path / "src"], **kwargs)


def codes(tmp_path, source, **kwargs):
    return [f.code for f in check_source(tmp_path, source, **kwargs).active]


class TestC001WaitWhileHolding:
    def test_timeout_under_kernel_lock_flagged(self, tmp_path):
        assert codes(tmp_path, """
            from repro.simkernel import Lock

            class W:
                def __init__(self, sim):
                    self.sim = sim
                    self.lock = Lock(sim)

                def work(self):
                    yield self.lock.acquire()
                    yield self.sim.timeout(1.0)
                    self.lock.release()
        """) == ["C001"]

    def test_release_before_wait_clean(self, tmp_path):
        assert codes(tmp_path, """
            from repro.simkernel import Lock

            class W:
                def __init__(self, sim):
                    self.sim = sim
                    self.lock = Lock(sim)

                def work(self):
                    yield self.lock.acquire()
                    self.lock.release()
                    yield self.sim.timeout(1.0)
        """) == []


class TestC002LockOrder:
    def test_deadlock_cycle_fixture_flagged(self):
        result = check_paths([FIXTURES / "deadlock_cycle.py"])
        assert {f.code for f in result.active} == {"C002"}

    def test_clean_diamond_fixture_silent(self):
        result = check_paths([FIXTURES / "clean_diamond.py"])
        assert result.active == []


class TestC003ModuleMutableState:
    def test_dict_write_from_sim_code_flagged(self, tmp_path):
        assert codes(tmp_path, """
            CACHE = {}

            def proc(sim, key):
                yield sim.timeout(1)
                CACHE[key] = sim.now
        """) == ["C003"]

    def test_list_append_from_sim_helper_flagged(self, tmp_path):
        assert codes(tmp_path, """
            EVENTS = []

            def record(what):
                EVENTS.append(what)

            def proc(sim):
                yield sim.timeout(1)
                record("tick")
        """) == ["C003"]

    def test_local_shadow_clean(self, tmp_path):
        assert codes(tmp_path, """
            CACHE = {}

            def proc(sim):
                CACHE = {}
                yield sim.timeout(1)
                CACHE["x"] = 1
        """) == []

    def test_write_outside_sim_reachable_code_clean(self, tmp_path):
        assert codes(tmp_path, """
            CACHE = {}

            def setup():
                CACHE["x"] = 1
        """) == []

    def test_hb_carrier_marker_exempts_definition(self, tmp_path):
        assert codes(tmp_path, """
            CACHE = {}  # repro: hb-carrier[guarded by module lock, test-only]

            def proc(sim, key):
                yield sim.timeout(1)
                CACHE[key] = sim.now
        """) == []


class TestC004OrphanedEvents:
    def test_dropped_timeout_expression_flagged(self, tmp_path):
        assert codes(tmp_path, """
            def proc(sim):
                sim.timeout(5.0)
                yield sim.timeout(0.1)
        """) == ["C004"]

    def test_bound_but_never_used_flagged(self, tmp_path):
        assert codes(tmp_path, """
            def proc(sim):
                pending = sim.event()
                yield sim.timeout(0.1)
        """) == ["C004"]

    def test_yielded_timeout_clean(self, tmp_path):
        assert codes(tmp_path, """
            def proc(sim):
                yield sim.timeout(5.0)
        """) == []

    def test_stored_event_clean(self, tmp_path):
        assert codes(tmp_path, """
            class W:
                def __init__(self, sim):
                    self.sim = sim

                def proc(self):
                    self.done = self.sim.event()
                    yield self.sim.timeout(0.1)
        """) == []

    def test_recorder_event_is_not_a_kernel_event(self, tmp_path):
        # Regression: EventRecorder.event records a k8s Event object;
        # only sim-like receivers create kernel events.
        assert codes(tmp_path, """
            class Kubelet:
                def __init__(self, sim, recorder):
                    self.sim = sim
                    self.recorder = recorder

                def proc(self, pod):
                    yield self.sim.timeout(0.1)
                    self.recorder.event(pod, "Started", "ok")
        """) == []


class TestC005UnfencedWrites:
    def test_unfenced_transaction_flagged(self, tmp_path):
        assert codes(tmp_path, """
            class SyncerHA:
                def __init__(self, client):
                    self.client = client

                def takeover(self):
                    yield self.client.transaction([], [])
        """) == ["C005"]

    def test_raw_store_write_flagged(self, tmp_path):
        assert codes(tmp_path, """
            class StoreCoordinator:
                def __init__(self, store):
                    self.store = store

                def apply(self, rec):
                    yield self.store.put(rec.key, rec.value)
        """) == ["C005"]

    def test_fenced_transaction_clean(self, tmp_path):
        assert codes(tmp_path, """
            class SyncerHA:
                def __init__(self, client):
                    self.client = client

                def takeover(self, fence):
                    yield self.client.transaction([], [], fencing=fence)
        """) == []

    def test_non_leader_class_clean(self, tmp_path):
        assert codes(tmp_path, """
            class PlainWriter:
                def __init__(self, client):
                    self.client = client

                def write(self):
                    yield self.client.transaction([], [])
        """) == []


class TestC006AffinityDrop:
    def test_spawn_with_tenant_param_flagged(self, tmp_path):
        assert codes(tmp_path, """
            def proc(sim, tenant):
                yield sim.timeout(1)
                sim.spawn(proc(sim, tenant), name="again")
        """) == ["C006"]

    def test_spawn_with_affinity_clean(self, tmp_path):
        assert codes(tmp_path, """
            def proc(sim, tenant):
                yield sim.timeout(1)
                sim.spawn(proc(sim, tenant), name="again",
                          affinity=tenant)
        """) == []

    def test_tenant_bound_after_spawn_clean(self, tmp_path):
        # Regression: cluster-wide workers spawned before a later
        # `for tenant in ...` loop are not tenant-scoped.
        assert codes(tmp_path, """
            def start(sim, tenants):
                yield sim.timeout(1)
                sim.spawn(worker(sim), name="shard-worker")
                for tenant in tenants:
                    pass

            def worker(sim):
                yield sim.timeout(1)
        """) == []

    def test_affinity_forwarding_wrapper_clean(self, tmp_path):
        assert codes(tmp_path, """
            class Syncer:
                def __init__(self, sim):
                    self.sim = sim

                def spawn(self, coroutine, tenant=None, affinity=None):
                    return self.sim.spawn(coroutine, affinity=affinity)
        """) == []


class TestSuppressionsAndStrict:
    def test_inline_allow_suppresses(self, tmp_path):
        result = check_source(tmp_path, """
            def proc(sim, tenant):
                yield sim.timeout(1)
                sim.spawn(proc(sim, tenant), name="x")  # repro: allow[C006] intentionally unpinned
        """)
        assert result.active == []
        assert [f.code for f in result.suppressed] == ["C006"]

    def test_strict_flags_stale_c_suppression(self, tmp_path):
        result = check_source(tmp_path, """
            def quiet():
                return 1  # repro: allow[C004] nothing here anymore
        """, strict=True)
        assert [f.code for f in result.stale] == ["C000"]
        assert not result.ok

    def test_strict_ignores_d_code_suppressions(self, tmp_path):
        # D-code staleness belongs to the determinism linter.
        result = check_source(tmp_path, """
            import time

            def wall():
                return time.time()  # repro: allow[D001] boundary code
        """, strict=True)
        assert result.stale == []
        assert result.ok

    def test_allowlist_entry_matches_and_strict_prunes_stale(
            self, tmp_path):
        allowlist = [("pkg/mod.py", "C006", "scoped-elsewhere"),
                     ("pkg/gone.py", "C001", "obsolete")]
        result = check_source(tmp_path, """
            def proc(sim, tenant):
                yield sim.timeout(1)
                sim.spawn(proc(sim, tenant), name="x")
        """, allowlist=allowlist, strict=True)
        assert [f.code for f in result.allowlisted] == ["C006"]
        assert [f.code for f in result.stale] == ["C000"]
        assert "gone.py" in result.stale[0].message


class TestGoldenCorpus:
    def test_findings_match_expected_byte_exact(self, monkeypatch):
        monkeypatch.chdir(REPO_ROOT)
        result = check_paths(
            ["tests/fixtures/staticcheck/findings_corpus.py"])
        got = "\n".join(f.format() for f in result.active) + "\n"
        expected = (FIXTURES / "findings_corpus.expected").read_text()
        assert got == expected

    def test_corpus_covers_every_rule(self, monkeypatch):
        monkeypatch.chdir(REPO_ROOT)
        result = check_paths(
            ["tests/fixtures/staticcheck/findings_corpus.py"])
        assert {f.code for f in result.active} == {
            "C001", "C002", "C003", "C004", "C005", "C006"}


@pytest.mark.staticcheck
class TestTreeClean:
    def test_source_tree_passes_strict(self, monkeypatch):
        from repro.analysis.linter import load_allowlist
        monkeypatch.chdir(REPO_ROOT)
        allowlist = load_allowlist("analysis-allowlist.txt")
        result = check_paths(["src/repro"], allowlist=allowlist,
                             strict=True)
        assert result.ok, format_report(result)


@pytest.mark.staticcheck
class TestCli:
    def _run(self, argv, capsys):
        from repro.analysis.__main__ import main
        code = main(argv)
        return code, capsys.readouterr().out

    def test_exit_2_on_findings_and_text_report(self, capsys,
                                                monkeypatch):
        monkeypatch.chdir(REPO_ROOT)
        code, out = self._run(
            ["staticcheck",
             "tests/fixtures/staticcheck/findings_corpus.py"], capsys)
        assert code == 2
        assert "C001" in out and "files checked" in out

    def test_exit_0_on_clean_fixture(self, capsys, monkeypatch):
        monkeypatch.chdir(REPO_ROOT)
        code, _out = self._run(
            ["staticcheck",
             "tests/fixtures/staticcheck/clean_diamond.py"], capsys)
        assert code == 0

    def test_json_format_parses_and_carries_findings(self, capsys,
                                                     monkeypatch):
        monkeypatch.chdir(REPO_ROOT)
        code, out = self._run(
            ["staticcheck", "--format", "json",
             "tests/fixtures/staticcheck/findings_corpus.py"], capsys)
        assert code == 2
        payload = json.loads(out)
        assert payload["ok"] is False
        assert {f["code"] for f in payload["findings"]} == {
            "C001", "C002", "C003", "C004", "C005", "C006"}

    def test_sarif_format_is_valid_sarif_2_1(self, capsys, monkeypatch):
        monkeypatch.chdir(REPO_ROOT)
        code, out = self._run(
            ["staticcheck", "--format", "sarif",
             "tests/fixtures/staticcheck/findings_corpus.py"], capsys)
        assert code == 2
        payload = json.loads(out)
        assert payload["version"] == "2.1.0"
        run = payload["runs"][0]
        rule_ids = {r["id"] for r in run["tool"]["driver"]["rules"]}
        assert {"C001", "C002", "C003", "C004", "C005", "C006"} <= \
            rule_ids
        assert all(r["ruleId"].startswith("C") for r in run["results"])

    def test_rules_subcommand_lists_both_packs(self, capsys):
        code, out = self._run(["rules"], capsys)
        assert code == 0
        assert "D-pack" in out and "C-pack" in out
        for rule in ("D001", "D006", "C001", "C006"):
            assert rule in out

    def test_missing_path_is_usage_error(self, capsys):
        from repro.analysis.__main__ import main
        code = main(["staticcheck", "no/such/tree"])
        assert code == 1


class TestFormatters:
    def test_json_includes_suppressed_bucket(self, tmp_path):
        result = check_source(tmp_path, """
            def proc(sim, tenant):
                yield sim.timeout(1)
                sim.spawn(proc(sim, tenant), name="x")  # repro: allow[C006] pinned later
        """)
        payload = json.loads(format_json(result))
        assert payload["findings"] == []
        assert [f["code"] for f in payload["suppressed"]] == ["C006"]

    def test_sarif_lines_are_one_indexed(self, tmp_path):
        result = check_source(tmp_path, """
            def proc(sim):
                sim.timeout(5.0)
                yield sim.timeout(0.1)
        """)
        payload = json.loads(format_sarif(result))
        region = payload["runs"][0]["results"][0]["locations"][0][
            "physicalLocation"]["region"]
        assert region["startLine"] >= 1
        assert region["startColumn"] >= 1
