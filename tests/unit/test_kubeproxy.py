"""Unit tests for the standard and enhanced kubeproxy."""

import pytest

from repro.apiserver import ADMIN, APIServer
from repro.clientgo import Client, InformerFactory
from repro.config import DEFAULT_CONFIG
from repro.kubelet.runtimes.kata import KataRuntime
from repro.kubeproxy import EnhancedKubeProxy, KubeProxy
from repro.network import ConnectivityChecker, NetworkStack, Vpc
from repro.objects import make_namespace, make_pod, make_service
from repro.simkernel import Simulation


class _ProxyHarness:
    def __init__(self, enhanced=False):
        self.sim = Simulation()
        self.api = APIServer(self.sim, "super")
        self.client = Client(self.sim, self.api, ADMIN, qps=100000,
                             burst=100000)
        self.host_stack = NetworkStack("host")
        self.vpc = Vpc("vpc")
        informers = InformerFactory(self.sim, self.client)
        cls = EnhancedKubeProxy if enhanced else KubeProxy
        self.proxy = cls(self.sim, "n1", informers, self.host_stack,
                         DEFAULT_CONFIG)
        self.run(self.client.create(make_namespace("default")))
        informers.start_all()
        self.proxy.start()
        self.settle(0.5)

    def run(self, coroutine):
        return self.sim.run(until=self.sim.process(coroutine))

    def settle(self, seconds=2.0):
        self.sim.run(until=self.sim.now + seconds)

    def create_ready_backend(self, name, ip, labels):
        def flow():
            pod = make_pod(name, labels=labels, node_name="n1")
            created = yield from self.client.create(pod)
            created.status.pod_ip = ip
            created.status.phase = "Running"
            created.status.set_condition("Ready", "True", now=self.sim.now)
            yield from self.client.update_status(created)

        self.run(flow())

    def create_endpoints(self, service_name, ips, port=80):
        from repro.objects import Endpoints, EndpointSubset
        from repro.objects.service import EndpointAddress, EndpointPort

        endpoints = Endpoints()
        endpoints.metadata.name = service_name
        endpoints.metadata.namespace = "default"
        endpoints.subsets = [EndpointSubset(
            addresses=[EndpointAddress(ip=ip) for ip in ips],
            ports=[EndpointPort(name="main", port=port)])]
        self.run(self.client.create(endpoints))


class TestStandardKubeProxy:
    def test_programs_host_iptables_for_service(self):
        harness = _ProxyHarness()
        service = self.make_service_with_endpoints(harness)
        harness.settle(2)
        translated = harness.host_stack.iptables.translate(
            service.spec.cluster_ip, 80)
        assert translated == ("172.16.0.5", 8080)

    @staticmethod
    def make_service_with_endpoints(harness):
        service = harness.run(harness.client.create(
            make_service("svc", selector={"app": "w"}, port=80,
                         target_port=8080)))
        harness.create_endpoints("svc", ["172.16.0.5"], port=8080)
        return service

    def test_service_removal_cleans_rules(self):
        harness = _ProxyHarness()
        service = self.make_service_with_endpoints(harness)
        harness.settle(2)
        harness.run(harness.client.delete("services", "svc",
                                          namespace="default"))
        harness.run(harness.client.delete("endpoints", "svc",
                                          namespace="default"))
        harness.settle(2)
        assert harness.host_stack.iptables.translate(
            service.spec.cluster_ip, 80) is None

    def test_host_rules_do_not_help_vpc_guests(self):
        """The breakage motivating the enhanced proxy (paper §III-B(4))."""
        harness = _ProxyHarness()
        service = self.make_service_with_endpoints(harness)
        harness.settle(2)
        guest = NetworkStack("guest")
        harness.vpc.attach(guest)
        harness.vpc.attach(NetworkStack("backend"), ip="172.16.0.5")
        checker = ConnectivityChecker(harness.vpc)
        assert not checker.can_reach(guest, service.spec.cluster_ip, 80)


class TestEnhancedKubeProxy:
    def _boot_kata_sandbox(self, harness):
        runtime = KataRuntime(harness.sim, DEFAULT_CONFIG, harness.vpc)

        def boot():
            sandbox = yield from runtime.run_pod_sandbox(
                make_pod("kp", node_name="n1", runtime_class="kata"))
            return sandbox, runtime.agent_for(sandbox)

        return harness.run(boot())

    def test_injects_rules_into_guest(self):
        harness = _ProxyHarness(enhanced=True)
        service = TestStandardKubeProxy.make_service_with_endpoints(harness)
        harness.settle(2)
        sandbox, agent = self._boot_kata_sandbox(harness)
        harness.proxy.on_sandbox_started(sandbox, agent)
        harness.settle(2)
        assert agent.rules_ready
        assert sandbox.network_stack.iptables.translate(
            service.spec.cluster_ip, 80) == ("172.16.0.5", 8080)
        assert harness.proxy.injection_count == 1

    def test_guest_cluster_ip_connectivity_restored(self):
        harness = _ProxyHarness(enhanced=True)
        service = TestStandardKubeProxy.make_service_with_endpoints(harness)
        harness.vpc.attach(NetworkStack("backend"), ip="172.16.0.5")
        harness.settle(2)
        sandbox, agent = self._boot_kata_sandbox(harness)
        harness.proxy.on_sandbox_started(sandbox, agent)
        harness.settle(2)
        checker = ConnectivityChecker(harness.vpc)
        assert checker.resolve(sandbox.network_stack,
                               service.spec.cluster_ip, 80) == \
            ("172.16.0.5", 8080)

    def test_new_service_pushed_to_existing_guests(self):
        harness = _ProxyHarness(enhanced=True)
        sandbox, agent = self._boot_kata_sandbox(harness)
        harness.proxy.on_sandbox_started(sandbox, agent)
        harness.settle(1)
        service = TestStandardKubeProxy.make_service_with_endpoints(harness)
        harness.settle(3)
        assert sandbox.network_stack.iptables.translate(
            service.spec.cluster_ip, 80) is not None

    def test_periodic_scan_repairs_tampered_guest(self):
        harness = _ProxyHarness(enhanced=True)
        service = TestStandardKubeProxy.make_service_with_endpoints(harness)
        harness.settle(2)
        sandbox, agent = self._boot_kata_sandbox(harness)
        harness.proxy.on_sandbox_started(sandbox, agent)
        harness.settle(2)
        # Tamper: drop the rule inside the guest.
        sandbox.network_stack.iptables.flush()
        assert sandbox.network_stack.iptables.translate(
            service.spec.cluster_ip, 80) is None
        harness.settle(5)  # at least one reconcile interval
        assert sandbox.network_stack.iptables.translate(
            service.spec.cluster_ip, 80) is not None
        assert harness.proxy.scan_count >= 1

    def test_injection_latency_tracked(self):
        harness = _ProxyHarness(enhanced=True)
        for index in range(5):
            service = make_service(f"svc-{index}", selector={"a": "b"},
                                   port=80 + index)
            harness.run(harness.client.create(service))
        harness.settle(2)
        sandbox, agent = self._boot_kata_sandbox(harness)
        harness.proxy.on_sandbox_started(sandbox, agent)
        harness.settle(2)
        assert harness.proxy.mean_injection_latency > 0
        assert agent.rules_applied >= 5
