"""APF admission control unit tests (DESIGN.md §15).

Covers the tentpole's contract surface directly against
:class:`~repro.apiserver.APFLimiter`: classification, exempt bypass,
seat accounting with borrowing, queue-full and bounded-wait shedding
(both as structured 429 + Retry-After), and the pressure scaling of the
Retry-After hint.
"""

import pytest

from repro.apiserver import APFLimiter, FlowClassifier
from repro.apiserver.auth import ADMIN, Credential
from repro.apiserver.errors import TooManyRequests
from repro.config import ApfConfig, ApfTier
from repro.simkernel import Simulation

pytestmark = pytest.mark.apf


def small_config(**overrides):
    """A tiny seat pool so tests saturate it with a handful of requests."""
    defaults = dict(
        enabled=True, total_seats=4,
        tiers=(
            ApfTier(name="system", shares=0, exempt=True),
            ApfTier(name="platinum", shares=50, queue_wait=2.0),
            ApfTier(name="standard", shares=35),
            ApfTier(name="free", shares=15, queue_wait=0.5,
                    queue_limit=2, queues=2, hand_size=1,
                    borrow_cap_factor=1.0),
        ))
    defaults.update(overrides)
    return ApfConfig(**defaults)


def make_limiter(sim, **overrides):
    limiter = APFLimiter(sim, small_config(**overrides))
    limiter.classifier.assign("tenant-gold", "platinum")
    limiter.classifier.assign("tenant-iron", "free")
    return limiter


def acquire_sync(sim, limiter, credential):
    """Drive one acquire to completion; returns the ticket."""
    box = {}

    def proc():
        box["ticket"] = yield from limiter.acquire(credential)

    process = sim.spawn(proc(), name="acquire")
    sim.run(until=process)
    return box["ticket"]


class TestClassification:
    def test_explicit_user_assignment_wins(self):
        classifier = FlowClassifier()
        classifier.assign("tenant-gold", "platinum")
        assert classifier.tier_of(Credential("tenant-gold")) == "platinum"

    def test_group_rule(self):
        classifier = FlowClassifier()
        classifier.assign_group("batch-users", "free")
        cred = Credential("someone", groups=("batch-users",))
        assert classifier.tier_of(cred) == "free"

    def test_system_masters_and_system_prefix_are_system(self):
        classifier = FlowClassifier()
        assert classifier.tier_of(ADMIN) == "system"
        assert classifier.tier_of(
            Credential("system:kube-controller-manager")) == "system"

    def test_unknown_user_gets_default_tier(self):
        classifier = FlowClassifier(default_tier="standard")
        assert classifier.tier_of(Credential("tenant-new")) == "standard"

    def test_flow_is_the_user_identity(self):
        classifier = FlowClassifier()
        assert classifier.flow_of(Credential("tenant-a")) == "tenant-a"


class TestSeats:
    def test_exempt_bypasses_seat_pool(self):
        sim = Simulation(seed=1)
        limiter = make_limiter(sim)
        tickets = [acquire_sync(sim, limiter, ADMIN) for _ in range(10)]
        # All ten admitted instantly despite total_seats == 4.
        assert limiter.exempt_in_use == 10
        assert limiter.total_in_use == 0
        for ticket in tickets:
            limiter.release(ticket)
        assert limiter.exempt_in_use == 0

    def test_admit_within_share_is_immediate(self):
        sim = Simulation(seed=1)
        limiter = make_limiter(sim)
        ticket = acquire_sync(sim, limiter, Credential("tenant-gold"))
        assert ticket.state == "admitted"
        assert limiter.levels["platinum"].in_use == 1
        limiter.release(ticket)
        assert limiter.levels["platinum"].in_use == 0
        assert limiter.total_in_use == 0

    def test_borrowing_up_to_cap(self):
        sim = Simulation(seed=1)
        limiter = make_limiter(sim)
        level = limiter.levels["platinum"]
        # platinum: 50/100 shares of 4 seats -> 2 nominal, cap 4.
        assert level.seats == 2
        assert level.borrow_cap == 4
        tickets = [acquire_sync(sim, limiter, Credential("tenant-gold"))
                   for _ in range(4)]
        assert level.in_use == 4
        assert level.borrowed_peak == 2
        for ticket in tickets:
            limiter.release(ticket)

    def test_free_tier_cannot_borrow(self):
        sim = Simulation(seed=1)
        limiter = make_limiter(sim)
        level = limiter.levels["free"]
        # free: borrow_cap_factor 1.0 -> cap == nominal share.
        assert level.borrow_cap == level.seats
        held = [acquire_sync(sim, limiter, Credential("tenant-iron"))
                for _ in range(level.seats)]
        assert level.in_use == level.seats
        assert not limiter._can_admit(level)
        for ticket in held:
            limiter.release(ticket)

    def test_release_of_unadmitted_ticket_raises(self):
        sim = Simulation(seed=1)
        limiter = make_limiter(sim)
        ticket = acquire_sync(sim, limiter, Credential("tenant-gold"))
        limiter.release(ticket)
        with pytest.raises(RuntimeError):
            limiter.release(ticket)


class TestQueueingAndShedding:
    def saturate(self, sim, limiter, credential, count):
        return [acquire_sync(sim, limiter, credential)
                for _ in range(count)]

    def test_waiter_dispatched_on_release(self):
        sim = Simulation(seed=1)
        limiter = make_limiter(sim)
        held = self.saturate(sim, limiter, Credential("tenant-gold"), 4)
        admitted = []

        def waiter():
            ticket = yield from limiter.acquire(Credential("tenant-gold"))
            admitted.append(ticket)

        sim.spawn(waiter(), name="queued")
        sim.run(until=sim.now + 0.1)
        assert not admitted          # pool saturated, still queued
        limiter.release(held.pop())
        sim.run(until=sim.now + 0.01)
        assert len(admitted) == 1    # freed seat handed to the waiter
        wait_hist = limiter.levels["platinum"].wait_total
        assert wait_hist >= 0.1

    def test_queue_full_sheds_with_retry_after(self):
        sim = Simulation(seed=1)
        limiter = make_limiter(sim)
        free = limiter.levels["free"]
        held = self.saturate(sim, limiter, Credential("tenant-iron"),
                             free.seats)
        # hand_size=1, queue_limit=2: the flow's single queue takes two
        # waiters, the third arrival overflows immediately.
        for _ in range(2):
            sim.spawn(limiter.acquire(Credential("tenant-iron")),
                      name="queued")
        sim.run(until=sim.now + 0.01)
        shed = {}

        def third():
            try:
                yield from limiter.acquire(Credential("tenant-iron"))
            except TooManyRequests as exc:
                shed["exc"] = exc

        sim.spawn(third(), name="shed")
        sim.run(until=sim.now + 0.01)
        assert "exc" in shed
        assert shed["exc"].retry_after > 0
        assert free.rejected_queue_full == 1
        for ticket in held:
            limiter.release(ticket)

    def test_bounded_wait_times_out_with_retry_after(self):
        sim = Simulation(seed=1)
        limiter = make_limiter(sim)
        free = limiter.levels["free"]
        held = self.saturate(sim, limiter, Credential("tenant-iron"),
                             free.seats)
        shed = {}

        def queued():
            try:
                yield from limiter.acquire(Credential("tenant-iron"))
            except TooManyRequests as exc:
                shed["exc"] = exc
                shed["at"] = sim.now

        sim.spawn(queued(), name="queued")
        # Never release: the 0.5s bounded wait (plus <=25% jitter) fires.
        sim.run(until=sim.now + 1.0)
        assert "exc" in shed
        assert 0.5 <= shed["at"] <= 0.5 * 1.25 + 1e-9
        assert free.rejected_timeout == 1
        assert free.waiting == 0
        for ticket in held:
            limiter.release(ticket)

    def test_retry_after_scales_with_queue_pressure(self):
        sim = Simulation(seed=1)
        limiter = make_limiter(sim)
        free = limiter.levels["free"]
        empty_hint = limiter._retry_after(free)
        free.waiting = 4          # full: 2 queues x limit 2
        full_hint = limiter._retry_after(free)
        free.waiting = 0
        assert full_hint > empty_hint
        assert full_hint <= limiter.config.retry_after_max

    def test_interrupted_waiter_does_not_leak_seat_or_crash(self):
        sim = Simulation(seed=1)
        limiter = make_limiter(sim)
        held = self.saturate(sim, limiter, Credential("tenant-gold"), 4)

        def doomed():
            # A bare failed process would crash the sim, so swallow the
            # interrupt the way a real client teardown does.
            from repro.simkernel.errors import Interrupt
            try:
                yield from limiter.acquire(Credential("tenant-gold"))
            except Interrupt:
                pass

        process = sim.spawn(doomed(), name="doomed")
        sim.run(until=sim.now + 0.05)
        process.interrupt("client gave up")
        sim.run(until=sim.now + 0.01)
        # Release everything: the dead waiter must be skipped, not seated.
        for ticket in held:
            limiter.release(ticket)
        assert limiter.total_in_use == 0
        # The expiry watchdog for the dead waiter must not crash the sim
        # (failing an event nobody listens to would be an undefused
        # failure) — run past the platinum 2s bound to prove it.
        sim.run(until=sim.now + 3.0)
        assert limiter.levels["platinum"].waiting == 0


class TestSnapshot:
    def test_snapshot_counts_dispatch_and_shed(self):
        sim = Simulation(seed=1)
        limiter = make_limiter(sim)
        ticket = acquire_sync(sim, limiter, Credential("tenant-gold"))
        limiter.release(ticket)
        rows = {row["level"]: row for row in limiter.snapshot()}
        assert rows["platinum"]["dispatched"] == 1
        assert rows["platinum"]["in_use"] == 0
        assert rows["system"]["exempt"] is True

    def test_default_config_is_disabled(self):
        from repro.config import DEFAULT_CONFIG

        assert DEFAULT_CONFIG.apf.enabled is False
        assert DEFAULT_CONFIG.swapper.enabled is False
