"""Unit tests for label and field selectors."""

from repro.objects.selectors import (
    LabelSelector,
    LabelSelectorRequirement,
    get_field,
    match_fields,
    match_label_dict,
    parse_selector,
)


class TestLabelSelector:
    def test_match_labels(self):
        selector = LabelSelector(match_labels={"app": "web"})
        assert selector.matches({"app": "web", "tier": "fe"})
        assert not selector.matches({"app": "db"})
        assert not selector.matches({})

    def test_empty_selector_matches_everything(self):
        assert LabelSelector().matches({"anything": "goes"})
        assert LabelSelector().matches({})
        assert LabelSelector().empty

    def test_in_operator(self):
        selector = LabelSelector(match_expressions=[
            LabelSelectorRequirement(key="env", operator="In",
                                     values=["prod", "staging"])])
        assert selector.matches({"env": "prod"})
        assert not selector.matches({"env": "dev"})
        assert not selector.matches({})

    def test_not_in_operator(self):
        selector = LabelSelector(match_expressions=[
            LabelSelectorRequirement(key="env", operator="NotIn",
                                     values=["prod"])])
        assert selector.matches({"env": "dev"})
        assert selector.matches({})
        assert not selector.matches({"env": "prod"})

    def test_exists_operator(self):
        selector = LabelSelector(match_expressions=[
            LabelSelectorRequirement(key="gpu", operator="Exists")])
        assert selector.matches({"gpu": "nvidia"})
        assert not selector.matches({"cpu": "xeon"})

    def test_does_not_exist_operator(self):
        selector = LabelSelector(match_expressions=[
            LabelSelectorRequirement(key="gpu", operator="DoesNotExist")])
        assert selector.matches({})
        assert not selector.matches({"gpu": "nvidia"})

    def test_combined_terms_are_anded(self):
        selector = LabelSelector(
            match_labels={"app": "web"},
            match_expressions=[LabelSelectorRequirement(
                key="env", operator="In", values=["prod"])])
        assert selector.matches({"app": "web", "env": "prod"})
        assert not selector.matches({"app": "web", "env": "dev"})

    def test_serde_round_trip(self):
        selector = LabelSelector(
            match_labels={"a": "b"},
            match_expressions=[LabelSelectorRequirement(
                key="k", operator="In", values=["v"])])
        again = LabelSelector.from_dict(selector.to_dict())
        assert again == selector
        assert again.matches({"a": "b", "k": "v"})


class TestParseSelector:
    def test_equality_pairs(self):
        selector = parse_selector("app=web,tier=fe")
        assert selector.matches({"app": "web", "tier": "fe"})
        assert not selector.matches({"app": "web"})

    def test_not_equal(self):
        selector = parse_selector("env!=prod")
        assert selector.matches({"env": "dev"})
        assert not selector.matches({"env": "prod"})

    def test_exists_bare_key(self):
        selector = parse_selector("gpu")
        assert selector.matches({"gpu": ""})
        assert not selector.matches({})

    def test_empty_string(self):
        assert parse_selector("").matches({"x": "y"})

    def test_none(self):
        assert parse_selector(None).matches({})


class TestFieldSelectors:
    def test_get_field_nested(self):
        obj = {"spec": {"nodeName": "n1"}, "status": {"phase": "Running"}}
        assert get_field(obj, "spec.nodeName") == "n1"
        assert get_field(obj, "status.phase") == "Running"
        assert get_field(obj, "spec.missing") is None
        assert get_field(obj, "a.b.c") is None

    def test_match_fields(self):
        obj = {"spec": {"nodeName": "n1"}}
        assert match_fields({"spec.nodeName": "n1"}, obj)
        assert not match_fields({"spec.nodeName": "n2"}, obj)

    def test_match_fields_negation(self):
        obj = {"status": {"phase": "Running"}}
        assert match_fields({"status.phase!": "Failed"}, obj)
        assert not match_fields({"status.phase!": "Running"}, obj)

    def test_empty_field_selector_matches(self):
        assert match_fields({}, {"a": 1})
        assert match_fields(None, {"a": 1})


class TestMatchLabelDict:
    def test_match(self):
        assert match_label_dict({"app": "web"}, {"app": "web", "x": "y"})

    def test_no_match(self):
        assert not match_label_dict({"app": "web"}, {"app": "db"})

    def test_empty_selector_never_matches(self):
        # Service semantics: an empty selector selects nothing.
        assert not match_label_dict({}, {"app": "web"})

    def test_none_labels(self):
        assert not match_label_dict({"app": "web"}, None)
