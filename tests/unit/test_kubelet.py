"""Unit tests for the kubelet, runtimes, and virtual kubelet."""

import pytest

from repro.apiserver import ADMIN, APIServer
from repro.clientgo import Client, InformerFactory
from repro.config import DEFAULT_CONFIG
from repro.kubelet import Kubelet
from repro.kubelet.runtimes.kata import KataRuntime
from repro.kubelet.runtimes.runc import RuncRuntime
from repro.network import NetworkStack, Vpc
from repro.objects import make_namespace, make_node, make_pod
from repro.simkernel import Simulation
from repro.virtualkubelet import MockProvider, VirtualKubelet


class _NodeHarness:
    def __init__(self, use_kata=False):
        self.sim = Simulation()
        self.api = APIServer(self.sim, "super")
        self.client = Client(self.sim, self.api, ADMIN, qps=100000,
                             burst=100000)
        self.vpc = Vpc("vpc")
        host_stack = NetworkStack("host-n1")
        node = make_node("n1", internal_ip="192.168.1.10")
        informers = InformerFactory(self.sim, self.client)
        ip_counter = iter(range(1, 250))
        runtimes = {
            None: RuncRuntime(self.sim, DEFAULT_CONFIG, host_stack,
                              lambda: f"10.1.0.{next(ip_counter)}"),
            "kata": KataRuntime(self.sim, DEFAULT_CONFIG, self.vpc),
        }
        self.kubelet = Kubelet(self.sim, node, self.client, DEFAULT_CONFIG,
                               runtimes, informers)
        self.run(self.client.create(make_namespace("default")))
        self.run(self.kubelet.start())
        self.settle(0.5)

    def run(self, coroutine):
        return self.sim.run(until=self.sim.process(coroutine))

    def settle(self, seconds=3.0):
        self.sim.run(until=self.sim.now + seconds)

    def get_pod(self, name):
        return self.run(self.client.get("pods", name, namespace="default"))


@pytest.fixture
def harness():
    return _NodeHarness()


class TestKubeletLifecycle:
    def test_node_registered(self, harness):
        node = harness.run(harness.client.get("nodes", "n1"))
        assert node.status.is_ready

    def test_bound_pod_becomes_running_and_ready(self, harness):
        harness.run(harness.client.create(make_pod("p", node_name="n1")))
        harness.settle(3)
        pod = harness.get_pod("p")
        assert pod.status.phase == "Running"
        assert pod.status.is_ready
        assert pod.status.pod_ip
        assert pod.status.host_ip == "192.168.1.10"
        assert pod.status.container_statuses[0].ready

    def test_unbound_pod_ignored(self, harness):
        harness.run(harness.client.create(make_pod("floating")))
        harness.settle(2)
        assert harness.get_pod("floating").status.phase == "Pending"

    def test_other_nodes_pod_ignored(self, harness):
        harness.run(harness.client.create(make_pod("other",
                                                   node_name="n2")))
        harness.settle(2)
        assert harness.get_pod("other").status.phase == "Pending"

    def test_init_containers_run_before_workload(self, harness):
        from repro.objects import Container

        pod = make_pod("with-init", node_name="n1")
        pod.spec.init_containers = [Container(name="setup", image="busybox")]
        harness.run(harness.client.create(pod))
        harness.settle(5)
        fresh = harness.get_pod("with-init")
        assert fresh.status.is_ready
        init_condition = fresh.status.get_condition("Initialized")
        assert init_condition.status == "True"

    def test_pod_deletion_tears_down_containers(self, harness):
        harness.run(harness.client.create(make_pod("p", node_name="n1")))
        harness.settle(3)
        harness.run(harness.client.delete("pods", "p",
                                          namespace="default"))
        harness.settle(2)
        assert harness.kubelet.pods_stopped == 1
        assert harness.kubelet.sandbox_for("default", "p") is None

    def test_heartbeats_refresh_node_condition(self, harness):
        harness.settle(5)
        node = harness.run(harness.client.get("nodes", "n1"))
        beat = node.status.get_condition("Ready").last_heartbeat_time
        assert beat is not None and beat > 1.0


class TestKubeletServer:
    def test_logs(self, harness):
        harness.run(harness.client.create(make_pod("p", node_name="n1")))
        harness.settle(3)
        lines = harness.kubelet.get_logs("default", "p")
        assert any("started" in line for line in lines)

    def test_logs_unknown_pod(self, harness):
        from repro.apiserver import NotFound

        with pytest.raises(NotFound):
            harness.kubelet.get_logs("default", "ghost")

    def test_exec(self, harness):
        harness.run(harness.client.create(make_pod("p", node_name="n1")))
        harness.settle(3)
        output = harness.run(
            harness.kubelet.exec_in_pod("default", "p", ["ls", "/"]))
        assert "exec(ls /)" in output


class TestKataRuntime:
    def test_kata_pod_gets_guest_stack_and_eni(self):
        harness = _NodeHarness()
        pod = make_pod("kp", node_name="n1", runtime_class="kata")
        harness.run(harness.client.create(pod))
        harness.settle(6)
        fresh = harness.get_pod("kp")
        assert fresh.status.is_ready
        sandbox = harness.kubelet.sandbox_for("default", "kp")
        assert sandbox.runtime == "kata"
        assert harness.vpc.reachable(sandbox.ip)
        assert sandbox.network_stack.name.startswith("guest-")

    def test_kata_slower_than_runc(self):
        harness = _NodeHarness()
        harness.run(harness.client.create(make_pod("rc", node_name="n1")))
        harness.settle(6)
        runc_ready = harness.get_pod("rc").status.get_condition(
            "Ready").last_transition_time

        pod = make_pod("kp", node_name="n1", runtime_class="kata")
        start = harness.sim.now
        harness.run(harness.client.create(pod))
        harness.settle(8)
        kata_ready = harness.get_pod("kp").status.get_condition(
            "Ready").last_transition_time
        assert (kata_ready - start) > runc_ready  # VM boot cost

    def test_kata_agent_applies_rules(self):
        sim = Simulation()
        vpc = Vpc("v")
        runtime = KataRuntime(sim, DEFAULT_CONFIG, vpc)

        def flow():
            sandbox = yield from runtime.run_pod_sandbox(
                make_pod("p", node_name="n1"))
            agent = runtime.agent_for(sandbox)
            yield from agent.apply_routing_rules({
                "rules": [("10.96.0.1", 80, [("172.16.0.9", 8080)])],
                "final": True,
            })
            return sandbox, agent

        sandbox, agent = sim.run(until=sim.process(flow()))
        assert agent.rules_ready
        assert sandbox.network_stack.iptables.translate(
            "10.96.0.1", 80) == ("172.16.0.9", 8080)


class TestVirtualKubelet:
    def test_instant_ready(self):
        sim = Simulation()
        api = APIServer(sim, "super")
        client = Client(sim, api, ADMIN, qps=100000, burst=100000)
        informers = InformerFactory(sim, client)
        vk = VirtualKubelet(sim, "vk-1", client, DEFAULT_CONFIG, informers)

        def setup():
            yield from client.create(make_namespace("default"))
            yield from vk.start()

        sim.run(until=sim.process(setup()))
        sim.run(until=sim.now + 0.5)

        def create():
            yield from client.create(make_pod("p", node_name="vk-1"))

        sim.run(until=sim.process(create()))
        sim.run(until=sim.now + 2)

        def fetch():
            return (yield from client.get("pods", "p",
                                          namespace="default"))

        pod = sim.run(until=sim.process(fetch()))
        assert pod.status.phase == "Running"
        assert pod.status.is_ready
        assert vk.pods_acked == 1

    def test_mock_provider_interface(self):
        sim = Simulation()
        provider = MockProvider(sim, "vk-1")
        pod = provider.create_pod(make_pod("p"))
        assert pod.status.is_ready
        assert provider.get_pod("default", "p") is pod
        assert provider.get_pod_status("default", "p").phase == "Running"
        assert len(provider.get_pods()) == 1
        provider.delete_pod(pod)
        assert provider.get_pods() == []
        assert provider.capacity()["cpu"] == "96"
