"""Unit tests for the built-in controllers."""

import pytest

from repro.apiserver import ADMIN, APIServer, NotFound
from repro.clientgo import Client, InformerFactory
from repro.controllers import ControllerManager
from repro.objects import (
    Deployment,
    LabelSelector,
    ReplicaSet,
    make_namespace,
    make_pod,
    make_service,
)
from repro.simkernel import Simulation


class _Cluster:
    def __init__(self, enable_workloads=True):
        self.sim = Simulation()
        self.api = APIServer(self.sim, "cp")
        self.client = Client(self.sim, self.api, ADMIN, qps=100000,
                             burst=100000)
        factory = InformerFactory(self.sim, self.client)
        self.manager = ControllerManager(self.sim, self.client, factory,
                                         enable_workloads=enable_workloads)
        self.manager.start()
        self.run(self.client.create(make_namespace("default")))
        self.settle()

    def run(self, coroutine):
        return self.sim.run(until=self.sim.process(coroutine))

    def settle(self, seconds=2.0):
        self.sim.run(until=self.sim.now + seconds)

    def list(self, plural, namespace="default"):
        items, _rv = self.run(self.client.list(plural, namespace=namespace))
        return items


@pytest.fixture
def cluster():
    return _Cluster()


class TestEndpointsController:
    def test_endpoints_follow_ready_pods(self, cluster):
        cluster.run(cluster.client.create(
            make_service("svc", selector={"app": "web"}, port=80)))
        pod = make_pod("p", labels={"app": "web"})
        pod.status.pod_ip = "10.0.0.5"
        pod.status.phase = "Running"
        pod.status.set_condition("Ready", "True")

        def create_ready_pod():
            created = yield from cluster.client.create(pod)
            created.status = pod.status
            yield from cluster.client.update_status(created)

        cluster.run(create_ready_pod())
        cluster.settle()
        endpoints = cluster.run(cluster.client.get("endpoints", "svc",
                                                   namespace="default"))
        assert endpoints.ready_ips() == ["10.0.0.5"]

    def test_not_ready_pods_in_not_ready_addresses(self, cluster):
        cluster.run(cluster.client.create(
            make_service("svc", selector={"app": "web"})))

        def create_pod():
            pod = make_pod("p", labels={"app": "web"})
            created = yield from cluster.client.create(pod)
            created.status.pod_ip = "10.0.0.6"
            yield from cluster.client.update_status(created)

        cluster.run(create_pod())
        cluster.settle()
        endpoints = cluster.run(cluster.client.get("endpoints", "svc",
                                                   namespace="default"))
        assert endpoints.ready_ips() == []
        assert endpoints.subsets[0].not_ready_addresses[0].ip == "10.0.0.6"

    def test_service_deletion_removes_endpoints(self, cluster):
        cluster.run(cluster.client.create(
            make_service("svc", selector={"app": "web"})))
        cluster.settle()
        cluster.run(cluster.client.delete("services", "svc",
                                          namespace="default"))
        cluster.settle()
        with pytest.raises(NotFound):
            cluster.run(cluster.client.get("endpoints", "svc",
                                           namespace="default"))


class TestNamespaceController:
    def test_terminating_namespace_is_swept_and_removed(self, cluster):
        cluster.run(cluster.client.create(make_namespace("doomed")))
        cluster.run(cluster.client.create(make_pod("p",
                                                   namespace="doomed")))
        cluster.run(cluster.client.delete("namespaces", "doomed"))
        cluster.settle(5)
        with pytest.raises(NotFound):
            cluster.run(cluster.client.get("namespaces", "doomed"))
        items, _rv = cluster.run(cluster.client.list("pods",
                                                     namespace="doomed"))
        assert items == []


def _make_replicaset(name="rs", replicas=3):
    rs = ReplicaSet()
    rs.metadata.name = name
    rs.metadata.namespace = "default"
    rs.spec.replicas = replicas
    rs.spec.selector = LabelSelector(match_labels={"app": name})
    rs.spec.template.metadata.labels = {"app": name}
    pod_template = make_pod("template")
    rs.spec.template.spec = pod_template.spec
    return rs


class TestReplicaSetController:
    def test_scales_up_to_desired(self, cluster):
        cluster.run(cluster.client.create(_make_replicaset(replicas=3)))
        cluster.settle(3)
        pods = cluster.list("pods")
        assert len(pods) == 3
        assert all(p.metadata.owner_references[0].kind == "ReplicaSet"
                   for p in pods)

    def test_scales_down(self, cluster):
        cluster.run(cluster.client.create(_make_replicaset(replicas=3)))
        cluster.settle(3)

        def scale():
            rs = yield from cluster.client.get("replicasets", "rs",
                                               namespace="default")
            rs.spec.replicas = 1
            yield from cluster.client.update(rs)

        cluster.run(scale())
        cluster.settle(3)
        assert len(cluster.list("pods")) == 1

    def test_replaces_deleted_pod(self, cluster):
        cluster.run(cluster.client.create(_make_replicaset(replicas=2)))
        cluster.settle(3)
        victim = cluster.list("pods")[0]
        cluster.run(cluster.client.delete("pods", victim.name,
                                          namespace="default"))
        cluster.settle(3)
        assert len(cluster.list("pods")) == 2

    def test_status_reflects_observed_state(self, cluster):
        cluster.run(cluster.client.create(_make_replicaset(replicas=2)))
        cluster.settle(3)
        rs = cluster.run(cluster.client.get("replicasets", "rs",
                                            namespace="default"))
        assert rs.status.replicas == 2


class TestDeploymentController:
    def test_deployment_creates_replicaset_and_pods(self, cluster):
        deployment = Deployment()
        deployment.metadata.name = "web"
        deployment.metadata.namespace = "default"
        deployment.spec.replicas = 2
        deployment.spec.selector = LabelSelector(match_labels={"app": "web"})
        deployment.spec.template.metadata.labels = {"app": "web"}
        deployment.spec.template.spec = make_pod("t").spec
        cluster.run(cluster.client.create(deployment))
        cluster.settle(4)
        replicasets = cluster.list("replicasets")
        assert len(replicasets) == 1
        assert replicasets[0].name.startswith("web-")
        assert len(cluster.list("pods")) == 2


class TestGarbageCollector:
    def test_orphaned_pods_deleted(self, cluster):
        cluster.run(cluster.client.create(_make_replicaset(replicas=2)))
        cluster.settle(3)
        assert len(cluster.list("pods")) == 2
        cluster.run(cluster.client.delete("replicasets", "rs",
                                          namespace="default"))
        cluster.settle(4)
        assert cluster.list("pods") == []
