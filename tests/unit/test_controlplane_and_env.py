"""Unit tests for control-plane assembly, kubeconfigs, and the env API."""

import pytest

from repro.config import DEFAULT_CONFIG
from repro.core import SuperCluster, TenantControlPlane, VirtualClusterEnv
from repro.core.swapper import SwapState, control_plane_memory
from repro.objects import make_namespace, make_pod
from repro.simkernel import Simulation
from repro.workloads import even_split


class TestControlPlaneAssembly:
    def test_tenant_cp_has_controllers_but_no_scheduler(self):
        sim = Simulation()
        control_plane = TenantControlPlane(sim, "tenant-x", DEFAULT_CONFIG)
        control_plane.start()
        assert control_plane.scheduler is None
        assert control_plane.controller_manager is not None
        control_plane.stop()

    def test_super_cluster_has_scheduler(self):
        sim = Simulation()
        super_cluster = SuperCluster(sim, DEFAULT_CONFIG)
        super_cluster.start()
        assert super_cluster.scheduler is not None
        super_cluster.stop()

    def test_tenant_credential_distinct_from_admin(self):
        sim = Simulation()
        control_plane = TenantControlPlane(sim, "tenant-x", DEFAULT_CONFIG)
        assert control_plane.tenant_credential.cert_hash != \
            control_plane.admin.cert_hash

    def test_kubeconfig_round_trip(self):
        sim = Simulation()
        control_plane = TenantControlPlane(sim, "tenant-x", DEFAULT_CONFIG)
        kubeconfig = control_plane.tenant_kubeconfig()
        client = kubeconfig.client(sim)
        sim.run(until=sim.process(client.create(make_namespace("default"))))
        pod = sim.run(until=sim.process(client.create(make_pod("p"))))
        assert pod.metadata.uid

    def test_vc_type_registered_on_super(self):
        sim = Simulation()
        super_cluster = SuperCluster(sim, DEFAULT_CONFIG)
        assert super_cluster.api.registry.has("virtualclusters")

    def test_register_user_and_reject_stranger(self):
        from repro.apiserver import Credential, Unauthorized

        sim = Simulation()
        control_plane = TenantControlPlane(sim, "t", DEFAULT_CONFIG)
        known = control_plane.register_user("alice")
        client = control_plane.client(credential=known)
        sim.run(until=sim.process(client.create(make_namespace("default"))))
        stranger = Credential("mallory")
        bad_client = control_plane.client(credential=stranger)
        with pytest.raises(Unauthorized):
            sim.run(until=sim.process(bad_client.list("pods",
                                                      namespace="default")))


class TestEnvHelpers:
    def test_run_until_times_out(self):
        env = VirtualClusterEnv(num_virtual_nodes=1)
        env.bootstrap()
        with pytest.raises(TimeoutError):
            env.run_until(lambda: False, timeout=1.0)

    def test_bootstrap_idempotent(self):
        env = VirtualClusterEnv(num_virtual_nodes=1)
        env.bootstrap()
        t = env.sim.now
        env.bootstrap()
        assert env.sim.now == t

    def test_named_env_prefixes_nodes(self):
        env = VirtualClusterEnv(num_virtual_nodes=2, name="west")
        env.bootstrap()
        names = [vk.node_name for vk in env.virtual_kubelets]
        assert all(name.startswith("west-vk-node-") for name in names)

    def test_shared_sim_between_envs(self):
        sim = Simulation()
        env_a = VirtualClusterEnv(sim=sim, name="a", num_virtual_nodes=1)
        env_b = VirtualClusterEnv(sim=sim, name="b", num_virtual_nodes=1)
        assert env_a.sim is env_b.sim
        assert env_a.super_cluster.api is not env_b.super_cluster.api


class TestSwapStateUnit:
    def test_ensure_awake_noop_when_not_swapped(self):
        sim = Simulation()
        state = SwapState(sim, wake_latency=1.0)

        def probe():
            yield from state.ensure_awake()
            return sim.now

        assert sim.run(until=sim.process(probe())) == 0.0

    def test_ensure_awake_pays_latency_once(self):
        sim = Simulation()
        state = SwapState(sim, wake_latency=1.0)
        state.swapped = True

        def probe():
            yield from state.ensure_awake()
            first = sim.now
            yield from state.ensure_awake()
            return first, sim.now

        first, second = sim.run(until=sim.process(probe()))
        assert first == 1.0
        assert second == 1.0  # second call free
        assert state.swap_ins == 1

    def test_control_plane_memory_reflects_objects(self):
        sim = Simulation()
        control_plane = TenantControlPlane(sim, "t", DEFAULT_CONFIG)
        empty = control_plane_memory(control_plane)
        client = control_plane.client()
        sim.run(until=sim.process(client.create(make_namespace("default"))))
        fuller = control_plane_memory(control_plane)
        assert fuller > empty


class TestEvenSplit:
    def test_exact_division(self):
        assert even_split(10, 5) == [2, 2, 2, 2, 2]

    def test_remainder_spread(self):
        assert even_split(10, 3) == [4, 3, 3]
        assert sum(even_split(10, 3)) == 10

    def test_more_parts_than_total(self):
        assert even_split(2, 4) == [1, 1, 0, 0]
