"""Regression tests for determinism fixes surfaced by the linter and
replay bisector (repro.analysis).

Each test pins one fixed true positive:

* D003 — etcd watch fan-out iterated a ``set`` of watches;
* D003 — informer ``on_replace`` iterated a set difference for deletes;
* D006 — ``hash_certificate`` / ``short_uid_hash`` hashed ``str(obj)``;
* replay — ``generate_uid`` drew from a process-global counter, so two
  same-seed runs in one interpreter minted different UIDs (found by the
  bisector, not the linter).
"""

from types import SimpleNamespace

import pytest

from repro.apiserver.auth import hash_certificate
from repro.core.crd import short_uid_hash
from repro.objects.meta import generate_uid
from repro.simkernel import Simulation
from repro.storage import EtcdStore


class _RecordingChannel:
    """Stand-in watch channel that logs delivery order by watch tag."""

    def __init__(self, tag, deliveries):
        self.tag = tag
        self.deliveries = deliveries

    def try_put(self, event):
        self.deliveries.append((self.tag, event.key))
        return True

    def close(self):
        pass


class TestEtcdWatchFanoutOrder:
    def test_delivery_follows_registration_order(self):
        store = EtcdStore(Simulation(), name="etcd")
        deliveries = []
        for tag in ("w1", "w2", "w3"):
            store.watch("/registry/",
                        channel_factory=lambda tag=tag: _RecordingChannel(
                            tag, deliveries))
        store.create("/registry/pods/ns/a", {})
        assert [tag for tag, _key in deliveries] == ["w1", "w2", "w3"]

    def test_cancel_preserves_remaining_order(self):
        store = EtcdStore(Simulation(), name="etcd")
        deliveries = []
        watches = [
            store.watch("/registry/",
                        channel_factory=lambda tag=tag: _RecordingChannel(
                            tag, deliveries))
            for tag in ("w1", "w2", "w3")
        ]
        watches[1].cancel()
        store.watch("/registry/",
                    channel_factory=lambda: _RecordingChannel(
                        "w4", deliveries))
        store.create("/registry/pods/ns/a", {})
        assert [tag for tag, _key in deliveries] == ["w1", "w3", "w4"]


class TestInformerReplaceDeleteOrder:
    def _obj(self, key):
        return SimpleNamespace(
            key=key, metadata=SimpleNamespace(namespace="ns", labels={}))

    def test_leftover_deletes_fan_out_sorted(self):
        from repro.clientgo.informer import SharedInformer

        sim = Simulation()
        informer = SharedInformer(sim, client=None, plural="pods")
        informer.on_replace(
            [self._obj(f"ns/p{i}") for i in (3, 1, 4, 1, 5, 9, 2, 6)])
        deleted = []
        informer.add_handlers(on_delete=lambda obj: deleted.append(obj.key))
        informer.on_replace([self._obj("ns/p1")])
        assert deleted == sorted(deleted)
        assert set(deleted) == {"ns/p2", "ns/p3", "ns/p4", "ns/p5",
                                "ns/p6", "ns/p9"}


class TestCanonicalHashInputs:
    def test_hash_certificate_pinned_golden_digest(self):
        # Committed golden digest from a separate interpreter run: the
        # hash is a pure function of the PEM bytes, never of a repr.
        assert hash_certificate("-----BEGIN CERT-----abc") == (
            "c42088758e951eaa684d60f3ad0668bad27e429d217b444cd9eb166caf"
            "5561c5")
        assert hash_certificate("pem-a") != hash_certificate("pem-b")

    def test_hash_certificate_rejects_non_str(self):
        with pytest.raises(TypeError):
            hash_certificate(object())
        with pytest.raises(TypeError):
            hash_certificate(b"pem-bytes")

    def test_short_uid_hash_pinned_golden_digest(self):
        assert short_uid_hash("uid-00000001") == "d7113a"

    def test_short_uid_hash_rejects_non_str(self):
        with pytest.raises(TypeError):
            short_uid_hash(12345)
        with pytest.raises(TypeError):
            short_uid_hash(None)


class TestPerSimulationUids:
    def test_same_seed_sims_mint_identical_uids(self):
        """The bisector's index-0 divergence: UIDs must restart per sim."""
        sims = [Simulation(seed=5), Simulation(seed=5)]
        uids = [[generate_uid(sim) for _ in range(4)] for sim in sims]
        assert uids[0] == uids[1]

    def test_sim_counter_is_isolated_from_global(self):
        sim = Simulation(seed=5)
        first = generate_uid(sim)
        generate_uid()  # global fallback draw must not advance the sim's
        second = generate_uid(sim)
        assert first == "uid-00000001"
        assert second == "uid-00000002"

    def test_global_fallback_still_unique(self):
        assert generate_uid() != generate_uid()


class TestPerSimulationContainerSerials:
    """staticcheck C003: runc/kata drew sandbox & container IDs from
    module-level itertools.count, so the second Simulation in one
    interpreter minted different IDs than the first (and than a fresh
    process — exactly what breaks golden digests)."""

    def test_fresh_sims_mint_identical_serials(self):
        from repro.kubelet.cri import next_runtime_serial
        sims = [Simulation(seed=3), Simulation(seed=3)]
        seqs = [[next_runtime_serial(sim, "runc") for _ in range(4)]
                for sim in sims]
        assert seqs[0] == seqs[1] == [1, 2, 3, 4]

    def test_runtime_kinds_count_independently(self):
        from repro.kubelet.cri import next_runtime_serial
        sim = Simulation(seed=3)
        assert next_runtime_serial(sim, "runc") == 1
        assert next_runtime_serial(sim, "kata") == 1
        assert next_runtime_serial(sim, "runc") == 2

    def test_runc_sandbox_ids_restart_per_sim(self):
        from repro.kubelet.runtimes.runc import RuncRuntime
        ids = []
        for _ in range(2):
            sim = Simulation(seed=3)
            runtime = RuncRuntime(sim, config=None, host_stack=None,
                                  pod_ip_allocator=lambda: "10.0.0.1")
            gen = runtime.run_pod_sandbox(
                SimpleNamespace(key="default/p"))
            next(gen)
            try:
                gen.send(None)
            except StopIteration as stop:
                ids.append(stop.value.sandbox_id)
        assert ids[0] == ids[1] == "runc-sb-000001"


class TestTenantAffinitySpawns:
    """staticcheck C006: tenant-scoped processes spawned without
    affinity= fall off the tenant's partition under the parallel
    backend."""

    def test_vnode_removal_spawn_carries_tenant_affinity(self):
        from repro.core.syncer.vnode import VNodeManager

        spawns = []

        class _Telemetry:
            def counter(self, *args, **kwargs):
                return self

            def labels(self, **kwargs):
                return SimpleNamespace(inc=lambda *a, **k: None)

        sim = Simulation(seed=3)
        syncer = SimpleNamespace(
            sim=sim, name="t1-syncer", _telemetry=_Telemetry(),
            spawn=lambda coroutine, name=None, affinity=None: (
                spawns.append((name, affinity)), coroutine.close()))
        manager = VNodeManager(syncer)
        manager.pod_bound("t1", "default/p", "node-a")
        manager.pod_deleted("t1", "default/p")
        assert spawns == [("vnode-remove-t1-node-a", "t1")]
