"""Unit tests for the staticcheck substrate: the project-wide symbol
table / call graph (repro.analysis.callgraph) and the interprocedural
lock-acquisition graph (repro.analysis.lockgraph).

Projects are built from source text written to temp files, so every
test states its whole program inline.
"""

import textwrap

from repro.analysis.callgraph import Project, module_name_for
from repro.analysis.lockgraph import LockGraph


def project_from(tmp_path, **modules):
    """Build a Project from ``name="source"`` keyword modules.

    Files land under ``src/pkg/`` so module names resolve to the
    importable ``pkg.<name>`` (module_name_for strips through src/).
    """
    root = tmp_path / "src" / "pkg"
    root.mkdir(parents=True, exist_ok=True)
    for name, source in sorted(modules.items()):
        (root / f"{name}.py").write_text(textwrap.dedent(source))
    return Project.load([tmp_path / "src"])


class TestModuleNames:
    def test_src_relative_path_maps_to_import_path(self):
        assert module_name_for("src/repro/core/env.py") == "repro.core.env"

    def test_package_init_maps_to_package(self):
        assert module_name_for("src/repro/simkernel/__init__.py") == \
            "repro.simkernel"

    def test_non_src_path_keeps_distinct_dotted_name(self):
        assert module_name_for("tests/fixtures/staticcheck/a.py") == \
            "tests.fixtures.staticcheck.a"


class TestSymbolTable:
    def test_functions_classes_and_methods_registered(self, tmp_path):
        project = project_from(tmp_path, mod="""
            def helper():
                return 1

            class Widget:
                def spin(self):
                    return helper()
        """)
        module = project.modules["pkg.mod"]
        assert "helper" in module.functions
        assert "Widget" in module.classes
        widget = module.classes["Widget"]
        assert sorted(widget.methods) == ["spin"]

    def test_generator_detection_excludes_nested_defs(self, tmp_path):
        project = project_from(tmp_path, mod="""
            def proc(sim):
                yield sim.timeout(1)

            def outer(sim):
                def inner():
                    yield sim.timeout(1)
                return inner
        """)
        gens = {q.rsplit(".", 1)[-1]
                for q in project.generator_functions()}
        assert "proc" in gens
        assert "inner" in gens
        assert "outer" not in gens

    def test_attr_types_inferred_from_ctor_assignment(self, tmp_path):
        project = project_from(tmp_path, mod="""
            class Engine:
                def start(self):
                    return 1

            class Car:
                def __init__(self):
                    self.engine = Engine()
        """)
        car = next(cls for cls in project.classes.values()
                   if cls.name == "Car")
        assert car.attr_types["engine"].endswith(".Engine")


class TestCallResolution:
    def _edges(self, project, caller_suffix):
        caller = next(q for q in project.functions
                      if q.endswith(caller_suffix))
        return {c.rsplit(".", 1)[-1] for c in project.callees(caller)}

    def test_self_method_call_resolves(self, tmp_path):
        project = project_from(tmp_path, mod="""
            class A:
                def top(self):
                    self.bottom()

                def bottom(self):
                    pass
        """)
        assert "bottom" in self._edges(project, "A.top")

    def test_inherited_method_resolves_through_base(self, tmp_path):
        project = project_from(tmp_path, mod="""
            class Base:
                def shared(self):
                    pass

            class Child(Base):
                def run(self):
                    self.shared()
        """)
        assert "shared" in self._edges(project, "Child.run")

    def test_attr_typed_call_resolves_across_classes(self, tmp_path):
        project = project_from(tmp_path, mod="""
            class Store:
                def put(self):
                    pass

            class Server:
                def __init__(self):
                    self.store = Store()

                def handle(self):
                    self.store.put()
        """)
        assert "put" in self._edges(project, "Server.handle")

    def test_imported_function_resolves_across_modules(self, tmp_path):
        project = project_from(
            tmp_path,
            util="""
                def shared_helper_xyz():
                    pass
            """,
            main="""
                from pkg.util import shared_helper_xyz

                def run():
                    shared_helper_xyz()
            """)
        assert "shared_helper_xyz" in self._edges(project, ".run")

    def test_unique_method_name_fallback_links(self, tmp_path):
        project = project_from(tmp_path, mod="""
            class Only:
                def frobnicate(self):
                    pass

            def use(thing):
                thing.frobnicate()
        """)
        caller = next(q for q in project.functions if q.endswith(".use"))
        sites = project.call_sites[caller]
        site = next(s for s in sites if s.name == "thing.frobnicate")
        assert site.callee.endswith("Only.frobnicate")
        assert site.via_unique

    def test_ambiguous_method_name_stays_unresolved(self, tmp_path):
        project = project_from(tmp_path, mod="""
            class A:
                def poke(self):
                    pass

            class B:
                def poke(self):
                    pass

            def use(thing):
                thing.poke()
        """)
        caller = next(q for q in project.functions if q.endswith(".use"))
        site = next(s for s in project.call_sites[caller]
                    if s.name == "thing.poke")
        assert site.callee is None

    def test_nested_function_definition_is_reachability_edge(
            self, tmp_path):
        project = project_from(tmp_path, mod="""
            def sink():
                pass

            def parent(sim):
                def child():
                    yield sim.timeout(1)
                    sink()
                return child
        """)
        reachable = project.sim_reachable()
        assert any(q.endswith(".sink") for q in reachable)


class TestSimReachability:
    def test_transitive_closure_from_generators(self, tmp_path):
        project = project_from(tmp_path, mod="""
            def leaf():
                pass

            def middle():
                leaf()

            def proc(sim):
                yield sim.timeout(1)
                middle()

            def import_time_only():
                leaf()
        """)
        reachable = {q.rsplit(".", 1)[-1]
                     for q in project.sim_reachable()}
        assert {"proc", "middle", "leaf"} <= reachable
        assert "import_time_only" not in reachable


class TestLockGraph:
    def test_class_attr_lock_identity_is_a_family(self, tmp_path):
        project = project_from(tmp_path, mod="""
            from repro.simkernel import Lock

            class W:
                def __init__(self, sim):
                    self.locks = [Lock(sim) for _ in range(4)]

                def work(self, i):
                    yield self.locks[i].acquire()
                    self.locks[i].release()
        """)
        graph = LockGraph(project)
        families = {info.lock_id
                    for info in graph.class_locks.values()}
        assert len(families) == 1
        acquires = next(v for k, v in graph.acquires.items()
                        if k.endswith(".work"))
        assert len(acquires) == 1

    def test_direct_nesting_produces_edge(self, tmp_path):
        project = project_from(tmp_path, mod="""
            from repro.simkernel import Lock

            class W:
                def __init__(self, sim):
                    self.a = Lock(sim)
                    self.b = Lock(sim)

                def work(self):
                    yield self.a.acquire()
                    yield self.b.acquire()
                    self.b.release()
                    self.a.release()
        """)
        graph = LockGraph(project)
        assert any(held.endswith(".a") and acq.endswith(".b")
                   for held, acq in graph.edges)

    def test_interprocedural_edge_via_callee(self, tmp_path):
        project = project_from(tmp_path, mod="""
            from repro.simkernel import Lock

            class W:
                def __init__(self, sim):
                    self.a = Lock(sim)
                    self.b = Lock(sim)

                def inner(self):
                    yield self.b.acquire()
                    self.b.release()

                def outer(self):
                    yield self.a.acquire()
                    yield from self.inner()
                    self.a.release()
        """)
        graph = LockGraph(project)
        edge = next(edges[0] for (held, acq), edges in graph.edges.items()
                    if held.endswith(".a") and acq.endswith(".b"))
        assert edge.via is not None and edge.via.endswith(".inner")

    def test_deadlock_cycle_detected(self, tmp_path):
        project = project_from(tmp_path, mod="""
            from repro.simkernel import Lock

            class W:
                def __init__(self, sim):
                    self.a = Lock(sim)
                    self.b = Lock(sim)

                def fwd(self):
                    yield self.a.acquire()
                    yield self.b.acquire()
                    self.b.release()
                    self.a.release()

                def back(self):
                    yield self.b.acquire()
                    yield self.a.acquire()
                    self.a.release()
                    self.b.release()
        """)
        graph = LockGraph(project)
        cycles = graph.cycles()
        assert len(cycles) == 1
        assert len(cycles[0]) == 2

    def test_consistent_order_is_acyclic(self, tmp_path):
        project = project_from(tmp_path, mod="""
            from repro.simkernel import Lock

            class W:
                def __init__(self, sim):
                    self.a = Lock(sim)
                    self.b = Lock(sim)

                def one(self):
                    yield self.a.acquire()
                    yield self.b.acquire()
                    self.b.release()
                    self.a.release()

                def two(self):
                    yield self.a.acquire()
                    yield self.b.acquire()
                    self.b.release()
                    self.a.release()
        """)
        assert LockGraph(project).cycles() == []

    def test_wait_while_held_recorded(self, tmp_path):
        project = project_from(tmp_path, mod="""
            from repro.simkernel import Lock

            class W:
                def __init__(self, sim):
                    self.sim = sim
                    self.a = Lock(sim)

                def work(self):
                    yield self.a.acquire()
                    yield self.sim.timeout(1.0)
                    self.a.release()
        """)
        graph = LockGraph(project)
        assert len(graph.waits) == 1
        assert graph.waits[0].lock_id.endswith(".a")

    def test_wait_after_release_not_recorded(self, tmp_path):
        project = project_from(tmp_path, mod="""
            from repro.simkernel import Lock

            class W:
                def __init__(self, sim):
                    self.sim = sim
                    self.a = Lock(sim)

                def work(self):
                    yield self.a.acquire()
                    self.a.release()
                    yield self.sim.timeout(1.0)
        """)
        assert LockGraph(project).waits == []

    def test_with_block_thread_lock_scopes_held_region(self, tmp_path):
        project = project_from(tmp_path, mod="""
            import threading

            _GUARD = threading.Lock()
            _OTHER = threading.Lock()

            def inside():
                with _GUARD:
                    _OTHER.acquire()
                    _OTHER.release()

            def outside():
                with _GUARD:
                    pass
                _OTHER.acquire()
                _OTHER.release()
        """)
        graph = LockGraph(project)
        edges = [(held.rsplit(".", 1)[-1], acq.rsplit(".", 1)[-1])
                 for held, acq in graph.edges]
        assert ("_GUARD", "_OTHER") in edges
        sites = graph.edges[next(k for k in graph.edges)]
        assert all(e.caller.endswith(".inside") for e in sites)
