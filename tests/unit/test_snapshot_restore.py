"""Unit tests for etcd snapshot/restore and storage fencing (DESIGN.md §10).

Snapshot/restore is the durability layer the tenant operator uses to
reprovision a crashed tenant control plane; fencing is the storage-side
split-brain guard HA leaders stamp on downward writes.
"""

import pytest

from repro.apiserver import ADMIN, APIServer, FencingConflict
from repro.objects import make_namespace, make_pod
from repro.simkernel import Simulation
from repro.storage import (
    EtcdStore,
    FencingRevoked,
    RevisionCompacted,
)


@pytest.fixture
def store():
    return EtcdStore(Simulation(), name="test-etcd")


def populate(store, count=3):
    for index in range(count):
        store.create(f"/registry/pods/ns/p{index}", {"v": index})


class TestSnapshotRestore:
    def test_round_trip_is_byte_identical(self, store):
        populate(store)
        store.update("/registry/pods/ns/p0", {"v": 100})
        before = store.dump()
        revision = store.revision
        snapshot = store.snapshot()

        store.update("/registry/pods/ns/p1", {"v": 999})
        store.delete("/registry/pods/ns/p2")
        store.create("/registry/pods/ns/extra", {})
        assert store.dump() != before

        restored_revision = store.restore(snapshot)
        assert restored_revision == revision
        assert store.revision == revision
        assert store.dump() == before

    def test_snapshot_is_isolated_from_later_mutation(self, store):
        populate(store, count=1)
        snapshot = store.snapshot()
        store.update("/registry/pods/ns/p0", {"v": "changed"})
        # The snapshot holds deep copies, not references.
        store.restore(snapshot)
        value, _revision = store.get("/registry/pods/ns/p0")
        assert value == {"v": 0}

    def test_restore_with_wal_replay_reaches_latest_state(self, store):
        populate(store)
        snapshot = store.snapshot()
        snap_revision = store.revision
        store.update("/registry/pods/ns/p0", {"v": "post"})
        store.delete("/registry/pods/ns/p1")
        store.create("/registry/pods/ns/p9", {"v": 9})
        final = store.dump()
        final_revision = store.revision

        replay = store.events_since(snap_revision)
        store.restore(snapshot, replay=replay)
        assert store.dump() == final
        assert store.revision == final_revision

    def test_replay_skips_events_at_or_before_snapshot(self, store):
        populate(store)
        snapshot = store.snapshot()
        store.update("/registry/pods/ns/p0", {"v": "post"})
        final = store.dump()
        # Hand the *full* history: pre-snapshot events must be skipped
        # (idempotent replay), not applied twice.
        replay = store.events_since(0)
        store.restore(snapshot, replay=replay)
        assert store.dump() == final

    def test_restore_compacts_history(self, store):
        populate(store)
        snapshot = store.snapshot()
        store.restore(snapshot)
        # Nothing before the restore point is replayable: a watcher
        # resuming from an old revision must relist.
        with pytest.raises(RevisionCompacted):
            store.watch("/registry/pods/", from_revision=1)
        with pytest.raises(RevisionCompacted):
            store.events_since(1)

    def test_watch_straddling_restore_is_cancelled(self, store):
        populate(store, count=1)
        snapshot = store.snapshot()
        watch = store.watch("/registry/pods/")
        store.restore(snapshot)
        assert watch.cancelled
        assert watch.channel.closed
        # Events after the restore do not reach the dead watch.
        store.create("/registry/pods/ns/late", {})
        assert len(store._watches) == 0

    def test_events_since_returns_detached_copies(self, store):
        populate(store, count=1)
        events = store.events_since(0)
        events[0].value["v"] = "mutated"
        fresh = store.events_since(0)
        assert fresh[0].value == {"v": 0}

    def test_wipe_loses_everything(self, store):
        populate(store)
        store.check_fence("syncer/leader", 3)
        store.wipe()
        assert len(store) == 0
        assert store.revision == 0
        assert store.dump() == {}
        assert store.stats()["fences"] == {}

    def test_fences_survive_snapshot_restore(self, store):
        store.check_fence("syncer/leader", 5)
        snapshot = store.snapshot()
        store.wipe()
        store.restore(snapshot)
        # The deposed leader's lower token still bounces after restore.
        with pytest.raises(FencingRevoked):
            store.check_fence("syncer/leader", 4)


class TestCheckFence:
    def test_tokens_ratchet_upward(self, store):
        store.check_fence("syncer/leader", 1)
        store.check_fence("syncer/leader", 1)  # equal is fine (same term)
        store.check_fence("syncer/leader", 2)
        with pytest.raises(FencingRevoked):
            store.check_fence("syncer/leader", 1)
        assert store.fencing_rejections == 1

    def test_domains_are_independent(self, store):
        store.check_fence("syncer/leader", 7)
        store.check_fence("manager/leader", 1)  # lower token, other domain


class TestTransactionFencing:
    @pytest.fixture
    def api(self):
        sim = Simulation()
        api = APIServer(sim, "test-api")
        sim.run(until=sim.process(api.create(ADMIN, make_namespace("ns"))))
        self.sim = sim
        return api

    def run(self, coroutine):
        return self.sim.run(until=self.sim.process(coroutine))

    def test_fenced_transaction_applies_and_advances_floor(self, api):
        ops = [("create", make_pod("a", namespace="ns"), None)]
        results = self.run(api.transaction(ADMIN, ops,
                                           fencing=("syncer/x", 2)))
        assert not isinstance(results[0], Exception)
        assert api.store._fences["syncer/x"] == 2

    def test_stale_token_raises_fencing_conflict(self, api):
        self.run(api.transaction(ADMIN, [], fencing=("syncer/x", 5)))
        ops = [("create", make_pod("b", namespace="ns"), None)]
        with pytest.raises(FencingConflict):
            self.run(api.transaction(ADMIN, ops, fencing=("syncer/x", 4)))
        # The whole transaction died at the fence: nothing landed.
        with pytest.raises(Exception):
            self.run(api.get(ADMIN, "pods", "b", namespace="ns"))

    def test_empty_fenced_transaction_is_a_barrier(self, api):
        # A new leader issues this before serving: it advances the floor
        # so any deposed leader's in-flight writes die first.
        results = self.run(api.transaction(ADMIN, [],
                                           fencing=("syncer/x", 3)))
        assert results == []
        with pytest.raises(FencingConflict):
            self.run(api.transaction(
                ADMIN, [("create", make_pod("c", namespace="ns"), None)],
                fencing=("syncer/x", 2)))

    def test_unfenced_empty_transaction_is_noop(self, api):
        assert self.run(api.transaction(ADMIN, [])) == []
