"""Unit tests for the etcd-like MVCC store."""

import pytest

from repro.simkernel import Simulation
from repro.storage import (
    EVENT_DELETE,
    EVENT_PUT,
    EtcdStore,
    KeyAlreadyExists,
    KeyNotFound,
    RevisionCompacted,
    RevisionConflict,
)


@pytest.fixture
def store():
    return EtcdStore(Simulation(), name="test-etcd")


class TestCrud:
    def test_create_and_get(self, store):
        revision = store.create("/registry/pods/ns/a", {"x": 1})
        value, mod = store.get("/registry/pods/ns/a")
        assert value == {"x": 1}
        assert mod == revision == 1

    def test_create_duplicate_fails(self, store):
        store.create("/registry/pods/ns/a", {})
        with pytest.raises(KeyAlreadyExists):
            store.create("/registry/pods/ns/a", {})

    def test_get_missing_fails(self, store):
        with pytest.raises(KeyNotFound):
            store.get("/registry/pods/ns/nope")

    def test_try_get_missing(self, store):
        value, revision = store.try_get("/registry/pods/ns/nope")
        assert value is None
        assert revision == 0

    def test_update_bumps_global_revision(self, store):
        store.create("/registry/pods/ns/a", {"v": 1})
        store.create("/registry/pods/ns/b", {"v": 1})
        revision = store.update("/registry/pods/ns/a", {"v": 2})
        assert revision == 3
        _value, mod_b = store.get("/registry/pods/ns/b")
        assert mod_b == 2  # untouched keys keep their mod revision

    def test_update_missing_fails(self, store):
        with pytest.raises(KeyNotFound):
            store.update("/registry/pods/ns/a", {})

    def test_delete(self, store):
        store.create("/registry/pods/ns/a", {})
        store.delete("/registry/pods/ns/a")
        with pytest.raises(KeyNotFound):
            store.get("/registry/pods/ns/a")

    def test_values_are_isolated_copies(self, store):
        original = {"nested": {"x": 1}}
        store.create("/registry/pods/ns/a", original)
        original["nested"]["x"] = 99
        value, _mod = store.get("/registry/pods/ns/a")
        assert value["nested"]["x"] == 1
        value["nested"]["x"] = 42
        value2, _mod = store.get("/registry/pods/ns/a")
        assert value2["nested"]["x"] == 1


class TestCas:
    def test_cas_update_success(self, store):
        revision = store.create("/registry/pods/ns/a", {"v": 1})
        store.update("/registry/pods/ns/a", {"v": 2},
                     expected_revision=revision)

    def test_cas_update_conflict(self, store):
        revision = store.create("/registry/pods/ns/a", {"v": 1})
        store.update("/registry/pods/ns/a", {"v": 2})
        with pytest.raises(RevisionConflict):
            store.update("/registry/pods/ns/a", {"v": 3},
                         expected_revision=revision)

    def test_cas_delete_conflict(self, store):
        revision = store.create("/registry/pods/ns/a", {"v": 1})
        store.update("/registry/pods/ns/a", {"v": 2})
        with pytest.raises(RevisionConflict):
            store.delete("/registry/pods/ns/a", expected_revision=revision)


class TestListPrefix:
    def test_list_prefix_scopes_by_namespace(self, store):
        store.create("/registry/pods/ns1/a", {"n": 1})
        store.create("/registry/pods/ns1/b", {"n": 2})
        store.create("/registry/pods/ns2/c", {"n": 3})
        items, revision = store.list_prefix("/registry/pods/ns1/")
        assert [key for key, _v, _r in items] == [
            "/registry/pods/ns1/a", "/registry/pods/ns1/b"]
        assert revision == 3

    def test_list_prefix_all_of_resource(self, store):
        store.create("/registry/pods/ns1/a", {})
        store.create("/registry/services/ns1/a", {})
        items, _revision = store.list_prefix("/registry/pods/")
        assert len(items) == 1

    def test_count_prefix(self, store):
        for i in range(5):
            store.create(f"/registry/pods/ns/{i}", {})
        assert store.count_prefix("/registry/pods/") == 5
        assert store.count_prefix("/registry/services/") == 0

    def test_count_prefix_tracks_mutations(self, store):
        """The sort-free bisect count stays consistent with list_prefix
        through interleaved creates, updates, and deletes."""
        keys = [f"/registry/pods/ns{i % 3}/p{i:02d}" for i in range(12)]
        for index, key in enumerate(keys):
            store.create(key, {"i": index})
            if index % 3 == 2:
                store.delete(keys[index - 1])
            if index % 4 == 3:
                store.update(key, {"i": index, "u": True})
            for prefix in ("/registry/pods/", "/registry/pods/ns0/",
                           "/registry/pods/ns1/", "/registry/pods/ns2/"):
                items, _revision = store.list_prefix(prefix)
                assert store.count_prefix(prefix) == len(items)

    def test_count_prefix_respects_prefix_boundaries(self, store):
        store.create("/registry/pods/ns1/a", {})
        store.create("/registry/pods/ns10/a", {})
        store.create("/registry/pods/ns2/a", {})
        assert store.count_prefix("/registry/pods/ns1/") == 1
        assert store.count_prefix("/registry/pods/ns1") == 2
        assert store.count_prefix("/registry/pods/") == 3

    def test_list_sorted(self, store):
        store.create("/registry/pods/ns/b", {})
        store.create("/registry/pods/ns/a", {})
        items, _revision = store.list_prefix("/registry/pods/")
        keys = [key for key, _v, _r in items]
        assert keys == sorted(keys)


class TestWatch:
    def test_watch_receives_live_events(self, store):
        watch = store.watch("/registry/pods/")
        store.create("/registry/pods/ns/a", {"v": 1})
        store.update("/registry/pods/ns/a", {"v": 2})
        store.delete("/registry/pods/ns/a")
        events = [watch.channel._items[i] for i in range(3)]
        assert [e.type for e in events] == [EVENT_PUT, EVENT_PUT,
                                            EVENT_DELETE]
        assert events[0].prev_value is None       # create
        assert events[1].prev_value == {"v": 1}   # update

    def test_watch_prefix_filtering(self, store):
        watch = store.watch("/registry/pods/ns1/")
        store.create("/registry/pods/ns1/a", {})
        store.create("/registry/pods/ns2/b", {})
        assert len(watch.channel) == 1

    def test_watch_predicate_filtering(self, store):
        watch = store.watch(
            "/registry/pods/",
            predicate=lambda e: e.value.get("node") == "n1")
        store.create("/registry/pods/ns/a", {"node": "n1"})
        store.create("/registry/pods/ns/b", {"node": "n2"})
        assert len(watch.channel) == 1

    def test_watch_replay_from_revision(self, store):
        store.create("/registry/pods/ns/a", {"v": 1})
        revision = store.revision
        store.create("/registry/pods/ns/b", {"v": 2})
        watch = store.watch("/registry/pods/", from_revision=revision)
        assert len(watch.channel) == 1  # only b replayed

    def test_watch_replay_compacted_fails(self, store):
        for i in range(10):
            store.create(f"/registry/pods/ns/p{i}", {})
        store.compact(keep=2)
        with pytest.raises(RevisionCompacted):
            store.watch("/registry/pods/", from_revision=1)

    def test_cancelled_watch_gets_nothing(self, store):
        watch = store.watch("/registry/pods/")
        watch.cancel()
        store.create("/registry/pods/ns/a", {})
        assert watch.channel.closed

    def test_stats(self, store):
        store.create("/registry/pods/ns/a", {})
        stats = store.stats()
        assert stats["keys"] == 1
        assert stats["revision"] == 1
