"""Retry-After is honored end-to-end in the clientgo stack (§15).

When APF sheds a request it attaches a pressure-scaled ``retry_after``
hint to the 429.  Each clientgo layer must prefer that hint (plus its
own one-sided jitter) over its local exponential schedule: the raw
:class:`Client` retry loop, the :class:`Reflector` relist backoff, and
the :class:`RateLimitingQueue` used by every controller.
"""

import pytest

from repro.apiserver.auth import Credential
from repro.apiserver.errors import ServerUnavailable, TooManyRequests
from repro.clientgo import RateLimitingQueue, Reflector
from repro.clientgo.client import Client
from repro.simkernel import Simulation

pytestmark = pytest.mark.apf


class sheddingApi:
    """Stub apiserver: sheds the first ``shed`` calls with Retry-After."""

    name = "stub"

    def __init__(self, shed=1, retry_after=1.0):
        self.shed = shed
        self.retry_after = retry_after
        self.attempt_times = []

    def list(self, credential, plural, namespace=None, label_selector=None,
             field_selector=None):
        self.attempt_times.append(self.sim.now)
        if len(self.attempt_times) <= self.shed:
            raise TooManyRequests("shed", retry_after=self.retry_after)
        return [], "1"
        yield  # pragma: no cover - makes this a generator coroutine


class TestClientHonorsRetryAfter:
    def run_list(self, api, **kwargs):
        sim = Simulation(seed=7)
        api.sim = sim
        client = Client(sim, api, Credential("tenant-x"), **kwargs)
        sim.run(until=sim.process(client.list("pods")))
        return sim, api.attempt_times

    def test_hint_overrides_exponential_schedule(self):
        api = sheddingApi(shed=1, retry_after=1.0)
        _sim, attempts = self.run_list(api)
        assert len(attempts) == 2
        gap = attempts[1] - attempts[0]
        # hint * (1 + 0.5*U): never earlier than the server asked,
        # never more than 50% later — and far above the 0.1s first-try
        # exponential backoff it replaces.
        assert 1.0 <= gap <= 1.5

    def test_without_hint_exponential_schedule_applies(self):
        class FlakyApi(sheddingApi):
            def list(self, credential, plural, **kwargs):
                self.attempt_times.append(self.sim.now)
                if len(self.attempt_times) <= self.shed:
                    raise ServerUnavailable("boom")
                return [], "1"
                yield  # pragma: no cover

        api = FlakyApi(shed=1)
        _sim, attempts = self.run_list(api)
        gap = attempts[1] - attempts[0]
        assert gap == pytest.approx(0.1)

    def test_shed_past_retry_budget_raises(self):
        api = sheddingApi(shed=100, retry_after=0.01)
        sim = Simulation(seed=7)
        api.sim = sim
        client = Client(sim, api, Credential("tenant-x"), max_retries=2)

        def proc():
            try:
                yield from client.list("pods")
            except TooManyRequests:
                return "shed"

        assert sim.run(until=sim.process(proc())) == "shed"
        assert len(api.attempt_times) == 3  # initial + 2 retries


class TestReflectorHonorsRetryAfter:
    def make_reflector(self):
        sim = Simulation(seed=7)
        reflector = Reflector(sim, client=None, plural="pods",
                              delegate=None)
        return sim, reflector

    def test_hint_consumed_once(self):
        _sim, reflector = self.make_reflector()
        reflector._consecutive_failures = 6
        reflector._retry_after_hint = 2.0
        first = reflector.next_backoff()
        # 2.0 * (1 + 0.5*U): the server's pressure signal, jittered.
        assert 2.0 <= first <= 3.0
        # Consumed: the next delay falls back to the failure schedule.
        second = reflector.next_backoff()
        assert reflector._retry_after_hint is None
        assert second != first or second <= reflector.max_relist_backoff

    def test_relist_loop_stores_hint_from_429(self):
        sim = Simulation(seed=7)

        class shedClient:
            calls = 0

            def list(self, plural, namespace=None, label_selector=None,
                     field_selector=None):
                shedClient.calls += 1
                raise TooManyRequests("shed", retry_after=4.0)
                yield  # pragma: no cover

        class Delegate:
            def on_replace(self, objs):
                pass

            def on_event(self, kind, obj):
                pass

        reflector = Reflector(sim, shedClient(), "pods", Delegate())
        reflector.start()
        sim.run(until=sim.now + 1.0)
        reflector.stop()
        # One failed list, then the loop slept on the server's 4s hint
        # (jittered up to 6s) — so no second attempt fit inside 1s,
        # where the default 1s exponential backoff would have retried.
        assert shedClient.calls == 1
        assert reflector.watch_failures == 1

    def test_error_without_hint_leaves_schedule_untouched(self):
        _sim, reflector = self.make_reflector()
        reflector._consecutive_failures = 1
        delay = reflector.next_backoff()
        assert delay <= reflector.max_relist_backoff


class TestWorkqueueHonorsRetryAfter:
    def dispatch_time(self, queue, sim, item):
        out = []

        def worker():
            got, _queued_at = yield queue.get()
            out.append((got, sim.now))
            queue.done(got)

        sim.spawn(worker(), name="worker")
        sim.run(until=sim.now + 30.0)
        return out[0][1] if out else None

    def test_retry_after_overrides_backoff(self):
        sim = Simulation(seed=7)
        queue = RateLimitingQueue(sim, base_delay=0.005, max_delay=10.0)
        queue.add_rate_limited("key", retry_after=5.0)
        when = self.dispatch_time(queue, sim, "key")
        # 5s hint with one-sided 10% jitter — not the 5ms first backoff.
        assert 5.0 <= when <= 5.5

    def test_failure_streak_still_advances(self):
        sim = Simulation(seed=7)
        queue = RateLimitingQueue(sim)
        queue.add_rate_limited("key", retry_after=0.1)
        assert queue.num_requeues("key") == 1
        queue.add_rate_limited("key", retry_after=0.1)
        assert queue.num_requeues("key") == 2

    def test_without_hint_exponential_backoff(self):
        sim = Simulation(seed=7)
        queue = RateLimitingQueue(sim, base_delay=0.005, max_delay=10.0,
                                  jitter=0.0)
        queue.add_rate_limited("key")
        when = self.dispatch_time(queue, sim, "key")
        assert when == pytest.approx(0.005)
