"""Unit tests for scenario DSL validation and compilation.

The DSL's contract is that *every* authoring mistake fails eagerly with
a message naming the YAML path, the offending value, and what would be
accepted — never a mid-run stack trace.  These tests pin that contract
for the error classes ISSUE-level users actually hit (unknown shape,
duplicate names, negative rates, overlapping chaos windows, …) plus the
pure-compilation semantics the runner depends on.
"""

import pytest

from repro.scenarios import (
    BurstShape,
    ChaosSpec,
    ConstantShape,
    LinkSpec,
    PoolSpec,
    RollingUpgradeShape,
    Scenario,
    ScenarioError,
    ScheduleSpec,
    SequentialShape,
    TenantSpec,
    TopologySpec,
    WorkloadSpec,
    compile_load,
    loads,
)


def minimal_yaml(**overrides):
    base = {
        "tenants": ("tenants:\n"
                    "  - name: acme\n"
                    "    workloads:\n"
                    "      - name: web\n"
                    "        shape: {type: constant, rate: 1.0, "
                    "duration: 5.0}\n"),
        "chaos": "",
    }
    base.update(overrides)
    return ("name: test\n"
            "seed: 1\n"
            "horizon: 20.0\n"
            "topology:\n"
            "  pools:\n"
            "    - {name: pool, nodes: 2}\n"
            + base["tenants"] + base["chaos"])


def build_scenario(**kwargs):
    defaults = dict(
        name="test", seed=1, horizon=20.0,
        topology=TopologySpec(pools=[PoolSpec("pool", nodes=2)]),
        tenants=[TenantSpec("acme", workloads=[
            WorkloadSpec("web", ConstantShape(rate=1.0, duration=5.0))])])
    defaults.update(kwargs)
    return Scenario(**defaults)


class TestShapeValidation:
    def test_unknown_shape_type_lists_valid_ones(self):
        text = minimal_yaml(tenants=(
            "tenants:\n"
            "  - name: acme\n"
            "    workloads:\n"
            "      - name: web\n"
            "        shape: {type: sawtooth}\n"))
        with pytest.raises(ScenarioError) as excinfo:
            loads(text)
        message = str(excinfo.value)
        assert "tenants[0].workloads[0].shape" in message
        assert "'sawtooth'" in message
        assert "constant" in message and "diurnal" in message

    def test_unknown_shape_parameter_is_named(self):
        with pytest.raises(ScenarioError, match=r"rte.*valid.*rate"):
            loads(minimal_yaml(tenants=(
                "tenants:\n"
                "  - name: acme\n"
                "    workloads:\n"
                "      - name: web\n"
                "        shape: {type: constant, rte: 1.0, "
                "duration: 5.0}\n")))

    def test_missing_required_parameter(self):
        with pytest.raises(ScenarioError, match="missing a required"):
            loads(minimal_yaml(tenants=(
                "tenants:\n"
                "  - name: acme\n"
                "    workloads:\n"
                "      - name: web\n"
                "        shape: {type: constant, rate: 1.0}\n")))

    def test_negative_rate_message_is_actionable(self):
        with pytest.raises(ScenarioError) as excinfo:
            ConstantShape(rate=-2.0, duration=5.0).validate("here")
        assert "here" in str(excinfo.value)
        assert "-2.0" in str(excinfo.value)

    def test_flash_crowd_spike_must_fit_duration(self):
        with pytest.raises(ScenarioError, match="does not fit"):
            loads(minimal_yaml(tenants=(
                "tenants:\n"
                "  - name: acme\n"
                "    workloads:\n"
                "      - name: web\n"
                "        shape: {type: flash-crowd, base_rate: 1.0,\n"
                "                peak_rate: 5.0, at: 8.0, ramp: 2.0,\n"
                "                hold: 4.0, duration: 10.0}\n")))

    def test_rolling_upgrade_wave_before_fleet_deployed(self):
        with pytest.raises(ScenarioError, match="finishes deploying"):
            RollingUpgradeShape(count=10, startup_rate=1.0, batch=2,
                                interval=2.0, waves=3,
                                first_wave=5.0).validate("shape")


class TestStructuralValidation:
    def test_duplicate_tenant_name(self):
        with pytest.raises(ScenarioError) as excinfo:
            build_scenario(tenants=[
                TenantSpec("acme", workloads=[
                    WorkloadSpec("a", BurstShape(count=2))]),
                TenantSpec("acme", workloads=[
                    WorkloadSpec("b", BurstShape(count=2))]),
            ]).validate()
        message = str(excinfo.value)
        assert "tenants[1]" in message and "duplicate tenant" in message

    def test_duplicate_workload_name_within_tenant(self):
        with pytest.raises(ScenarioError, match="duplicate workload"):
            build_scenario(tenants=[TenantSpec("acme", workloads=[
                WorkloadSpec("web", BurstShape(count=2)),
                WorkloadSpec("web", BurstShape(count=2)),
            ])]).validate()

    def test_duplicate_pool_name(self):
        with pytest.raises(ScenarioError, match="duplicate pool"):
            build_scenario(topology=TopologySpec(pools=[
                PoolSpec("pool", nodes=1),
                PoolSpec("pool", nodes=2)])).validate()

    def test_workload_must_fit_horizon(self):
        with pytest.raises(ScenarioError, match="horizon"):
            build_scenario(horizon=4.0).validate()

    def test_empty_topology_rejected(self):
        with pytest.raises(ScenarioError, match="node pool"):
            build_scenario(topology=TopologySpec(pools=[])).validate()

    def test_link_loss_bounded(self):
        with pytest.raises(ScenarioError, match="loss"):
            build_scenario(topology=TopologySpec(pools=[
                PoolSpec("pool", nodes=2,
                         link=LinkSpec(loss=0.5))])).validate()

    def test_unknown_top_level_key(self):
        with pytest.raises(ScenarioError, match="unknown key"):
            loads(minimal_yaml() + "surprise: true\n")


class TestChaosValidation:
    def test_unknown_fault_lists_catalog(self):
        with pytest.raises(ScenarioError) as excinfo:
            build_scenario(chaos=[ChaosSpec(
                "meteor-strike", "acme",
                ScheduleSpec("oneshot", at=1.0))]).validate()
        message = str(excinfo.value)
        assert "meteor-strike" in message
        assert "apiserver-crash" in message and "partition" in message

    def test_target_must_be_declared_tenant(self):
        with pytest.raises(ScenarioError, match="not a declared tenant"):
            build_scenario(chaos=[ChaosSpec(
                "partition", "ghost",
                ScheduleSpec("oneshot", at=1.0))]).validate()

    def test_fault_target_kind_enforced(self):
        # worker-crash only targets the syncer, never a tenant.
        with pytest.raises(ScenarioError, match="syncer"):
            build_scenario(chaos=[ChaosSpec(
                "worker-crash", "acme",
                ScheduleSpec("oneshot", at=1.0))]).validate()

    def test_unknown_fault_param_named(self):
        with pytest.raises(ScenarioError, match="blast_radius"):
            build_scenario(chaos=[ChaosSpec(
                "watch-drop", "acme", ScheduleSpec("oneshot", at=1.0),
                params={"blast_radius": 3})]).validate()

    def test_overlapping_oneshot_windows_same_fault_target(self):
        with pytest.raises(ScenarioError) as excinfo:
            build_scenario(chaos=[
                ChaosSpec("apiserver-crash", "acme",
                          ScheduleSpec("oneshot", at=5.0, duration=4.0)),
                ChaosSpec("apiserver-crash", "acme",
                          ScheduleSpec("oneshot", at=7.0, duration=4.0)),
            ]).validate()
        message = str(excinfo.value)
        assert "overlapping" in message
        assert "chaos[0]" in message and "chaos[1]" in message

    def test_oneshot_overlapping_periodic_window(self):
        # Periodic windows open at offset + k*period (+ accumulated
        # durations); one-shot at t=10 for 3s collides with the second
        # periodic window [10, 11).
        with pytest.raises(ScenarioError, match="overlapping"):
            build_scenario(chaos=[
                ChaosSpec("apiserver-crash", "acme",
                          ScheduleSpec("periodic", period=4.5,
                                       duration=1.0, count=2)),
                ChaosSpec("apiserver-crash", "acme",
                          ScheduleSpec("oneshot", at=9.5, duration=3.0)),
            ]).validate()

    def test_distinct_targets_may_overlap(self):
        build_scenario(
            tenants=[
                TenantSpec("acme", workloads=[
                    WorkloadSpec("a", BurstShape(count=2))]),
                TenantSpec("beta", workloads=[
                    WorkloadSpec("b", BurstShape(count=2))]),
            ],
            chaos=[
                ChaosSpec("apiserver-crash", "acme",
                          ScheduleSpec("oneshot", at=5.0, duration=4.0)),
                ChaosSpec("apiserver-crash", "beta",
                          ScheduleSpec("oneshot", at=6.0, duration=4.0)),
            ]).validate()

    def test_unbounded_periodic_rejected(self):
        with pytest.raises(ScenarioError, match="count"):
            ScheduleSpec("periodic", period=5.0).validate("chaos[0]")

    def test_random_schedule_skips_overlap_check(self):
        build_scenario(chaos=[
            ChaosSpec("apiserver-crash", "acme",
                      ScheduleSpec("random", mean_gap=5.0, count=2)),
            ChaosSpec("apiserver-crash", "acme",
                      ScheduleSpec("oneshot", at=5.0, duration=4.0)),
        ]).validate()


class TestCompilation:
    def test_sequential_maps_to_closed_loop_pattern(self):
        scenario = build_scenario(tenants=[TenantSpec("acme", workloads=[
            WorkloadSpec("ops", SequentialShape(count=4, think=0.5),
                         start=2.0)])]).validate()
        (job,) = compile_load(scenario)
        assert job.actions is None
        assert job.plan.mode == "sequential"
        assert job.plan.count == 4
        assert job.start == 2.0

    def test_start_offset_folded_into_timed_actions(self):
        scenario = build_scenario(tenants=[TenantSpec("acme", workloads=[
            WorkloadSpec("spike", BurstShape(count=3, at=1.0),
                         start=4.0)])]).validate()
        (job,) = compile_load(scenario)
        assert job.start == 0.0
        assert [when for when, _op, _i in job.actions] == [5.0, 5.0, 5.0]
        assert job.plan.concurrent is True

    def test_rolling_upgrade_actions_interleave_creates_and_replaces(self):
        shape = RollingUpgradeShape(count=4, startup_rate=2.0, batch=2,
                                    interval=3.0, waves=2, first_wave=3.0)
        actions, concurrent = shape.compile(None)
        assert concurrent is False
        ops = [op for _w, op, _i in actions]
        assert ops.count("create") == 4
        assert ops.count("replace") == 4
        # Waves walk the fleet round-robin.
        replace_indices = [i for _w, op, i in actions if op == "replace"]
        assert replace_indices == [0, 1, 2, 3]

    def test_jitter_draws_differ_across_workloads_but_not_runs(self):
        scenario = build_scenario(tenants=[TenantSpec("acme", workloads=[
            WorkloadSpec("a", ConstantShape(rate=2.0, duration=5.0),
                         jitter=0.1),
            WorkloadSpec("b", ConstantShape(rate=2.0, duration=5.0),
                         jitter=0.1)])]).validate()
        first, second = compile_load(scenario), compile_load(scenario)
        assert first[0].actions == second[0].actions
        assert first[1].actions == second[1].actions
        # Same shape, same jitter — but workload-derived seeds differ.
        assert first[0].actions != first[1].actions
