"""ReplicatedStore unit tests: WAL streaming, fenced failover, stale
reads, and crash recovery of the store group (DESIGN.md §13)."""

import pytest

from repro.simkernel import Simulation
from repro.storage import (
    CompactedError,
    ReplicatedStore,
    StaleRead,
    StoreUnavailable,
)


def make_group(seed=1, replicas=3, **kwargs):
    sim = Simulation(seed=seed)
    store = ReplicatedStore(sim, "grp", replicas=replicas, **kwargs)
    return sim, store


def fill(store, count, prefix="/registry/pods/ns/p"):
    for index in range(count):
        store.create(f"{prefix}{index:03d}", {"n": index})


def settle(sim, store, timeout=5.0):
    """Run until every live follower has applied the leader's log."""
    deadline = sim.now + timeout
    while sim.now < deadline:
        followers = [r for r in store.replicas
                     if r.alive and r.role == "follower"]
        if followers and all(r.lag == 0 for r in followers):
            return
        sim.run(until=sim.now + 0.05)
    raise AssertionError(
        f"followers never caught up: "
        f"{[(r.name, r.role, r.lag) for r in store.replicas]}")


class TestReplication:
    def test_writes_stream_to_all_followers(self):
        sim, store = make_group()
        fill(store, 10)
        settle(sim, store)
        leader_dump = dict(store.leader.store.dump())
        for replica in store.replicas:
            if replica.role == "follower":
                assert dict(replica.store.dump()) == leader_dump
                assert replica.applied_revision == store.revision

    def test_replica_lag_is_tracked(self):
        sim, store = make_group()
        store.set_extra_lag(5.0)
        fill(store, 4)
        sim.run(until=sim.now + 0.5)
        lags = sorted(r.lag for r in store.replicas
                      if r.role == "follower")
        assert lags[-1] > 0  # the slowed follower trails
        for replica in store.replicas:
            replica.extra_lag = 0.0
        settle(sim, store, timeout=30.0)

    def test_facade_matches_plain_store_semantics(self):
        sim, store = make_group()
        store.create("/registry/pods/ns/a", {"x": 1})
        value, revision = store.get("/registry/pods/ns/a")
        assert value == {"x": 1}
        store.update("/registry/pods/ns/a", {"x": 2})
        items, _revision = store.list_prefix("/registry/pods/")
        assert [key for key, _value, _rev in items] == ["/registry/pods/ns/a"]
        store.delete("/registry/pods/ns/a")
        assert store.try_get("/registry/pods/ns/a") == (None, 0)


class TestFailover:
    def test_kill_leader_promotes_fenced_follower(self):
        sim, store = make_group()
        fill(store, 6)
        settle(sim, store)
        old_leader = store.leader.name
        victim = store.kill_leader()
        assert victim is not None
        with pytest.raises(StoreUnavailable):
            store.create("/registry/pods/ns/x", {})
        sim.run(until=sim.now + 15.0)
        assert store.leader is not None
        assert store.leader.name != old_leader
        record = store.recoveries[-1]
        assert record["lost_writes"] == 0
        assert record["mttr"] is not None
        # The new leader's fencing token is on the floor: the dead
        # leader's old token can never write again.
        assert store._fences[store.fence_domain] >= record["token"]

    def test_writes_resume_after_failover(self):
        sim, store = make_group()
        fill(store, 3)
        settle(sim, store)
        store.kill_leader()
        sim.run(until=sim.now + 15.0)
        fill(store, 3, prefix="/registry/pods/ns/q")
        settle(sim, store)
        assert store.failovers >= 1

    def test_restart_replica_recovers_from_own_wal(self):
        sim, store = make_group()
        fill(store, 5)
        settle(sim, store)
        victim = store.kill_leader()
        sim.run(until=sim.now + 15.0)
        fill(store, 2, prefix="/registry/pods/ns/q")
        assert store.restart_replica(victim) == victim
        settle(sim, store, timeout=15.0)
        revived = store.replicas[victim]
        assert revived.role == "follower"
        assert dict(revived.store.dump()) == dict(store.leader.store.dump())

    def test_mid_txn_kill_commits_prefix_only(self):
        sim, store = make_group()
        fill(store, 2)
        settle(sim, store)

        def ops():
            return [
                lambda i=i: store.leader.store.create(
                    f"/registry/pods/ns/t{i}", {"i": i})
                for i in range(4)
            ]

        store.arm_kill(2)  # die after 2 of the 4 ops
        with pytest.raises(StoreUnavailable):
            store.txn(ops())
        # The two applied ops were WAL-durable before the crash; the
        # rest never happened anywhere.
        sim.run(until=sim.now + 15.0)  # failover
        record = store.recoveries[-1]
        assert record["reason"] == "mid-txn"
        assert record["lost_writes"] == 0
        data = dict(store.dump())
        assert "/registry/pods/ns/t0" in data
        assert "/registry/pods/ns/t1" in data
        assert "/registry/pods/ns/t2" not in data
        assert "/registry/pods/ns/t3" not in data

    def test_disarm_kill_defuses_latch(self):
        sim, store = make_group()
        fill(store, 1)
        store.arm_kill(0)
        store.disarm_kill()
        store.txn([lambda: store.leader.store.create(
            "/registry/pods/ns/ok", {})])
        assert store.leader is not None


class TestStaleReads:
    def test_lagging_follower_read_raises_stale(self):
        sim, store = make_group()
        store.set_extra_lag(30.0)
        fill(store, 5)
        sim.run(until=sim.now + 0.2)
        with pytest.raises(StaleRead) as err:
            store.read_follower("/registry/pods/ns/p000",
                                min_revision=store.revision)
        assert err.value.applied < store.revision
        assert store.stale_reads == 1

    def test_caught_up_follower_serves_with_applied_revision(self):
        sim, store = make_group()
        fill(store, 3)
        settle(sim, store)
        value, mod_revision, applied = store.read_follower(
            "/registry/pods/ns/p001", min_revision=store.revision)
        assert value == {"n": 1}
        assert applied == store.revision
        assert mod_revision <= applied


class TestRestoreAndCompaction:
    def test_events_since_below_compaction_raises(self):
        sim, store = make_group()
        fill(store, 8)
        store.compact(keep=2)
        from repro.storage import RevisionCompacted

        with pytest.raises(RevisionCompacted):
            store.events_since(1)

    def test_group_restore_rolls_followers_back(self):
        sim, store = make_group()
        fill(store, 3)
        settle(sim, store)
        snapshot = store.snapshot()
        fill(store, 3, prefix="/registry/pods/ns/q")
        settle(sim, store)
        store.restore(snapshot)
        settle(sim, store)
        expected = dict(store.leader.store.dump())
        assert len(expected) == 3
        for replica in store.replicas:
            if replica.alive and replica.role == "follower":
                assert dict(replica.store.dump()) == expected

    def test_dead_replica_with_compacted_wal_resyncs_from_leader(self):
        sim, store = make_group()
        fill(store, 4)
        settle(sim, store)
        # Kill a follower and destroy its log beyond repair.
        victim = next(r for r in store.replicas if r.role == "follower")
        store.kill_replica(victim.index)
        victim.store.wal.reset()
        fill(store, 3, prefix="/registry/pods/ns/q")
        store.restart_replica(victim.index)
        settle(sim, store)
        assert dict(victim.store.dump()) == dict(store.leader.store.dump())

    def test_recover_from_wal_raises_on_empty_group_log(self):
        sim, store = make_group(replicas=2)
        with pytest.raises(CompactedError):
            store.recover_from_wal()
