"""Unit tests for metrics, accounting, and reporting helpers."""

import pytest

from repro.metrics import (
    format_bucket_table,
    format_histogram,
    format_phase_breakdown,
    format_table,
    summarize,
)
from repro.simkernel import Simulation
from repro.simkernel.metrics import Histogram, SampleSeries


class TestHistogram:
    def test_observe_into_buckets(self):
        histogram = Histogram(bounds=[1, 2, 4])
        for value in [0.5, 1.5, 3.0, 10.0]:
            histogram.observe(value)
        assert histogram.counts == [1, 1, 1, 1]
        assert histogram.total == 4
        assert histogram.mean == pytest.approx(3.75)

    def test_percentiles(self):
        histogram = Histogram(bounds=[100])
        for value in range(1, 101):
            histogram.observe(float(value))
        assert histogram.percentile(50) == pytest.approx(50.5)
        assert histogram.percentile(99) == pytest.approx(99.01)
        assert histogram.percentile(0) == 1.0
        assert histogram.percentile(100) == 100.0

    def test_empty_percentile(self):
        assert Histogram(bounds=[1]).percentile(99) == 0.0

    def test_bucket_counts_layout(self):
        histogram = Histogram(bounds=[1, 2])
        histogram.observe(0.5)
        histogram.observe(5.0)
        buckets = histogram.bucket_counts()
        assert buckets[0] == ((0.0, 1), 1)
        assert buckets[-1] == ((2, None), 1)


class TestSampleSeries:
    def test_peak_and_last(self):
        series = SampleSeries()
        series.record(0.0, 10)
        series.record(1.0, 30)
        series.record(2.0, 20)
        assert series.peak == 30
        assert series.last == 20

    def test_empty(self):
        series = SampleSeries()
        assert series.peak == 0.0
        assert series.last == 0.0


class TestAccounting:
    def test_cpu_charges_accumulate_by_activity(self):
        sim = Simulation()
        account = sim.accounting.cpu_account("worker")
        account.charge(0.5, activity="reconcile")
        account.charge(0.25, activity="reconcile")
        account.charge(1.0, activity="scan")
        assert account.seconds == pytest.approx(1.75)
        assert account.by_activity["reconcile"] == pytest.approx(0.75)

    def test_negative_charge_rejected(self):
        sim = Simulation()
        with pytest.raises(ValueError):
            sim.accounting.cpu_account("w").charge(-1)

    def test_memory_meters_summed_and_peak_tracked(self):
        sim = Simulation()
        account = sim.accounting.memory_account("proc")
        state = {"a": 100, "b": 50}
        account.register_meter("a", lambda: state["a"])
        account.register_meter("b", lambda: state["b"])
        assert account.snapshot(0.0) == 150
        state["a"] = 400
        assert account.snapshot(1.0) == 450
        state["a"] = 10
        account.snapshot(2.0)
        assert account.peak == 450
        assert account.current == 60

    def test_accounts_are_singletons_per_name(self):
        sim = Simulation()
        assert sim.accounting.cpu_account("x") is \
            sim.accounting.cpu_account("x")

    def test_metrics_registry(self):
        sim = Simulation()
        sim.metrics.inc("ops")
        sim.metrics.inc("ops", 2)
        assert sim.metrics.counters["ops"] == 3
        sim.metrics.observe("latency", 1.5, bounds=[1, 2])
        assert sim.metrics.histogram("latency").total == 1
        sim.metrics.sample("depth", 7)
        assert sim.metrics.series["depth"].last == 7


class TestReporting:
    def test_format_table_alignment(self):
        table = format_table(["name", "value"],
                             [("a", 1.5), ("long-name", 20)],
                             title="demo")
        lines = table.splitlines()
        assert lines[0] == "demo"
        assert "name" in lines[1] and "value" in lines[1]
        assert "1.50" in table
        assert "long-name" in table

    def test_format_histogram(self):
        text = format_histogram([0.1, 0.2, 1.5, 1.7, 1.8],
                                bucket_width=1.0, title="h")
        assert "h" in text
        assert "[  0.0,  1.0)" in text
        assert "2" in text and "3" in text

    def test_format_histogram_empty(self):
        assert format_histogram([]) == "(no samples)"

    def test_format_phase_breakdown_shares(self):
        text = format_phase_breakdown({"A": 3.0, "B": 1.0})
        assert "75.00" in text
        assert "25.00" in text

    def test_format_bucket_table(self):
        text = format_bucket_table({"Phase": [5, 3, 0, 0, 0]})
        assert "[0,2]" in text and "[8,10]" in text
        assert "Phase" in text

    def test_summarize(self):
        from repro.workloads import StressResult

        result = StressResult(mode="x", num_pods=10, num_tenants=2,
                              creation_times=[1.0, 2.0], duration=5.0,
                              throughput=2.0)
        text = summarize(result)
        assert "pods=10" in text
        assert "mean=1.50s" in text
