"""Regression: vNode heartbeat broadcast is O(distinct nodes) in cache reads.

The heartbeat loop copies the physical node's conditions into every
tenant's matching vNode each tick.  It used to do one super-node cache
``get_copy`` per (tenant, node) pair — O(nodes x tenants) deep copies
per tick even though every tenant sharing a node needs the *same*
conditions.  The loop now memoizes one lookup per distinct node per
tick; this test pins that access pattern via the cache's ``gets``
counter so the quadratic behavior cannot quietly come back.
"""

import pytest

from repro.core import VirtualClusterEnv


@pytest.fixture(scope="module")
def env():
    env = VirtualClusterEnv(num_virtual_nodes=2, scan_interval=600.0)
    env.bootstrap()
    tenants = [env.run_coroutine(env.create_tenant(f"hb-{i}"))
               for i in range(3)]
    keys = [f"default/pod-{i}" for i in range(4)]
    for tenant in tenants:
        for index in range(4):
            env.run_coroutine(tenant.create_pod(f"pod-{index}"))
    for tenant in tenants:
        env.run_until_pods_ready(tenant, keys, timeout=120.0)
    return env


def test_heartbeat_lookups_scale_with_distinct_nodes(env):
    vnodes = env.syncer.vnodes
    bindings = vnodes._bindings
    pairs = sum(len(nodes) for nodes in bindings.values())
    distinct = len({node for nodes in bindings.values() for node in nodes})
    # The regression only shows when tenants share physical nodes.
    assert pairs > distinct, "setup must bind multiple tenants per node"

    node_cache = env.syncer.super_informer("nodes").cache
    # Count copy-lookups only: the plain-``get`` path is also hit by the
    # reflector delivering the physical nodes' own heartbeat events,
    # which is unrelated to the broadcast loop under test.
    copies = {"count": 0}
    real_get_copy = node_cache.get_copy

    def counting_get_copy(key):
        copies["count"] += 1
        return real_get_copy(key)

    node_cache.get_copy = counting_get_copy
    try:
        sent_before = vnodes.heartbeats_sent
        env.run_for(vnodes.heartbeat_interval * 5)
    finally:
        node_cache.get_copy = real_get_copy
    ticks, remainder = divmod(vnodes.heartbeats_sent - sent_before, pairs)
    assert ticks >= 4
    assert remainder == 0, "every tick heartbeats every (tenant, node) pair"

    lookups = copies["count"]
    # One memoized lookup per distinct node per tick — NOT per pair.
    assert lookups == ticks * distinct, (
        f"{lookups} node-cache lookups over {ticks} ticks; expected "
        f"{ticks * distinct} (distinct={distinct}), the old behavior "
        f"would be {ticks * pairs} (pairs={pairs})")


def test_heartbeat_updates_every_tenant_vnode(env):
    """Sharing one copied super node across tenants must still stamp
    every tenant's vNode conditions at the tick's sim time."""
    vnodes = env.syncer.vnodes
    env.run_for(vnodes.heartbeat_interval * 2)
    now = env.sim.now
    checked = 0
    for tenant, nodes in vnodes._bindings.items():
        cache = env.syncer.tenant_informer(tenant, "nodes").cache
        for node_name in nodes:
            vnode = cache.get_copy(node_name)
            assert vnode is not None
            assert vnode.status.conditions, "heartbeat must copy conditions"
            for condition in vnode.status.conditions:
                assert condition.last_heartbeat_time is not None
                assert now - condition.last_heartbeat_time <= (
                    vnodes.heartbeat_interval * 2)
            checked += 1
    assert checked == sum(len(nodes) for nodes in vnodes._bindings.values())
