"""Unit tests for scheduler plugins and the sequential scheduling loop."""

import pytest

from repro.apiserver import ADMIN, APIServer
from repro.clientgo import Client, InformerFactory
from repro.config import DEFAULT_CONFIG
from repro.objects import (
    Taint,
    Toleration,
    make_namespace,
    make_node,
    make_pod,
    with_anti_affinity,
)
from repro.scheduler import Scheduler
from repro.scheduler.plugins import (
    ClusterSnapshot,
    InterPodAffinity,
    NodeResourcesFit,
    NodeSelectorMatch,
    TaintToleration,
)
from repro.simkernel import Simulation


@pytest.fixture
def sim():
    return Simulation()


def snapshot(nodes, pods_by_node=None):
    from repro.objects import Quantity, add_resource_lists

    pods_by_node = pods_by_node or {}
    usage = {}
    for node_name, pods in pods_by_node.items():
        total = {}
        for pod in pods:
            total = add_resource_lists(
                total, add_resource_lists(pod.spec.total_requests(),
                                          {"pods": Quantity.parse(1)}))
        usage[node_name] = total
    return ClusterSnapshot(nodes, pods_by_node, usage)


class TestFilters:
    def test_resources_fit_accepts(self):
        node = make_node("n1", cpu="4")
        pod = make_pod("p", cpu="2")
        assert NodeResourcesFit().filter(pod, node, snapshot([node])) is None

    def test_resources_fit_rejects_overcommit(self):
        node = make_node("n1", cpu="2", pods="10")
        existing = make_pod("e", cpu="1500m", node_name="n1")
        pod = make_pod("p", cpu="1")
        result = NodeResourcesFit().filter(
            pod, node, snapshot([node], {"n1": [existing]}))
        assert result is not None

    def test_pod_count_capacity(self):
        node = make_node("n1", pods="1")
        existing = make_pod("e", node_name="n1")
        pod = make_pod("p")
        result = NodeResourcesFit().filter(
            pod, node, snapshot([node], {"n1": [existing]}))
        assert result is not None

    def test_node_selector(self):
        node = make_node("n1", labels={"disk": "ssd"})
        pod = make_pod("p")
        pod.spec.node_selector = {"disk": "ssd"}
        assert NodeSelectorMatch().filter(pod, node, snapshot([node])) is None
        pod.spec.node_selector = {"disk": "hdd"}
        assert NodeSelectorMatch().filter(pod, node,
                                          snapshot([node])) is not None

    def test_taint_toleration(self):
        node = make_node("n1")
        node.spec.taints = [Taint(key="dedicated", value="infra",
                                  effect="NoSchedule")]
        pod = make_pod("p")
        assert TaintToleration().filter(pod, node,
                                        snapshot([node])) is not None
        pod.spec.tolerations = [Toleration(key="dedicated", value="infra",
                                           effect="NoSchedule")]
        assert TaintToleration().filter(pod, node, snapshot([node])) is None

    def test_exists_toleration_tolerates_any_value(self):
        node = make_node("n1")
        node.spec.taints = [Taint(key="dedicated", value="x",
                                  effect="NoSchedule")]
        pod = make_pod("p")
        pod.spec.tolerations = [Toleration(key="dedicated",
                                           operator="Exists")]
        assert TaintToleration().filter(pod, node, snapshot([node])) is None

    def test_anti_affinity_rejects_conflicting_node(self):
        node = make_node("n1")
        existing = make_pod("a", labels={"app": "web"}, node_name="n1")
        pod = with_anti_affinity(make_pod("b"), "app", "web")
        result = InterPodAffinity().filter(
            pod, node, snapshot([node], {"n1": [existing]}))
        assert result == "anti-affinity conflict"

    def test_anti_affinity_accepts_clean_node(self):
        node = make_node("n2")
        pod = with_anti_affinity(make_pod("b"), "app", "web")
        assert InterPodAffinity().filter(pod, node, snapshot([node])) is None


class _Harness:
    """A tiny super cluster: apiserver + scheduler + N ready nodes."""

    def __init__(self, sim, num_nodes=2, cpu="4"):
        self.sim = sim
        self.api = APIServer(sim, "super")
        self.client = Client(sim, self.api, ADMIN, qps=100000, burst=100000)
        factory = InformerFactory(sim, self.client)
        self.scheduler = Scheduler(sim, self.client, factory,
                                   DEFAULT_CONFIG)
        self.run(self.client.create(make_namespace("default")))
        for index in range(num_nodes):
            self.run(self.client.create(make_node(f"n{index}", cpu=cpu,
                                                  pods="500")))
        factory.start_all()
        self.scheduler.start()
        sim.run(until=sim.now + 0.5)

    def run(self, coroutine):
        return self.sim.run(until=self.sim.process(coroutine))

    def get_pod(self, name):
        return self.run(self.client.get("pods", name, namespace="default"))


class TestSchedulingLoop:
    def test_pod_gets_bound(self, sim):
        harness = _Harness(sim)
        harness.run(harness.client.create(make_pod("p")))
        sim.run(until=sim.now + 2)
        assert harness.get_pod("p").spec.node_name in ("n0", "n1")
        assert harness.scheduler.scheduled_count == 1

    def test_spreading_across_nodes(self, sim):
        harness = _Harness(sim, num_nodes=2)

        def create_pods():
            for i in range(4):
                yield from harness.client.create(make_pod(f"p{i}",
                                                          cpu="500m"))

        harness.run(create_pods())
        sim.run(until=sim.now + 3)
        nodes = {harness.get_pod(f"p{i}").spec.node_name for i in range(4)}
        assert nodes == {"n0", "n1"}

    def test_unschedulable_pod_marked(self, sim):
        harness = _Harness(sim, num_nodes=1, cpu="1")
        harness.run(harness.client.create(make_pod("big", cpu="64")))
        sim.run(until=sim.now + 2)
        pod = harness.get_pod("big")
        assert pod.spec.node_name is None
        condition = pod.status.get_condition("PodScheduled")
        assert condition.status == "False"
        assert condition.reason == "Unschedulable"
        assert harness.scheduler.failed_count >= 1

    def test_unschedulable_pod_retries_when_capacity_appears(self, sim):
        harness = _Harness(sim, num_nodes=1, cpu="1")
        harness.run(harness.client.create(make_pod("big", cpu="8")))
        sim.run(until=sim.now + 2)
        assert harness.get_pod("big").spec.node_name is None
        harness.run(harness.client.create(make_node("big-node", cpu="96",
                                                    pods="500")))
        sim.run(until=sim.now + 3)
        assert harness.get_pod("big").spec.node_name == "big-node"

    def test_anti_affinity_enforced_end_to_end(self, sim):
        harness = _Harness(sim, num_nodes=2)
        pod_a = make_pod("a", labels={"app": "web"})
        pod_b = with_anti_affinity(make_pod("b", labels={"app": "web"}),
                                   "app", "web")
        harness.run(harness.client.create(pod_a))
        sim.run(until=sim.now + 1)
        harness.run(harness.client.create(pod_b))
        sim.run(until=sim.now + 2)
        node_a = harness.get_pod("a").spec.node_name
        node_b = harness.get_pod("b").spec.node_name
        assert node_a and node_b and node_a != node_b

    def test_prebound_pod_not_rescheduled(self, sim):
        harness = _Harness(sim)
        harness.run(harness.client.create(make_pod("manual",
                                                   node_name="n0")))
        sim.run(until=sim.now + 1)
        assert harness.get_pod("manual").spec.node_name == "n0"
        assert harness.scheduler.scheduled_count == 0
