"""Focused unit tests for admission plugins."""

import pytest

from repro.apiserver import ADMIN, APIServer, Forbidden, Invalid
from repro.apiserver.admission import (
    AdmissionRequest,
    ClusterIPAllocator,
    NamespaceLifecycle,
    PodDefaults,
)
from repro.objects import make_namespace, make_pod, make_service
from repro.simkernel import Simulation


@pytest.fixture
def api():
    return APIServer(Simulation(), "api")


def run(api, coroutine):
    return api.sim.run(until=api.sim.process(coroutine))


class TestClusterIPAllocator:
    def test_sequential_unique_ips(self):
        allocator = ClusterIPAllocator()
        ips = set()
        for index in range(300):  # spans the /24 rollover
            service = make_service(f"svc-{index}")
            request = AdmissionRequest("create", "services", service)
            allocator.admit(request, None)
            assert service.spec.cluster_ip not in ips
            ips.add(service.spec.cluster_ip)

    def test_explicit_ip_reserved(self):
        allocator = ClusterIPAllocator()
        service = make_service("pinned")
        service.spec.cluster_ip = "10.96.0.77"
        allocator.admit(AdmissionRequest("create", "services", service),
                        None)
        clash = make_service("clash")
        clash.spec.cluster_ip = "10.96.0.77"
        with pytest.raises(Invalid):
            allocator.admit(AdmissionRequest("create", "services", clash),
                            None)

    def test_release_allows_reuse(self):
        allocator = ClusterIPAllocator()
        service = make_service("s")
        allocator.admit(AdmissionRequest("create", "services", service),
                        None)
        ip = service.spec.cluster_ip
        allocator.release(ip)
        again = make_service("s2")
        again.spec.cluster_ip = ip
        allocator.admit(AdmissionRequest("create", "services", again), None)

    def test_non_service_ignored(self):
        allocator = ClusterIPAllocator()
        pod = make_pod("p")
        allocator.admit(AdmissionRequest("create", "pods", pod), None)
        # No crash, no mutation.


class TestPodDefaults:
    def test_defaults_applied(self):
        pod = make_pod("p")
        pod.spec.scheduler_name = None
        pod.spec.service_account_name = None
        PodDefaults().admit(AdmissionRequest("create", "pods", pod), None)
        assert pod.spec.scheduler_name == "default-scheduler"
        assert pod.spec.service_account_name == "default"

    def test_update_not_redefaulted(self):
        pod = make_pod("p")
        pod.spec.scheduler_name = None
        PodDefaults().admit(AdmissionRequest("update", "pods", pod), None)
        assert pod.spec.scheduler_name is None


class TestNamespaceLifecycleViaServer:
    def test_cluster_scoped_objects_unaffected(self, api):
        # Creating a namespace itself must not require a namespace.
        run(api, api.create(ADMIN, make_namespace("fresh")))

    def test_updates_in_terminating_namespace_allowed(self, api):
        """Only *creates* are blocked in terminating namespaces — updates
        (e.g. removing finalizers) must go through or nothing could ever
        finish terminating."""
        run(api, api.create(ADMIN, make_namespace("zombie")))
        pod = make_pod("p", namespace="zombie")
        pod.metadata.finalizers = ["guard"]
        run(api, api.create(ADMIN, pod))
        run(api, api.delete(ADMIN, "namespaces", "zombie"))
        run(api, api.delete(ADMIN, "pods", "p", namespace="zombie"))
        fresh = run(api, api.get(ADMIN, "pods", "p", namespace="zombie"))
        fresh.metadata.finalizers = []
        run(api, api.update(ADMIN, fresh))  # allowed; removes the pod
        with pytest.raises(Forbidden):
            run(api, api.create(ADMIN, make_pod("new", namespace="zombie")))
