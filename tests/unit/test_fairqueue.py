"""Unit tests for the fair (WRR) work queue — the paper's §III-C extension."""

import pytest

from repro.clientgo import FairWorkQueue, ShardedFairWorkQueue, ShutDown
from repro.simkernel import Simulation


@pytest.fixture
def sim():
    return Simulation()


def drain_all(sim, queue, count):
    """Take ``count`` items sequentially; returns [(tenant, key)]."""
    taken = []

    def worker():
        for _ in range(count):
            tenant, key, _enqueued = yield queue.get()
            taken.append((tenant, key))
            queue.done(tenant, key)

    process = sim.process(worker())
    sim.run(until=process)
    return taken


class TestRoundRobin:
    def test_equal_weights_interleave(self, sim):
        queue = FairWorkQueue(sim)
        for i in range(3):
            queue.add("A", f"a{i}")
        for i in range(3):
            queue.add("B", f"b{i}")
        taken = drain_all(sim, queue, 6)
        tenants = [tenant for tenant, _key in taken]
        # Strict alternation with equal weights.
        assert tenants == ["A", "B", "A", "B", "A", "B"]

    def test_burst_tenant_cannot_starve_others(self, sim):
        queue = FairWorkQueue(sim)
        for i in range(100):
            queue.add("greedy", f"g{i}")
        queue.add("regular", "r0")
        taken = drain_all(sim, queue, 4)
        # The regular tenant's single item is served within one WRR round.
        positions = [i for i, (tenant, _key) in enumerate(taken)
                     if tenant == "regular"]
        assert positions and positions[0] <= 1

    def test_weighted_dispatch_ratio(self, sim):
        queue = FairWorkQueue(sim)
        queue.register_tenant("heavy", weight=3)
        queue.register_tenant("light", weight=1)
        for i in range(30):
            queue.add("heavy", f"h{i}")
        for i in range(30):
            queue.add("light", f"l{i}")
        taken = drain_all(sim, queue, 16)
        heavy = sum(1 for tenant, _k in taken if tenant == "heavy")
        light = sum(1 for tenant, _k in taken if tenant == "light")
        assert heavy == pytest.approx(3 * light, abs=2)

    def test_unfair_mode_is_fifo(self, sim):
        queue = FairWorkQueue(sim, fair=False)
        for i in range(50):
            queue.add("greedy", f"g{i}")
        queue.add("regular", "r0")
        taken = drain_all(sim, queue, 51)
        assert taken[-1] == ("regular", "r0")

    def test_empty_tenant_skipped(self, sim):
        queue = FairWorkQueue(sim)
        queue.register_tenant("empty")
        queue.add("busy", "b0")
        assert drain_all(sim, queue, 1) == [("busy", "b0")]


class TestDedup:
    def test_dedup_same_key(self, sim):
        queue = FairWorkQueue(sim)
        queue.add("A", "k")
        queue.add("A", "k")
        assert len(queue) == 1
        assert queue.deduped_total == 1

    def test_same_key_different_tenants_not_deduped(self, sim):
        queue = FairWorkQueue(sim)
        queue.add("A", "k")
        queue.add("B", "k")
        assert len(queue) == 2

    def test_readd_while_processing(self, sim):
        queue = FairWorkQueue(sim)
        queue.add("A", "k")
        order = []

        def worker():
            tenant, key, _t = yield queue.get()
            order.append("first")
            queue.add(tenant, key)
            queue.done(tenant, key)
            tenant, key, _t = yield queue.get()
            order.append("second")
            queue.done(tenant, key)

        sim.run(until=sim.process(worker()))
        assert order == ["first", "second"]


class TestLifecycle:
    def test_blocking_get(self, sim):
        queue = FairWorkQueue(sim)
        got = []

        def worker():
            tenant, key, _t = yield queue.get()
            got.append((tenant, key, sim.now))

        def producer():
            yield sim.timeout(2)
            queue.add("T", "x")

        sim.process(worker())
        sim.process(producer())
        sim.run()
        assert got == [("T", "x", 2)]

    def test_shutdown(self, sim):
        queue = FairWorkQueue(sim)
        failures = []

        def worker():
            try:
                yield queue.get()
            except ShutDown:
                failures.append(True)

        sim.process(worker())

        def closer():
            yield sim.timeout(1)
            queue.shutdown()

        sim.process(closer())
        sim.run()
        assert failures == [True]

    def test_remove_tenant_discards_pending(self, sim):
        queue = FairWorkQueue(sim)
        queue.add("A", "a0")
        queue.add("B", "b0")
        queue.remove_tenant("A")
        assert len(queue) == 1
        assert drain_all(sim, queue, 1) == [("B", "b0")]

    def test_remove_before_cursor_preserves_rotation(self, sim):
        """Regression: removing a tenant that sits *before* the WRR
        cursor must pull the cursor back one slot, or the tenant whose
        turn is next silently loses it."""
        queue = FairWorkQueue(sim)
        for tenant in ("A", "B", "C"):
            for i in range(2):
                queue.add(tenant, f"{tenant.lower()}{i}")
        # Serve exactly one item (A's), advancing the cursor past A.
        assert drain_all(sim, queue, 1) == [("A", "a0")]
        queue.remove_tenant("A")
        # B's turn is next; the old code left the cursor pointing at C.
        assert drain_all(sim, queue, 4) == [
            ("B", "b0"), ("C", "c0"), ("B", "b1"), ("C", "c1")]

    def test_remove_at_cursor_serves_next_tenant(self, sim):
        queue = FairWorkQueue(sim)
        for tenant in ("A", "B", "C"):
            queue.add(tenant, f"{tenant.lower()}0")
        # Cursor still on A (nothing served); removing A hands the turn
        # to B without skipping anyone.
        queue.remove_tenant("A")
        assert drain_all(sim, queue, 2) == [("B", "b0"), ("C", "c0")]

    def test_wait_time_by_tenant_tracked(self, sim):
        queue = FairWorkQueue(sim)

        def producer():
            queue.add("A", "x")
            yield sim.timeout(0)

        def worker():
            yield sim.timeout(5)
            tenant, key, enqueued = yield queue.get()
            queue.done(tenant, key)

        sim.process(producer())
        process = sim.process(worker())
        sim.run(until=process)
        assert queue.wait_time_by_tenant["A"] == pytest.approx(5)
        assert queue.dispatched_by_tenant["A"] == 1

    def test_stats(self, sim):
        queue = FairWorkQueue(sim)
        queue.add("A", "x")
        stats = queue.stats()
        assert stats["depth"] == 1
        assert stats["tenants"] == 1


class TestWeightValidation:
    """Regression: ``weight=0`` used to be silently coerced to the
    default weight (``weight or default``); non-positive weights are now
    rejected instead of either starving the tenant or masking the bug."""

    def test_zero_weight_rejected(self, sim):
        queue = FairWorkQueue(sim)
        with pytest.raises(ValueError, match="must be positive"):
            queue.register_tenant("T", weight=0)
        assert "T" not in queue.tenants

    def test_negative_weight_rejected(self, sim):
        queue = FairWorkQueue(sim)
        with pytest.raises(ValueError, match="must be positive"):
            queue.register_tenant("T", weight=-3)

    def test_explicit_weight_not_coerced(self, sim):
        queue = FairWorkQueue(sim, default_weight=4)
        queue.register_tenant("T", weight=2)
        assert queue._weights["T"] == 2

    def test_none_weight_uses_default(self, sim):
        queue = FairWorkQueue(sim, default_weight=4)
        queue.register_tenant("T")
        assert queue._weights["T"] == 4

    def test_sharded_zero_weight_rejected(self, sim):
        queue = ShardedFairWorkQueue(sim, shards=2)
        with pytest.raises(ValueError, match="must be positive"):
            queue.register_tenant("T", weight=0)
        assert "T" not in queue.tenants

    def test_sharded_explicit_weight_propagates(self, sim):
        queue = ShardedFairWorkQueue(sim, shards=2, default_weight=4)
        queue.register_tenant("T", weight=2)
        shard = queue.shards[queue.shard_of("T")]
        assert shard._weights["T"] == 2
