"""Unit tests for Kubernetes resource quantities."""

import pytest

from repro.objects.quantity import (
    InvalidQuantity,
    Quantity,
    add_resource_lists,
    fits_within,
)


class TestParsing:
    def test_plain_integer(self):
        assert Quantity.parse("2").milli == 2000

    def test_millicores(self):
        assert Quantity.parse("500m").milli == 500

    def test_fractional(self):
        assert Quantity.parse("1.5").milli == 1500

    def test_binary_suffixes(self):
        assert Quantity.parse("1Ki").milli == 1024 * 1000
        assert Quantity.parse("1Mi").milli == 1024 ** 2 * 1000
        assert Quantity.parse("2Gi").milli == 2 * 1024 ** 3 * 1000

    def test_decimal_suffixes(self):
        assert Quantity.parse("1k").milli == 1000 * 1000
        assert Quantity.parse("5M").milli == 5 * 10 ** 6 * 1000

    def test_negative(self):
        assert Quantity.parse("-2").milli == -2000

    def test_parse_from_number(self):
        assert Quantity.parse(2).milli == 2000
        assert Quantity.parse(0.25).milli == 250

    def test_parse_idempotent_on_quantity(self):
        q = Quantity.parse("100m")
        assert Quantity.parse(q) == q

    @pytest.mark.parametrize("bad", ["", "abc", "1Qi", "--3", "1.2.3"])
    def test_invalid(self, bad):
        with pytest.raises(InvalidQuantity):
            Quantity.parse(bad)


class TestArithmetic:
    def test_add(self):
        assert (Quantity.parse("1") + Quantity.parse("500m")).milli == 1500

    def test_add_string(self):
        assert (Quantity.parse("1") + "250m").milli == 1250

    def test_sub(self):
        assert (Quantity.parse("2") - "500m") == Quantity.parse("1500m")

    def test_mul(self):
        assert (Quantity.parse("100m") * 3).milli == 300

    def test_neg(self):
        assert (-Quantity.parse("1")).milli == -1000

    def test_comparisons(self):
        assert Quantity.parse("1") < Quantity.parse("2")
        assert Quantity.parse("1000m") <= Quantity.parse("1")
        assert Quantity.parse("1Gi") > Quantity.parse("1Mi")
        assert Quantity.parse("3") >= "3"

    def test_equality_with_string(self):
        assert Quantity.parse("1") == "1000m"

    def test_hashable(self):
        assert len({Quantity.parse("1"), Quantity.parse("1000m")}) == 1

    def test_bool(self):
        assert not Quantity.zero()
        assert Quantity.parse("1m")


class TestFormatting:
    def test_whole_units(self):
        assert str(Quantity.parse("2")) == "2"

    def test_millis(self):
        assert str(Quantity.parse("250m")) == "250m"

    def test_binary_round_trip(self):
        assert str(Quantity.parse("2Gi")) == "2Gi"
        assert str(Quantity.parse("512Mi")) == "512Mi"

    def test_round_trip_preserves_value(self):
        for text in ["1", "500m", "3Gi", "128Mi", "7", "12k"]:
            q = Quantity.parse(text)
            assert Quantity.parse(str(q)) == q

    def test_serialized_form(self):
        assert Quantity.parse("1Gi").to_serialized() == "1Gi"
        assert Quantity.from_serialized("250m").milli == 250


class TestResourceLists:
    def test_add_resource_lists(self):
        total = add_resource_lists(
            {"cpu": Quantity.parse("1")},
            {"cpu": Quantity.parse("500m"), "memory": Quantity.parse("1Gi")},
        )
        assert total["cpu"] == Quantity.parse("1500m")
        assert total["memory"] == Quantity.parse("1Gi")

    def test_fits_within_true(self):
        assert fits_within({"cpu": Quantity.parse("1")},
                           {"cpu": Quantity.parse("2"),
                            "memory": Quantity.parse("1Gi")})

    def test_fits_within_false_exceeds(self):
        assert not fits_within({"cpu": Quantity.parse("3")},
                               {"cpu": Quantity.parse("2")})

    def test_fits_within_false_missing_resource(self):
        assert not fits_within({"gpu": Quantity.parse("1")},
                               {"cpu": Quantity.parse("2")})
