"""Unit tests for the Lease object, JitteredBackoff, and LeaderElector."""

import pytest

from repro.apiserver import ADMIN, APIServer
from repro.clientgo import (
    Client,
    JitteredBackoff,
    LEASE_NAMESPACE,
    LeaderElector,
)
from repro.objects import Lease, make_namespace
from repro.simkernel import Simulation


@pytest.fixture
def sim():
    return Simulation(seed=11)


@pytest.fixture
def api(sim):
    api = APIServer(sim, "test-api")
    sim.run(until=sim.process(
        api.create(ADMIN, make_namespace(LEASE_NAMESPACE))))
    return api


def make_elector(sim, api, identity, **kwargs):
    client = Client(sim, api, ADMIN, user_agent=f"elector-{identity}",
                    qps=10_000, burst=20_000)
    kwargs.setdefault("lease_duration", 6.0)
    kwargs.setdefault("renew_interval", 2.0)
    kwargs.setdefault("retry_interval", 0.5)
    return LeaderElector(sim, client, "test-lease", identity, **kwargs)


class TestJitteredBackoff:
    def test_doubles_and_caps(self):
        backoff = JitteredBackoff(Simulation(seed=1).rng, 1.0, 8.0,
                                  jitter=0.0)
        assert [backoff.delay(i) for i in range(5)] == [1, 2, 4, 8, 8]

    def test_jitter_is_one_sided(self):
        rng = Simulation(seed=2).rng
        backoff = JitteredBackoff(rng, 1.0, 60.0, jitter=0.5)
        for failures in range(6):
            base = min(2.0 ** failures, 60.0)
            delay = backoff.delay(failures)
            assert base <= delay <= base * 1.5

    def test_stateful_next_and_reset(self):
        backoff = JitteredBackoff(Simulation(seed=3).rng, 1.0, 8.0,
                                  jitter=0.0)
        assert backoff.next() == 1.0
        assert backoff.next() == 2.0
        backoff.reset()
        assert backoff.failures == 0
        assert backoff.next() == 1.0


class TestLeaderElector:
    def test_first_elector_acquires(self, sim, api):
        elector = make_elector(sim, api, "a")
        elector.start()
        sim.run(until=5.0)
        assert elector.is_leader
        assert elector.fencing_token == 1
        assert elector.acquisitions == 1

    def test_standby_does_not_steal_live_lease(self, sim, api):
        a = make_elector(sim, api, "a")
        b = make_elector(sim, api, "b")
        a.start()
        sim.run(until=2.0)
        b.start()
        sim.run(until=60.0)
        assert a.is_leader
        assert not b.is_leader
        assert b.acquisitions == 0

    def test_crash_failover_after_expiry(self, sim, api):
        a = make_elector(sim, api, "a")
        b = make_elector(sim, api, "b")
        a.start()
        b.start()
        sim.run(until=5.0)
        leader, standby = (a, b) if a.is_leader else (b, a)
        crash_at = sim.now
        leader.crash()
        sim.run(until=crash_at + 30.0)
        assert standby.is_leader
        # The standby could only win after the lease provably lapsed.
        assert standby.fencing_token == 2
        assert standby.sim.now >= crash_at + leader.lease_duration - 0.01

    def test_graceful_release_allows_fast_takeover(self, sim, api):
        a = make_elector(sim, api, "a")
        b = make_elector(sim, api, "b")
        a.start()
        b.start()
        sim.run(until=5.0)
        leader, standby = (a, b) if a.is_leader else (b, a)
        release_at = sim.now
        leader.stop(release=True)
        sim.run(until=release_at + 3.0)
        # Released lease (holder cleared) is immediately expired.
        assert standby.is_leader
        assert sim.now - release_at < leader.lease_duration

    def test_fencing_tokens_increase_per_term(self, sim, api):
        a = make_elector(sim, api, "a")
        a.start()
        sim.run(until=5.0)
        a.crash()
        sim.run(until=30.0)
        b = make_elector(sim, api, "b")
        b.start()
        sim.run(until=60.0)
        assert b.fencing_token > a.fencing_token

    def test_callbacks_fire(self, sim, api):
        events = []
        a = make_elector(
            sim, api, "a",
            on_started_leading=lambda token: events.append(("up", token)),
            on_stopped_leading=lambda reason: events.append(("down", reason)))
        b = make_elector(sim, api, "b")
        a.start()
        sim.run(until=5.0)
        assert events == [("up", 1)]
        a.partition(notice_delay=0.0)
        b.start()
        sim.run(until=60.0)
        assert events[-1][0] == "down"
        assert b.is_leader

    def test_partition_window_never_overlaps_leadership(self, sim, api):
        a = make_elector(sim, api, "a")
        b = make_elector(sim, api, "b")
        a.start()
        sim.run(until=5.0)
        a.partition(notice_delay=2.0)
        b.start()
        overlaps = []

        def monitor():
            while sim.now < 60.0:
                if a.is_leader and b.is_leader:
                    overlaps.append(sim.now)
                yield sim.timeout(0.05)

        sim.spawn(monitor(), name="monitor")
        sim.run(until=60.0)
        assert not overlaps
        assert b.is_leader
        assert a.losses == 1  # noticed after the delay

    def test_renew_interval_must_undercut_duration(self, sim, api):
        with pytest.raises(ValueError):
            make_elector(sim, api, "a", lease_duration=2.0,
                         renew_interval=2.0)

    def test_lease_object_expiry(self):
        lease = Lease()
        assert lease.spec.expired(0.0)  # never held
        lease.spec.holder_identity = "a"
        lease.spec.renew_time = 10.0
        lease.spec.lease_duration_seconds = 5.0
        assert not lease.spec.expired(14.9)
        assert lease.spec.expired(15.0)
