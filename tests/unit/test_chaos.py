"""Unit tests for the chaos engine, fault schedules, the circuit
breaker state machine, and the worker watchdog."""

import itertools
import random
from types import SimpleNamespace

import pytest

from repro.apiserver import ADMIN, APIServer, NotFound
from repro.chaos import (
    ApiRequestFault,
    NetworkPartition,
    OneShot,
    Periodic,
    RandomWindows,
)
from repro.clientgo import Client
from repro.config import DEFAULT_CONFIG
from repro.core.syncer.health import (
    STATE_CLOSED,
    STATE_HALF_OPEN,
    STATE_OPEN,
    HealthTracker,
)
from repro.objects import make_namespace, make_pod
from repro.simkernel import Simulation


@pytest.fixture
def sim():
    return Simulation(seed=42)


def run(sim, coroutine):
    return sim.run(until=sim.process(coroutine))


class TestSchedules:
    def test_one_shot_single_window(self):
        windows = list(OneShot(5.0, duration=2.0).windows(random.Random(0)))
        assert windows == [(5.0, 2.0)]

    def test_periodic_counts_windows(self):
        schedule = Periodic(period=3.0, duration=1.0, count=4)
        windows = list(schedule.windows(random.Random(0)))
        assert windows == [(3.0, 1.0)] * 4

    def test_periodic_offset_applies_once(self):
        schedule = Periodic(period=2.0, count=3, offset=5.0)
        delays = [d for d, _dur in schedule.windows(random.Random(0))]
        assert delays == [7.0, 2.0, 2.0]

    def test_random_windows_deterministic_per_seed(self):
        schedule = RandomWindows(mean_gap=10.0, duration_range=(1.0, 3.0),
                                 count=20)
        first = list(schedule.windows(random.Random(7)))
        second = list(schedule.windows(random.Random(7)))
        other = list(schedule.windows(random.Random(8)))
        assert first == second
        assert first != other
        for gap, duration in first:
            assert gap >= 0.1
            assert 1.0 <= duration <= 3.0

    def test_infinite_schedules_are_lazy(self):
        schedule = Periodic(period=1.0)  # count=None: endless
        head = list(itertools.islice(schedule.windows(random.Random(0)), 5))
        assert len(head) == 5

    def test_describe_strings(self):
        assert "one-shot" in OneShot(1.0).describe()
        assert "periodic" in Periodic(5.0, count=2).describe()
        assert "random" in RandomWindows(10.0).describe()


class FakeSyncer:
    """Just enough syncer surface for a HealthTracker."""

    def __init__(self, sim, client=None):
        self.sim = sim
        self.config = DEFAULT_CONFIG
        self.counters = {}
        self.tenants = {}
        self.requeued = []
        if client is not None:
            self.tenants["t1"] = SimpleNamespace(client=client)

    def metrics_inc(self, counter):
        self.counters[counter] = self.counters.get(counter, 0) + 1

    def spawn(self, coroutine, name=None, affinity=None):
        return self.sim.spawn(coroutine, name=name, affinity=affinity)

    def enqueue_downward(self, tenant, plural, key):
        self.requeued.append(("downward", tenant, plural, key))

    def enqueue_upward(self, tenant, plural, key):
        self.requeued.append(("upward", tenant, plural, key))


@pytest.fixture
def api(sim):
    return APIServer(sim, "tenant-api")


@pytest.fixture
def tracker(sim, api):
    client = Client(sim, api, ADMIN, user_agent="probe", qps=10000,
                    burst=10000, max_retries=0)
    return HealthTracker(FakeSyncer(sim, client=client))


class TestCircuitBreaker:
    def test_opens_after_consecutive_retryable_failures(self, sim, tracker):
        threshold = tracker.failure_threshold
        for _ in range(threshold - 1):
            assert not tracker.record_failure("t1")
        assert tracker.state("t1") == STATE_CLOSED
        assert tracker.record_failure("t1")
        assert tracker.state("t1") == STATE_OPEN
        assert not tracker.allow("t1")
        assert tracker.syncer.counters.get("breaker_open") == 1

    def test_success_resets_consecutive_count(self, tracker):
        for _ in range(tracker.failure_threshold - 1):
            tracker.record_failure("t1")
        tracker.record_success("t1")
        for _ in range(tracker.failure_threshold - 1):
            tracker.record_failure("t1")
        assert tracker.state("t1") == STATE_CLOSED

    def test_non_retryable_errors_never_trip(self, tracker):
        for _ in range(tracker.failure_threshold * 3):
            parked = tracker.record_failure("t1", NotFound("gone"))
            assert not parked
        assert tracker.state("t1") == STATE_CLOSED

    def test_disabled_tracker_always_allows(self, sim):
        tracker = HealthTracker(FakeSyncer(sim), enabled=False)
        for _ in range(10):
            tracker.record_failure("t1")
        assert tracker.allow("t1")
        assert tracker.state("t1") == STATE_CLOSED

    def test_probe_closes_circuit_and_unparks(self, sim, tracker):
        for _ in range(tracker.failure_threshold):
            tracker.record_failure("t1")
        tracker.park("t1", "downward", ("pods", "default/a"))
        tracker.park("t1", "upward", ("pods", "sns/a"))
        assert tracker.parked_count("t1") == 2
        # The probe target (the fake tenant apiserver) is healthy, so the
        # first half-open probe succeeds within ~open_duration * 1.25.
        sim.run(until=sim.now + tracker.base_open_duration * 1.5)
        assert tracker.state("t1") == STATE_CLOSED
        assert tracker.parked_count("t1") == 0
        assert set(tracker.syncer.requeued) == {
            ("downward", "t1", "pods", "default/a"),
            ("upward", "t1", "pods", "sns/a"),
        }

    def test_probe_failure_reopens_with_longer_cooldown(self, sim, api,
                                                        tracker):
        api.crash()
        for _ in range(tracker.failure_threshold):
            tracker.record_failure("t1")
        first_duration = tracker.health("t1").open_duration
        sim.run(until=sim.now + first_duration * 2)
        entry = tracker.health("t1")
        assert entry.state == STATE_OPEN
        assert entry.probes_total >= 1
        assert entry.open_duration == min(first_duration * 2,
                                          tracker.max_open_duration)
        api.recover()
        sim.run(until=sim.now + tracker.max_open_duration)
        assert tracker.state("t1") == STATE_CLOSED
        assert tracker.time_degraded("t1") > 0

    def test_half_open_state_visible_during_probe(self, sim, api, tracker):
        """The probe marks half-open before the request resolves."""
        seen = []
        original = api.list

        def spying_list(credential, plural, **kwargs):
            seen.append(tracker.state("t1"))
            return (yield from original(credential, plural, **kwargs))

        api.list = spying_list
        for _ in range(tracker.failure_threshold):
            tracker.record_failure("t1")
        sim.run(until=sim.now + tracker.base_open_duration * 1.5)
        assert STATE_HALF_OPEN in seen
        assert tracker.state("t1") == STATE_CLOSED

    def test_drop_tenant_forgets_state_and_parked(self, sim, tracker):
        for _ in range(tracker.failure_threshold):
            tracker.record_failure("t1")
        tracker.park("t1", "downward", ("pods", "default/a"))
        tracker.drop_tenant("t1")
        assert tracker.parked_count() == 0
        assert tracker.state("t1") == STATE_CLOSED  # fresh entry


class TestFaultUnits:
    def test_api_request_fault_per_verb(self, sim, api):
        from repro.apiserver import ServerUnavailable

        client = Client(sim, api, ADMIN, user_agent="t", qps=10000,
                        burst=10000, max_retries=0)
        run(sim, client.create(make_namespace("default")))
        fault = ApiRequestFault(api, verbs=("create",))
        fault.bind(sim, random.Random(0))
        fault.inject()
        with pytest.raises(ServerUnavailable):
            run(sim, client.create(make_pod("p")))
        # Unmatched verbs pass through while the fault is active.
        pods, _rev = run(sim, client.list("pods"))
        assert pods == []
        fault.restore()
        run(sim, client.create(make_pod("p")))
        assert fault.errors_injected == 1
        assert api.fault_injector is None

    def test_network_partition_blocks_one_client_only(self, sim, api):
        from repro.apiserver import ServerUnavailable

        cut = Client(sim, api, ADMIN, user_agent="cut", qps=10000,
                     burst=10000, max_retries=0)
        healthy = Client(sim, api, ADMIN, user_agent="ok", qps=10000,
                         burst=10000, max_retries=0)
        run(sim, healthy.create(make_namespace("default")))
        stream = cut.watch("pods")
        fault = NetworkPartition(cut)
        fault.bind(sim, random.Random(0))
        fault.inject()
        assert stream.closed  # established stream died with the link
        with pytest.raises(ServerUnavailable):
            run(sim, cut.list("pods"))
        pods, _rev = run(sim, healthy.list("pods"))
        assert pods == []
        fault.restore()
        pods, _rev = run(sim, cut.list("pods"))
        assert pods == []
        assert fault.requests_blocked == 1


class TestWatchdog:
    @pytest.fixture
    def syncer(self, sim):
        from repro.core.controlplane import SuperCluster
        from repro.core.syncer.syncer import Syncer

        super_cluster = SuperCluster(sim, DEFAULT_CONFIG)
        super_cluster.start()
        syncer = Syncer(sim, super_cluster, dws_workers=2, uws_workers=1)
        syncer.start()
        sim.run(until=sim.now + 1.0)
        return syncer

    def test_workers_spawn_under_watchdog(self, sim, syncer):
        assert len(syncer.worker_processes) == 3
        assert all(p.is_alive for p in syncer.worker_processes.values())

    def test_crashed_worker_is_respawned(self, sim, syncer):
        label = sorted(syncer.worker_processes)[0]
        victim = syncer.worker_processes[label]
        victim.interrupt("chaos kill")
        cfg = syncer.config.syncer
        sim.run(until=sim.now + cfg.watchdog_base_backoff * 2)
        respawned = syncer.worker_processes.get(label)
        assert respawned is not None and respawned is not victim
        assert respawned.is_alive
        assert syncer.worker_restarts[label] == 1
        assert syncer.counters.get("worker_restarts") == 1

    def test_crash_loop_backoff_grows(self, sim, syncer):
        label = sorted(syncer.worker_processes)[0]
        cfg = syncer.config.syncer
        gaps = []
        for _ in range(4):
            victim = syncer.worker_processes[label]
            died_at = sim.now
            victim.interrupt("chaos kill")
            sim.run(until=sim.now + cfg.watchdog_max_backoff)
            # Time until the replacement appeared.
            assert syncer.worker_processes[label] is not victim
            gaps.append(sim.now - died_at)
        assert syncer.worker_restarts[label] == 4

    def test_stop_halts_respawning(self, sim, syncer):
        syncer.stop()
        sim.run(until=sim.now + 5.0)
        assert syncer.worker_processes == {}
        alive = [p for p in syncer.worker_processes.values() if p.is_alive]
        assert alive == []

    def test_restart_counts_surface_in_stats(self, sim, syncer):
        label = sorted(syncer.worker_processes)[0]
        syncer.worker_processes[label].interrupt("chaos kill")
        sim.run(until=sim.now + 2.0)
        stats = syncer.stats()
        assert stats["worker_restarts"].get(label) == 1
        assert "health" in stats
