"""Unit tests for syncer conversion, tracing, and the VC CRD helpers."""

import pytest

from repro.core.crd import (
    cluster_prefix,
    make_virtual_cluster,
    short_uid_hash,
    super_namespace,
)
from repro.core.syncer.conversion import (
    ANNOTATION_TENANT_NAME,
    ANNOTATION_TENANT_NAMESPACE,
    ANNOTATION_VC,
    is_managed,
    specs_equivalent,
    super_key_for,
    tenant_key,
    tenant_origin,
    to_super,
    to_super_pod,
)
from repro.core.syncer.tracing import PHASES, PodTrace, TraceStore
from repro.objects import Pod, make_pod


@pytest.fixture
def vc():
    vc = make_virtual_cluster("acme")
    vc.metadata.uid = "uid-0001"
    return vc


class TestNamingScheme:
    def test_short_uid_hash_is_stable(self):
        assert short_uid_hash("x") == short_uid_hash("x")
        assert len(short_uid_hash("x")) == 6

    def test_cluster_prefix_combines_name_and_hash(self, vc):
        prefix = cluster_prefix(vc)
        assert prefix.startswith("acme-")
        assert prefix == f"acme-{short_uid_hash('uid-0001')}"

    def test_different_vcs_get_different_prefixes(self, vc):
        other = make_virtual_cluster("acme")
        other.metadata.uid = "uid-0002"
        assert cluster_prefix(vc) != cluster_prefix(other)

    def test_super_namespace(self, vc):
        assert super_namespace(vc, "default") == \
            f"{cluster_prefix(vc)}-default"

    def test_super_key_for_namespaced(self, vc):
        assert super_key_for(Pod, vc, "ns/p") == \
            f"{cluster_prefix(vc)}-ns/p"


class TestTranslation:
    def test_to_super_prefixes_namespace(self, vc):
        pod = make_pod("web", namespace="prod")
        translated = to_super(pod, vc)
        assert translated.metadata.namespace == super_namespace(vc, "prod")
        assert translated.metadata.name == "web"

    def test_to_super_strips_server_fields(self, vc):
        pod = make_pod("web")
        pod.metadata.uid = "tenant-uid"
        pod.metadata.resource_version = "42"
        pod.metadata.creation_timestamp = 1.0
        translated = to_super(pod, vc)
        assert translated.metadata.uid is None
        assert translated.metadata.resource_version is None
        assert translated.metadata.creation_timestamp is None

    def test_to_super_records_origin(self, vc):
        pod = make_pod("web", namespace="prod")
        pod.metadata.uid = "tenant-uid"
        translated = to_super(pod, vc)
        annotations = translated.metadata.annotations
        assert annotations[ANNOTATION_VC] == vc.key
        assert annotations[ANNOTATION_TENANT_NAMESPACE] == "prod"
        assert annotations[ANNOTATION_TENANT_NAME] == "web"
        assert is_managed(translated)

    def test_to_super_pod_clears_binding_and_status(self, vc):
        pod = make_pod("web", node_name="tenant-vnode")
        pod.status.phase = "Running"
        translated = to_super_pod(pod, vc)
        assert translated.spec.node_name is None
        assert translated.status.phase == "Pending"

    def test_tenant_origin_round_trip(self, vc):
        pod = make_pod("web", namespace="prod")
        translated = to_super(pod, vc)
        assert tenant_origin(translated) == (vc.key, "prod", "web")
        assert tenant_key(translated) == "prod/web"

    def test_unmanaged_object_has_no_origin(self):
        assert tenant_origin(make_pod("native")) is None
        assert not is_managed(make_pod("native"))


class TestSpecComparison:
    def test_equivalent_specs(self, vc):
        tenant_pod = make_pod("p")
        super_pod = to_super_pod(tenant_pod, vc)
        assert specs_equivalent(tenant_pod, super_pod)

    def test_node_name_ignored(self, vc):
        tenant_pod = make_pod("p", node_name="vnode-1")
        super_pod = to_super_pod(tenant_pod, vc)
        super_pod.spec.node_name = "physical-7"
        assert specs_equivalent(tenant_pod, super_pod)

    def test_real_divergence_detected(self, vc):
        tenant_pod = make_pod("p")
        super_pod = to_super_pod(tenant_pod, vc)
        super_pod.spec.containers[0].image = "different"
        assert not specs_equivalent(tenant_pod, super_pod)


class TestTracing:
    def test_phases_computed(self):
        trace = PodTrace("t", "ns/p", created=0.0)
        trace.dws_dequeue = 1.0
        trace.dws_done = 1.5
        trace.super_ready = 3.0
        trace.uws_dequeue = 4.0
        trace.uws_done = 4.2
        phases = trace.phases()
        assert phases["DWS-Queue"] == 1.0
        assert phases["DWS-Process"] == 0.5
        assert phases["Super-Sched"] == 1.5
        assert phases["UWS-Queue"] == 1.0
        assert phases["UWS-Process"] == pytest.approx(0.2)
        assert trace.total == pytest.approx(4.2)

    def test_incomplete_trace(self):
        trace = PodTrace("t", "ns/p", created=0.0)
        assert not trace.complete
        assert trace.total is None
        assert trace.phases() is None

    def test_store_mark_is_first_write_wins(self):
        store = TraceStore()
        store.begin("t", "ns/p", created=0.0)
        store.mark("t", "ns/p", "dws_dequeue", 1.0)
        store.mark("t", "ns/p", "dws_dequeue", 99.0)
        assert store.get("t", "ns/p").dws_dequeue == 1.0

    def test_store_begin_idempotent(self):
        store = TraceStore()
        a = store.begin("t", "ns/p", created=0.0)
        b = store.begin("t", "ns/p", created=5.0)
        assert a is b
        assert a.created == 0.0

    def test_mean_phase_breakdown(self):
        store = TraceStore()
        for i in range(2):
            trace = store.begin("t", f"ns/p{i}", created=0.0)
            trace.dws_dequeue = 1.0 + i
            trace.dws_done = 2.0 + i
            trace.super_ready = 3.0 + i
            trace.uws_dequeue = 4.0 + i
            trace.uws_done = 5.0 + i
        means = store.mean_phase_breakdown()
        assert means["DWS-Queue"] == pytest.approx(1.5)
        assert set(means) == set(PHASES)

    def test_bucket_counts(self):
        store = TraceStore()
        trace = store.begin("t", "ns/p", created=0.0)
        trace.dws_dequeue = 3.0   # bucket [2,4)
        trace.dws_done = 3.1
        trace.super_ready = 3.2
        trace.uws_dequeue = 3.3
        trace.uws_done = 3.4
        buckets = store.phase_bucket_counts(bucket_width=2.0, bucket_count=5)
        assert buckets["DWS-Queue"] == [0, 1, 0, 0, 0]
        assert buckets["DWS-Process"] == [1, 0, 0, 0, 0]

    def test_per_tenant_means(self):
        store = TraceStore()
        for tenant, total in (("a", 2.0), ("a", 4.0), ("b", 10.0)):
            key = f"ns/p{total}-{tenant}"
            trace = store.begin(tenant, key, created=0.0)
            trace.dws_dequeue = trace.dws_done = trace.super_ready = 0.0
            trace.uws_dequeue = 0.0
            trace.uws_done = total
        means = store.mean_creation_time_by_tenant()
        assert means["a"] == pytest.approx(3.0)
        assert means["b"] == pytest.approx(10.0)


class TestTraceRetention:
    """Bounded TraceStore retention: ``len(store)`` stays under the cap
    during a long soak while every aggregate stays exact."""

    @staticmethod
    def _complete(store, tenant, key, created, total=5.0):
        store.begin(tenant, key, created=created)
        store.mark(tenant, key, "dws_dequeue", created + 1.0)
        store.mark(tenant, key, "dws_done", created + 2.0)
        store.mark(tenant, key, "super_ready", created + 3.0)
        store.mark(tenant, key, "uws_dequeue", created + 4.0)
        store.mark(tenant, key, "uws_done", created + total)

    def test_soak_stays_under_cap_with_exact_percentiles(self):
        cap = 100
        capped = TraceStore(cap=cap)
        exact = TraceStore()  # uncapped reference
        total_pods = 5000
        for i in range(total_pods):
            total = 5.0 + (i % 97)
            self._complete(capped, f"t{i % 7}", f"ns/p{i}",
                           created=float(i), total=total)
            self._complete(exact, f"t{i % 7}", f"ns/p{i}",
                           created=float(i), total=total)
            assert len(capped) <= cap
        assert capped.completed_count == total_pods
        # The whole distribution — hence every percentile — is identical
        # to the uncapped store's, despite 98% of traces being evicted.
        assert sorted(capped.creation_times()) == \
            sorted(exact.creation_times())
        assert capped.mean_phase_breakdown() == \
            exact.mean_phase_breakdown()
        assert capped.mean_creation_time_by_tenant() == \
            exact.mean_creation_time_by_tenant()
        assert capped.phase_bucket_counts() == exact.phase_bucket_counts()

    def test_incomplete_traces_never_evicted(self):
        store = TraceStore(cap=10)
        for i in range(10):
            store.begin("t", f"ns/live{i}", created=0.0)
        for i in range(50):
            self._complete(store, "t", f"ns/done{i}", created=0.0)
        for i in range(10):
            assert store.get("t", f"ns/live{i}") is not None
        assert store.completed_count == 50

    def test_evicted_key_cannot_be_retraced(self):
        store = TraceStore(cap=2)
        for i in range(5):
            self._complete(store, "t", f"ns/p{i}", created=0.0)
        # p0 was evicted; a replayed informer add must not restart its
        # trace and double-count the pod.
        assert store.begin("t", "ns/p0", created=99.0) is None
        store.mark("t", "ns/p0", "dws_dequeue", 100.0)  # no-op
        assert store.completed_count == 5

    def test_uncapped_keeps_everything(self):
        store = TraceStore()
        for i in range(20):
            self._complete(store, "t", f"ns/p{i}", created=0.0)
        assert len(store) == 20
        assert store.completed_count == 20

    def test_telemetry_histograms_observe_completions(self):
        from repro.telemetry import Telemetry

        class _StubSim:
            now = 0.0
            active_process = None

        telemetry = Telemetry(_StubSim())
        store = TraceStore(cap=4, telemetry=telemetry)
        for i in range(12):
            self._complete(store, "acme", f"ns/p{i}", created=0.0)
        family = telemetry.registry.get("pod_creation_seconds")
        child = family.labels(tenant="acme")
        assert child.count == 12
        assert child.sum == pytest.approx(12 * 5.0)
        phases = telemetry.registry.get("pod_phase_seconds")
        assert sum(c.count for _v, c in phases.children()) == 12 * 5


class TestVcObject:
    def test_make_virtual_cluster(self):
        vc = make_virtual_cluster("acme", weight=5, mode="cloud")
        assert vc.spec.tenant_weight == 5
        assert vc.spec.mode == "cloud"
        assert vc.status.phase == "Pending"
        assert not vc.is_running

    def test_vc_serde_round_trip(self, vc):
        vc.status.phase = "Running"
        vc.status.cert_hash = "abc"
        again = type(vc).from_dict(vc.to_dict())
        assert again.status.cert_hash == "abc"
        assert again.is_running
