"""Unit tests for the apiserver: CRUD semantics, admission, auth, watch."""

import pytest

from repro.apiserver import (
    ADMIN,
    AlreadyExists,
    APIServer,
    BadRequest,
    Conflict,
    Credential,
    Forbidden,
    Invalid,
    NotFound,
    Unauthorized,
)
from repro.objects import (
    ClusterRole,
    ClusterRoleBinding,
    PolicyRule,
    Quantity,
    ResourceQuota,
    RoleRef,
    RoleSubject,
    make_namespace,
    make_pod,
    make_service,
)
from repro.simkernel import Simulation


@pytest.fixture
def sim():
    return Simulation()


@pytest.fixture
def api(sim):
    return APIServer(sim, "test-api")


def run(sim, coroutine):
    return sim.run(until=sim.process(coroutine))


def setup_namespace(sim, api, name="default"):
    run(sim, api.create(ADMIN, make_namespace(name)))


class TestCreate:
    def test_create_sets_metadata(self, sim, api):
        setup_namespace(sim, api)
        pod = run(sim, api.create(ADMIN, make_pod("p")))
        assert pod.metadata.uid
        assert pod.metadata.creation_timestamp is not None
        assert pod.metadata.resource_version
        assert pod.metadata.generation == 1

    def test_create_duplicate_fails(self, sim, api):
        setup_namespace(sim, api)
        run(sim, api.create(ADMIN, make_pod("p")))
        with pytest.raises(AlreadyExists):
            run(sim, api.create(ADMIN, make_pod("p")))

    def test_create_in_missing_namespace_rejected(self, sim, api):
        with pytest.raises(Forbidden):
            run(sim, api.create(ADMIN, make_pod("p", namespace="nope")))

    def test_create_in_terminating_namespace_rejected(self, sim, api):
        setup_namespace(sim, api, "doomed")
        run(sim, api.delete(ADMIN, "namespaces", "doomed"))
        with pytest.raises(Forbidden):
            run(sim, api.create(ADMIN, make_pod("p", namespace="doomed")))

    def test_generate_name(self, sim, api):
        setup_namespace(sim, api)
        pod = make_pod("ignored")
        pod.metadata.name = None
        pod.metadata.generate_name = "web-"
        created = run(sim, api.create(ADMIN, pod))
        assert created.metadata.name.startswith("web-")
        assert len(created.metadata.name) == len("web-") + 5

    def test_invalid_name_rejected(self, sim, api):
        setup_namespace(sim, api)
        with pytest.raises(Invalid):
            run(sim, api.create(ADMIN, make_pod("Bad_Name!")))

    def test_pod_without_containers_rejected(self, sim, api):
        setup_namespace(sim, api)
        pod = make_pod("p")
        pod.spec.containers = []
        with pytest.raises(Invalid):
            run(sim, api.create(ADMIN, pod))

    def test_service_gets_cluster_ip(self, sim, api):
        setup_namespace(sim, api)
        service = run(sim, api.create(ADMIN, make_service("svc")))
        assert service.spec.cluster_ip.startswith("10.96.")

    def test_headless_service_keeps_none_ip(self, sim, api):
        setup_namespace(sim, api)
        service = make_service("svc")
        service.spec.cluster_ip = "None"
        created = run(sim, api.create(ADMIN, service))
        assert created.spec.cluster_ip == "None"

    def test_cluster_scoped_with_namespace_rejected(self, sim, api):
        namespace = make_namespace("x")
        namespace.metadata.namespace = "oops"
        with pytest.raises(Invalid):
            run(sim, api.create(ADMIN, namespace))


class TestGetListUpdate:
    def test_get_returns_fresh_copy(self, sim, api):
        setup_namespace(sim, api)
        run(sim, api.create(ADMIN, make_pod("p")))
        a = run(sim, api.get(ADMIN, "pods", "p", namespace="default"))
        b = run(sim, api.get(ADMIN, "pods", "p", namespace="default"))
        a.status.phase = "Hacked"
        assert b.status.phase == "Pending"

    def test_get_missing(self, sim, api):
        with pytest.raises(NotFound):
            run(sim, api.get(ADMIN, "pods", "nope", namespace="default"))

    def test_unknown_resource(self, sim, api):
        with pytest.raises(NotFound):
            run(sim, api.get(ADMIN, "flurbs", "x", namespace="default"))

    def test_list_with_label_selector(self, sim, api):
        from repro.objects import parse_selector

        setup_namespace(sim, api)
        run(sim, api.create(ADMIN, make_pod("a", labels={"app": "web"})))
        run(sim, api.create(ADMIN, make_pod("b", labels={"app": "db"})))
        items, _rv = run(sim, api.list(ADMIN, "pods", namespace="default",
                                       label_selector=parse_selector(
                                           "app=web")))
        assert [p.name for p in items] == ["a"]

    def test_list_with_field_selector(self, sim, api):
        setup_namespace(sim, api)
        run(sim, api.create(ADMIN, make_pod("a", node_name="n1")))
        run(sim, api.create(ADMIN, make_pod("b")))
        items, _rv = run(sim, api.list(
            ADMIN, "pods", namespace="default",
            field_selector={"spec.nodeName": "n1"}))
        assert [p.name for p in items] == ["a"]

    def test_update_with_stale_rv_conflicts(self, sim, api):
        setup_namespace(sim, api)
        pod = run(sim, api.create(ADMIN, make_pod("p")))
        stale = pod.copy()
        pod.metadata.labels["x"] = "1"
        run(sim, api.update(ADMIN, pod))
        stale.metadata.labels["x"] = "2"
        with pytest.raises(Conflict):
            run(sim, api.update(ADMIN, stale))

    def test_update_status_only_touches_status(self, sim, api):
        setup_namespace(sim, api)
        pod = run(sim, api.create(ADMIN, make_pod("p")))
        mutation = pod.copy()
        mutation.status.phase = "Running"
        mutation.metadata.labels["sneaky"] = "yes"
        run(sim, api.update(ADMIN, mutation, subresource="status"))
        fresh = run(sim, api.get(ADMIN, "pods", "p", namespace="default"))
        assert fresh.status.phase == "Running"
        assert "sneaky" not in (fresh.metadata.labels or {})

    def test_pod_spec_immutable(self, sim, api):
        setup_namespace(sim, api)
        pod = run(sim, api.create(ADMIN, make_pod("p")))
        pod.spec.containers[0].image = "other:latest"
        with pytest.raises(Invalid):
            run(sim, api.update(ADMIN, pod))

    def test_generation_bumps_on_spec_change(self, sim, api):
        setup_namespace(sim, api)
        service = run(sim, api.create(ADMIN, make_service("svc")))
        service.spec.ports[0].port = 9090
        updated = run(sim, api.update(ADMIN, service))
        assert updated.metadata.generation == 2

    def test_patch_merges(self, sim, api):
        setup_namespace(sim, api)
        run(sim, api.create(ADMIN, make_pod("p", labels={"a": "1"})))
        patched = run(sim, api.patch(
            ADMIN, "pods", "p", {"metadata": {"labels": {"b": "2"}}},
            namespace="default"))
        assert patched.metadata.labels == {"a": "1", "b": "2"}


class TestDelete:
    def test_delete_removes(self, sim, api):
        setup_namespace(sim, api)
        run(sim, api.create(ADMIN, make_pod("p")))
        run(sim, api.delete(ADMIN, "pods", "p", namespace="default"))
        with pytest.raises(NotFound):
            run(sim, api.get(ADMIN, "pods", "p", namespace="default"))

    def test_delete_with_finalizer_marks_only(self, sim, api):
        setup_namespace(sim, api)
        pod = make_pod("p")
        pod.metadata.finalizers = ["example.com/guard"]
        run(sim, api.create(ADMIN, pod))
        deleted = run(sim, api.delete(ADMIN, "pods", "p",
                                      namespace="default"))
        assert deleted.metadata.deletion_timestamp is not None
        # Still present until the finalizer is removed.
        fresh = run(sim, api.get(ADMIN, "pods", "p", namespace="default"))
        fresh.metadata.finalizers = []
        run(sim, api.update(ADMIN, fresh))
        with pytest.raises(NotFound):
            run(sim, api.get(ADMIN, "pods", "p", namespace="default"))

    def test_namespace_delete_enters_terminating(self, sim, api):
        setup_namespace(sim, api, "doomed")
        namespace = run(sim, api.delete(ADMIN, "namespaces", "doomed"))
        assert namespace.status.phase == "Terminating"


class TestAuth:
    def test_unknown_credential_rejected(self, sim, api):
        stranger = Credential("stranger")
        with pytest.raises(Unauthorized):
            run(sim, api.get(stranger, "pods", "p", namespace="default"))

    def test_rbac_denies_without_binding(self, sim):
        api = APIServer(sim, "rbac-api", rbac=True)
        user = api.authenticator.register(Credential("alice"))
        setup_namespace(sim, api)
        with pytest.raises(Forbidden):
            run(sim, api.list(user, "pods", namespace="default"))

    def test_rbac_allows_with_cluster_binding(self, sim):
        api = APIServer(sim, "rbac-api", rbac=True)
        user = api.authenticator.register(Credential("alice"))
        setup_namespace(sim, api)
        role = ClusterRole()
        role.metadata.name = "pod-reader"
        role.rules = [PolicyRule(verbs=["get", "list"],
                                 resources=["pods"])]
        run(sim, api.create(ADMIN, role))
        binding = ClusterRoleBinding()
        binding.metadata.name = "alice-reads"
        binding.subjects = [RoleSubject(kind="User", name="alice")]
        binding.role_ref = RoleRef(kind="ClusterRole", name="pod-reader")
        run(sim, api.create(ADMIN, binding))
        items, _rv = run(sim, api.list(user, "pods", namespace="default"))
        assert items == []
        with pytest.raises(Forbidden):
            run(sim, api.create(user, make_pod("p")))


class TestQuota:
    def test_quota_blocks_over_limit(self, sim, api):
        setup_namespace(sim, api)
        quota = ResourceQuota()
        quota.metadata.name = "q"
        quota.metadata.namespace = "default"
        quota.spec.hard = {"pods": Quantity.parse("2")}
        run(sim, api.create(ADMIN, quota))
        run(sim, api.create(ADMIN, make_pod("a")))
        run(sim, api.create(ADMIN, make_pod("b")))
        with pytest.raises(Forbidden):
            run(sim, api.create(ADMIN, make_pod("c")))


class TestWatch:
    def test_watch_delivers_typed_events(self, sim, api):
        setup_namespace(sim, api)
        stream = api.watch(ADMIN, "pods", namespace="default")
        events = []

        def consumer():
            for _ in range(2):
                kind, obj = yield from stream.next()
                events.append((kind, obj.name))

        def producer():
            yield from api.create(ADMIN, make_pod("p"))
            pod = yield from api.get(ADMIN, "pods", "p",
                                     namespace="default")
            pod.status.phase = "Running"
            yield from api.update(ADMIN, pod, subresource="status")

        sim.process(consumer())
        sim.process(producer())
        sim.run()
        assert events == [("ADDED", "p"), ("MODIFIED", "p")]

    def test_watch_field_selector_server_side(self, sim, api):
        setup_namespace(sim, api)
        stream = api.watch(ADMIN, "pods", namespace="default",
                           field_selector={"spec.nodeName": "n1"})
        run(sim, api.create(ADMIN, make_pod("a", node_name="n1")))
        run(sim, api.create(ADMIN, make_pod("b", node_name="n2")))
        assert len(stream._watch.channel) == 1

    def test_crash_closes_watches(self, sim, api):
        setup_namespace(sim, api)
        stream = api.watch(ADMIN, "pods", namespace="default")
        api.crash()
        assert stream._watch.channel.closed
        from repro.apiserver import ServerUnavailable

        with pytest.raises(ServerUnavailable):
            run(sim, api.get(ADMIN, "pods", "p", namespace="default"))
        api.recover()


class TestBinding:
    def test_bind_pod(self, sim, api):
        setup_namespace(sim, api)
        run(sim, api.create(ADMIN, make_pod("p")))
        bound = run(sim, api.bind_pod(ADMIN, "p", "default", "node-1"))
        assert bound.spec.node_name == "node-1"

    def test_double_bind_conflicts(self, sim, api):
        setup_namespace(sim, api)
        run(sim, api.create(ADMIN, make_pod("p")))
        run(sim, api.bind_pod(ADMIN, "p", "default", "node-1"))
        with pytest.raises(Conflict):
            run(sim, api.bind_pod(ADMIN, "p", "default", "node-2"))


class TestCrd:
    def test_register_crd_enables_dynamic_resource(self, sim, api):
        from repro.objects import CustomResourceDefinition

        crd = CustomResourceDefinition()
        crd.metadata.name = "widgets.example.com"
        crd.spec.group = "example.com"
        crd.spec.names.kind = "Widget"
        crd.spec.names.plural = "widgets"
        crd.spec.versions = ["v1"]
        run(sim, api.create(ADMIN, crd))
        widget_type = api.registry.register_crd(crd)
        setup_namespace(sim, api)
        widget = widget_type()
        widget.metadata.name = "w1"
        widget.metadata.namespace = "default"
        widget.spec = {"size": 3}
        created = run(sim, api.create(ADMIN, widget))
        assert created.spec["size"] == 3
        items, _rv = run(sim, api.list(ADMIN, "widgets",
                                       namespace="default"))
        assert len(items) == 1
