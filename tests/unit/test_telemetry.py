"""Unit tests for the telemetry registry, span tracer, and exporters."""

import json

import pytest

from repro.simkernel import Simulation
from repro.telemetry import (
    NOOP,
    MetricsRegistry,
    SpanTracer,
    Telemetry,
    telemetry_of,
)
from repro.telemetry.export import (
    check_core_families,
    render_json,
    render_text,
)


@pytest.fixture
def registry():
    return MetricsRegistry(clock=lambda: 42.0)


class TestCounter:
    def test_inc(self, registry):
        counter = registry.counter("c_total")
        counter.inc()
        counter.inc(2.5)
        assert counter.total() == pytest.approx(3.5)

    def test_negative_inc_rejected(self, registry):
        counter = registry.counter("c_total")
        with pytest.raises(ValueError):
            counter.inc(-1)


class TestGauge:
    def test_set_inc_dec(self, registry):
        gauge = registry.gauge("g")
        gauge.set(10)
        gauge.inc(5)
        gauge.dec(2)
        assert gauge.total() == pytest.approx(13.0)

    def test_function_gauge_evaluated_at_snapshot(self, registry):
        state = {"n": 0}
        registry.gauge("g").set_function(lambda: state["n"])
        state["n"] = 7
        (series,) = [f for f in registry.snapshot()["families"]
                     if f["name"] == "g"][0]["series"]
        assert series["value"] == 7.0


class TestHistogram:
    def test_observe_and_cumulative(self, registry):
        hist = registry.histogram("h", buckets=(1.0, 2.0, 4.0))._solo()
        for value in (0.5, 1.5, 3.0, 10.0):
            hist.observe(value)
        assert hist.count == 4
        assert hist.sum == pytest.approx(15.0)
        assert hist.cumulative() == [1, 2, 3, 4]

    def test_quantile_interpolates(self, registry):
        hist = registry.histogram("h", buckets=(1.0, 2.0, 4.0))._solo()
        for _ in range(100):
            hist.observe(1.5)
        q = hist.quantile(0.5)
        assert 1.0 <= q <= 2.0

    def test_mean_empty_is_zero(self, registry):
        hist = registry.histogram("h")._solo()
        assert hist.mean == 0.0


class TestFamily:
    def test_labels_memoized_any_keyword_order(self, registry):
        family = registry.counter("f", labels=("a", "b"))
        child1 = family.labels(a="1", b="2")
        child2 = family.labels(b="2", a="1")
        assert child1 is child2

    def test_missing_label_rejected(self, registry):
        family = registry.counter("f", labels=("a", "b"))
        with pytest.raises(ValueError, match="missing label"):
            family.labels(a="1")

    def test_unknown_label_rejected(self, registry):
        family = registry.counter("f", labels=("a",))
        with pytest.raises(ValueError, match="unknown labels"):
            family.labels(a="1", zz="2")

    def test_solo_requires_no_labels(self, registry):
        family = registry.counter("f", labels=("a",))
        with pytest.raises(ValueError):
            family.inc()


class TestRegistry:
    def test_factories_idempotent(self, registry):
        assert registry.counter("x", labels=("a",)) is \
            registry.counter("x", labels=("a",))

    def test_kind_conflict_rejected(self, registry):
        registry.counter("x")
        with pytest.raises(ValueError, match="already registered"):
            registry.gauge("x")

    def test_label_conflict_rejected(self, registry):
        registry.counter("x", labels=("a",))
        with pytest.raises(ValueError, match="label mismatch"):
            registry.counter("x", labels=("b",))

    def test_disabled_registry_is_noop(self):
        registry = MetricsRegistry(enabled=False)
        counter = registry.counter("x", labels=("a",))
        assert counter is NOOP
        counter.labels(a="1").inc()  # must not raise
        assert registry.snapshot()["families"] == []

    def test_snapshot_sorted_and_stamped(self, registry):
        registry.counter("zz").inc()
        registry.counter("aa").inc()
        snapshot = registry.snapshot()
        assert snapshot["time"] == 42.0
        assert [f["name"] for f in snapshot["families"]] == ["aa", "zz"]


class TestSpanTracer:
    def _tracer(self, context):
        return SpanTracer(clock=lambda: 1.0,
                          active_context=lambda: context["key"])

    def test_parent_is_innermost_open_span_of_same_process(self):
        context = {"key": "p1"}
        tracer = self._tracer(context)
        with tracer.span("outer") as outer:
            with tracer.span("inner") as inner:
                assert inner.parent_id == outer.span_id
        assert not tracer.open_spans()

    def test_processes_do_not_share_stacks(self):
        context = {"key": "p1"}
        tracer = self._tracer(context)
        outer = tracer.start("outer")
        context["key"] = "p2"
        other = tracer.start("other")
        assert other.parent_id is None
        tracer.finish(other)
        context["key"] = "p1"
        tracer.finish(outer)

    def test_tenant_inherited_from_parent(self):
        tracer = SpanTracer(clock=lambda: 0.0)
        with tracer.span("outer", tenant="acme"):
            with tracer.span("inner") as inner:
                assert inner.tenant == "acme"

    def test_error_exit_counts_as_error(self):
        tracer = SpanTracer(clock=lambda: 0.0)
        with pytest.raises(RuntimeError):
            with tracer.span("op"):
                raise RuntimeError("boom")
        assert tracer.aggregates()["op"]["errors"] == 1

    def test_ring_bounded_but_aggregates_exact(self):
        tracer = SpanTracer(clock=lambda: 0.0, retain=8)
        for _ in range(100):
            with tracer.span("op"):
                pass
        assert len(tracer.finished) == 8
        assert tracer.aggregates()["op"]["count"] == 100

    def test_disabled_tracer_is_noop(self):
        tracer = SpanTracer(clock=lambda: 0.0, enabled=False)
        with tracer.span("op") as span:
            assert span is None
        assert tracer.aggregates() == {}

    def test_registry_metrics_observed(self):
        registry = MetricsRegistry()
        tracer = SpanTracer(clock=lambda: 0.0, registry=registry)
        with tracer.span("op"):
            pass
        assert registry.get("spans_total").labels(name="op").value == 1
        assert registry.get("span_duration_seconds").labels(
            name="op").count == 1


class TestHub:
    def test_simulation_owns_a_hub(self):
        sim = Simulation()
        assert telemetry_of(sim) is sim.telemetry
        assert sim.telemetry.registry.clock() == sim.now

    def test_telemetry_of_attaches_to_stub(self):
        class Stub:
            now = 3.0

        stub = Stub()
        hub = telemetry_of(stub)
        assert telemetry_of(stub) is hub
        assert hub.registry.snapshot()["time"] == 3.0

    def test_snapshot_includes_span_aggregates(self):
        sim = Simulation()
        with sim.telemetry.span("op"):
            pass
        snapshot = sim.telemetry.snapshot()
        assert snapshot["spans"]["op"]["count"] == 1


class TestExport:
    def _snapshot(self):
        sim = Simulation()
        sim.telemetry.counter(
            "apiserver_requests_total", labels=("server", "verb")).labels(
                server="s", verb="get").inc()
        sim.telemetry.histogram("lat_seconds").observe(0.5)
        with sim.telemetry.span("op"):
            pass
        return sim.telemetry.snapshot()

    def test_render_json_round_trips(self):
        snapshot = self._snapshot()
        assert json.loads(render_json(snapshot)) == snapshot

    def test_render_text_exposition_format(self):
        text = render_text(self._snapshot())
        assert '# TYPE apiserver_requests_total counter' in text
        assert 'apiserver_requests_total{server="s",verb="get"} 1' in text
        assert 'lat_seconds_count 1' in text
        assert 'lat_seconds_bucket{le="+Inf"} 1' in text

    def test_check_core_families_reports_missing_and_idle(self):
        snapshot = self._snapshot()
        problems = check_core_families(
            snapshot, families=("apiserver_requests_total", "nope"))
        assert problems == ["missing metric family: nope"]
        snapshot["families"][0]["series"][0]["value"] = 0
        problems = check_core_families(
            snapshot, families=("apiserver_requests_total",))
        assert problems == [
            "metric family has no activity: apiserver_requests_total"]
