"""Unit tests for the batched-write pipeline (DESIGN.md §9).

Covers the three layers independently: the store's multi-op ``txn``, the
apiserver's ``transaction`` verb, and the syncer-side
:class:`DownwardBatchWriter` that coalesces concurrent workers' writes.
"""

from dataclasses import replace
from types import SimpleNamespace

import pytest

from repro.apiserver import ADMIN, APIServer
from repro.apiserver.errors import (
    AlreadyExists,
    Conflict,
    NotFound,
    ServerUnavailable,
)
from repro.clientgo import Client
from repro.config import DEFAULT_CONFIG
from repro.core.syncer.batch import DownwardBatchWriter
from repro.objects import make_namespace, make_pod
from repro.simkernel import Simulation
from repro.storage import EtcdStore


@pytest.fixture
def sim():
    return Simulation()


@pytest.fixture
def api(sim):
    return APIServer(sim, "test-api")


def run(sim, coroutine):
    return sim.run(until=sim.process(coroutine))


class TestStoreTxn:
    def test_ops_apply_at_consecutive_revisions(self, sim):
        store = EtcdStore(sim, name="txn-etcd")
        revisions = store.txn([
            lambda: store.create("/registry/pods/ns/a", {"x": 1}),
            lambda: store.create("/registry/pods/ns/b", {"x": 2}),
            lambda: store.create("/registry/pods/ns/c", {"x": 3}),
        ])
        assert revisions == [1, 2, 3]
        assert store.revision == 3

    def test_per_op_errors_captured_not_raised(self, sim):
        store = EtcdStore(sim, name="txn-etcd")
        store.create("/registry/pods/ns/a", {})
        results = store.txn([
            lambda: store.create("/registry/pods/ns/a", {}),  # duplicate
            lambda: store.create("/registry/pods/ns/b", {}),
        ])
        assert isinstance(results[0], Exception)
        # The failed create consumed no revision — b lands at revision 2.
        assert results[1] == 2
        assert store.get("/registry/pods/ns/b")[1] == results[1]

    def test_stats_track_batches(self, sim):
        store = EtcdStore(sim, name="txn-etcd")
        store.txn([lambda: store.create(f"/registry/pods/ns/p{i}", {})
                   for i in range(4)])
        store.txn([lambda: store.create("/registry/pods/ns/q", {})])
        stats = store.stats()
        assert stats["txns"] == 2
        assert stats["txn_ops"] == 5
        assert stats["largest_txn"] == 4


class TestApiServerTransaction:
    def test_batch_matches_sequential_state(self, sim, api):
        run(sim, api.create(ADMIN, make_namespace("default")))
        results = run(sim, api.transaction(ADMIN, [
            ("create", make_pod("a"), None),
            ("create", make_pod("b"), None),
        ]))
        assert [r.metadata.name for r in results] == ["a", "b"]
        # Consecutive store revisions, exactly like sequential writes.
        versions = [int(r.metadata.resource_version) for r in results]
        assert versions[1] == versions[0] + 1

    def test_per_op_api_errors_in_results(self, sim, api):
        run(sim, api.create(ADMIN, make_namespace("default")))
        run(sim, api.create(ADMIN, make_pod("a")))
        results = run(sim, api.transaction(ADMIN, [
            ("create", make_pod("a"), None),          # AlreadyExists
            ("delete", "pods", "ghost", "default"),   # NotFound
            ("create", make_pod("b"), None),          # fine
        ]))
        assert isinstance(results[0], AlreadyExists)
        assert isinstance(results[1], NotFound)
        assert results[2].metadata.name == "b"

    def test_stale_update_conflicts_without_poisoning_batch(self, sim, api):
        run(sim, api.create(ADMIN, make_namespace("default")))
        pod = run(sim, api.create(ADMIN, make_pod("a")))
        stale = pod.copy()
        fresh = run(sim, api.update(ADMIN, pod))
        results = run(sim, api.transaction(ADMIN, [
            ("update", stale, None),                  # CAS conflict
            ("update", fresh, None),
        ]))
        assert isinstance(results[0], Conflict)
        assert results[1].metadata.resource_version != (
            fresh.metadata.resource_version)

    def test_empty_batch_is_a_noop(self, sim, api):
        assert run(sim, api.transaction(ADMIN, [])) == []

    def test_one_round_trip_cheaper_than_sequential(self, sim, api):
        """The batch pays a single request overhead + etcd write."""
        run(sim, api.create(ADMIN, make_namespace("default")))
        start = sim.now
        run(sim, api.transaction(ADMIN, [
            ("create", make_pod(f"batch-{i}"), None) for i in range(8)]))
        batched = sim.now - start
        start = sim.now
        for i in range(8):
            run(sim, api.create(ADMIN, make_pod(f"seq-{i}")))
        sequential = sim.now - start
        assert batched < sequential


def _batch_env(sim, api, batch_max, linger=0.001):
    client = Client(sim, api, ADMIN, user_agent="batch-test",
                    qps=10000, burst=10000)
    config = DEFAULT_CONFIG.with_overrides(syncer=replace(
        DEFAULT_CONFIG.syncer, downward_batch_max=batch_max,
        downward_batch_linger=linger))
    syncer = SimpleNamespace(sim=sim, config=config, super_client=client)
    return DownwardBatchWriter(syncer)


class TestDownwardBatchWriter:
    def test_disabled_is_passthrough(self, sim, api):
        run(sim, api.create(ADMIN, make_namespace("default")))
        writer = _batch_env(sim, api, batch_max=1)
        assert not writer.enabled
        pod = run(sim, writer.create(make_pod("p")))
        assert pod.metadata.uid
        assert writer.stats()["batches_flushed"] == 0

    def test_concurrent_submitters_share_a_flush(self, sim, api):
        run(sim, api.create(ADMIN, make_namespace("default")))
        writer = _batch_env(sim, api, batch_max=8)
        created = []

        def submitter(index):
            pod = yield from writer.create(make_pod(f"p{index}"))
            created.append(pod.metadata.name)

        processes = [sim.process(submitter(i)) for i in range(6)]
        for process in processes:
            sim.run(until=process)
        assert sorted(created) == [f"p{i}" for i in range(6)]
        stats = writer.stats()
        assert stats["ops_batched"] == 6
        assert stats["batches_flushed"] < 6
        assert stats["largest_batch"] > 1

    def test_each_submitter_gets_its_own_error(self, sim, api):
        run(sim, api.create(ADMIN, make_namespace("default")))
        run(sim, api.create(ADMIN, make_pod("dup")))
        writer = _batch_env(sim, api, batch_max=8)
        outcomes = {}

        def submitter(name):
            try:
                yield from writer.create(make_pod(name))
                outcomes[name] = "ok"
            except AlreadyExists:
                outcomes[name] = "exists"

        processes = [sim.process(submitter(name))
                     for name in ("dup", "new-1", "new-2")]
        for process in processes:
            sim.run(until=process)
        assert outcomes == {"dup": "exists", "new-1": "ok", "new-2": "ok"}

    def test_oversized_burst_splits_into_batches(self, sim, api):
        run(sim, api.create(ADMIN, make_namespace("default")))
        writer = _batch_env(sim, api, batch_max=4)
        processes = [sim.process(writer.create(make_pod(f"q{i}")))
                     for i in range(10)]
        for process in processes:
            sim.run(until=process)
        stats = writer.stats()
        assert stats["ops_batched"] == 10
        assert stats["largest_batch"] <= 4
        assert stats["batches_flushed"] >= 3

    def test_stop_fails_pending_submitters(self, sim, api):
        run(sim, api.create(ADMIN, make_namespace("default")))
        writer = _batch_env(sim, api, batch_max=8, linger=30.0)
        outcome = {}

        def submitter():
            try:
                yield from writer.create(make_pod("late"))
                outcome["result"] = "ok"
            except ServerUnavailable:
                outcome["result"] = "unavailable"

        process = sim.process(submitter())
        sim.run(until=sim.now + 0.01)  # submitted, linger still pending
        writer.stop()
        sim.run(until=process)
        assert outcome["result"] == "unavailable"
