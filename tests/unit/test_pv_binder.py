"""Unit tests for the PersistentVolume binder controller."""

import pytest

from repro.apiserver import ADMIN, APIServer
from repro.clientgo import Client, InformerFactory
from repro.controllers.pv_binder import PersistentVolumeBinder
from repro.objects import (
    PersistentVolume,
    PersistentVolumeClaim,
    StorageClass,
    make_namespace,
)
from repro.simkernel import Simulation


def make_pvc(name, storage="1Gi", storage_class=None):
    pvc = PersistentVolumeClaim()
    pvc.metadata.name = name
    pvc.metadata.namespace = "default"
    pvc.spec = {"resources": {"requests": {"storage": storage}}}
    if storage_class:
        pvc.spec["storageClassName"] = storage_class
    pvc.status = {"phase": "Pending"}
    return pvc


def make_pv(name, storage="1Gi", storage_class=None):
    pv = PersistentVolume()
    pv.metadata.name = name
    pv.spec = {"capacity": {"storage": storage}}
    if storage_class:
        pv.spec["storageClassName"] = storage_class
    pv.status = {"phase": "Available"}
    return pv


class _Harness:
    def __init__(self):
        self.sim = Simulation()
        self.api = APIServer(self.sim, "cp")
        self.client = Client(self.sim, self.api, ADMIN, qps=100000,
                             burst=100000)
        factory = InformerFactory(self.sim, self.client)
        self.binder = PersistentVolumeBinder(self.sim, self.client, factory)
        factory.start_all()
        self.binder.start()
        self.run(self.client.create(make_namespace("default")))
        self.settle()

    def run(self, coroutine):
        return self.sim.run(until=self.sim.process(coroutine))

    def settle(self, seconds=3.0):
        self.sim.run(until=self.sim.now + seconds)

    def get(self, plural, name, namespace=None):
        return self.run(self.client.get(plural, name, namespace=namespace))


@pytest.fixture
def harness():
    return _Harness()


class TestStaticBinding:
    def test_claim_binds_to_available_volume(self, harness):
        harness.run(harness.client.create(make_pv("vol-1")))
        harness.run(harness.client.create(make_pvc("claim-1")))
        harness.settle()
        pvc = harness.get("persistentvolumeclaims", "claim-1",
                          namespace="default")
        assert pvc.phase == "Bound"
        assert pvc.spec["volumeName"] == "vol-1"
        pv = harness.get("persistentvolumes", "vol-1")
        assert pv.status["phase"] == "Bound"
        assert pv.spec["claimRef"]["name"] == "claim-1"

    def test_too_small_volume_not_bound(self, harness):
        harness.run(harness.client.create(make_pv("small", storage="1Gi")))
        harness.run(harness.client.create(make_pvc("big-claim",
                                                   storage="10Gi")))
        harness.settle()
        pvc = harness.get("persistentvolumeclaims", "big-claim",
                          namespace="default")
        assert pvc.phase == "Pending"

    def test_smallest_fitting_volume_chosen(self, harness):
        harness.run(harness.client.create(make_pv("huge", storage="100Gi")))
        harness.run(harness.client.create(make_pv("snug", storage="2Gi")))
        harness.run(harness.client.create(make_pvc("claim",
                                                   storage="2Gi")))
        harness.settle()
        pvc = harness.get("persistentvolumeclaims", "claim",
                          namespace="default")
        assert pvc.spec["volumeName"] == "snug"

    def test_storage_class_must_match(self, harness):
        harness.run(harness.client.create(make_pv("generic")))
        harness.run(harness.client.create(make_pvc("classy",
                                                   storage_class="ssd")))
        harness.settle()
        pvc = harness.get("persistentvolumeclaims", "classy",
                          namespace="default")
        assert pvc.phase == "Pending"

    def test_volume_bound_once(self, harness):
        harness.run(harness.client.create(make_pv("single")))
        harness.run(harness.client.create(make_pvc("first")))
        harness.run(harness.client.create(make_pvc("second")))
        harness.settle()
        first = harness.get("persistentvolumeclaims", "first",
                            namespace="default")
        second = harness.get("persistentvolumeclaims", "second",
                             namespace="default")
        assert sorted([first.phase, second.phase]) == ["Bound", "Pending"]

    def test_pending_claim_binds_when_volume_appears(self, harness):
        harness.run(harness.client.create(make_pvc("patient")))
        harness.settle()
        assert harness.get("persistentvolumeclaims", "patient",
                           namespace="default").phase == "Pending"
        harness.run(harness.client.create(make_pv("late-volume")))
        harness.settle()
        assert harness.get("persistentvolumeclaims", "patient",
                           namespace="default").phase == "Bound"


class TestDynamicProvisioning:
    def test_provisioner_creates_volume(self, harness):
        storage_class = StorageClass()
        storage_class.metadata.name = "fast-ssd"
        storage_class.provisioner = "ebs.csi"
        harness.run(harness.client.create(storage_class))
        harness.run(harness.client.create(
            make_pvc("dynamic", storage="5Gi", storage_class="fast-ssd")))
        harness.settle()
        pvc = harness.get("persistentvolumeclaims", "dynamic",
                          namespace="default")
        assert pvc.phase == "Bound"
        pv = harness.get("persistentvolumes", pvc.spec["volumeName"])
        assert pv.spec["provisionedBy"] == "ebs.csi"
        assert pv.spec["capacity"]["storage"] == "5Gi"
        assert harness.binder.provisioned_count == 1

    def test_class_without_provisioner_stays_pending(self, harness):
        storage_class = StorageClass()
        storage_class.metadata.name = "manual"
        harness.run(harness.client.create(storage_class))
        harness.run(harness.client.create(
            make_pvc("manual-claim", storage_class="manual")))
        harness.settle()
        assert harness.get("persistentvolumeclaims", "manual-claim",
                           namespace="default").phase == "Pending"
