"""Convenience constructors used throughout tests, examples, and benchmarks."""

from .pod import Affinity, Container, Pod, PodAffinity, PodAffinityTerm
from .selectors import LabelSelector
from .service import Service, ServicePort


def make_pod(name, namespace="default", image="nginx:1.19", labels=None,
             cpu=None, memory=None, runtime_class=None, node_name=None,
             containers=None):
    """Build a minimal valid Pod."""
    pod = Pod()
    pod.metadata.name = name
    pod.metadata.namespace = namespace
    pod.metadata.labels = dict(labels or {})
    if containers is not None:
        pod.spec.containers = list(containers)
    else:
        container = Container(name="main", image=image)
        if cpu:
            container.resources.requests["cpu"] = _q(cpu)
        if memory:
            container.resources.requests["memory"] = _q(memory)
        pod.spec.containers = [container]
    pod.spec.runtime_class_name = runtime_class
    pod.spec.node_name = node_name
    return pod


def _q(value):
    from .quantity import Quantity

    return Quantity.parse(value)


def make_service(name, namespace="default", selector=None, port=80,
                 target_port=None, service_type="ClusterIP"):
    """Build a minimal valid Service."""
    service = Service()
    service.metadata.name = name
    service.metadata.namespace = namespace
    service.spec.type = service_type
    service.spec.selector = dict(selector or {})
    service.spec.ports = [
        ServicePort(name="main", port=port, target_port=target_port or port)
    ]
    return service


def with_anti_affinity(pod, label_key, label_value):
    """Add a hostname-topology anti-affinity term against matching Pods."""
    term = PodAffinityTerm(
        label_selector=LabelSelector(match_labels={label_key: label_value}),
        topology_key="kubernetes.io/hostname",
    )
    if pod.spec.affinity is None:
        pod.spec.affinity = Affinity()
    if pod.spec.affinity.pod_anti_affinity is None:
        pod.spec.affinity.pod_anti_affinity = PodAffinity()
    pod.spec.affinity.pod_anti_affinity.required_terms.append(term)
    return pod
