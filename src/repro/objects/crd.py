"""Custom resource definitions and dynamically-typed custom objects.

Tenants install CRDs in their own control planes (one of the paper's
motivating capabilities); the apiserver registers a dynamic resource type
for each established CRD.
"""

from .base import Field, Serializable
from .meta import KubeObject


class CRDNames(Serializable):
    FIELDS = (
        Field("kind"),
        Field("plural"),
        Field("singular"),
        Field("short_names", container="list", default_factory=list),
    )


class CRDSpec(Serializable):
    FIELDS = (
        Field("group"),
        Field("names", type=CRDNames, default_factory=CRDNames),
        Field("scope", default="Namespaced"),
        Field("versions", container="list", default_factory=list),
    )


class CRDStatus(Serializable):
    FIELDS = (
        Field("accepted_names", type=CRDNames, default_factory=CRDNames),
        Field("conditions", container="list", default_factory=list),
    )


class CustomResourceDefinition(KubeObject):
    API_VERSION = "apiextensions.k8s.io/v1"
    KIND = "CustomResourceDefinition"
    PLURAL = "customresourcedefinitions"
    NAMESPACED = False

    FIELDS = (
        Field("spec", type=CRDSpec, default_factory=CRDSpec),
        Field("status", type=CRDStatus, default_factory=CRDStatus),
    )

    @property
    def established(self):
        return any(c.get("type") == "Established" and c.get("status") == "True"
                   for c in self.status.conditions)


def make_custom_type(api_version, kind, plural, namespaced=True):
    """Create a KubeObject subclass for a CRD-defined resource."""

    class CustomObject(KubeObject):
        API_VERSION = api_version
        KIND = kind
        PLURAL = plural
        NAMESPACED = namespaced

        FIELDS = (
            Field("spec", container="map", default_factory=dict),
            Field("status", container="map", default_factory=dict),
        )

    CustomObject.__name__ = kind
    CustomObject.__qualname__ = kind
    return CustomObject
