"""coordination.k8s.io: the Lease object used for leader election.

Mirrors the upstream ``coordination.k8s.io/v1`` Lease: a tiny record
naming the current holder, how long its claim lasts, and a transition
counter that increments every time leadership changes hands.  The
transition counter doubles as the *fencing token* — it is monotonic per
acquisition, so storage layers can reject writes stamped with a stale
token (see ``EtcdStore.check_fence``).

Timestamps are simulation-clock floats, not RFC3339 strings; the sim has
one global clock so no skew modelling is needed beyond the jitter the
electors themselves introduce.
"""

from .base import Field, Serializable
from .meta import KubeObject


class LeaseSpec(Serializable):
    FIELDS = (
        Field("holder_identity"),
        Field("lease_duration_seconds", default=15.0),
        Field("acquire_time"),
        Field("renew_time"),
        Field("lease_transitions", default=0),
    )

    def expired(self, now):
        """True once the holder's claim has lapsed (or never existed)."""
        if not self.holder_identity or self.renew_time is None:
            return True
        return now >= self.renew_time + self.lease_duration_seconds


class Lease(KubeObject):
    API_VERSION = "coordination.k8s.io/v1"
    KIND = "Lease"
    PLURAL = "leases"

    FIELDS = (
        Field("spec", type=LeaseSpec, default_factory=LeaseSpec),
    )
