"""Label and field selectors, as used by list/watch, services, and affinity."""

from .base import Field, Serializable


class LabelSelectorRequirement(Serializable):
    """A single matchExpressions entry (In/NotIn/Exists/DoesNotExist)."""

    FIELDS = (
        Field("key"),
        Field("operator"),
        Field("values", container="list", default_factory=list),
    )

    def matches(self, labels):
        value = labels.get(self.key)
        if self.operator == "In":
            return value is not None and value in self.values
        if self.operator == "NotIn":
            return value is None or value not in self.values
        if self.operator == "Exists":
            return self.key in labels
        if self.operator == "DoesNotExist":
            return self.key not in labels
        raise ValueError(f"unknown selector operator {self.operator!r}")


class LabelSelector(Serializable):
    """Kubernetes LabelSelector: AND of matchLabels and matchExpressions."""

    FIELDS = (
        Field("match_labels", container="map", default_factory=dict),
        Field("match_expressions", type=LabelSelectorRequirement,
              container="list", default_factory=list),
    )

    def matches(self, labels):
        labels = labels or {}
        for key, expected in self.match_labels.items():
            if labels.get(key) != expected:
                return False
        for requirement in self.match_expressions:
            if not requirement.matches(labels):
                return False
        return True

    @property
    def empty(self):
        return not self.match_labels and not self.match_expressions


def parse_selector(text):
    """Parse a simple ``k=v,k2=v2,k3!=v3,k4`` label selector string."""
    selector = LabelSelector()
    if not text:
        return selector
    for part in text.split(","):
        part = part.strip()
        if not part:
            continue
        if "!=" in part:
            key, value = part.split("!=", 1)
            selector.match_expressions.append(
                LabelSelectorRequirement(key=key.strip(), operator="NotIn",
                                         values=[value.strip()])
            )
        elif "=" in part:
            key, value = part.split("=", 1)
            selector.match_labels[key.strip()] = value.strip()
        else:
            selector.match_expressions.append(
                LabelSelectorRequirement(key=part, operator="Exists")
            )
    return selector


def match_label_dict(selector_labels, labels):
    """Plain-dict selector matching (e.g. Service.spec.selector)."""
    if not selector_labels:
        return False
    labels = labels or {}
    return all(labels.get(k) == v for k, v in selector_labels.items())


def get_field(obj_dict, path):
    """Resolve a dotted field path (e.g. ``spec.nodeName``) in a wire dict."""
    current = obj_dict
    for part in path.split("."):
        if not isinstance(current, dict) or part not in current:
            return None
        current = current[part]
    return current


def match_fields(field_selector, obj_dict):
    """Match a ``{path: value}`` field selector against a wire dict.

    A ``path!`` key (trailing bang) negates the match, mirroring the
    ``path!=value`` syntax of kubectl.
    """
    for path, expected in (field_selector or {}).items():
        if path.endswith("!"):
            actual = get_field(obj_dict, path[:-1])
            if actual == expected:
                return False
        else:
            actual = get_field(obj_dict, path)
            if actual != expected:
                return False
    return True
