"""Namespace objects with the finalize/terminate lifecycle."""

from .base import Field, Serializable
from .meta import KubeObject


class NamespaceSpec(Serializable):
    FIELDS = (
        Field("finalizers", container="list",
              default_factory=lambda: ["kubernetes"]),
    )


class NamespaceStatus(Serializable):
    FIELDS = (
        Field("phase", default="Active"),
    )


class Namespace(KubeObject):
    KIND = "Namespace"
    PLURAL = "namespaces"
    NAMESPACED = False

    FIELDS = (
        Field("spec", type=NamespaceSpec, default_factory=NamespaceSpec),
        Field("status", type=NamespaceStatus, default_factory=NamespaceStatus),
    )

    @property
    def is_terminating(self):
        return (self.metadata.deletion_timestamp is not None
                or self.status.phase == "Terminating")


def make_namespace(name, labels=None):
    namespace = Namespace()
    namespace.metadata.name = name
    namespace.metadata.labels = dict(labels or {})
    return namespace
