"""Kubernetes resource quantities ("500m" CPU, "1Gi" memory).

Quantities are stored exactly as integers in milli-units, which covers both
millicore CPU values and byte-denominated memory values without floating
point drift.  Arithmetic and comparisons are supported so schedulers and
quota admission can sum requests against node allocatable.
"""

import re

_BINARY_SUFFIXES = {
    "Ki": 1024,
    "Mi": 1024 ** 2,
    "Gi": 1024 ** 3,
    "Ti": 1024 ** 4,
    "Pi": 1024 ** 5,
}
_DECIMAL_SUFFIXES = {
    "m": None,  # handled specially: milli
    "k": 10 ** 3,
    "M": 10 ** 6,
    "G": 10 ** 9,
    "T": 10 ** 12,
    "P": 10 ** 15,
}

_QUANTITY_RE = re.compile(r"^([+-]?\d+(?:\.\d+)?)([A-Za-z]{0,2})$")


class InvalidQuantity(ValueError):
    """The string is not a valid Kubernetes quantity."""


class Quantity:
    """An exact resource amount, e.g. ``Quantity.parse("250m")``."""

    __slots__ = ("milli",)

    def __init__(self, milli):
        self.milli = int(milli)

    @classmethod
    def parse(cls, text):
        """Parse a quantity string such as ``"2"``, ``"500m"``, ``"1Gi"``."""
        if isinstance(text, Quantity):
            return Quantity(text.milli)
        if isinstance(text, (int, float)):
            return cls(round(text * 1000))
        match = _QUANTITY_RE.match(str(text).strip())
        if not match:
            raise InvalidQuantity(f"invalid quantity: {text!r}")
        number, suffix = match.groups()
        value = float(number) if "." in number else int(number)
        if suffix == "":
            return cls(round(value * 1000))
        if suffix == "m":
            return cls(round(value))
        if suffix in _BINARY_SUFFIXES:
            return cls(round(value * _BINARY_SUFFIXES[suffix] * 1000))
        if suffix in _DECIMAL_SUFFIXES:
            return cls(round(value * _DECIMAL_SUFFIXES[suffix] * 1000))
        raise InvalidQuantity(f"unknown suffix {suffix!r} in {text!r}")

    @classmethod
    def zero(cls):
        return cls(0)

    @property
    def value(self):
        """The amount in base units as a float (cores, bytes, ...)."""
        return self.milli / 1000.0

    def to_serialized(self):
        return str(self)

    @classmethod
    def from_serialized(cls, raw):
        return cls.parse(raw)

    # ------------------------------------------------------------------
    # Arithmetic / comparison
    # ------------------------------------------------------------------

    def __add__(self, other):
        return Quantity(self.milli + Quantity.parse(other).milli)

    def __sub__(self, other):
        return Quantity(self.milli - Quantity.parse(other).milli)

    def __mul__(self, factor):
        return Quantity(round(self.milli * factor))

    def __neg__(self):
        return Quantity(-self.milli)

    def __eq__(self, other):
        try:
            return self.milli == Quantity.parse(other).milli
        except (InvalidQuantity, TypeError):
            return NotImplemented

    def __lt__(self, other):
        return self.milli < Quantity.parse(other).milli

    def __le__(self, other):
        return self.milli <= Quantity.parse(other).milli

    def __gt__(self, other):
        return self.milli > Quantity.parse(other).milli

    def __ge__(self, other):
        return self.milli >= Quantity.parse(other).milli

    def __hash__(self):
        return hash(self.milli)

    def __bool__(self):
        return self.milli != 0

    def __str__(self):
        """Canonical-ish rendering: prefer whole base units, else milli."""
        if self.milli % 1000 == 0:
            whole = self.milli // 1000
            for suffix, factor in (("Gi", 1024 ** 3), ("Mi", 1024 ** 2),
                                   ("Ki", 1024)):
                if whole and whole % factor == 0:
                    return f"{whole // factor}{suffix}"
            return str(whole)
        return f"{self.milli}m"

    def __repr__(self):
        return f"Quantity({str(self)!r})"


def add_resource_lists(a, b):
    """Merge two ``{resource_name: Quantity}`` dicts by addition."""
    out = {name: Quantity.parse(q) for name, q in a.items()}
    for name, quantity in b.items():
        if name in out:
            out[name] = out[name] + quantity
        else:
            out[name] = Quantity.parse(quantity)
    return out


def fits_within(request, available):
    """True when every requested resource fits within ``available``."""
    for name, quantity in request.items():
        limit = available.get(name)
        if limit is None:
            return False
        if Quantity.parse(quantity) > Quantity.parse(limit):
            return False
    return True
