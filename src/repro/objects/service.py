"""Service and Endpoints objects (cluster-IP service discovery)."""

from .base import Field, Serializable
from .meta import KubeObject


class ServicePort(Serializable):
    FIELDS = (
        Field("name"),
        Field("protocol", default="TCP"),
        Field("port"),
        Field("target_port"),
        Field("node_port"),
    )


class ServiceSpec(Serializable):
    FIELDS = (
        Field("type", default="ClusterIP"),
        Field("cluster_ip"),
        Field("selector", container="map", default_factory=dict),
        Field("ports", type=ServicePort, container="list",
              default_factory=list),
        Field("session_affinity", default="None"),
    )


class ServiceStatus(Serializable):
    FIELDS = (
        Field("load_balancer", container="map", default_factory=dict),
    )


class Service(KubeObject):
    KIND = "Service"
    PLURAL = "services"

    FIELDS = (
        Field("spec", type=ServiceSpec, default_factory=ServiceSpec),
        Field("status", type=ServiceStatus, default_factory=ServiceStatus),
    )


class EndpointAddress(Serializable):
    FIELDS = (
        Field("ip"),
        Field("hostname"),
        Field("node_name"),
        Field("target_ref", container="map", default_factory=dict),
    )


class EndpointPort(Serializable):
    FIELDS = (
        Field("name"),
        Field("port"),
        Field("protocol", default="TCP"),
    )


class EndpointSubset(Serializable):
    FIELDS = (
        Field("addresses", type=EndpointAddress, container="list",
              default_factory=list),
        Field("not_ready_addresses", type=EndpointAddress, container="list",
              default_factory=list),
        Field("ports", type=EndpointPort, container="list",
              default_factory=list),
    )


class Endpoints(KubeObject):
    KIND = "Endpoints"
    PLURAL = "endpoints"

    FIELDS = (
        Field("subsets", type=EndpointSubset, container="list",
              default_factory=list),
    )

    def ready_ips(self):
        return [addr.ip for subset in self.subsets
                for addr in subset.addresses]
