"""Secret and ConfigMap objects (synchronized for Pod provision)."""

from .base import Field
from .meta import KubeObject


class Secret(KubeObject):
    KIND = "Secret"
    PLURAL = "secrets"

    FIELDS = (
        Field("type", default="Opaque"),
        Field("data", container="map", default_factory=dict),
        Field("string_data", container="map", default_factory=dict),
    )


class ConfigMap(KubeObject):
    KIND = "ConfigMap"
    PLURAL = "configmaps"

    FIELDS = (
        Field("data", container="map", default_factory=dict),
        Field("binary_data", container="map", default_factory=dict),
    )
