"""Kubernetes-compatible object model.

All API types used by the VirtualCluster reproduction: Pods, Services,
Nodes, Namespaces, Secrets, ConfigMaps, Endpoints, Events, RBAC objects,
workload objects, CRDs — with wire-format (de)serialization, deep copy,
validation, label/field selectors, and resource quantities.
"""

from .base import Field, Serializable
from .config import ConfigMap, Secret
from .coordination import Lease, LeaseSpec
from .crd import CustomResourceDefinition, make_custom_type
from .factory import make_pod, make_service, with_anti_affinity
from .meta import (
    KubeObject,
    ObjectMeta,
    ObjectReference,
    OwnerReference,
    generate_uid,
    object_key,
    split_key,
)
from .misc import (
    ClusterRole,
    ClusterRoleBinding,
    Event,
    PersistentVolume,
    PersistentVolumeClaim,
    PolicyRule,
    ResourceQuota,
    Role,
    RoleBinding,
    RoleRef,
    RoleSubject,
    ServiceAccount,
    StorageClass,
)
from .namespace import Namespace, make_namespace
from .node import Node, NodeAddress, NodeCondition, make_node
from .pod import (
    Affinity,
    Container,
    NodeAffinity,
    Pod,
    PodAffinity,
    PodAffinityTerm,
    PodCondition,
    PodSpec,
    PodStatus,
    ResourceRequirements,
    Taint,
    Toleration,
)
from .quantity import InvalidQuantity, Quantity, add_resource_lists, fits_within
from .selectors import (
    LabelSelector,
    LabelSelectorRequirement,
    match_fields,
    match_label_dict,
    parse_selector,
)
from .service import Endpoints, EndpointSubset, Service, ServicePort
from .validation import ValidationError, validate_metadata, validate_pod
from .workloads import Deployment, PodTemplateSpec, ReplicaSet

BUILTIN_TYPES = (
    Pod,
    Service,
    Endpoints,
    Namespace,
    Node,
    Secret,
    ConfigMap,
    Event,
    ServiceAccount,
    PersistentVolume,
    PersistentVolumeClaim,
    ResourceQuota,
    Role,
    ClusterRole,
    RoleBinding,
    ClusterRoleBinding,
    CustomResourceDefinition,
    StorageClass,
    Deployment,
    ReplicaSet,
    Lease,
)

__all__ = [name for name in dir() if not name.startswith("_")]
