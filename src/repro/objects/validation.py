"""Object validation: DNS-1123 names, required fields, spec immutability."""

import re

_DNS1123_LABEL = re.compile(r"^[a-z0-9]([-a-z0-9]*[a-z0-9])?$")
_DNS1123_SUBDOMAIN = re.compile(
    r"^[a-z0-9]([-a-z0-9]*[a-z0-9])?(\.[a-z0-9]([-a-z0-9]*[a-z0-9])?)*$"
)


class ValidationError(ValueError):
    """A create/update request carried an invalid object."""

    def __init__(self, message, field=None):
        super().__init__(message)
        self.field = field


def validate_name(name, field="metadata.name"):
    if not name:
        raise ValidationError("name is required", field)
    if len(name) > 253:
        raise ValidationError(f"name too long ({len(name)} > 253)", field)
    if not _DNS1123_SUBDOMAIN.match(name):
        raise ValidationError(
            f"invalid name {name!r}: must be a DNS-1123 subdomain", field
        )


def validate_label_value(value, field="metadata.labels"):
    if value and len(value) > 63:
        raise ValidationError(f"label value too long: {value!r}", field)


def validate_metadata(obj, namespaced):
    meta = obj.metadata
    if meta.name is None and meta.generate_name is None:
        raise ValidationError("metadata.name or generateName required",
                              "metadata.name")
    if meta.name is not None:
        validate_name(meta.name)
    if namespaced and not meta.namespace:
        raise ValidationError("namespace required for namespaced object",
                              "metadata.namespace")
    if not namespaced and meta.namespace:
        raise ValidationError("namespace set on cluster-scoped object",
                              "metadata.namespace")
    for value in (meta.labels or {}).values():
        validate_label_value(value)


def validate_pod(pod):
    if not pod.spec.containers:
        raise ValidationError("pod must have at least one container",
                              "spec.containers")
    seen = set()
    for container in pod.spec.containers + pod.spec.init_containers:
        if not container.name:
            raise ValidationError("container name required",
                                  "spec.containers[].name")
        if not _DNS1123_LABEL.match(container.name):
            raise ValidationError(
                f"invalid container name {container.name!r}",
                "spec.containers[].name")
        if container.name in seen:
            raise ValidationError(
                f"duplicate container name {container.name!r}",
                "spec.containers[].name")
        seen.add(container.name)
        if not container.image:
            raise ValidationError(
                f"container {container.name!r} has no image",
                "spec.containers[].image")


def validate_pod_update(old_pod, new_pod):
    """Pod specs are mostly immutable; only permitted mutations allowed."""
    old_spec = old_pod.spec.to_dict()
    new_spec = new_pod.spec.to_dict()
    # Binding a pod (setting nodeName from empty) is allowed.
    old_spec.pop("nodeName", None)
    allowed_new_node = new_spec.pop("nodeName", None)
    if old_pod.spec.node_name and allowed_new_node != old_pod.spec.node_name:
        raise ValidationError("pod nodeName may not be changed once set",
                              "spec.nodeName")
    # Tolerations may be appended.
    old_spec.pop("tolerations", None)
    new_spec.pop("tolerations", None)
    if old_spec != new_spec:
        raise ValidationError("pod spec is immutable after creation", "spec")


def validate_service(service):
    if not service.spec.ports:
        raise ValidationError("service must declare at least one port",
                              "spec.ports")
    for port in service.spec.ports:
        if port.port is None or not (1 <= int(port.port) <= 65535):
            raise ValidationError(f"invalid service port {port.port!r}",
                                  "spec.ports[].port")
