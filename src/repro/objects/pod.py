"""The Pod object and its (famously large) schema subset.

The paper calls the Pod "arguably the most complicated schema" in
Kubernetes; we implement the parts that the control-plane experiments
exercise: containers and init containers, resource requests, scheduling
constraints (node selector, affinity/anti-affinity, tolerations), runtime
class (to select the Kata sandbox), and the status block with conditions.
"""

from .base import Field, Serializable
from .meta import KubeObject
from .quantity import Quantity, add_resource_lists
from .selectors import LabelSelector


class ContainerPort(Serializable):
    FIELDS = (
        Field("name"),
        Field("container_port"),
        Field("protocol", default="TCP"),
    )


class EnvVar(Serializable):
    FIELDS = (
        Field("name"),
        Field("value"),
        Field("value_from", container="map", default_factory=dict),
    )


class VolumeMount(Serializable):
    FIELDS = (
        Field("name"),
        Field("mount_path"),
        Field("read_only", default=False),
    )


class ResourceRequirements(Serializable):
    """Requests and limits, e.g. ``{"cpu": "500m", "memory": "128Mi"}``."""

    FIELDS = (
        Field("requests", type=Quantity, container="map", default_factory=dict),
        Field("limits", type=Quantity, container="map", default_factory=dict),
    )


class Container(Serializable):
    FIELDS = (
        Field("name"),
        Field("image"),
        Field("command", container="list", default_factory=list),
        Field("args", container="list", default_factory=list),
        Field("env", type=EnvVar, container="list", default_factory=list),
        Field("ports", type=ContainerPort, container="list",
              default_factory=list),
        Field("resources", type=ResourceRequirements,
              default_factory=ResourceRequirements),
        Field("volume_mounts", type=VolumeMount, container="list",
              default_factory=list),
        Field("liveness_probe", container="map", default_factory=dict),
        Field("readiness_probe", container="map", default_factory=dict),
    )


class Toleration(Serializable):
    FIELDS = (
        Field("key"),
        Field("operator", default="Equal"),
        Field("value"),
        Field("effect"),
    )

    def tolerates(self, taint):
        if self.effect and self.effect != taint.effect:
            return False
        if self.operator == "Exists":
            return self.key is None or self.key == taint.key
        return self.key == taint.key and self.value == taint.value


class NodeSelectorRequirement(Serializable):
    FIELDS = (
        Field("key"),
        Field("operator"),
        Field("values", container="list", default_factory=list),
    )

    def matches(self, labels):
        value = labels.get(self.key)
        if self.operator == "In":
            return value in self.values
        if self.operator == "NotIn":
            return value is None or value not in self.values
        if self.operator == "Exists":
            return self.key in labels
        if self.operator == "DoesNotExist":
            return self.key not in labels
        raise ValueError(f"unknown node selector operator {self.operator!r}")


class NodeSelectorTerm(Serializable):
    FIELDS = (
        Field("match_expressions", type=NodeSelectorRequirement,
              container="list", default_factory=list),
    )

    def matches(self, labels):
        return all(req.matches(labels) for req in self.match_expressions)


class NodeAffinity(Serializable):
    """Only the required (hard) node affinity is modelled."""

    FIELDS = (
        Field("required_terms", json_name="requiredDuringSchedulingIgnoredDuringExecution",
              type=NodeSelectorTerm, container="list", default_factory=list),
    )

    def matches(self, labels):
        if not self.required_terms:
            return True
        return any(term.matches(labels) for term in self.required_terms)


class PodAffinityTerm(Serializable):
    FIELDS = (
        Field("label_selector", type=LabelSelector,
              default_factory=LabelSelector),
        Field("topology_key", default="kubernetes.io/hostname"),
        Field("namespaces", container="list", default_factory=list),
    )


class PodAffinity(Serializable):
    FIELDS = (
        Field("required_terms", json_name="requiredDuringSchedulingIgnoredDuringExecution",
              type=PodAffinityTerm, container="list", default_factory=list),
    )


class Affinity(Serializable):
    FIELDS = (
        Field("node_affinity", type=NodeAffinity),
        Field("pod_affinity", type=PodAffinity),
        Field("pod_anti_affinity", type=PodAffinity),
    )


class Volume(Serializable):
    FIELDS = (
        Field("name"),
        Field("secret", container="map", default_factory=dict),
        Field("config_map", container="map", default_factory=dict),
        Field("persistent_volume_claim", container="map",
              default_factory=dict),
        Field("empty_dir", container="map", default_factory=dict),
    )


class PodSpec(Serializable):
    FIELDS = (
        Field("containers", type=Container, container="list",
              default_factory=list),
        Field("init_containers", type=Container, container="list",
              default_factory=list),
        Field("volumes", type=Volume, container="list", default_factory=list),
        Field("node_name"),
        Field("node_selector", container="map", default_factory=dict),
        Field("affinity", type=Affinity),
        Field("tolerations", type=Toleration, container="list",
              default_factory=list),
        Field("service_account_name", default="default"),
        Field("runtime_class_name"),
        Field("scheduler_name", default="default-scheduler"),
        Field("priority", default=0),
        Field("restart_policy", default="Always"),
        Field("termination_grace_period_seconds", default=30),
        Field("hostname"),
        Field("subdomain"),
    )

    def total_requests(self):
        """Sum of container resource requests (init containers use max)."""
        total = {}
        for container in self.containers:
            total = add_resource_lists(total, container.resources.requests)
        for container in self.init_containers:
            for name, quantity in container.resources.requests.items():
                current = total.get(name, Quantity.zero())
                if Quantity.parse(quantity) > current:
                    total[name] = Quantity.parse(quantity)
        return total


class ContainerStatus(Serializable):
    FIELDS = (
        Field("name"),
        Field("ready", default=False),
        Field("restart_count", default=0),
        Field("state", container="map", default_factory=dict),
        Field("image"),
        Field("container_id"),
    )


class PodCondition(Serializable):
    FIELDS = (
        Field("type"),
        Field("status"),
        Field("reason"),
        Field("message"),
        Field("last_transition_time"),
    )


class PodStatus(Serializable):
    FIELDS = (
        Field("phase", default="Pending"),
        Field("conditions", type=PodCondition, container="list",
              default_factory=list),
        Field("host_ip"),
        Field("pod_ip"),
        Field("start_time"),
        Field("reason"),
        Field("message"),
        Field("container_statuses", type=ContainerStatus, container="list",
              default_factory=list),
        Field("init_container_statuses", type=ContainerStatus,
              container="list", default_factory=list),
    )

    def get_condition(self, condition_type):
        for condition in self.conditions:
            if condition.type == condition_type:
                return condition
        return None

    def set_condition(self, condition_type, status, reason=None, message=None,
                      now=None):
        """Upsert a condition; returns True when something changed."""
        existing = self.get_condition(condition_type)
        if existing is None:
            self.conditions.append(PodCondition(
                type=condition_type, status=status, reason=reason,
                message=message, last_transition_time=now,
            ))
            return True
        changed = existing.status != status or existing.reason != reason
        if existing.status != status:
            existing.last_transition_time = now
        existing.status = status
        existing.reason = reason
        existing.message = message
        return changed

    @property
    def is_ready(self):
        condition = self.get_condition("Ready")
        return condition is not None and condition.status == "True"


class Pod(KubeObject):
    KIND = "Pod"
    PLURAL = "pods"

    FIELDS = (
        Field("spec", type=PodSpec, default_factory=PodSpec),
        Field("status", type=PodStatus, default_factory=PodStatus),
    )

    @property
    def is_terminal(self):
        return self.status.phase in ("Succeeded", "Failed")

    @property
    def node_name(self):
        return self.spec.node_name


class Taint(Serializable):
    FIELDS = (
        Field("key"),
        Field("value"),
        Field("effect"),
    )
