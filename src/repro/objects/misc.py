"""Remaining built-in object types: events, service accounts, volumes, RBAC."""

from .base import Field, Serializable
from .meta import KubeObject, ObjectReference
from .quantity import Quantity


class Event(KubeObject):
    KIND = "Event"
    PLURAL = "events"

    FIELDS = (
        Field("involved_object", type=ObjectReference,
              default_factory=ObjectReference),
        Field("reason"),
        Field("message"),
        Field("type", default="Normal"),
        Field("count", default=1),
        Field("first_timestamp"),
        Field("last_timestamp"),
        Field("source", container="map", default_factory=dict),
    )


class ServiceAccount(KubeObject):
    KIND = "ServiceAccount"
    PLURAL = "serviceaccounts"

    FIELDS = (
        Field("secrets", container="list", default_factory=list),
        Field("automount_service_account_token", default=True),
    )


class PersistentVolumeClaim(KubeObject):
    KIND = "PersistentVolumeClaim"
    PLURAL = "persistentvolumeclaims"

    FIELDS = (
        Field("spec", container="map", default_factory=dict),
        Field("status", container="map", default_factory=dict),
    )

    @property
    def phase(self):
        return (self.status or {}).get("phase", "Pending")


class PersistentVolume(KubeObject):
    KIND = "PersistentVolume"
    PLURAL = "persistentvolumes"
    NAMESPACED = False

    FIELDS = (
        Field("spec", container="map", default_factory=dict),
        Field("status", container="map", default_factory=dict),
    )


class ResourceQuotaSpec(Serializable):
    FIELDS = (
        Field("hard", type=Quantity, container="map", default_factory=dict),
    )


class ResourceQuotaStatus(Serializable):
    FIELDS = (
        Field("hard", type=Quantity, container="map", default_factory=dict),
        Field("used", type=Quantity, container="map", default_factory=dict),
    )


class ResourceQuota(KubeObject):
    KIND = "ResourceQuota"
    PLURAL = "resourcequotas"

    FIELDS = (
        Field("spec", type=ResourceQuotaSpec,
              default_factory=ResourceQuotaSpec),
        Field("status", type=ResourceQuotaStatus,
              default_factory=ResourceQuotaStatus),
    )


class StorageClass(KubeObject):
    API_VERSION = "storage.k8s.io/v1"
    KIND = "StorageClass"
    PLURAL = "storageclasses"
    NAMESPACED = False

    FIELDS = (
        Field("provisioner"),
        Field("parameters", container="map", default_factory=dict),
        Field("reclaim_policy", default="Delete"),
        Field("volume_binding_mode", default="Immediate"),
    )


class PolicyRule(Serializable):
    FIELDS = (
        Field("verbs", container="list", default_factory=list),
        Field("resources", container="list", default_factory=list),
        Field("api_groups", container="list", default_factory=list),
        Field("resource_names", container="list", default_factory=list),
    )

    def allows(self, verb, resource, name=None):
        verb_ok = "*" in self.verbs or verb in self.verbs
        resource_ok = "*" in self.resources or resource in self.resources
        name_ok = (not self.resource_names or name is None
                   or name in self.resource_names)
        return verb_ok and resource_ok and name_ok


class Role(KubeObject):
    KIND = "Role"
    PLURAL = "roles"

    FIELDS = (
        Field("rules", type=PolicyRule, container="list",
              default_factory=list),
    )


class ClusterRole(KubeObject):
    KIND = "ClusterRole"
    PLURAL = "clusterroles"
    NAMESPACED = False

    FIELDS = (
        Field("rules", type=PolicyRule, container="list",
              default_factory=list),
    )


class RoleSubject(Serializable):
    FIELDS = (
        Field("kind"),
        Field("name"),
        Field("namespace"),
    )


class RoleRef(Serializable):
    FIELDS = (
        Field("kind"),
        Field("name"),
    )


class RoleBinding(KubeObject):
    KIND = "RoleBinding"
    PLURAL = "rolebindings"

    FIELDS = (
        Field("subjects", type=RoleSubject, container="list",
              default_factory=list),
        Field("role_ref", type=RoleRef, default_factory=RoleRef),
    )


class ClusterRoleBinding(KubeObject):
    KIND = "ClusterRoleBinding"
    PLURAL = "clusterrolebindings"
    NAMESPACED = False

    FIELDS = (
        Field("subjects", type=RoleSubject, container="list",
              default_factory=list),
        Field("role_ref", type=RoleRef, default_factory=RoleRef),
    )
