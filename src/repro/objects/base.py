"""Declarative serialization base for Kubernetes-style API objects.

Every API type declares its fields once via :class:`Field`; the base class
derives the constructor behaviour, ``to_dict``/``from_dict`` (using the
Kubernetes camelCase wire names), deep copy, and structural equality.  The
wire format is plain dicts, which is what the simulated etcd stores — just
like real etcd stores JSON — so no object aliasing can leak between the
apiserver and its clients.

Serde is the kernel's hottest path (profiling the Fig. 10 stress run
puts ``from_dict``/``to_dict`` and their helpers at ~45% of total
interpreter time), so ``__init_subclass__`` compiles a specialized
``__init__``/``to_dict``/``from_dict`` per type — the field loop,
container dispatch, and default handling are resolved at class-creation
time, the way :mod:`dataclasses` builds ``__init__``.  The generated
code is behaviourally identical to the generic interpreted path below,
which remains in place as the ``REPRO_KERNEL_LEGACY=1`` ablation
baseline used by the kernel-speedup benchmark (and for any subclass
that overrides the serde methods by hand).
"""

import os

_LEGACY_SERDE = bool(os.environ.get("REPRO_KERNEL_LEGACY"))


class Field:
    """One serializable field of an API type.

    Parameters
    ----------
    py_name:
        Attribute name on the Python object (snake_case).
    json_name:
        Wire name (camelCase).  Defaults to ``py_name`` converted to
        camelCase.
    type:
        Optional nested :class:`Serializable` subclass for object fields
        (or the element type for lists / the value type for maps).
    container:
        ``None`` for scalars/objects, ``"list"`` or ``"map"`` for
        collections.
    default:
        Immutable default value.
    default_factory:
        Callable producing a default (for mutable defaults).
    """

    __slots__ = ("py_name", "json_name", "type", "container", "default",
                 "default_factory")

    def __init__(self, py_name, json_name=None, type=None, container=None,
                 default=None, default_factory=None):
        self.py_name = py_name
        self.json_name = json_name or _to_camel(py_name)
        self.type = type
        self.container = container
        self.default = default
        self.default_factory = default_factory

    def make_default(self):
        if self.default_factory is not None:
            return self.default_factory()
        return self.default


def _to_camel(snake):
    head, *rest = snake.split("_")
    return head + "".join(part.capitalize() for part in rest)


class Serializable:
    """Base class implementing serde over a ``FIELDS`` declaration."""

    FIELDS = ()

    def __init_subclass__(cls, **kwargs):
        super().__init_subclass__(**kwargs)
        if not _LEGACY_SERDE:
            _install_fast_serde(cls)

    @classmethod
    def _wire_header(cls):
        """Constant ``(key, value)`` pairs prepended to ``to_dict`` output.

        Must be constant per *class* (it is evaluated once at
        class-creation time by the serde codegen).
        """
        return ()

    def __init__(self, **kwargs):
        cls = type(self)
        fields = cls._field_index()
        for field in fields.values():
            if field.py_name in kwargs:
                setattr(self, field.py_name, kwargs.pop(field.py_name))
            else:
                setattr(self, field.py_name, field.make_default())
        if kwargs:
            unknown = ", ".join(sorted(kwargs))
            raise TypeError(f"{cls.__name__}: unknown fields: {unknown}")

    @classmethod
    def _field_index(cls):
        cached = cls.__dict__.get("_FIELD_INDEX")
        if cached is None:
            cached = {}
            for klass in reversed(cls.__mro__):
                for field in klass.__dict__.get("FIELDS", ()):
                    cached[field.py_name] = field
            cls._FIELD_INDEX = cached
        return cached

    def to_dict(self):
        """Serialize to the camelCase wire representation.

        Empty collections are omitted — except when the field's default is
        non-empty, in which case an explicit empty value is meaningful
        (e.g. a Namespace whose ``spec.finalizers`` were cleared) and must
        round-trip rather than resurrect the default.
        """
        out = {}
        for key, value in self._wire_header():
            out[key] = value
        for field in self._field_index().values():
            value = getattr(self, field.py_name)
            if value is None:
                continue
            if field.container == "list":
                if not value:
                    if field.default_factory is not None \
                            and field.default_factory():
                        out[field.json_name] = []
                    continue
                out[field.json_name] = [_dump(item) for item in value]
            elif field.container == "map":
                if not value:
                    if field.default_factory is not None \
                            and field.default_factory():
                        out[field.json_name] = {}
                    continue
                out[field.json_name] = {k: _dump(v) for k, v in value.items()}
            else:
                out[field.json_name] = _dump(value)
        return out

    @classmethod
    def from_dict(cls, data):
        """Deserialize from the wire representation (unknown keys ignored)."""
        if data is None:
            return None
        obj = cls.__new__(cls)
        attrs = obj.__dict__
        for field in cls._field_index().values():
            raw = data.get(field.json_name)
            if raw is None:
                attrs[field.py_name] = field.make_default()
            elif field.container == "list":
                attrs[field.py_name] = [_load(field.type, item)
                                        for item in raw]
            elif field.container == "map":
                attrs[field.py_name] = {
                    key: _load(field.type, value)
                    for key, value in raw.items()
                }
            else:
                attrs[field.py_name] = _load(field.type, raw)
        return obj

    def copy(self):
        """Deep copy via a wire round-trip."""
        return type(self).from_dict(self.to_dict())

    def __eq__(self, other):
        if type(other) is not type(self):
            return NotImplemented
        return self.to_dict() == other.to_dict()

    def __ne__(self, other):
        result = self.__eq__(other)
        if result is NotImplemented:
            return result
        return not result

    def __repr__(self):
        name = getattr(getattr(self, "metadata", None), "name", None)
        if name is not None:
            return f"<{type(self).__name__} {name!r}>"
        return f"<{type(self).__name__} {self.to_dict()!r}>"


def fast_deep_copy(value):
    """Deep copy of a JSON-shaped value (dicts/lists/scalars).

    Much faster than :func:`copy.deepcopy` for wire dicts, which is what
    the store and the codecs shuffle around constantly.
    """
    if isinstance(value, dict):
        return {key: fast_deep_copy(item) for key, item in value.items()}
    if isinstance(value, list):
        return [fast_deep_copy(item) for item in value]
    return value


def _dump(value):
    if isinstance(value, Serializable):
        return value.to_dict()
    if hasattr(value, "to_serialized"):
        return value.to_serialized()
    return value


def _load(field_type, raw):
    if field_type is None:
        # Untyped payloads are copied so a decoded object never aliases
        # the wire dict it was built from.
        if type(raw) is dict or type(raw) is list:
            return fast_deep_copy(raw)
        return raw
    if hasattr(field_type, "from_dict") and isinstance(raw, dict):
        return field_type.from_dict(raw)
    if hasattr(field_type, "from_serialized"):
        return field_type.from_serialized(raw)
    return raw


# ---------------------------------------------------------------------------
# Per-class serde codegen
# ---------------------------------------------------------------------------

_MISSING = object()

# isinstance() of any of these implies _dump/_load are identity; checked
# first because the overwhelming majority of field values are scalars.
_SCALAR_TYPES = (str, int, float, bool)


def _manual_override(cls, name):
    """True when a hand-written ``name`` is in effect between ``cls`` and
    :class:`Serializable` — codegen must not clobber it."""
    for klass in cls.__mro__:
        if klass is Serializable:
            return False
        fn = klass.__dict__.get(name)
        if fn is not None:
            fn = getattr(fn, "__func__", fn)
            return not getattr(fn, "_repro_generated", False)
    return False


class _SerdeCodegen:
    """Compiles specialized ``__init__``/``to_dict``/``from_dict``.

    The generated source mirrors the generic methods on
    :class:`Serializable` line for line; the per-field dispatch (field
    iteration, container branching, default construction, nested-type
    probing) that the generic path re-derives on every call is resolved
    here once, at class-creation time.
    """

    def __init__(self, cls):
        self.cls = cls
        self.ns = {
            "fast_deep_copy": fast_deep_copy,
            "_dump": _dump,
            "_MISSING": _MISSING,
            "_SCALAR_TYPES": _SCALAR_TYPES,
        }
        self._n = 0

    def const(self, prefix, value):
        self._n += 1
        name = f"_{prefix}{self._n}"
        self.ns[name] = value
        return name

    def compile(self, name, lines):
        source = "\n".join(lines)
        code = compile(source, f"<serde {self.cls.__name__}.{name}>", "exec")
        scope = {}
        exec(code, self.ns, scope)
        fn = scope[name]
        fn._repro_generated = True
        return fn

    def default_expr(self, field):
        if field.default_factory is not None:
            return f"{self.const('df', field.default_factory)}()"
        if field.default is None:
            return "None"
        return self.const("dv", field.default)

    def gen_init(self, fields):
        lines = ["def __init__(self, **kwargs):",
                 "    d = self.__dict__",
                 "    pop = kwargs.pop"]
        for field in fields:
            lines.append(f"    v = pop({field.py_name!r}, _MISSING)")
            lines.append(f"    d[{field.py_name!r}] = "
                         f"{self.default_expr(field)} if v is _MISSING else v")
        lines += [
            "    if kwargs:",
            "        unknown = ', '.join(sorted(kwargs))",
            f"        raise TypeError({self.cls.__name__ + ': unknown fields: '!r}"
            f" + unknown)",
        ]
        return self.compile("__init__", lines)

    def load_expr(self, field, raw):
        ftype = field.type
        if ftype is None:
            return (f"(fast_deep_copy({raw}) if type({raw}) is dict"
                    f" or type({raw}) is list else {raw})")
        tname = self.const("ty", ftype)
        has_from_dict = hasattr(ftype, "from_dict")
        has_from_serialized = hasattr(ftype, "from_serialized")
        if has_from_dict and has_from_serialized:
            return (f"({tname}.from_dict({raw}) if isinstance({raw}, dict)"
                    f" else {tname}.from_serialized({raw}))")
        if has_from_dict:
            return (f"({tname}.from_dict({raw}) if isinstance({raw}, dict)"
                    f" else {raw})")
        if has_from_serialized:
            return f"{tname}.from_serialized({raw})"
        return raw

    def gen_from_dict(self, fields):
        lines = ["def from_dict(cls, data):",
                 "    if data is None:",
                 "        return None",
                 "    obj = cls.__new__(cls)",
                 "    d = obj.__dict__",
                 "    get = data.get"]
        for field in fields:
            if field.container == "list":
                expr = f"[{self.load_expr(field, 'item')} for item in raw]"
            elif field.container == "map":
                expr = (f"{{key: {self.load_expr(field, 'value')}"
                        f" for key, value in raw.items()}}")
            else:
                expr = self.load_expr(field, "raw")
            lines.append(f"    raw = get({field.json_name!r})")
            lines.append(f"    d[{field.py_name!r}] = "
                         f"{self.default_expr(field)} if raw is None"
                         f" else {expr}")
        lines.append("    return obj")
        return self.compile("from_dict", lines)

    def dump_expr(self, field, value):
        if field.type is None:
            return (f"({value} if isinstance({value}, _SCALAR_TYPES)"
                    f" else _dump({value}))")
        return f"_dump({value})"

    def gen_to_dict(self, fields):
        header_items = []
        for key, value in self.cls._wire_header():
            if value is None or isinstance(value, _SCALAR_TYPES):
                header_items.append(f"{key!r}: {value!r}")
            else:
                header_items.append(f"{key!r}: {self.const('wh', value)}")
        lines = ["def to_dict(self):",
                 "    out = {" + ", ".join(header_items) + "}"]
        for field in fields:
            lines.append(f"    v = self.{field.py_name}")
            if field.container in ("list", "map"):
                if field.container == "list":
                    expr = f"[{self.dump_expr(field, 'item')} for item in v]"
                    empty = "[]"
                else:
                    expr = (f"{{k: {self.dump_expr(field, 'item')}"
                            f" for k, item in v.items()}}")
                    empty = "{}"
                lines.append("    if v:")
                lines.append(f"        out[{field.json_name!r}] = {expr}")
                # The generic path emits an explicit empty collection only
                # when the field's default is non-empty (see to_dict above);
                # that predicate is constant per field, so it is resolved
                # here at class-creation time.
                if field.default_factory is not None \
                        and field.default_factory():
                    lines.append("    elif v is not None:")
                    lines.append(f"        out[{field.json_name!r}] = {empty}")
            else:
                lines.append("    if v is not None:")
                lines.append(f"        out[{field.json_name!r}] = "
                             f"{self.dump_expr(field, 'v')}")
        lines.append("    return out")
        return self.compile("to_dict", lines)


def _install_fast_serde(cls):
    gen = _SerdeCodegen(cls)
    fields = tuple(cls._field_index().values())
    if not _manual_override(cls, "__init__"):
        cls.__init__ = gen.gen_init(fields)
    if not _manual_override(cls, "to_dict"):
        cls.to_dict = gen.gen_to_dict(fields)
    if not _manual_override(cls, "from_dict"):
        cls.from_dict = classmethod(gen.gen_from_dict(fields))
