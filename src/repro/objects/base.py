"""Declarative serialization base for Kubernetes-style API objects.

Every API type declares its fields once via :class:`Field`; the base class
derives the constructor behaviour, ``to_dict``/``from_dict`` (using the
Kubernetes camelCase wire names), deep copy, and structural equality.  The
wire format is plain dicts, which is what the simulated etcd stores — just
like real etcd stores JSON — so no object aliasing can leak between the
apiserver and its clients.
"""


class Field:
    """One serializable field of an API type.

    Parameters
    ----------
    py_name:
        Attribute name on the Python object (snake_case).
    json_name:
        Wire name (camelCase).  Defaults to ``py_name`` converted to
        camelCase.
    type:
        Optional nested :class:`Serializable` subclass for object fields
        (or the element type for lists / the value type for maps).
    container:
        ``None`` for scalars/objects, ``"list"`` or ``"map"`` for
        collections.
    default:
        Immutable default value.
    default_factory:
        Callable producing a default (for mutable defaults).
    """

    __slots__ = ("py_name", "json_name", "type", "container", "default",
                 "default_factory")

    def __init__(self, py_name, json_name=None, type=None, container=None,
                 default=None, default_factory=None):
        self.py_name = py_name
        self.json_name = json_name or _to_camel(py_name)
        self.type = type
        self.container = container
        self.default = default
        self.default_factory = default_factory

    def make_default(self):
        if self.default_factory is not None:
            return self.default_factory()
        return self.default


def _to_camel(snake):
    head, *rest = snake.split("_")
    return head + "".join(part.capitalize() for part in rest)


class Serializable:
    """Base class implementing serde over a ``FIELDS`` declaration."""

    FIELDS = ()

    def __init__(self, **kwargs):
        cls = type(self)
        fields = cls._field_index()
        for field in fields.values():
            if field.py_name in kwargs:
                setattr(self, field.py_name, kwargs.pop(field.py_name))
            else:
                setattr(self, field.py_name, field.make_default())
        if kwargs:
            unknown = ", ".join(sorted(kwargs))
            raise TypeError(f"{cls.__name__}: unknown fields: {unknown}")

    @classmethod
    def _field_index(cls):
        cached = cls.__dict__.get("_FIELD_INDEX")
        if cached is None:
            cached = {}
            for klass in reversed(cls.__mro__):
                for field in klass.__dict__.get("FIELDS", ()):
                    cached[field.py_name] = field
            cls._FIELD_INDEX = cached
        return cached

    def to_dict(self):
        """Serialize to the camelCase wire representation.

        Empty collections are omitted — except when the field's default is
        non-empty, in which case an explicit empty value is meaningful
        (e.g. a Namespace whose ``spec.finalizers`` were cleared) and must
        round-trip rather than resurrect the default.
        """
        out = {}
        for field in self._field_index().values():
            value = getattr(self, field.py_name)
            if value is None:
                continue
            if field.container == "list":
                if not value:
                    if field.default_factory is not None \
                            and field.default_factory():
                        out[field.json_name] = []
                    continue
                out[field.json_name] = [_dump(item) for item in value]
            elif field.container == "map":
                if not value:
                    if field.default_factory is not None \
                            and field.default_factory():
                        out[field.json_name] = {}
                    continue
                out[field.json_name] = {k: _dump(v) for k, v in value.items()}
            else:
                out[field.json_name] = _dump(value)
        return out

    @classmethod
    def from_dict(cls, data):
        """Deserialize from the wire representation (unknown keys ignored)."""
        if data is None:
            return None
        obj = cls.__new__(cls)
        attrs = obj.__dict__
        for field in cls._field_index().values():
            raw = data.get(field.json_name)
            if raw is None:
                attrs[field.py_name] = field.make_default()
            elif field.container == "list":
                attrs[field.py_name] = [_load(field.type, item)
                                        for item in raw]
            elif field.container == "map":
                attrs[field.py_name] = {
                    key: _load(field.type, value)
                    for key, value in raw.items()
                }
            else:
                attrs[field.py_name] = _load(field.type, raw)
        return obj

    def copy(self):
        """Deep copy via a wire round-trip."""
        return type(self).from_dict(self.to_dict())

    def __eq__(self, other):
        if type(other) is not type(self):
            return NotImplemented
        return self.to_dict() == other.to_dict()

    def __ne__(self, other):
        result = self.__eq__(other)
        if result is NotImplemented:
            return result
        return not result

    def __repr__(self):
        name = getattr(getattr(self, "metadata", None), "name", None)
        if name is not None:
            return f"<{type(self).__name__} {name!r}>"
        return f"<{type(self).__name__} {self.to_dict()!r}>"


def fast_deep_copy(value):
    """Deep copy of a JSON-shaped value (dicts/lists/scalars).

    Much faster than :func:`copy.deepcopy` for wire dicts, which is what
    the store and the codecs shuffle around constantly.
    """
    if isinstance(value, dict):
        return {key: fast_deep_copy(item) for key, item in value.items()}
    if isinstance(value, list):
        return [fast_deep_copy(item) for item in value]
    return value


def _dump(value):
    if isinstance(value, Serializable):
        return value.to_dict()
    if hasattr(value, "to_serialized"):
        return value.to_serialized()
    return value


def _load(field_type, raw):
    if field_type is None:
        # Untyped payloads are copied so a decoded object never aliases
        # the wire dict it was built from.
        if type(raw) is dict or type(raw) is list:
            return fast_deep_copy(raw)
        return raw
    if hasattr(field_type, "from_dict") and isinstance(raw, dict):
        return field_type.from_dict(raw)
    if hasattr(field_type, "from_serialized"):
        return field_type.from_serialized(raw)
    return raw
