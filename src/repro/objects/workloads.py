"""Workload controllers' objects: Deployment and ReplicaSet."""

from .base import Field, Serializable
from .meta import KubeObject, ObjectMeta
from .pod import PodSpec
from .selectors import LabelSelector


class PodTemplateSpec(Serializable):
    FIELDS = (
        Field("metadata", type=ObjectMeta, default_factory=ObjectMeta),
        Field("spec", type=PodSpec, default_factory=PodSpec),
    )


class ReplicaSetSpec(Serializable):
    FIELDS = (
        Field("replicas", default=1),
        Field("selector", type=LabelSelector, default_factory=LabelSelector),
        Field("template", type=PodTemplateSpec,
              default_factory=PodTemplateSpec),
    )


class ReplicaSetStatus(Serializable):
    FIELDS = (
        Field("replicas", default=0),
        Field("ready_replicas", default=0),
        Field("observed_generation", default=0),
    )


class ReplicaSet(KubeObject):
    API_VERSION = "apps/v1"
    KIND = "ReplicaSet"
    PLURAL = "replicasets"

    FIELDS = (
        Field("spec", type=ReplicaSetSpec, default_factory=ReplicaSetSpec),
        Field("status", type=ReplicaSetStatus,
              default_factory=ReplicaSetStatus),
    )


class DeploymentSpec(Serializable):
    FIELDS = (
        Field("replicas", default=1),
        Field("selector", type=LabelSelector, default_factory=LabelSelector),
        Field("template", type=PodTemplateSpec,
              default_factory=PodTemplateSpec),
        Field("strategy", container="map",
              default_factory=lambda: {"type": "RollingUpdate"}),
    )


class DeploymentStatus(Serializable):
    FIELDS = (
        Field("replicas", default=0),
        Field("ready_replicas", default=0),
        Field("updated_replicas", default=0),
        Field("observed_generation", default=0),
    )


class Deployment(KubeObject):
    API_VERSION = "apps/v1"
    KIND = "Deployment"
    PLURAL = "deployments"

    FIELDS = (
        Field("spec", type=DeploymentSpec, default_factory=DeploymentSpec),
        Field("status", type=DeploymentStatus,
              default_factory=DeploymentStatus),
    )
