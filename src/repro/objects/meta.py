"""Object metadata and the common base class for all API objects."""

import itertools

from .base import Field, Serializable

_uid_counter = itertools.count(1)


def generate_uid(sim=None):
    """Generate a unique object UID.

    With ``sim``, draws from a per-simulation counter so two same-seed
    runs assign identical UIDs — the process-global fallback depends on
    how many objects were ever created in the interpreter, which the
    replay bisector flags as a divergence.  The fallback remains for
    objects minted outside any simulation (test fixtures).
    """
    if sim is not None:
        counter = getattr(sim, "_uid_counter", None)
        if counter is None:
            counter = itertools.count(1)
            sim._uid_counter = counter
        return f"uid-{next(counter):08x}"
    return f"uid-{next(_uid_counter):08x}"


class OwnerReference(Serializable):
    """Reference from a dependent object to its owner (drives GC)."""

    FIELDS = (
        Field("api_version"),
        Field("kind"),
        Field("name"),
        Field("uid"),
        Field("controller", default=False),
        Field("block_owner_deletion", default=False),
    )


class ObjectMeta(Serializable):
    """Standard Kubernetes object metadata."""

    FIELDS = (
        Field("name"),
        Field("generate_name"),
        Field("namespace"),
        Field("uid"),
        Field("resource_version"),
        Field("generation", default=0),
        Field("creation_timestamp"),
        Field("deletion_timestamp"),
        Field("labels", container="map", default_factory=dict),
        Field("annotations", container="map", default_factory=dict),
        Field("finalizers", container="list", default_factory=list),
        Field("owner_references", type=OwnerReference, container="list",
              default_factory=list),
    )


class KubeObject(Serializable):
    """Base class for all API objects (Pod, Service, ...).

    Subclasses set the class attributes ``API_VERSION``, ``KIND``,
    ``PLURAL`` and ``NAMESPACED``, which the apiserver registry uses to
    route requests.
    """

    API_VERSION = "v1"
    KIND = "Object"
    PLURAL = "objects"
    NAMESPACED = True

    FIELDS = (
        Field("metadata", type=ObjectMeta, default_factory=ObjectMeta),
    )

    @classmethod
    def _wire_header(cls):
        return (("apiVersion", cls.API_VERSION), ("kind", cls.KIND))

    @property
    def name(self):
        return self.metadata.name

    @property
    def namespace(self):
        return self.metadata.namespace

    @property
    def uid(self):
        return self.metadata.uid

    @property
    def key(self):
        """``namespace/name`` for namespaced objects, ``name`` otherwise."""
        if self.NAMESPACED and self.metadata.namespace:
            return f"{self.metadata.namespace}/{self.metadata.name}"
        return self.metadata.name or ""

    def __repr__(self):
        return f"<{self.KIND} {self.key!r} rv={self.metadata.resource_version}>"


class ObjectReference(Serializable):
    """Loose reference to another object (used by Events, bindings)."""

    FIELDS = (
        Field("api_version"),
        Field("kind"),
        Field("namespace"),
        Field("name"),
        Field("uid"),
        Field("field_path"),
    )


def object_key(namespace, name):
    """Build the canonical ``namespace/name`` key used across controllers."""
    return f"{namespace}/{name}" if namespace else name


def split_key(key):
    """Inverse of :func:`object_key`; returns (namespace, name)."""
    if "/" in key:
        namespace, name = key.split("/", 1)
        return namespace, name
    return None, key
