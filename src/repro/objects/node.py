"""Node objects: physical super-cluster nodes and tenant-facing vNodes."""

from .base import Field, Serializable
from .meta import KubeObject
from .pod import Taint
from .quantity import Quantity


class NodeSpec(Serializable):
    FIELDS = (
        Field("taints", type=Taint, container="list", default_factory=list),
        Field("unschedulable", default=False),
        Field("provider_id"),
    )


class NodeCondition(Serializable):
    FIELDS = (
        Field("type"),
        Field("status"),
        Field("reason"),
        Field("last_heartbeat_time"),
        Field("last_transition_time"),
    )


class NodeAddress(Serializable):
    FIELDS = (
        Field("type"),
        Field("address"),
    )


class NodeSystemInfo(Serializable):
    FIELDS = (
        Field("machine_id"),
        Field("kubelet_version", default="v1.18.0"),
        Field("container_runtime_version", default="containerd://1.3"),
        Field("operating_system", default="linux"),
        Field("architecture", default="amd64"),
    )


class NodeStatus(Serializable):
    FIELDS = (
        Field("capacity", type=Quantity, container="map",
              default_factory=dict),
        Field("allocatable", type=Quantity, container="map",
              default_factory=dict),
        Field("conditions", type=NodeCondition, container="list",
              default_factory=list),
        Field("addresses", type=NodeAddress, container="list",
              default_factory=list),
        Field("node_info", type=NodeSystemInfo,
              default_factory=NodeSystemInfo),
        Field("daemon_endpoints", container="map", default_factory=dict),
    )

    def get_condition(self, condition_type):
        for condition in self.conditions:
            if condition.type == condition_type:
                return condition
        return None

    def set_condition(self, condition_type, status, reason=None, now=None):
        existing = self.get_condition(condition_type)
        if existing is None:
            self.conditions.append(NodeCondition(
                type=condition_type, status=status, reason=reason,
                last_heartbeat_time=now, last_transition_time=now,
            ))
            return
        if existing.status != status:
            existing.last_transition_time = now
        existing.status = status
        existing.reason = reason
        existing.last_heartbeat_time = now

    @property
    def is_ready(self):
        condition = self.get_condition("Ready")
        return condition is not None and condition.status == "True"


class Node(KubeObject):
    KIND = "Node"
    PLURAL = "nodes"
    NAMESPACED = False

    FIELDS = (
        Field("spec", type=NodeSpec, default_factory=NodeSpec),
        Field("status", type=NodeStatus, default_factory=NodeStatus),
    )


def make_node(name, cpu="96", memory="328Gi", pods="1000", labels=None,
              internal_ip=None, kubelet_port=10250):
    """Build a ready Node with the paper's bare-metal-like capacity."""
    resources = {
        "cpu": Quantity.parse(cpu),
        "memory": Quantity.parse(memory),
        "pods": Quantity.parse(pods),
    }
    node = Node()
    node.metadata.name = name
    node.metadata.labels = dict(labels or {})
    node.metadata.labels.setdefault("kubernetes.io/hostname", name)
    node.status.capacity = dict(resources)
    node.status.allocatable = dict(resources)
    node.status.set_condition("Ready", "True", reason="KubeletReady")
    if internal_ip:
        node.status.addresses.append(
            NodeAddress(type="InternalIP", address=internal_ip)
        )
    node.status.daemon_endpoints = {"kubeletEndpoint": {"Port": kubelet_port}}
    return node
