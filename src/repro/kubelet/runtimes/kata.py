"""Kata sandbox runtime: VM-standard isolation per Pod.

Every sandbox is a lightweight guest VM with its **own network stack and
iptables** and a kata-agent gRPC server inside the guest.  The agent is
"slightly modified" (paper §I) to accept service routing rules from the
enhanced kubeproxy and apply them to the guest iptables — the key to
making cluster-IP services work when pod traffic bypasses the host.
"""

from repro.network import NetworkStack, RpcServer

from ..cri import (ContainerHandle, ContainerRuntime, ContainerState,
                   SandboxHandle, next_runtime_serial)


class KataAgent:
    """The agent inside one guest OS."""

    def __init__(self, sim, config, guest_stack, name):
        self.sim = sim
        self.config = config
        self.guest_stack = guest_stack
        self.rpc = RpcServer(sim, name=f"kata-agent-{name}")
        self.rpc.register("apply_routing_rules", self.apply_routing_rules)
        self.rpc.register("remove_routing_rule", self.remove_routing_rule)
        self.rpc.register("scan_rules", self.scan_rules)
        self.rules_ready = False
        self.rules_applied = 0

    def apply_routing_rules(self, payload):
        """Coroutine RPC handler: install service rules in guest iptables.

        ``payload`` is a list of ``(cluster_ip, port, endpoints)`` plus a
        ``final`` flag marking the initial injection as complete (the
        signal the Pod's init container waits for).
        """
        rules = payload["rules"]
        per_rule = self.config.network.guest_iptable_update_per_rule
        for cluster_ip, port, endpoints in rules:
            yield self.sim.timeout(per_rule)
            self.guest_stack.iptables.replace_service(cluster_ip, port,
                                                      endpoints)
            self.rules_applied += 1
        if payload.get("final"):
            self.rules_ready = True
        return {"applied": len(rules)}

    def remove_routing_rule(self, payload):
        yield self.sim.timeout(
            self.config.network.guest_iptable_update_per_rule)
        self.guest_stack.iptables.remove_service(payload["cluster_ip"],
                                                 payload["port"])
        return {"removed": 1}

    def scan_rules(self, payload):
        """Coroutine RPC handler: enumerate installed rules (periodic scan)."""
        count = self.guest_stack.iptables.rule_count()
        yield self.sim.timeout(
            self.config.network.rule_scan_per_rule * max(count, 1))
        return {
            "rules": [
                (rule.cluster_ip, rule.port, list(rule.endpoints))
                for rule in self.guest_stack.iptables.rules()
            ]
        }


class KataRuntime(ContainerRuntime):
    """CRI runtime that boots a guest VM per sandbox."""

    name = "kata"

    def __init__(self, sim, config, vpc, on_sandbox_started=None):
        self.sim = sim
        self.config = config
        self.vpc = vpc
        self.on_sandbox_started = on_sandbox_started
        self.sandboxes = {}
        self.agents = {}

    def run_pod_sandbox(self, pod):
        """Boot the guest VM and attach its ENI to the tenant VPC."""
        yield self.sim.timeout(self.config.kubelet.kata_sandbox_boot)
        sandbox_id = f"kata-sb-{next_runtime_serial(self.sim, 'kata'):06d}"
        guest_stack = NetworkStack(name=f"guest-{sandbox_id}")
        eni = self.vpc.attach(guest_stack)
        agent = KataAgent(self.sim, self.config, guest_stack,
                          name=sandbox_id)
        sandbox = SandboxHandle(
            sandbox_id=sandbox_id,
            pod_key=pod.key,
            ip=eni.ip,
            network_stack=guest_stack,
            runtime=self.name,
            extra={"agent": agent, "pod": pod},
        )
        self.sandboxes[sandbox_id] = sandbox
        self.agents[sandbox_id] = agent
        if self.on_sandbox_started is not None:
            self.on_sandbox_started(sandbox, agent)
        return sandbox

    def stop_pod_sandbox(self, sandbox):
        yield self.sim.timeout(0.3)
        self.sandboxes.pop(sandbox.sandbox_id, None)
        self.agents.pop(sandbox.sandbox_id, None)
        if sandbox.ip:
            self.vpc.detach(sandbox.ip)
        return None

    def remove_pod_sandbox(self, sandbox):
        yield self.sim.timeout(0.01)
        return None

    def pod_sandbox_status(self, sandbox):
        active = sandbox.sandbox_id in self.sandboxes
        return {"id": sandbox.sandbox_id,
                "state": "ready" if active else "notready",
                "ip": sandbox.ip}

    def create_container(self, sandbox, container_spec):
        yield self.sim.timeout(0.02)
        return ContainerHandle(
            container_id=f"kata-c-{next_runtime_serial(self.sim, 'kata'):06d}",
            sandbox=sandbox,
            name=container_spec.name,
            image=container_spec.image,
        )

    def start_container(self, container):
        yield self.sim.timeout(self.config.kubelet.kata_container_start)
        container.state = ContainerState.RUNNING
        container.started_at = self.sim.now
        container.logs.append(
            f"[{self.sim.now:.3f}] {container.name} started in guest")
        return container

    def stop_container(self, container):
        yield self.sim.timeout(0.08)
        container.state = ContainerState.EXITED
        container.exit_code = 0
        return container

    def remove_container(self, container):
        yield self.sim.timeout(0.005)
        return None

    def exec_in_container(self, container, command):
        yield self.sim.timeout(0.004)
        if container.state != ContainerState.RUNNING:
            raise RuntimeError(f"container {container.name} is not running")
        output = f"exec({' '.join(command)}) in guest {container.name}"
        container.logs.append(output)
        return output

    def pull_image(self, image):
        yield self.sim.timeout(0.001)
        return {"image": image}

    def agent_for(self, sandbox):
        return self.agents.get(sandbox.sandbox_id)
