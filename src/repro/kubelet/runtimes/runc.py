"""The plain (runc-style) container runtime.

Containers share the node's host network stack — which is exactly why
the stock kubeproxy works for them: the service DNAT rules in the host
iptables apply to their traffic.
"""

from ..cri import (ContainerHandle, ContainerRuntime, ContainerState,
                   SandboxHandle, next_runtime_serial)


class RuncRuntime(ContainerRuntime):
    name = "runc"

    def __init__(self, sim, config, host_stack, pod_ip_allocator):
        self.sim = sim
        self.config = config
        self.host_stack = host_stack
        self._allocate_ip = pod_ip_allocator
        self.sandboxes = {}

    def run_pod_sandbox(self, pod):
        yield self.sim.timeout(0.05)
        sandbox = SandboxHandle(
            sandbox_id=f"runc-sb-{next_runtime_serial(self.sim, 'runc'):06d}",
            pod_key=pod.key,
            ip=self._allocate_ip(),
            network_stack=self.host_stack,
            runtime=self.name,
        )
        self.sandboxes[sandbox.sandbox_id] = sandbox
        return sandbox

    def stop_pod_sandbox(self, sandbox):
        yield self.sim.timeout(0.02)
        self.sandboxes.pop(sandbox.sandbox_id, None)
        return None

    def remove_pod_sandbox(self, sandbox):
        yield self.sim.timeout(0.005)
        return None

    def pod_sandbox_status(self, sandbox):
        active = sandbox.sandbox_id in self.sandboxes
        return {"id": sandbox.sandbox_id,
                "state": "ready" if active else "notready",
                "ip": sandbox.ip}

    def create_container(self, sandbox, container_spec):
        yield self.sim.timeout(0.01)
        return ContainerHandle(
            container_id=f"runc-c-{next_runtime_serial(self.sim, 'runc'):06d}",
            sandbox=sandbox,
            name=container_spec.name,
            image=container_spec.image,
        )

    def start_container(self, container):
        yield self.sim.timeout(self.config.kubelet.runc_container_start)
        container.state = ContainerState.RUNNING
        container.started_at = self.sim.now
        container.logs.append(
            f"[{self.sim.now:.3f}] {container.name} started")
        return container

    def stop_container(self, container):
        yield self.sim.timeout(0.05)
        container.state = ContainerState.EXITED
        container.exit_code = 0
        return container

    def remove_container(self, container):
        yield self.sim.timeout(0.005)
        return None

    def exec_in_container(self, container, command):
        yield self.sim.timeout(0.002)
        if container.state != ContainerState.RUNNING:
            raise RuntimeError(
                f"container {container.name} is not running")
        output = f"exec({' '.join(command)}) in {container.name}"
        container.logs.append(output)
        return output

    def pull_image(self, image):
        # Virtual-kubelet experiments exclude pull time; real-node examples
        # model a warm local image cache.
        yield self.sim.timeout(0.001)
        return {"image": image}
