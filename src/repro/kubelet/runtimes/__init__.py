"""CRI runtime implementations."""

from .kata import KataAgent, KataRuntime
from .runc import RuncRuntime

__all__ = ["KataAgent", "KataRuntime", "RuncRuntime"]
