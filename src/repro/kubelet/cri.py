"""The container runtime interface (CRI).

Kubelet talks to runtimes exclusively through this interface — the paper
contrasts its ~25 methods with virtual kubelet's ~7-method provider
interface to explain why vk cannot fully support Pod semantics.  We
implement the subset that the kubelet in this repo exercises, with the
full method list stubbed in the abstract base so runtimes are honest
about what they support.
"""

import itertools


def next_runtime_serial(sim, runtime_name):
    """The next sandbox/container serial for ``runtime_name`` on ``sim``.

    Counters hang off the Simulation (one independent sequence per
    runtime kind), so IDs are deterministic per run and never leak
    across Simulation instances in one interpreter — a module-level
    counter would hand the second simulation in a process different IDs
    than the first.
    """
    counters = getattr(sim, "_cri_serials", None)
    if counters is None:
        counters = {}
        sim._cri_serials = counters
    counter = counters.get(runtime_name)
    if counter is None:
        counter = itertools.count(1)
        counters[runtime_name] = counter
    return next(counter)


class ContainerState:
    CREATED = "created"
    RUNNING = "running"
    EXITED = "exited"


class SandboxHandle:
    """An opaque reference to a pod sandbox returned by the runtime."""

    __slots__ = ("sandbox_id", "pod_key", "ip", "network_stack", "runtime",
                 "extra")

    def __init__(self, sandbox_id, pod_key, ip=None, network_stack=None,
                 runtime=None, extra=None):
        self.sandbox_id = sandbox_id
        self.pod_key = pod_key
        self.ip = ip
        self.network_stack = network_stack
        self.runtime = runtime
        self.extra = extra or {}


class ContainerHandle:
    """An opaque reference to a created container."""

    __slots__ = ("container_id", "sandbox", "name", "image", "state",
                 "exit_code", "logs", "started_at", "healthy",
                 "restart_count")

    def __init__(self, container_id, sandbox, name, image):
        self.container_id = container_id
        self.sandbox = sandbox
        self.name = name
        self.image = image
        self.state = ContainerState.CREATED
        self.exit_code = None
        self.logs = []
        self.started_at = None
        # Probe target: tests and fault injection flip this to simulate
        # an unhealthy workload.
        self.healthy = True
        self.restart_count = 0


class ContainerRuntime:
    """Abstract CRI runtime; all mutating methods are sim coroutines."""

    name = "runtime"

    # Sandbox lifecycle -------------------------------------------------
    def run_pod_sandbox(self, pod):
        raise NotImplementedError

    def stop_pod_sandbox(self, sandbox):
        raise NotImplementedError

    def remove_pod_sandbox(self, sandbox):
        raise NotImplementedError

    def pod_sandbox_status(self, sandbox):
        raise NotImplementedError

    # Container lifecycle ------------------------------------------------
    def create_container(self, sandbox, container_spec):
        raise NotImplementedError

    def start_container(self, container):
        raise NotImplementedError

    def stop_container(self, container):
        raise NotImplementedError

    def remove_container(self, container):
        raise NotImplementedError

    def container_status(self, container):
        return {
            "id": container.container_id,
            "state": container.state,
            "exitCode": container.exit_code,
        }

    # Streaming ----------------------------------------------------------
    def read_logs(self, container, tail=None):
        logs = container.logs
        if tail is not None:
            logs = logs[-tail:]
        return list(logs)

    def exec_in_container(self, container, command):
        raise NotImplementedError

    # Images (modelled as instantaneous local cache hits) ----------------
    def pull_image(self, image):
        raise NotImplementedError

    def image_status(self, image):
        return {"image": image, "present": True}
