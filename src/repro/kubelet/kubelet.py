"""The kubelet: per-node agent driving Pod lifecycles via CRI.

Watches the apiserver for Pods bound to its node (server-side
``spec.nodeName`` field selector, like the real kubelet), runs init
containers then workload containers through the configured runtime, and
reports status back — including the Ready condition whose timestamp the
paper's Pod-creation-time metric is measured against.

For Kata Pods fronted by the enhanced kubeproxy, an implicit
``network-rules-check`` init container blocks workload-container start
until the proxy has injected the current service routing rules into the
guest (paper §III-B(4)).
"""

from repro.apiserver.errors import ApiError, Conflict, NotFound
from repro.simkernel.errors import Interrupt
from repro.telemetry import telemetry_of


class Kubelet:
    """One node's agent."""

    def __init__(self, sim, node, client, config, runtimes,
                 informer_factory, heartbeat_interval=2.0,
                 enhanced_proxy=None):
        """``runtimes`` maps runtimeClassName (None = default) to a CRI
        runtime instance."""
        from repro.clientgo.events import EventRecorder

        self.sim = sim
        self.node = node
        self.node_name = node.metadata.name
        self.client = client
        self.config = config
        self.recorder = EventRecorder(sim, client, f"kubelet-{self.node_name}")
        self.runtimes = runtimes
        self.heartbeat_interval = heartbeat_interval
        self.enhanced_proxy = enhanced_proxy
        self.pod_informer = informer_factory.informer(
            "pods", field_selector={"spec.nodeName": self.node_name})
        self.pod_informer.add_handlers(
            on_add=self._on_pod_add,
            on_update=self._on_pod_update,
            on_delete=self._on_pod_delete,
        )
        self._workers = {}
        self._sandboxes = {}
        self._containers = {}
        self._stopped = False
        self._heartbeat_process = None
        self.pods_started = 0
        self.pods_stopped = 0
        telemetry = telemetry_of(sim)
        self._telemetry = telemetry
        self._started_counter = telemetry.counter(
            "kubelet_pods_started_total", "pods brought to Running",
            labels=("kind",)).labels(kind="node")

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def start(self):
        """Register the node and start watching (coroutine)."""
        try:
            yield from self.client.create(self.node)
        except ApiError:
            pass
        self.pod_informer.start()
        self._heartbeat_process = self.sim.spawn(
            self._heartbeat_loop(), name=f"kubelet-{self.node_name}-hb")

    def stop(self):
        self._stopped = True
        self.pod_informer.stop()
        if self._heartbeat_process is not None:
            self._heartbeat_process.interrupt("kubelet stopped")
        for worker in self._workers.values():
            worker.interrupt("kubelet stopped")

    def _heartbeat_loop(self):
        while not self._stopped:
            try:
                yield self.sim.timeout(self.heartbeat_interval)
            except Interrupt:
                return
            try:
                node = yield from self.client.get("nodes", self.node_name)
            except ApiError:
                continue
            node.status.set_condition("Ready", "True",
                                      reason="KubeletReady",
                                      now=self.sim.now)
            try:
                yield from self.client.update_status(node)
            except ApiError:
                pass

    # ------------------------------------------------------------------
    # Pod event handling
    # ------------------------------------------------------------------

    def _on_pod_add(self, pod):
        if pod.metadata.deletion_timestamp is not None:
            self._begin_teardown(pod.key)
        elif pod.key not in self._sandboxes and not pod.is_terminal:
            self._start_worker(pod.key, self._sync_pod(pod.key))

    def _on_pod_update(self, old, pod):
        if pod.metadata.deletion_timestamp is not None:
            self._begin_teardown(pod.key)
        elif pod.key not in self._sandboxes and not pod.is_terminal:
            self._start_worker(pod.key, self._sync_pod(pod.key))

    def _on_pod_delete(self, pod):
        self._begin_teardown(pod.key)

    def _begin_teardown(self, pod_key):
        existing = self._workers.pop(pod_key, None)
        if existing is not None and existing.is_alive:
            existing.interrupt("pod deleted")
        self._workers[pod_key] = self.sim.spawn(
            self._safe_teardown(pod_key), name=f"pod-teardown-{pod_key}")

    def _safe_teardown(self, pod_key):
        try:
            yield from self._teardown_pod(pod_key)
        except Interrupt:
            pass

    def _start_worker(self, pod_key, coroutine):
        existing = self._workers.get(pod_key)
        if existing is not None and existing.is_alive:
            coroutine.close()
            return
        self._workers[pod_key] = self.sim.spawn(
            self._guarded(pod_key, coroutine), name=f"pod-worker-{pod_key}")

    def _guarded(self, pod_key, coroutine):
        try:
            yield from coroutine
        except Interrupt:
            pass

    def _runtime_for(self, pod):
        runtime = self.runtimes.get(pod.spec.runtime_class_name)
        if runtime is None:
            runtime = self.runtimes.get(None)
        if runtime is None:
            raise RuntimeError(
                f"no runtime for class {pod.spec.runtime_class_name!r}")
        return runtime

    # ------------------------------------------------------------------
    # Pod sync
    # ------------------------------------------------------------------

    def _sync_pod(self, pod_key):
        yield self.sim.timeout(self.config.kubelet.sync_loop_reaction)
        pod = self.pod_informer.cache.get_copy(pod_key)
        if pod is None or pod.is_terminal or pod_key in self._sandboxes:
            return
        with self._telemetry.span("kubelet.start_pod",
                                  node=self.node_name):
            yield from self._run_pod(pod, pod_key)

    def _run_pod(self, pod, pod_key):
        runtime = self._runtime_for(pod)

        for container in pod.spec.containers + pod.spec.init_containers:
            yield from runtime.pull_image(container.image)
        sandbox = yield from runtime.run_pod_sandbox(pod)
        self._sandboxes[pod_key] = sandbox
        containers = self._containers.setdefault(pod_key, {})

        yield from self._post_status(
            pod_key, phase="Pending", pod_ip=sandbox.ip,
            conditions=[("PodScheduled", "True"), ("Initialized", "False"),
                        ("Ready", "False")])

        # Implicit init step: wait for the enhanced kubeproxy to finish
        # injecting service routing rules into the Kata guest.
        if (self.enhanced_proxy is not None
                and sandbox.runtime == "kata"):
            yield from self._wait_for_routing_rules(sandbox)

        for spec in pod.spec.init_containers:
            container = yield from runtime.create_container(sandbox, spec)
            containers[spec.name] = container
            yield from runtime.start_container(container)
            yield from runtime.stop_container(container)

        yield from self._post_status(
            pod_key, phase="Pending", pod_ip=sandbox.ip,
            conditions=[("Initialized", "True")])

        for spec in pod.spec.containers:
            container = yield from runtime.create_container(sandbox, spec)
            containers[spec.name] = container
            yield from runtime.start_container(container)
            self.recorder.event(pod, "Started",
                                f"Started container {spec.name}")

        self.pods_started += 1
        self._started_counter.inc()
        yield from self._post_status(
            pod_key, phase="Running", pod_ip=sandbox.ip,
            container_names=[c.name for c in pod.spec.containers],
            conditions=[("Initialized", "True"), ("ContainersReady", "True"),
                        ("Ready", "True")])

        # Health monitoring: probes and restart policy.
        for spec in pod.spec.containers:
            if spec.liveness_probe or spec.readiness_probe:
                self.sim.spawn(
                    self._probe_loop(pod_key, spec, runtime),
                    name=f"probes-{pod_key}-{spec.name}")

    # ------------------------------------------------------------------
    # Probes & restart policy
    # ------------------------------------------------------------------

    def _probe_loop(self, pod_key, spec, runtime):
        """Periodically probe one container; restart on liveness failure,
        flip the Ready condition on readiness failure."""
        liveness = spec.liveness_probe or {}
        readiness = spec.readiness_probe or {}
        period = float(liveness.get("periodSeconds")
                       or readiness.get("periodSeconds") or 5.0)
        threshold = int(liveness.get("failureThreshold")
                        or readiness.get("failureThreshold") or 3)
        initial = float(liveness.get("initialDelaySeconds")
                        or readiness.get("initialDelaySeconds") or 0.0)
        liveness_failures = 0
        readiness_failures = 0
        reported_unready = False
        try:
            yield self.sim.timeout(initial)
            while not self._stopped:
                yield self.sim.timeout(period)
                containers = self._containers.get(pod_key)
                if containers is None:
                    return
                container = containers.get(spec.name)
                if container is None:
                    return
                if container.healthy and container.state == "running":
                    liveness_failures = 0
                    readiness_failures = 0
                    if reported_unready:
                        reported_unready = False
                        yield from self._post_status(
                            pod_key, phase="Running",
                            conditions=[("ContainersReady", "True"),
                                        ("Ready", "True")])
                    continue
                if liveness:
                    liveness_failures += 1
                    if liveness_failures >= threshold:
                        liveness_failures = 0
                        yield from self._restart_container(
                            pod_key, spec, container, runtime)
                        continue
                if readiness and not reported_unready:
                    readiness_failures += 1
                    if readiness_failures >= threshold:
                        reported_unready = True
                        yield from self._post_status(
                            pod_key, phase="Running",
                            conditions=[("ContainersReady", "False"),
                                        ("Ready", "False")])
        except Interrupt:
            return

    def _restart_container(self, pod_key, spec, container, runtime):
        """Liveness failure: restart per the pod's restart policy."""
        pod = self.pod_informer.cache.get_copy(pod_key)
        if pod is None:
            return
        yield from runtime.stop_container(container)
        if pod.spec.restart_policy == "Never":
            yield from self._post_status(pod_key, phase="Failed")
            return
        backoff = min(0.1 * (2 ** container.restart_count), 5.0)
        yield self.sim.timeout(backoff)
        fresh = yield from runtime.create_container(container.sandbox, spec)
        fresh.restart_count = container.restart_count + 1
        self._containers[pod_key][spec.name] = fresh
        yield from runtime.start_container(fresh)
        self.recorder.event(
            pod, "BackOff" if fresh.restart_count > 2 else "Restarted",
            f"Restarted container {spec.name} "
            f"(restart #{fresh.restart_count})", event_type="Warning")
        yield from self._post_status(
            pod_key, phase="Running",
            container_names=[c.name for c in pod.spec.containers],
            conditions=[("ContainersReady", "True"), ("Ready", "True")])

    def _wait_for_routing_rules(self, sandbox):
        """The ``network-rules-check`` init container's poll loop."""
        agent = sandbox.extra.get("agent")
        if agent is None:
            return
        self.enhanced_proxy.on_sandbox_started(sandbox, agent)
        while not agent.rules_ready:
            yield self.sim.timeout(self.config.network.init_container_poll)

    def _teardown_pod(self, pod_key):
        sandbox = self._sandboxes.pop(pod_key, None)
        containers = self._containers.pop(pod_key, {})
        if sandbox is not None:
            runtime = self._runtime_by_name(sandbox.runtime)
            for container in containers.values():
                if container.state == "running":
                    yield from runtime.stop_container(container)
            yield from runtime.stop_pod_sandbox(sandbox)
            self.pods_stopped += 1
        self._workers.pop(pod_key, None)

    def _runtime_by_name(self, name):
        for runtime in self.runtimes.values():
            if runtime.name == name:
                return runtime
        return next(iter(self.runtimes.values()))

    def _post_status(self, pod_key, phase, pod_ip=None, conditions=(),
                     container_names=()):
        """Patch the pod status (kubelet status manager)."""
        yield self.sim.timeout(self.config.kubelet.status_update)
        pod = self.pod_informer.cache.get_copy(pod_key)
        if pod is None:
            try:
                namespace, name = pod_key.split("/", 1)
                pod = yield from self.client.get("pods", name,
                                                 namespace=namespace)
            except ApiError:
                return
        pod.status.phase = phase
        if pod_ip:
            pod.status.pod_ip = pod_ip
        pod.status.host_ip = self._host_ip()
        if pod.status.start_time is None:
            pod.status.start_time = self.sim.now
        for condition_type, status in conditions:
            pod.status.set_condition(condition_type, status,
                                     now=self.sim.now)
        if container_names:
            from repro.objects.pod import ContainerStatus

            handles = self._containers.get(pod_key, {})
            pod.status.container_statuses = [
                ContainerStatus(
                    name=name, ready=True,
                    restart_count=getattr(handles.get(name), "restart_count",
                                          0),
                    state={"running": {"startedAt": self.sim.now}})
                for name in container_names
            ]
        try:
            yield from self.client.update_status(pod)
        except (Conflict, NotFound):
            pass
        except ApiError:
            # Apiserver outage: retry once the server is back.
            def retry(key=pod_key, ph=phase, ip=pod_ip, conds=conditions,
                      names=container_names):
                yield self.sim.timeout(2.0)
                yield from self._post_status(key, ph, pod_ip=ip,
                                             conditions=conds,
                                             container_names=names)

            self.sim.spawn(retry(), name=f"status-retry-{pod_key}")

    def _host_ip(self):
        for address in self.node.status.addresses:
            if address.type == "InternalIP":
                return address.address
        return None

    # ------------------------------------------------------------------
    # Kubelet server API (proxied by vn-agent for tenants)
    # ------------------------------------------------------------------

    def get_logs(self, namespace, pod_name, container_name=None, tail=None):
        """Return log lines for a container (kubelet /containerLogs)."""
        pod_key = f"{namespace}/{pod_name}"
        containers = self._containers.get(pod_key)
        if not containers:
            raise NotFound(f"pod {pod_key} has no containers on this node")
        if container_name is None:
            container_name = next(iter(containers))
        container = containers.get(container_name)
        if container is None:
            raise NotFound(f"container {container_name!r} not found")
        runtime = self._runtime_by_name(container.sandbox.runtime)
        return runtime.read_logs(container, tail=tail)

    def exec_in_pod(self, namespace, pod_name, command,
                    container_name=None):
        """Coroutine: run a command in a container (kubelet /exec)."""
        pod_key = f"{namespace}/{pod_name}"
        containers = self._containers.get(pod_key)
        if not containers:
            raise NotFound(f"pod {pod_key} has no containers on this node")
        if container_name is None:
            container_name = next(iter(containers))
        container = containers.get(container_name)
        if container is None:
            raise NotFound(f"container {container_name!r} not found")
        runtime = self._runtime_by_name(container.sandbox.runtime)
        result = yield from runtime.exec_in_container(container, command)
        return result

    def sandbox_for(self, namespace, pod_name):
        return self._sandboxes.get(f"{namespace}/{pod_name}")
