"""kubelet, CRI, and container runtimes."""

from .cri import ContainerHandle, ContainerRuntime, ContainerState, SandboxHandle
from .kubelet import Kubelet
from .runtimes.kata import KataAgent, KataRuntime
from .runtimes.runc import RuncRuntime

__all__ = [
    "ContainerHandle",
    "ContainerRuntime",
    "ContainerState",
    "KataAgent",
    "KataRuntime",
    "Kubelet",
    "RuncRuntime",
    "SandboxHandle",
]
