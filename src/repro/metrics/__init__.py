"""Reporting helpers for the benchmark harness."""

from .reporting import (
    format_apf,
    format_bucket_table,
    format_durability,
    format_failover,
    format_histogram,
    format_hotpath,
    format_phase_breakdown,
    format_swapper,
    format_syncer_health,
    format_table,
    format_telemetry,
    pods_per_node,
    summarize,
)

__all__ = [
    "format_apf",
    "format_bucket_table",
    "format_durability",
    "format_failover",
    "format_histogram",
    "format_hotpath",
    "format_phase_breakdown",
    "format_swapper",
    "format_syncer_health",
    "format_table",
    "format_telemetry",
    "pods_per_node",
    "summarize",
]
