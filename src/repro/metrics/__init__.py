"""Reporting helpers for the benchmark harness."""

from .reporting import (
    format_bucket_table,
    format_histogram,
    format_phase_breakdown,
    format_syncer_health,
    format_table,
    summarize,
)

__all__ = [
    "format_bucket_table",
    "format_histogram",
    "format_phase_breakdown",
    "format_syncer_health",
    "format_table",
    "summarize",
]
