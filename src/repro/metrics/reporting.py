"""ASCII reporting helpers used by the benchmark harness.

The benchmarks print the same rows/series the paper reports; these
helpers render them readably in pytest output and EXPERIMENTS.md.
"""


def format_table(headers, rows, title=None):
    """Render a fixed-width ASCII table."""
    columns = [str(h) for h in headers]
    str_rows = [[_fmt(cell) for cell in row] for row in rows]
    widths = [len(col) for col in columns]
    for row in str_rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines = []
    if title:
        lines.append(title)
    sep = "-+-".join("-" * width for width in widths)
    lines.append(" | ".join(col.ljust(width)
                            for col, width in zip(columns, widths)))
    lines.append(sep)
    for row in str_rows:
        lines.append(" | ".join(cell.ljust(width)
                                for cell, width in zip(row, widths)))
    return "\n".join(lines)


def _fmt(cell):
    if isinstance(cell, float):
        return f"{cell:.2f}"
    return str(cell)


def format_histogram(samples, bucket_width=1.0, max_width=50, title=None):
    """Render a horizontal ASCII histogram of creation times (Fig. 7)."""
    if not samples:
        return "(no samples)"
    counts = {}
    for value in samples:
        bucket = int(value // bucket_width)
        counts[bucket] = counts.get(bucket, 0) + 1
    peak = max(counts.values())
    lines = [title] if title else []
    for bucket in range(max(counts) + 1):
        count = counts.get(bucket, 0)
        bar = "#" * max(1 if count else 0,
                        round(count / peak * max_width))
        low = bucket * bucket_width
        high = low + bucket_width
        lines.append(f"  [{low:5.1f},{high:5.1f}) {count:6d} {bar}")
    return "\n".join(lines)


def format_phase_breakdown(phase_means, title="Phase breakdown"):
    """Render the Fig. 8 style breakdown with percentages."""
    total = sum(phase_means.values()) or 1.0
    rows = [(phase, seconds, 100.0 * seconds / total)
            for phase, seconds in phase_means.items()]
    return format_table(["phase", "mean (s)", "share (%)"], rows,
                        title=title)


def format_bucket_table(phase_buckets, bucket_width=2.0,
                        title="Time bucket counts (Table I)"):
    """Render the Table I layout: phases x time buckets."""
    bucket_count = len(next(iter(phase_buckets.values())))
    headers = ["phase"] + [
        f"[{int(i * bucket_width)},{int((i + 1) * bucket_width)}]"
        for i in range(bucket_count)
    ]
    rows = [[phase] + counts for phase, counts in phase_buckets.items()]
    return format_table(headers, rows, title=title)


def format_syncer_health(syncer, title="Syncer health"):
    """Render per-tenant circuit state plus watchdog restart counts.

    One row per tenant the syncer has health data for: breaker state,
    consecutive failures, total opens/probes, items currently parked,
    and accumulated time in a degraded (non-closed) state.  A trailing
    section lists worker restart counts from the watchdog.
    """
    rows = [
        [tenant, entry["state"], entry["consecutive_failures"],
         entry["opens_total"], entry["probes_total"], entry["parked"],
         entry["time_degraded"]]
        for tenant, entry in sorted(syncer.health.stats().items())
    ]
    if not rows:
        rows = [["(no tenants)", "-", 0, 0, 0, 0, 0.0]]
    table = format_table(
        ["tenant", "circuit", "consec", "opens", "probes", "parked",
         "degraded (s)"],
        rows, title=title)
    restarts = syncer.worker_restarts
    total = sum(restarts.values())
    lines = [table, f"worker restarts: {total}"]
    for label, count in sorted(restarts.items()):
        lines.append(f"  {label}: {count}")
    return "\n".join(lines)


def format_failover(ha, title="Syncer HA failover"):
    """Render the failover log of a :class:`SyncerHA` group: one row per
    leadership term (identity, fencing token, time-to-sync, MTTR), plus
    the elector counters and the fenced-write / fencing-rejection totals
    that prove the split-brain guard ran (DESIGN.md §10)."""
    rows = [
        [record["identity"], record["token"],
         f"{record['elected_at']:.2f}", f"{record['serving_at']:.2f}",
         f"{record['sync_seconds']:.3f}",
         "-" if record["mttr"] is None else f"{record['mttr']:.3f}"]
        for record in ha.failovers
    ]
    if not rows:
        rows = [["(no leader yet)", "-", "-", "-", "-", "-"]]
    table = format_table(
        ["leader", "token", "elected", "serving", "sync (s)", "MTTR (s)"],
        rows, title=title)
    lines = [table]
    for elector in ha.electors:
        stats = elector.stats()
        lines.append(
            f"  {stats['identity']}: acquisitions={stats['acquisitions']} "
            f"renewals={stats['renewals']} losses={stats['losses']}"
            + (" [leading]" if stats["is_leader"] else ""))
    store = ha.super_cluster.api.store
    lines.append(f"fenced writes: {ha.stats()['fenced_writes']}  "
                 f"fencing rejections: {store.fencing_rejections}")
    return "\n".join(lines)


def format_durability(store, title="Store durability"):
    """Render a :class:`~repro.storage.ReplicatedStore` group's health:
    one row per replica (role, applied revision, lag, WAL size), the
    recovery log (who died, who took over, MTTR, committed writes
    lost — the number that must stay 0), and the stale-read counter
    from the follower-read path (DESIGN.md §13)."""
    stats = store.stats()
    rows = []
    for replica in stats.get("replicas", []):
        wal = replica["wal"] or {}
        rows.append([
            replica["name"], replica["role"],
            "up" if replica["alive"] else "down",
            replica["applied_revision"], replica["lag"],
            replica["records_applied"],
            wal.get("records", 0), wal.get("torn_records", 0),
        ])
    if not rows:
        rows = [["(single store)", "-", "-", stats.get("revision", 0),
                 0, 0, 0, 0]]
    table = format_table(
        ["replica", "role", "state", "applied", "lag", "streamed",
         "wal recs", "torn"],
        rows, title=title)
    lines = [table]
    for record in stats.get("recoveries_log", []):
        mttr = record.get("mttr")
        lines.append(
            f"  {record['victim']} died ({record['reason']}) "
            f"@{record['killed_at']:.2f}s -> {record.get('promoted', '?')} "
            f"token={record.get('token', '?')} "
            f"MTTR={'-' if mttr is None else f'{mttr:.3f}s'} "
            f"lost_writes={record.get('lost_writes', '?')}")
    lines.append(
        f"failovers: {stats.get('failovers', 0)}  "
        f"stale reads rejected: {stats.get('stale_reads', 0)}  "
        f"store recoveries: {stats.get('recoveries', 0)}")
    return "\n".join(lines)


def format_apf(limiter, title="APF admission (priority & fairness)"):
    """Render an :class:`~repro.apiserver.APFLimiter`'s per-level stats:
    seats vs. peak concurrency (borrowing shows as peak > seats),
    dispatched/shed counts split by shed reason (queue overflow vs.
    bounded-wait timeout), and mean queue wait (DESIGN.md §15)."""
    rows = []
    for level in limiter.snapshot():
        seats = "exempt" if level["exempt"] else level["seats"]
        rows.append([
            level["level"], seats, level["peak_in_use"],
            level["borrowed_peak"], level["dispatched"],
            level["rejected_queue_full"], level["rejected_timeout"],
            f"{level['mean_wait']*1000:.1f}ms",
        ])
    table = format_table(
        ["level", "seats", "peak", "borrowed", "dispatched",
         "shed(full)", "shed(timeout)", "mean wait"],
        rows, title=title)
    return table


def format_swapper(swapper, title="Scale-to-zero swapper"):
    """Render an :class:`~repro.core.IdleSwapper`'s fleet state: how
    many tracked planes are swapped out, resident memory, wake counts
    split warm/cold, and the wake-latency p99 against the SLO."""
    total = len(swapper._tracked)
    swapped = swapper.swapped_count()
    wakes = len(swapper.wake_samples)
    warm = sum(1 for _t, kind, _e in swapper.wake_samples
               if kind == "warm")
    p99 = swapper.wake_p99()
    rows = [
        ["tracked planes", total],
        ["swapped out", f"{swapped} ({100.0*swapped/total:.1f}%)"
         if total else "0"],
        ["resident bytes", f"{swapper.total_resident_bytes():,.0f}"],
        ["swap-outs", swapper.swap_out_count],
        ["wakes (warm/cold)", f"{wakes} ({warm}/{wakes - warm})"],
        ["wake p99", f"{p99:.3f}s" if wakes else "-"],
        ["wake SLO", "-" if swapper.wake_slo is None
         else f"{swapper.wake_slo:.3f}s"],
    ]
    return format_table(["metric", "value"], rows, title=title)


def summarize(result):
    """One-line summary of a StressResult."""
    return (f"{result.mode}: pods={result.num_pods} "
            f"tenants={result.num_tenants} duration={result.duration:.1f}s "
            f"throughput={result.throughput:.0f}/s mean={result.mean:.2f}s "
            f"p99={result.percentile(99):.2f}s")


def pods_per_node(syncer):
    """Super pods currently bound to each physical node.

    Reads the pods cache's node index (one posting lookup per node)
    instead of scanning every cached pod per node — the same index the
    hot-path report uses to surface placement skew.
    """
    from repro.core.syncer.conversion import INDEX_NODE, node_index

    pods = syncer.super_informer("pods").cache
    pods.add_index(INDEX_NODE, node_index)  # idempotent
    return {node: len(pods.index_keys(INDEX_NODE, node))
            for node in syncer.super_informer("nodes").cache.keys()}


def format_telemetry(snapshot, title="Telemetry", families=None,
                     max_series=8):
    """Render a registry snapshot (``Telemetry.snapshot()``) compactly.

    One row per series: counters/gauges show their value, histograms
    their count / mean / p99.  ``families`` restricts the listing (e.g.
    the chaos report shows only the core families); per family at most
    ``max_series`` series print, the rest collapse into a ``(+N more)``
    row with the family total so big label spaces stay readable.
    """
    wanted = set(families) if families is not None else None
    rows = []
    for family in snapshot.get("families", ()):
        if wanted is not None and family["name"] not in wanted:
            continue
        series = family["series"]
        for entry in series[:max_series]:
            labelset = ",".join(f"{k}={v}"
                                for k, v in sorted(entry["labels"].items()))
            name = family["name"] + (f"{{{labelset}}}" if labelset else "")
            if family["kind"] == "histogram":
                count = entry["count"]
                mean = entry["sum"] / count if count else 0.0
                rows.append([name, f"n={count} mean={mean:.4f}s"])
            else:
                rows.append([name, entry["value"]])
        if len(series) > max_series:
            if family["kind"] == "histogram":
                total = sum(entry["count"] for entry in series)
            else:
                total = sum(entry["value"] for entry in series)
            rows.append([f"{family['name']} (+{len(series) - max_series} "
                         f"more)", f"total={total}"])
    if not rows:
        rows = [["(no metrics)", "-"]]
    lines = [format_table(["series", "value"], rows, title=title)]
    spans = snapshot.get("spans") or {}
    if spans:
        span_rows = [
            [name, agg["count"], agg["errors"], agg["mean_seconds"]]
            for name, agg in spans.items()
        ]
        lines.append(format_table(
            ["span", "count", "errors", "mean (s)"], span_rows,
            title="Span aggregates"))
    return "\n".join(lines)


def format_hotpath(syncer, title="Syncer hot path"):
    """Render the DESIGN.md §9 hot-path counters: dispatch sharding,
    downward write batching, and per-node placement from the pod index."""
    stats = syncer.stats()
    downward = stats["downward"]
    rows = [
        ["dispatch shards", stats["dispatch_shards"]],
        ["active shards", downward.get("active_shards", 1)],
        ["shard rebalances", downward.get("rebalances", 0)],
        ["dws depth by shard", downward.get("depth_by_shard",
                                            [downward["depth"]])],
        ["dws lock contentions", stats["dws_lock_contentions"]],
        ["uws lock contentions", stats["uws_lock_contentions"]],
    ]
    batching = stats["downward_batching"]
    rows.append(["downward batching",
                 "on" if batching["enabled"] else "off (pass-through)"])
    if batching["enabled"]:
        rows.extend([
            ["  batches flushed", batching["batches_flushed"]],
            ["  ops batched", batching["ops_batched"]],
            ["  largest batch", batching["largest_batch"]],
        ])
    table = format_table(["metric", "value"], rows, title=title)
    placement = pods_per_node(syncer)
    busiest = sorted(placement.items(), key=lambda kv: (-kv[1], kv[0]))[:5]
    lines = [table, "busiest nodes (pods via node index):"]
    if busiest:
        for node, count in busiest:
            lines.append(f"  {node}: {count}")
    else:
        lines.append("  (no nodes)")
    return "\n".join(lines)
