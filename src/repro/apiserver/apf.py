"""API Priority & Fairness admission for the super apiserver (DESIGN.md §15).

At real fleet density the super apiserver is the shared choke point:
most tenants are idle, a few are abusive, and the seed's coarse
``MaxInflightLimiter`` degrades everyone equally when it saturates.
This module reproduces the shape of Kubernetes API Priority & Fairness:

- **Classification** — a :class:`FlowClassifier` maps each request's
  credential to a *tier* (``system``/``platinum``/``standard``/``free``)
  and a *flow* (the tenant identity), the FlowSchema role.
- **Priority levels** — each tier owns a share of the apiserver's seat
  pool (:class:`~repro.config.ApfConfig`), may *borrow* idle seats from
  the shared pool up to a cap, and ``exempt`` levels (system traffic)
  bypass seats entirely.
- **Shuffle-shard fair queues** — inside a level, flows are dealt a
  deterministic *hand* of queues (crc32-dealt, like upstream shuffle
  sharding); an over-active flow can only poison its own hand while
  other flows' queues keep draining round-robin.
- **Bounded wait + shedding** — queued requests wait at most the
  level's ``queue_wait`` (with a deterministic per-ticket jitter so
  expiry storms don't synchronize); overflow and timeout both surface
  as a structured 429 :class:`~repro.apiserver.errors.TooManyRequests`
  whose ``retry_after`` hint scales with queue pressure.  The clientgo
  stack honors the hint instead of blind exponential retry.

Everything is deterministic per seed: queue dealing and jitter derive
from crc32 streams, dispatch order is fixed, and seat hand-off mirrors
the kernel Semaphore's release-stamp bookkeeping so the vector-clock
race detector sees real happens-before edges.
"""

import random
import zlib
from collections import deque

from repro.telemetry import telemetry_of

from .errors import TooManyRequests

#: Wake/queue priority rank per tier (lower wakes first).
TIER_RANK = {"system": 0, "platinum": 1, "standard": 2, "free": 3}

_QUEUED = "queued"
_ADMITTED = "admitted"
_REJECTED = "rejected"
_RELEASED = "released"


class FlowClassifier:
    """Maps request credentials to (tier, flow) — the FlowSchema role.

    Resolution order: explicit per-user assignment, then group rules,
    then the built-in system rule (``system:masters`` and ``system:*``
    users are control-plane infrastructure), then the default tier.
    """

    def __init__(self, default_tier="standard"):
        self.default_tier = default_tier
        self._users = {}
        self._groups = {}

    def assign(self, user, tier):
        """Pin one user (e.g. ``tenant-acme``) to a tier."""
        self._users[user] = tier

    def assign_group(self, group, tier):
        self._groups[group] = tier

    def tier_of(self, credential):
        tier = self._users.get(credential.user)
        if tier is not None:
            return tier
        for group in credential.groups:
            tier = self._groups.get(group)
            if tier is not None:
                return tier
        if "system:masters" in credential.groups or \
                credential.user.startswith("system:"):
            return "system"
        return self.default_tier

    def flow_of(self, credential):
        """The fairness flow: one per tenant identity."""
        return credential.user


class Ticket:
    """One admission grant (or pending grant) issued by the limiter."""

    __slots__ = ("level", "flow", "state", "event", "queue_index",
                 "queued_at", "seq")

    def __init__(self, level, flow, seq):
        self.level = level
        self.flow = flow
        self.seq = seq
        self.state = _QUEUED
        self.event = None
        self.queue_index = None
        self.queued_at = None


class PriorityLevel:
    """Runtime state of one tier's priority level."""

    def __init__(self, spec, seats, borrow_cap):
        self.spec = spec
        self.name = spec.name
        self.seats = seats            # nominal concurrency share
        self.borrow_cap = borrow_cap  # hard per-level occupancy cap
        self.in_use = 0
        self.waiting = 0
        self.queues = [deque() for _ in range(spec.queues)]
        self._cursor = 0              # round-robin dispatch cursor
        self._hands = {}              # flow -> dealt queue indices
        # Report counters (exported via metrics.format_apf).
        self.dispatched = 0
        self.rejected_queue_full = 0
        self.rejected_timeout = 0
        self.peak_in_use = 0
        self.borrowed_peak = 0
        self.wait_total = 0.0

    def hand_for(self, flow, shuffle_seed):
        """Deterministic shuffle-shard dealing: crc32 draws without
        replacement, memoized per flow."""
        hand = self._hands.get(flow)
        if hand is None:
            avail = list(range(len(self.queues)))
            digest = zlib.crc32(
                f"{shuffle_seed}:{self.name}:{flow}".encode("utf-8"))
            hand = []
            for _ in range(min(self.spec.hand_size, len(avail))):
                digest = zlib.crc32(digest.to_bytes(4, "big"), digest)
                hand.append(avail.pop(digest % len(avail)))
            self._hands[flow] = hand
        return hand

    def shortest_queue(self, flow, shuffle_seed):
        """The least-loaded queue of the flow's hand (ties: lowest index)."""
        best = None
        for index in self.hand_for(flow, shuffle_seed):
            depth = len(self.queues[index])
            if best is None or depth < best[0]:
                best = (depth, index)
        return best[1]

    def pop_next(self):
        """Next live queued ticket, round-robin across queues.

        Skips expired tickets and dead waiters (a process interrupted
        while queued detaches from its event; seating it would leak the
        seat forever — same hazard as the workqueue's dead waiters).
        """
        for _ in range(len(self.queues)):
            queue = self.queues[self._cursor]
            self._cursor = (self._cursor + 1) % len(self.queues)
            while queue:
                ticket = queue.popleft()
                if ticket.state != _QUEUED:
                    continue
                if not ticket.event.callbacks:
                    ticket.state = _REJECTED
                    self.waiting -= 1
                    continue
                return ticket
        return None


class APFLimiter:
    """Priority-and-fairness seat allocator for one apiserver.

    ``acquire`` is a coroutine: it returns an admitted :class:`Ticket`
    (possibly after a bounded queue wait) or raises
    :class:`TooManyRequests` with a pressure-scaled Retry-After hint.
    Callers must pair every admitted ticket with :meth:`release`.
    """

    def __init__(self, sim, config, classifier=None, name="apf"):
        self.sim = sim
        self.config = config
        self.name = name
        self.classifier = classifier or FlowClassifier(config.default_tier)
        share_sum = sum(t.shares for t in config.tiers if not t.exempt)
        self.levels = {}
        for spec in config.tiers:
            if spec.exempt:
                seats = 0
                cap = 0
            else:
                seats = max(1, round(config.total_seats
                                     * spec.shares / share_sum))
                cap = min(config.total_seats,
                          max(seats, int(seats * spec.borrow_cap_factor)))
            self.levels[spec.name] = PriorityLevel(spec, seats, cap)
        self.total_seats = config.total_seats
        self.total_in_use = 0
        self.exempt_in_use = 0
        self._seq = 0
        # Deterministic jitter stream for queue-wait deadlines; seeded
        # from the config's shuffle seed, independent of sim.rng so
        # enabling APF never perturbs unrelated draws.
        self._jitter_rng = random.Random(
            zlib.crc32(f"apf:{name}:{config.shuffle_seed}".encode("utf-8")))
        # Race detector: as in simkernel Semaphore — a seat released with
        # no waiter parks the releaser's stamp; the next uncontended
        # acquire absorbs it (release-acquire through the seat counter).
        self._release_stamp = None
        telemetry = telemetry_of(sim)
        self._rejected_total = telemetry.counter(
            "apf_rejected_total", "requests shed by APF admission",
            labels=("level", "reason"))
        self._admitted_total = telemetry.counter(
            "apf_admitted_total", "requests admitted by APF",
            labels=("level",))
        self._queue_wait = telemetry.histogram(
            "apf_queue_wait_seconds", "APF queue wait of admitted requests",
            labels=("level",))

    # ------------------------------------------------------------------
    # Acquire / release
    # ------------------------------------------------------------------

    def level_of(self, credential):
        tier = self.classifier.tier_of(credential)
        level = self.levels.get(tier)
        if level is None:
            level = self.levels[self.config.default_tier]
        return level

    def acquire(self, credential, verb=None, plural=None):
        """Coroutine: admit, queue, or shed one request."""
        level = self.level_of(credential)
        flow = self.classifier.flow_of(credential)
        self._seq += 1
        ticket = Ticket(level, flow, self._seq)

        if level.spec.exempt:
            ticket.state = _ADMITTED
            self.exempt_in_use += 1
            level.dispatched += 1
            level.peak_in_use = max(level.peak_in_use, self.exempt_in_use)
            self._admitted_total.labels(level=level.name).inc()
            return ticket

        if level.waiting == 0 and self._can_admit(level):
            self._seat(level, ticket, absorb=True)
            return ticket

        index = level.shortest_queue(flow, self.config.shuffle_seed)
        queue = level.queues[index]
        if len(queue) >= level.spec.queue_limit:
            level.rejected_queue_full += 1
            self._rejected_total.labels(
                level=level.name, reason="queue-full").inc()
            raise TooManyRequests(
                f"{self.name}: {level.name} queue {index} full",
                retry_after=self._retry_after(level))
        from repro.simkernel.events import Event

        ticket.event = Event(self.sim)
        ticket.queue_index = index
        ticket.queued_at = self.sim.now
        queue.append(ticket)
        level.waiting += 1
        self.sim.spawn(self._expire(ticket),
                       name=f"{self.name}-expire-{ticket.seq}")
        yield ticket.event
        # Dispatch (not expiry) seated the ticket before succeeding the
        # event; record how long fairness queuing held it.
        wait = self.sim.now - ticket.queued_at
        level.wait_total += wait
        self._queue_wait.labels(level=level.name).observe(wait)
        return ticket

    def release(self, ticket):
        if ticket.state != _ADMITTED:
            raise RuntimeError(
                f"{self.name}: release of {ticket.state} ticket")
        ticket.state = _RELEASED
        level = ticket.level
        if level.spec.exempt:
            self.exempt_in_use -= 1
            return
        level.in_use -= 1
        self.total_in_use -= 1
        if not self._dispatch():
            detector = self.sim.race_detector
            if detector is not None:
                self._release_stamp = detector.merge_stamps(
                    self._release_stamp, detector.current_stamp())

    # ------------------------------------------------------------------
    # Seat accounting
    # ------------------------------------------------------------------

    def _can_admit(self, level):
        return (level.in_use < level.borrow_cap
                and self.total_in_use < self.total_seats)

    def _seat(self, level, ticket, absorb=False):
        ticket.state = _ADMITTED
        level.in_use += 1
        self.total_in_use += 1
        level.dispatched += 1
        level.peak_in_use = max(level.peak_in_use, level.in_use)
        if level.in_use > level.seats:
            level.borrowed_peak = max(level.borrowed_peak,
                                      level.in_use - level.seats)
        self._admitted_total.labels(level=level.name).inc()
        if absorb:
            detector = self.sim.race_detector
            if detector is not None and self._release_stamp is not None:
                detector.absorb(self._release_stamp)

    def _dispatch(self):
        """Hand one freed seat to a waiter; returns True if one was seated.

        Starved-first: levels still under their nominal share are served
        before levels that would be borrowing, both in fixed tier order —
        so sustained saturation converges every level to its share, and
        no nonempty queue starves while seats keep turning over.
        """
        candidate = None
        for level in self.levels.values():
            if level.spec.exempt or level.waiting == 0:
                continue
            if not self._can_admit(level):
                continue
            if level.in_use < level.seats:
                candidate = level
                break
            if candidate is None:
                candidate = level
        if candidate is None:
            return False
        ticket = candidate.pop_next()
        if ticket is None:
            # Queues held only expired tickets or dead waiters
            # (pop_next already fixed the waiting count).
            return False
        candidate.waiting -= 1
        self._seat(candidate, ticket)
        ticket.event.succeed()
        return True

    # ------------------------------------------------------------------
    # Shedding
    # ------------------------------------------------------------------

    def _expire(self, ticket):
        """Watchdog: bound the ticket's queue wait (seeded jitter keeps
        simultaneous expiries from synchronizing)."""
        wait = (ticket.level.spec.queue_wait
                * (1.0 + 0.25 * self._jitter_rng.random()))
        yield self.sim.timeout(wait)
        if ticket.state != _QUEUED:
            return
        ticket.state = _REJECTED
        level = ticket.level
        level.waiting -= 1
        if not ticket.event.callbacks:
            # The waiter was interrupted while queued; nothing listens,
            # and failing the event would crash the sim as undefused.
            return
        level.rejected_timeout += 1
        self._rejected_total.labels(
            level=level.name, reason="timeout").inc()
        ticket.event.fail(TooManyRequests(
            f"{self.name}: {level.name} queue wait exceeded "
            f"{level.spec.queue_wait:.2f}s",
            retry_after=self._retry_after(level)))

    def _retry_after(self, level):
        """Pressure-scaled Retry-After hint (deterministic; clients add
        their own jitter)."""
        capacity = max(1, len(level.queues) * level.spec.queue_limit)
        hint = (self.config.retry_after_base
                * (1.0 + 4.0 * level.waiting / capacity))
        return min(round(hint, 4), self.config.retry_after_max)

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------

    def snapshot(self):
        """Deterministic per-level stats for metrics.format_apf."""
        out = []
        for level in self.levels.values():
            out.append({
                "level": level.name,
                "seats": level.seats,
                "exempt": level.spec.exempt,
                "in_use": level.in_use,
                "peak_in_use": level.peak_in_use,
                "borrowed_peak": level.borrowed_peak,
                "dispatched": level.dispatched,
                "rejected_queue_full": level.rejected_queue_full,
                "rejected_timeout": level.rejected_timeout,
                "mean_wait": (level.wait_total / level.dispatched
                              if level.dispatched else 0.0),
            })
        return out
