"""Token-bucket rate limiting (simulated-time aware).

Used in two places, as in real Kubernetes: client-side request throttling
(client-go QPS/burst) and server-side per-user admission before processing.
"""


class TokenBucket:
    """A token bucket over the simulation clock.

    ``qps`` tokens accrue per simulated second, up to ``burst``.
    """

    def __init__(self, sim, qps, burst=None, name="ratelimiter"):
        if qps <= 0:
            raise ValueError("qps must be positive")
        self.sim = sim
        self.name = name
        self.qps = float(qps)
        self.burst = float(burst if burst is not None else qps)
        self._tokens = self.burst
        self._last_refill = sim.now
        self.throttled_count = 0
        self.throttled_time = 0.0

    def _refill(self):
        now = self.sim.now
        elapsed = now - self._last_refill
        if elapsed > 0:
            self._tokens = min(self.burst, self._tokens + elapsed * self.qps)
            self._last_refill = now

    def try_acquire(self, tokens=1.0):
        """Non-blocking: take tokens if available, else False."""
        self._refill()
        if self._tokens >= tokens:
            self._tokens -= tokens
            return True
        return False

    def delay_needed(self, tokens=1.0):
        """Seconds until ``tokens`` would be available (0 when ready)."""
        self._refill()
        if self._tokens >= tokens:
            return 0.0
        return (tokens - self._tokens) / self.qps

    def acquire(self, tokens=1.0):
        """Process helper: wait (in simulated time) until tokens available.

        Usage: ``yield from bucket.acquire()``.
        """
        while True:
            delay = self.delay_needed(tokens)
            if delay <= 0:
                self._tokens -= tokens
                return
            self.throttled_count += 1
            self.throttled_time += delay
            yield self.sim.timeout(delay)


class PerUserInflightLimiter:
    """API Priority & Fairness, simplified: a per-user inflight cap.

    The paper cites the upstream priority-and-fairness proposal as the
    community's partial answer to shared-apiserver interference; this
    implements its essential behaviour (no single user can occupy more
    than its share of the server's concurrency) so benchmarks can compare
    "shared apiserver + APF" against VirtualCluster's full isolation.
    """

    def __init__(self, sim, per_user_limit, name="apf"):
        from repro.simkernel.resources import Semaphore

        self.sim = sim
        self.per_user_limit = per_user_limit
        self.name = name
        self._semaphores = {}
        self._semaphore_factory = lambda user: Semaphore(
            sim, per_user_limit, name=f"{name}-{user}")

    def acquire(self, user):
        semaphore = self._semaphores.get(user)
        if semaphore is None:
            semaphore = self._semaphore_factory(user)
            self._semaphores[user] = semaphore
        return semaphore.acquire()

    def release(self, user):
        self._semaphores[user].release()

    def in_use(self, user):
        semaphore = self._semaphores.get(user)
        return semaphore.in_use if semaphore is not None else 0


class MaxInflightLimiter:
    """Caps concurrently-processing requests, like apiserver max-inflight."""

    def __init__(self, sim, limit, name="max-inflight"):
        from repro.simkernel.resources import Semaphore

        self._semaphore = Semaphore(sim, limit, name=name)
        self.peak_in_use = 0

    def acquire(self):
        event = self._semaphore.acquire()
        if self._semaphore.in_use > self.peak_in_use:
            self.peak_in_use = self._semaphore.in_use
        return event

    def release(self):
        self._semaphore.release()

    @property
    def in_use(self):
        return self._semaphore.in_use
