"""Authentication and RBAC authorization.

Authentication is certificate-shaped: a :class:`Credential` carries the
user name, groups, and a certificate hash.  The cert hash is what the
vn-agent compares against the hash stored in each VirtualCluster object to
identify which tenant a kubelet-API request belongs to (paper §III-B(3)).

Authorization implements the RBAC model over Role/ClusterRole(+Binding)
objects stored in the same control plane.
"""

import hashlib

from .errors import Forbidden, Unauthorized


class Credential:
    """An authenticated identity presented with each request."""

    __slots__ = ("user", "groups", "cert_hash")

    def __init__(self, user, groups=(), cert_pem=None, cert_hash=None):
        self.user = user
        self.groups = tuple(groups)
        if cert_hash is not None:
            self.cert_hash = cert_hash
        elif cert_pem is not None:
            self.cert_hash = hash_certificate(cert_pem)
        else:
            # Deterministic synthetic certificate per user.
            self.cert_hash = hash_certificate(f"CERT::{user}")

    @property
    def is_admin(self):
        return "system:masters" in self.groups

    def __repr__(self):
        return f"<Credential {self.user!r} groups={list(self.groups)}>"


def hash_certificate(cert_pem):
    """SHA-256 hash of a (synthetic) certificate, hex encoded.

    Requires a ``str``: hashing ``str()`` of an arbitrary object would
    bake its default repr — a memory address — into the "stable" hash
    (linter rule D006).
    """
    if not isinstance(cert_pem, str):
        raise TypeError(
            f"hash_certificate needs the certificate PEM as str, "
            f"got {type(cert_pem).__name__}")
    return hashlib.sha256(cert_pem.encode()).hexdigest()


ADMIN = Credential("admin", groups=("system:masters",))


class Authenticator:
    """Validates that the presented credential is known to this server."""

    def __init__(self):
        self._known = {}

    def register(self, credential):
        self._known[credential.cert_hash] = credential
        return credential

    def authenticate(self, credential):
        if credential is None:
            raise Unauthorized("no credential presented")
        known = self._known.get(credential.cert_hash)
        if known is None:
            raise Unauthorized(f"unknown certificate for {credential.user!r}")
        return known


class RBACAuthorizer:
    """RBAC over stored Role/ClusterRole/Binding objects.

    Reads the authoritative objects from the apiserver's storage through a
    narrow reader interface (``read_all(plural)`` returning typed objects)
    so it observes the same state clients do.
    """

    def __init__(self, reader):
        self._reader = reader

    def authorize(self, credential, verb, resource, namespace=None,
                  name=None):
        """Raise :class:`Forbidden` unless the request is allowed."""
        if credential.is_admin:
            return
        if self._allowed_by_cluster_bindings(credential, verb, resource, name):
            return
        if namespace and self._allowed_by_namespace_bindings(
                credential, verb, resource, namespace, name):
            return
        scope = f" in namespace {namespace!r}" if namespace else ""
        raise Forbidden(
            f"user {credential.user!r} cannot {verb} {resource}{scope}"
        )

    def _subject_matches(self, subject, credential):
        if subject.kind == "User":
            return subject.name == credential.user
        if subject.kind == "Group":
            return subject.name in credential.groups
        return False

    def _allowed_by_cluster_bindings(self, credential, verb, resource, name):
        roles = {role.name: role
                 for role in self._reader.read_all("clusterroles")}
        for binding in self._reader.read_all("clusterrolebindings"):
            if not any(self._subject_matches(s, credential)
                       for s in binding.subjects):
                continue
            role = roles.get(binding.role_ref.name)
            if role and any(rule.allows(verb, resource, name)
                            for rule in role.rules):
                return True
        return False

    def _allowed_by_namespace_bindings(self, credential, verb, resource,
                                       namespace, name):
        roles = {}
        for role in self._reader.read_all("roles"):
            if role.namespace == namespace:
                roles[role.name] = role
        cluster_roles = {role.name: role
                         for role in self._reader.read_all("clusterroles")}
        for binding in self._reader.read_all("rolebindings"):
            if binding.namespace != namespace:
                continue
            if not any(self._subject_matches(s, credential)
                       for s in binding.subjects):
                continue
            if binding.role_ref.kind == "ClusterRole":
                role = cluster_roles.get(binding.role_ref.name)
            else:
                role = roles.get(binding.role_ref.name)
            if role and any(rule.allows(verb, resource, name)
                            for rule in role.rules):
                return True
        return False


class AllowAllAuthorizer:
    """Used by tenant control planes where the tenant is cluster-admin."""

    def authorize(self, credential, verb, resource, namespace=None,
                  name=None):
        return
