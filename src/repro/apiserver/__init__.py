"""The simulated Kubernetes apiserver (one per control plane)."""

from .admission import (
    AdmissionPlugin,
    AdmissionRequest,
    ClusterIPAllocator,
    NamespaceLifecycle,
    PodDefaults,
    QuotaEnforcer,
    default_admission_chain,
)
from .auth import (
    ADMIN,
    AllowAllAuthorizer,
    Authenticator,
    Credential,
    RBACAuthorizer,
    hash_certificate,
)
from .errors import (
    AlreadyExists,
    ApiError,
    BadRequest,
    Conflict,
    FencingConflict,
    Forbidden,
    Invalid,
    NotFound,
    ServerUnavailable,
    Timeout,
    TooManyRequests,
    Unauthorized,
    is_retryable,
)
from .apf import APFLimiter, FlowClassifier, TIER_RANK
from .ratelimit import MaxInflightLimiter, TokenBucket
from .registry import ResourceRegistry
from .server import APIServer, WatchStream

__all__ = [name for name in dir() if not name.startswith("_")]
