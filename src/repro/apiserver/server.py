"""The apiserver: typed CRUD + list + watch over the MVCC store.

All request-handling methods are simulation coroutines: callers invoke
them as ``result = yield from api.create(cred, obj)`` inside a simulated
process.  Each request pays the configured authn/authz/admission overhead
plus etcd latency, and holds a max-inflight slot while being processed —
which is exactly the shared-control-plane pressure point the paper's
Figure 1 describes.
"""

import string

from repro.config import DEFAULT_CONFIG
from repro.objects import Namespace, generate_uid
from repro.telemetry import telemetry_of
from repro.objects.validation import ValidationError, validate_metadata
from repro.storage import (
    EVENT_PUT,
    EtcdStore,
    KeyAlreadyExists,
    KeyNotFound,
    RevisionConflict,
)

from .admission import AdmissionRequest, default_admission_chain
from .auth import ADMIN, AllowAllAuthorizer, Authenticator, RBACAuthorizer
from .errors import (
    AlreadyExists,
    BadRequest,
    Conflict,
    Invalid,
    NotFound,
)
from .ratelimit import MaxInflightLimiter
from .registry import ResourceRegistry

_NAME_ALPHABET = string.ascii_lowercase + string.digits


class StoreReader:
    """Zero-latency internal reads used by admission and RBAC."""

    def __init__(self, server):
        self._server = server

    def read(self, plural, namespace, name):
        obj_type = self._server.registry.get(plural)
        key = self._server._key(obj_type, namespace, name)
        raw, revision = self._server.store.try_get(key)
        if raw is None:
            return None
        return self._server._decode(obj_type, raw, revision)

    def read_all(self, plural):
        obj_type = self._server.registry.get(plural)
        prefix = self._server._prefix(obj_type)
        items, _revision = self._server.store.list_prefix(prefix)
        return [self._server._decode(obj_type, raw, rev)
                for _key, raw, rev in items]


class WatchStream:
    """A typed watch over one resource (optionally one namespace).

    Field/label selector filtering happens server-side (a predicate on
    the raw store events), so only relevant events reach this stream.
    """

    def __init__(self, server, obj_type, watch):
        self._server = server
        self._obj_type = obj_type
        self._watch = watch
        self.closed = False

    def next(self):
        """Coroutine: wait for and return the next (type, object) event."""
        event = yield self._watch.channel.get()
        delay = self._server.config.apiserver.watch_delivery
        if delay:
            yield self._server.sim.timeout(delay)
        return self._translate(event)

    def _translate(self, event):
        obj = self._server._decode(self._obj_type, event.value,
                                   event.revision)
        if event.type == EVENT_PUT:
            kind = "ADDED" if event.prev_value is None else "MODIFIED"
        else:
            kind = "DELETED"
        return kind, obj

    def stop(self):
        self.closed = True
        self._watch.cancel()
        # Deregister so a long-lived server doesn't accumulate dead
        # streams (reflectors relist many times over a simulation).
        try:
            self._server._watch_streams.remove(self)
        except ValueError:
            pass


class APIServer:
    """One control plane's apiserver."""

    def __init__(self, sim, name, config=None, store=None, registry=None,
                 authorizer=None, admission_plugins=None, rbac=False,
                 per_user_inflight=None, apf=None):
        self.sim = sim
        self.name = name
        self.config = config or DEFAULT_CONFIG
        # ``is not None``, not truthiness: an *empty* injected store has
        # __len__() == 0 and would be silently replaced.
        self.store = (store if store is not None
                      else EtcdStore(sim, name=f"{name}-etcd"))
        if hasattr(self.store, "set_unavailable_factory"):
            # A down store (killed leader, leaderless replica group)
            # surfaces as a retryable ServerUnavailable, not a raw
            # storage error clients don't know how to classify.
            from .errors import ServerUnavailable

            self.store.set_unavailable_factory(
                lambda message: ServerUnavailable(message))
        self.registry = registry or ResourceRegistry()
        self.reader = StoreReader(self)
        self.authenticator = Authenticator()
        self.authenticator.register(ADMIN)
        if authorizer is not None:
            self.authorizer = authorizer
        elif rbac:
            self.authorizer = RBACAuthorizer(self.reader)
        else:
            self.authorizer = AllowAllAuthorizer()
        self.admission = (admission_plugins
                          if admission_plugins is not None
                          else default_admission_chain())
        self._inflight = MaxInflightLimiter(
            sim, self.config.apiserver.max_inflight,
            name=f"{name}-inflight")
        # Legacy per-user concurrency shares (Fig. 1 ablation).
        self._apf = None
        if per_user_inflight is not None:
            from .ratelimit import PerUserInflightLimiter

            self._apf = PerUserInflightLimiter(
                sim, per_user_inflight, name=f"{name}-apf")
        # Tiered priority-and-fairness admission (DESIGN.md §15): an
        # APFLimiter classifying requests into per-tier levels with
        # shuffle-shard queues and Retry-After shedding.  None (the
        # default) keeps the seed's request path byte-identical.
        self.apf = apf
        self._watch_streams = []
        self.request_count = 0
        # Requests from tenant users (not system:masters infrastructure):
        # what the idle swapper treats as activity, so syncer heartbeats
        # don't keep a tenant-idle control plane resident.
        self.user_request_count = 0
        self.healthy = True
        telemetry = telemetry_of(sim)
        self._tracer = telemetry.tracer
        self._requests_total = telemetry.counter(
            "apiserver_requests_total", "apiserver requests by verb",
            labels=("server", "verb"))
        # Chaos hook (see repro.chaos.faults): may inject per-verb errors
        # or latency into the request path.
        self.fault_injector = None
        # Optional idle-swap support (see repro.core.swapper): when set
        # and swapped out, the first request pays the page-in latency.
        self.swap_state = None

    # ------------------------------------------------------------------
    # Keys and codecs
    # ------------------------------------------------------------------

    def _key(self, obj_type, namespace, name):
        if obj_type.NAMESPACED:
            if not namespace:
                raise BadRequest(
                    f"{obj_type.PLURAL} is namespaced; namespace required")
            return f"/registry/{obj_type.PLURAL}/{namespace}/{name}"
        return f"/registry/{obj_type.PLURAL}/{name}"

    def _prefix(self, obj_type, namespace=None):
        if obj_type.NAMESPACED and namespace:
            return f"/registry/{obj_type.PLURAL}/{namespace}/"
        return f"/registry/{obj_type.PLURAL}/"

    def _decode(self, obj_type, raw, revision):
        obj = obj_type.from_dict(raw)
        obj.metadata.resource_version = str(revision)
        return obj

    # ------------------------------------------------------------------
    # Request plumbing
    # ------------------------------------------------------------------

    def _begin(self, credential, verb, plural, namespace=None, name=None):
        """Common request front half: authn, authz, admission, overhead.

        Returns ``(credential, span, ticket)``; the span covers the
        whole request (queueing included) and both span and APF ticket
        are settled by :meth:`_release`.
        """
        if not self.healthy:
            from .errors import ServerUnavailable

            raise ServerUnavailable(f"{self.name} is down")
        if not getattr(self.store, "available", True):
            from .errors import ServerUnavailable

            raise ServerUnavailable(f"{self.name}: storage unavailable")
        if self.fault_injector is not None:
            yield from self.fault_injector.on_request(verb, plural)
        self.request_count += 1
        self._requests_total.labels(server=self.name, verb=verb).inc()
        span = self._span_start(verb)
        ticket = None
        try:
            credential = self.authenticator.authenticate(credential)
            self.authorizer.authorize(credential, verb, plural, namespace,
                                      name)
            is_system = "system:masters" in credential.groups
            if not is_system:
                self.user_request_count += 1
            if self.apf is not None:
                # Tiered admission: may queue (bounded) or shed with a
                # structured 429 before any seat or wake cost is paid.
                ticket = yield from self.apf.acquire(credential, verb,
                                                     plural)
            if self.swap_state is not None and not is_system:
                # System traffic (syncer heartbeats, controller scans) is
                # served from the residual resident set; only tenant
                # traffic pages a swapped control plane back in.
                yield from self.swap_state.ensure_awake()
            if self._apf is not None:
                yield self._apf.acquire(credential.user)
            yield self._inflight.acquire()
            try:
                yield self.sim.timeout(
                    self.config.apiserver.request_overhead)
            except BaseException:
                self._release(credential, ticket=ticket)  # span below
                ticket = None
                raise
        except BaseException:
            if ticket is not None:
                self.apf.release(ticket)
            self._span_finish(span, error=True)
            raise
        return credential, span, ticket

    def _release(self, credential, span=None, ticket=None):
        self._inflight.release()
        if self._apf is not None:
            self._apf.release(credential.user)
        if ticket is not None:
            self.apf.release(ticket)
        self._span_finish(span)

    def _span_start(self, verb):
        if not self._tracer.enabled:
            return None
        return self._tracer.start(f"apiserver.{verb}")

    def _span_finish(self, span, error=False):
        if span is not None:
            self._tracer.finish(span, error=error)

    def _admit(self, credential, verb, plural, obj, old_obj, namespace):
        request = AdmissionRequest(verb, plural, obj, old_obj=old_obj,
                                   namespace=namespace, credential=credential)
        for plugin in self.admission:
            plugin.admit(request, self.reader)

    # ------------------------------------------------------------------
    # CRUD
    # ------------------------------------------------------------------

    def _prepare_create(self, obj, namespace):
        """Pre-auth normalization shared by create() and transaction()."""
        obj_type = type(obj)
        plural = obj_type.PLURAL
        if not self.registry.has(plural):
            raise NotFound(f"no resource {plural!r} registered")
        obj = obj.copy()
        if obj_type.NAMESPACED:
            obj.metadata.namespace = obj.metadata.namespace or namespace
        if obj.metadata.name is None and obj.metadata.generate_name:
            obj.metadata.name = self._generate_name(obj.metadata.generate_name)
        return obj

    def _create_core(self, credential, obj):
        """Validate, admit and store a prepared object (synchronous)."""
        obj_type = type(obj)
        plural = obj_type.PLURAL
        try:
            validate_metadata(obj, obj_type.NAMESPACED)
        except ValidationError as exc:
            raise Invalid(str(exc)) from exc
        self._admit(credential, "create", plural, obj, None,
                    obj.metadata.namespace)
        obj.metadata.uid = generate_uid(self.sim)
        obj.metadata.creation_timestamp = self.sim.now
        obj.metadata.generation = 1
        obj.metadata.resource_version = None
        key = self._key(obj_type, obj.metadata.namespace, obj.metadata.name)
        try:
            revision = self.store.create(key, obj.to_dict())
        except KeyAlreadyExists as exc:
            raise AlreadyExists(
                f"{plural} {obj.key!r} already exists") from exc
        obj.metadata.resource_version = str(revision)
        return obj

    def create(self, credential, obj, namespace=None):
        """Coroutine: persist a new object; returns the stored copy."""
        obj = self._prepare_create(obj, namespace)
        credential, span, ticket = yield from self._begin(
            credential, "create", type(obj).PLURAL, obj.metadata.namespace,
            obj.metadata.name)
        try:
            obj = self._create_core(credential, obj)
            yield self.sim.timeout(self.config.apiserver.etcd_write)
            return obj
        finally:
            self._release(credential, span, ticket)

    def get(self, credential, plural, name, namespace=None):
        """Coroutine: fetch one object; raises NotFound."""
        obj_type = self.registry.get(plural)
        credential, span, ticket = yield from self._begin(
            credential, "get", plural, namespace, name)
        try:
            key = self._key(obj_type, namespace, name)
            try:
                raw, revision = self.store.get(key)
            except KeyNotFound as exc:
                raise NotFound(f"{plural} {name!r} not found") from exc
            yield self.sim.timeout(self.config.apiserver.etcd_read)
            return self._decode(obj_type, raw, revision)
        finally:
            self._release(credential, span, ticket)

    def list(self, credential, plural, namespace=None, label_selector=None,
             field_selector=None):
        """Coroutine: list objects; returns (items, resource_version)."""
        from repro.objects.selectors import match_fields

        obj_type = self.registry.get(plural)
        credential, span, ticket = yield from self._begin(
            credential, "list", plural, namespace)
        try:
            prefix = self._prefix(obj_type, namespace)
            raw_items, revision = self.store.list_prefix(prefix)
            cost = (self.config.apiserver.list_base
                    + self.config.apiserver.list_per_item * len(raw_items))
            yield self.sim.timeout(cost)
            items = []
            for _key, raw, item_rev in raw_items:
                obj = self._decode(obj_type, raw, item_rev)
                if label_selector is not None and not label_selector.matches(
                        obj.metadata.labels):
                    continue
                if field_selector and not match_fields(field_selector, raw):
                    continue
                items.append(obj)
            return items, str(revision)
        finally:
            self._release(credential, span, ticket)

    def update(self, credential, obj, subresource=None):
        """Coroutine: replace an object (CAS on its resourceVersion).

        ``subresource="status"`` replaces only the status block, like the
        real ``/status`` subresource used by kubelets and controllers.
        """
        credential, span, ticket = yield from self._begin(
            credential, "update", type(obj).PLURAL, obj.metadata.namespace,
            obj.metadata.name)
        try:
            new_obj = self._update_core(credential, obj,
                                        subresource=subresource)
            yield self.sim.timeout(self.config.apiserver.etcd_write)
            return new_obj
        finally:
            self._release(credential, span, ticket)

    def _update_core(self, credential, obj, subresource=None):
        """CAS-check, admit and store an update (synchronous)."""
        obj_type = type(obj)
        plural = obj_type.PLURAL
        key = self._key(obj_type, obj.metadata.namespace,
                        obj.metadata.name)
        try:
            stored_raw, stored_rev = self.store.get(key)
        except KeyNotFound as exc:
            raise NotFound(f"{plural} {obj.key!r} not found") from exc
        stored = self._decode(obj_type, stored_raw, stored_rev)

        expected = None
        if obj.metadata.resource_version:
            expected = int(obj.metadata.resource_version)
            if expected != stored_rev:
                raise Conflict(
                    f"{plural} {obj.key!r}: stale resourceVersion "
                    f"{expected} (current {stored_rev})")

        if subresource == "status":
            new_obj = stored.copy()
            if hasattr(obj, "status"):
                new_obj.status = obj.status
        else:
            new_obj = obj.copy()
            new_obj.metadata.uid = stored.metadata.uid
            new_obj.metadata.creation_timestamp = (
                stored.metadata.creation_timestamp)
            new_obj.metadata.generation = stored.metadata.generation
            if self._spec_changed(stored, new_obj):
                new_obj.metadata.generation += 1
            self._admit(credential, "update", plural, new_obj, stored,
                        new_obj.metadata.namespace)

        # Finalizer bookkeeping: removing the last finalizer of a
        # deleted object actually removes the object.
        if (new_obj.metadata.deletion_timestamp is not None
                and not new_obj.metadata.finalizers
                and not self._namespace_pinned(new_obj)):
            self.store.delete(key, expected_revision=stored_rev)
            new_obj.metadata.resource_version = None
            return new_obj

        new_obj.metadata.resource_version = None
        try:
            revision = self.store.update(key, new_obj.to_dict(),
                                         expected_revision=stored_rev)
        except RevisionConflict as exc:
            raise Conflict(str(exc)) from exc
        new_obj.metadata.resource_version = str(revision)
        return new_obj

    def patch(self, credential, plural, name, patch, namespace=None):
        """Coroutine: deep-merge ``patch`` (a dict) into the stored object."""
        obj_type = self.registry.get(plural)
        current = yield from self.get(credential, plural, name,
                                      namespace=namespace)
        merged_raw = _deep_merge(current.to_dict(), patch)
        merged = self._decode(obj_type, merged_raw,
                              int(current.metadata.resource_version))
        merged.metadata.resource_version = current.metadata.resource_version
        return (yield from self.update(credential, merged))

    def delete(self, credential, plural, name, namespace=None):
        """Coroutine: delete an object (honouring finalizers)."""
        credential, span, ticket = yield from self._begin(
            credential, "delete", plural, namespace, name)
        try:
            obj = self._delete_core(credential, plural, name, namespace)
            yield self.sim.timeout(self.config.apiserver.etcd_write)
            return obj
        finally:
            self._release(credential, span, ticket)

    def _delete_core(self, credential, plural, name, namespace=None):
        """Delete or mark-for-finalization (synchronous)."""
        obj_type = self.registry.get(plural)
        key = self._key(obj_type, namespace, name)
        try:
            stored_raw, stored_rev = self.store.get(key)
        except KeyNotFound as exc:
            raise NotFound(f"{plural} {name!r} not found") from exc
        obj = self._decode(obj_type, stored_raw, stored_rev)

        needs_finalization = (bool(obj.metadata.finalizers)
                              or self._namespace_pinned(obj))
        if needs_finalization:
            if obj.metadata.deletion_timestamp is None:
                obj.metadata.deletion_timestamp = self.sim.now
                if isinstance(obj, Namespace):
                    obj.status.phase = "Terminating"
                obj.metadata.resource_version = None
                revision = self.store.update(
                    key, obj.to_dict(), expected_revision=stored_rev)
                obj.metadata.resource_version = str(revision)
            return obj
        self.store.delete(key, expected_revision=stored_rev)
        return obj

    def _namespace_pinned(self, obj):
        """Namespaces finalize through spec.finalizers, not metadata."""
        return isinstance(obj, Namespace) and bool(obj.spec.finalizers)

    # ------------------------------------------------------------------
    # Multi-op transaction (batched writes)
    # ------------------------------------------------------------------

    @staticmethod
    def _op_plural(op):
        verb = op[0]
        if verb in ("create", "update"):
            return type(op[1]).PLURAL
        return op[1]

    def transaction(self, credential, ops, fencing=None):
        """Coroutine: apply a batch of writes as one multi-op request.

        ``ops`` is a list of tuples:

        - ``("create", obj, namespace)``
        - ``("update", obj, subresource)``
        - ``("delete", plural, name, namespace)``

        The whole batch pays one request overhead / inflight slot and a
        single etcd round trip (``etcd_write`` plus ``etcd_txn_per_op``
        per op) — the write-amplification fix for the syncer hot path.
        Sub-operations run through the same validate/admit/CAS cores as
        their single-op counterparts and apply at consecutive store
        revisions, so the converged store state is identical to issuing
        the ops sequentially.  Per-op failures are captured: the result
        list holds each op's object or the :class:`ApiError` it raised.

        ``fencing`` is an optional ``(domain, token)`` leader-election
        guard checked against the store *before* any op applies; a
        revoked token fails the whole batch with the non-retryable
        :class:`FencingConflict`.  An *empty* fenced transaction is a
        fence barrier: it establishes the token floor for ``domain``
        without writing anything, which new leaders issue before serving
        so a deposed predecessor's in-flight batches can no longer land.
        """
        from .errors import ApiError

        if not ops:
            if fencing is None:
                return []
            credential, span, ticket = yield from self._begin(
                credential, "update", "leases")
            try:
                self._check_fence(fencing)
                yield self.sim.timeout(self.config.apiserver.etcd_write)
                return []
            finally:
                self._release(credential, span, ticket)
        credential, span, ticket = yield from self._begin(
            credential, ops[0][0], self._op_plural(ops[0]))
        try:
            # Per-op chaos checks, so a fault targeting e.g. pod creates
            # still hits batched creates (skip ops[0]: _begin covered it).
            if self.fault_injector is not None:
                for op in ops[1:]:
                    yield from self.fault_injector.on_request(
                        op[0], self._op_plural(op))

            if fencing is not None:
                self._check_fence(fencing)
            thunks = [self._op_thunk(credential, op) for op in ops]
            results = self.store.txn(thunks)
            for result in results:
                # Only API errors are per-op outcomes; anything else is a
                # programming error and must not be swallowed.
                if (isinstance(result, Exception)
                        and not isinstance(result, ApiError)):
                    raise result
            cfg = self.config.apiserver
            yield self.sim.timeout(cfg.etcd_write
                                   + cfg.etcd_txn_per_op * len(ops))
            return results
        finally:
            self._release(credential, span, ticket)

    def _check_fence(self, fencing):
        """Validate a (domain, token) pair against the store's fence
        floor, translating the storage error into an API error."""
        from repro.storage import FencingRevoked

        from .errors import FencingConflict

        domain, token = fencing
        try:
            self.store.check_fence(domain, token)
        except FencingRevoked as exc:
            raise FencingConflict(str(exc)) from exc

    def _op_thunk(self, credential, op):
        """One transaction sub-op as a zero-arg callable for store.txn."""
        verb = op[0]
        plural = self._op_plural(op)
        if verb == "create":
            _, obj, namespace = op
            prepared = self._prepare_create(obj, namespace)
            self.authorizer.authorize(credential, "create", plural,
                                      prepared.metadata.namespace,
                                      prepared.metadata.name)
            return lambda: self._create_core(credential, prepared)
        if verb == "update":
            _, obj, subresource = op
            self.authorizer.authorize(credential, "update", plural,
                                      obj.metadata.namespace,
                                      obj.metadata.name)
            return lambda: self._update_core(credential, obj,
                                             subresource=subresource)
        if verb == "delete":
            _, plural, name, namespace = op
            self.authorizer.authorize(credential, "delete", plural,
                                      namespace, name)
            return lambda: self._delete_core(credential, plural, name,
                                             namespace)
        raise BadRequest(f"unknown transaction op {verb!r}")

    # ------------------------------------------------------------------
    # Watch / binding / helpers
    # ------------------------------------------------------------------

    def watch(self, credential, plural, namespace=None, from_revision=None,
              label_selector=None, field_selector=None):
        """Open a watch stream (synchronous registration)."""
        from repro.objects.selectors import match_fields

        credential = self.authenticator.authenticate(credential)
        self.authorizer.authorize(credential, "watch", plural, namespace)
        obj_type = self.registry.get(plural)
        prefix = self._prefix(obj_type, namespace)

        predicate = None
        if label_selector is not None or field_selector:
            def predicate(event):
                raw = event.value
                if label_selector is not None:
                    labels = raw.get("metadata", {}).get("labels", {}) or {}
                    if not label_selector.matches(labels):
                        return False
                if field_selector and not match_fields(field_selector, raw):
                    return False
                return True

        watch = self.store.watch(prefix, from_revision=from_revision,
                                 predicate=predicate)
        stream = WatchStream(self, obj_type, watch)
        self._watch_streams.append(stream)
        return stream

    def bind_pod(self, credential, name, namespace, node_name):
        """Coroutine: the pods/binding subresource used by the scheduler."""
        pod = yield from self.get(credential, "pods", name,
                                  namespace=namespace)
        if pod.spec.node_name:
            raise Conflict(
                f"pod {pod.key!r} already bound to {pod.spec.node_name!r}")
        pod.spec.node_name = node_name
        yield self.sim.timeout(self.config.scheduler.binding_write)
        return (yield from self.update(credential, pod))

    def crash(self):
        """Simulate an apiserver restart: all watches break."""
        self.healthy = False
        for stream in list(self._watch_streams):
            stream.stop()
        self._watch_streams = []

    def recover(self):
        self.healthy = True

    def _generate_name(self, base):
        suffix = "".join(self.sim.rng.choice(_NAME_ALPHABET)
                         for _ in range(5))
        return f"{base}{suffix}"

    def _spec_changed(self, old, new):
        old_spec = getattr(old, "spec", None)
        new_spec = getattr(new, "spec", None)
        if old_spec is None or new_spec is None:
            return False
        dump = (old_spec.to_dict() if hasattr(old_spec, "to_dict")
                else old_spec)
        dump_new = (new_spec.to_dict() if hasattr(new_spec, "to_dict")
                    else new_spec)
        return dump != dump_new


def _deep_merge(base, patch):
    """Strategic-merge-lite: dicts merge recursively, everything else replaces.

    A ``None`` value in the patch deletes the key.
    """
    out = dict(base)
    for key, value in patch.items():
        if value is None:
            out.pop(key, None)
        elif isinstance(value, dict) and isinstance(out.get(key), dict):
            out[key] = _deep_merge(out[key], value)
        else:
            out[key] = value
    return out
