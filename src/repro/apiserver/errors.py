"""API errors with Kubernetes-style status codes and reasons."""


class ApiError(Exception):
    """Base class; carries an HTTP-ish status code and reason."""

    code = 500
    reason = "InternalError"

    def __init__(self, message=""):
        super().__init__(message or self.reason)
        self.message = message or self.reason


class NotFound(ApiError):
    code = 404
    reason = "NotFound"


class AlreadyExists(ApiError):
    code = 409
    reason = "AlreadyExists"


class Conflict(ApiError):
    code = 409
    reason = "Conflict"


class FencingConflict(ApiError):
    """A write carried a revoked fencing token (deposed leader).

    Deliberately non-retryable: the writer lost its lease, so retrying
    the same write can never succeed — it must stop serving instead.
    """

    code = 409
    reason = "FencingConflict"


class Invalid(ApiError):
    code = 422
    reason = "Invalid"


class BadRequest(ApiError):
    code = 400
    reason = "BadRequest"


class Unauthorized(ApiError):
    code = 401
    reason = "Unauthorized"


class Forbidden(ApiError):
    code = 403
    reason = "Forbidden"


class TooManyRequests(ApiError):
    code = 429
    reason = "TooManyRequests"

    def __init__(self, message="", retry_after=1.0):
        super().__init__(message)
        self.retry_after = retry_after


class Timeout(ApiError):
    code = 504
    reason = "Timeout"


class ServerUnavailable(ApiError):
    code = 503
    reason = "ServiceUnavailable"


def is_retryable(error):
    """Whether a client should retry the request (with backoff)."""
    return isinstance(error, (TooManyRequests, Timeout, ServerUnavailable))
