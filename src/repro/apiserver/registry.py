"""Resource type registry: routes plural resource names to object types.

Each control plane (super cluster or tenant) owns a registry.  CRDs
installed at runtime register additional dynamic types, which is how a
tenant extends *its own* apiserver without touching anyone else's.
"""

from repro.objects import BUILTIN_TYPES
from repro.objects.crd import make_custom_type

from .errors import BadRequest, NotFound


class ResourceRegistry:
    """Maps plural resource names (e.g. ``pods``) to API types."""

    def __init__(self, extra_types=()):
        self._by_plural = {}
        self._by_kind = {}
        for obj_type in BUILTIN_TYPES:
            self.register(obj_type)
        for obj_type in extra_types:
            self.register(obj_type)

    def register(self, obj_type):
        if obj_type.PLURAL in self._by_plural:
            raise BadRequest(f"resource {obj_type.PLURAL!r} already registered")
        self._by_plural[obj_type.PLURAL] = obj_type
        self._by_kind[obj_type.KIND] = obj_type

    def unregister(self, plural):
        obj_type = self._by_plural.pop(plural, None)
        if obj_type is not None:
            self._by_kind.pop(obj_type.KIND, None)

    def register_crd(self, crd):
        """Register the dynamic type described by an established CRD."""
        names = crd.spec.names
        version = crd.spec.versions[0] if crd.spec.versions else "v1"
        if isinstance(version, dict):
            version = version.get("name", "v1")
        api_version = f"{crd.spec.group}/{version}"
        obj_type = make_custom_type(
            api_version, names.kind, names.plural,
            namespaced=(crd.spec.scope == "Namespaced"),
        )
        self.register(obj_type)
        return obj_type

    def get(self, plural):
        obj_type = self._by_plural.get(plural)
        if obj_type is None:
            raise NotFound(f"the server could not find resource {plural!r}")
        return obj_type

    def get_by_kind(self, kind):
        obj_type = self._by_kind.get(kind)
        if obj_type is None:
            raise NotFound(f"no kind {kind!r} registered")
        return obj_type

    def has(self, plural):
        return plural in self._by_plural

    def plurals(self):
        return sorted(self._by_plural)
