"""Admission control chain.

Plugins run after authorization and before persistence, exactly like the
real apiserver: mutating plugins first (defaulting, clusterIP allocation),
then validating plugins (namespace lifecycle, quota).
"""

from repro.objects import (
    Namespace,
    Pod,
    Quantity,
    Service,
    ValidationError,
    add_resource_lists,
)

from .errors import Forbidden, Invalid


class AdmissionRequest:
    """What a plugin sees for each mutating call."""

    __slots__ = ("verb", "plural", "obj", "old_obj", "namespace", "credential")

    def __init__(self, verb, plural, obj, old_obj=None, namespace=None,
                 credential=None):
        self.verb = verb
        self.plural = plural
        self.obj = obj
        self.old_obj = old_obj
        self.namespace = namespace
        self.credential = credential


class AdmissionPlugin:
    """Base plugin; ``admit`` may mutate ``request.obj`` or raise."""

    name = "plugin"

    def admit(self, request, reader):
        raise NotImplementedError


class NamespaceLifecycle(AdmissionPlugin):
    """Rejects creates in missing or terminating namespaces."""

    name = "NamespaceLifecycle"

    def admit(self, request, reader):
        if request.verb != "create" or not request.namespace:
            return
        namespace = reader.read("namespaces", None, request.namespace)
        if namespace is None:
            raise Forbidden(
                f"namespace {request.namespace!r} not found"
            )
        if isinstance(namespace, Namespace) and namespace.is_terminating:
            raise Forbidden(
                f"namespace {request.namespace!r} is terminating"
            )


class PodDefaults(AdmissionPlugin):
    """Applies Pod defaulting the scheduler and kubelet rely on."""

    name = "PodDefaults"

    def admit(self, request, reader):
        if request.plural != "pods" or request.verb != "create":
            return
        pod = request.obj
        if not isinstance(pod, Pod):
            return
        if not pod.spec.scheduler_name:
            pod.spec.scheduler_name = "default-scheduler"
        if not pod.spec.service_account_name:
            pod.spec.service_account_name = "default"
        for container in pod.spec.containers:
            if container.resources.requests is None:
                container.resources.requests = {}


class ClusterIPAllocator(AdmissionPlugin):
    """Allocates virtual cluster IPs for ClusterIP services."""

    name = "ClusterIPAllocator"

    def __init__(self, cidr_base="10.96", start=1):
        self._cidr_base = cidr_base
        self._next = start
        self._allocated = set()

    def admit(self, request, reader):
        if request.plural != "services" or request.verb != "create":
            return
        service = request.obj
        if not isinstance(service, Service):
            return
        if service.spec.type not in ("ClusterIP", "NodePort", "LoadBalancer"):
            return
        if service.spec.cluster_ip in ("None",):
            return  # headless
        if service.spec.cluster_ip:
            if service.spec.cluster_ip in self._allocated:
                raise Invalid(
                    f"cluster IP {service.spec.cluster_ip} already allocated"
                )
            self._allocated.add(service.spec.cluster_ip)
            return
        while True:
            candidate = self._format_ip(self._next)
            self._next += 1
            if candidate not in self._allocated:
                break
        self._allocated.add(candidate)
        service.spec.cluster_ip = candidate

    def release(self, cluster_ip):
        self._allocated.discard(cluster_ip)

    def _format_ip(self, index):
        high, low = divmod(index, 254)
        return f"{self._cidr_base}.{high % 254}.{low + 1}"


class QuotaEnforcer(AdmissionPlugin):
    """Enforces ResourceQuota hard limits on Pod creation."""

    name = "QuotaEnforcer"

    def admit(self, request, reader):
        if request.plural != "pods" or request.verb != "create":
            return
        pod = request.obj
        quotas = [q for q in reader.read_all("resourcequotas")
                  if q.namespace == request.namespace]
        if not quotas:
            return
        existing_pods = [p for p in reader.read_all("pods")
                         if p.namespace == request.namespace
                         and not p.is_terminal]
        usage = {"pods": Quantity.parse(len(existing_pods))}
        for existing in existing_pods:
            usage = add_resource_lists(usage, existing.spec.total_requests())
        usage = add_resource_lists(
            usage, {"pods": Quantity.parse(1), **pod.spec.total_requests()}
        )
        for quota in quotas:
            for name, hard in quota.spec.hard.items():
                used = usage.get(name)
                if used is not None and used > Quantity.parse(hard):
                    raise Forbidden(
                        f"exceeded quota {quota.name!r}: {name} "
                        f"{used} > {hard}"
                    )


class ValidatingObjectSchema(AdmissionPlugin):
    """Runs per-type validation (converted to API ``Invalid`` errors)."""

    name = "ObjectSchema"

    def admit(self, request, reader):
        from repro.objects.validation import (
            validate_pod,
            validate_pod_update,
            validate_service,
        )

        try:
            if request.plural == "pods":
                if request.verb == "create":
                    validate_pod(request.obj)
                elif request.verb == "update" and request.old_obj is not None:
                    validate_pod_update(request.old_obj, request.obj)
            elif request.plural == "services" and request.verb == "create":
                validate_service(request.obj)
        except ValidationError as exc:
            raise Invalid(str(exc)) from exc


def default_admission_chain():
    """The plugin order used by both super and tenant control planes."""
    return [
        PodDefaults(),
        ClusterIPAllocator(),
        NamespaceLifecycle(),
        QuotaEnforcer(),
        ValidatingObjectSchema(),
    ]
