"""Controller manager: assembles and runs a control plane's controllers.

Tenant control planes run the full set (they behave like intact
Kubernetes); the super cluster runs them too, plus the scheduler, which
is created separately because tenant control planes deliberately have no
scheduler (paper §III-B(1)).
"""

from .endpoints import EndpointsController
from .garbage_collector import GarbageCollector
from .namespace_gc import NamespaceController
from .node_lifecycle import NodeLifecycleController
from .pv_binder import PersistentVolumeBinder
from .replicaset import DeploymentController, ReplicaSetController


class ControllerManager:
    """Owns the shared informer factory and the controller set."""

    def __init__(self, sim, client, informer_factory,
                 enable_workloads=True, enable_node_lifecycle=False):
        self.sim = sim
        self.client = client
        self.informer_factory = informer_factory
        self.controllers = [
            EndpointsController(sim, client, informer_factory),
            NamespaceController(sim, client, informer_factory),
        ]
        if enable_workloads:
            self.controllers.append(
                PersistentVolumeBinder(sim, client, informer_factory))
            self.controllers.append(
                ReplicaSetController(sim, client, informer_factory))
            self.controllers.append(
                DeploymentController(sim, client, informer_factory))
            self.controllers.append(
                GarbageCollector(sim, client, informer_factory))
        if enable_node_lifecycle:
            self.controllers.append(
                NodeLifecycleController(sim, client, informer_factory))
        self._started = False

    def start(self):
        if self._started:
            return
        self._started = True
        self.informer_factory.start_all()
        for controller in self.controllers:
            controller.start()

    def stop(self):
        for controller in self.controllers:
            controller.stop()
        self.informer_factory.stop_all()
        self._started = False

    def get(self, name):
        for controller in self.controllers:
            if controller.name == name:
                return controller
        raise KeyError(name)
