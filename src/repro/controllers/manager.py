"""Controller manager: assembles and runs a control plane's controllers.

Tenant control planes run the full set (they behave like intact
Kubernetes); the super cluster runs them too, plus the scheduler, which
is created separately because tenant control planes deliberately have no
scheduler (paper §III-B(1)).
"""

from .endpoints import EndpointsController
from .garbage_collector import GarbageCollector
from .namespace_gc import NamespaceController
from .node_lifecycle import NodeLifecycleController
from .pv_binder import PersistentVolumeBinder
from .replicaset import DeploymentController, ReplicaSetController


class ControllerManager:
    """Owns the shared informer factory and the controller set.

    With ``elector`` set (a :class:`repro.clientgo.LeaderElector`), the
    manager runs active/standby: informers start immediately (warm
    caches) but controllers run only while this replica holds the lease
    — the manager owns the elector's leading callbacks (DESIGN.md §10).
    """

    def __init__(self, sim, client, informer_factory,
                 enable_workloads=True, enable_node_lifecycle=False,
                 elector=None):
        self.sim = sim
        self.client = client
        self.informer_factory = informer_factory
        self.elector = elector
        if elector is not None:
            elector.on_started_leading = self._on_started_leading
            elector.on_stopped_leading = self._on_stopped_leading
        self.controllers = [
            EndpointsController(sim, client, informer_factory),
            NamespaceController(sim, client, informer_factory),
        ]
        if enable_workloads:
            self.controllers.append(
                PersistentVolumeBinder(sim, client, informer_factory))
            self.controllers.append(
                ReplicaSetController(sim, client, informer_factory))
            self.controllers.append(
                DeploymentController(sim, client, informer_factory))
            self.controllers.append(
                GarbageCollector(sim, client, informer_factory))
        if enable_node_lifecycle:
            self.controllers.append(
                NodeLifecycleController(sim, client, informer_factory))
        self._started = False
        self._controllers_running = False

    def start(self):
        if self._started:
            return
        self._started = True
        self.informer_factory.start_all()
        if self.elector is not None:
            # Standby: warm caches now, controllers when the lease lands.
            self.elector.start()
            return
        self._start_controllers()

    def stop(self):
        if self.elector is not None:
            self.elector.stop(release=True)
        self._stop_controllers()
        self.informer_factory.stop_all()
        self._started = False

    def _start_controllers(self):
        if self._controllers_running:
            return
        self._controllers_running = True
        for controller in self.controllers:
            controller.start()

    def _stop_controllers(self):
        if not self._controllers_running:
            return
        self._controllers_running = False
        for controller in self.controllers:
            controller.stop()

    def _on_started_leading(self, _token):
        self._start_controllers()

    def _on_stopped_leading(self, _reason):
        self._stop_controllers()

    @property
    def is_active(self):
        """Whether this replica's controllers are currently running."""
        return self._controllers_running

    def get(self, name):
        for controller in self.controllers:
            if controller.name == name:
                return controller
        raise KeyError(name)
