"""Node lifecycle controller: marks nodes NotReady on missed heartbeats."""

from repro.apiserver.errors import NotFound

from .base import Controller


class NodeLifecycleController(Controller):
    name = "node-lifecycle-controller"

    def __init__(self, sim, client, informer_factory, workers=1,
                 grace_period=4.0, check_interval=1.0):
        super().__init__(sim, client, workers=workers)
        self.grace_period = grace_period
        self.check_interval = check_interval
        self._nodes = informer_factory.informer("nodes")
        self._monitor = None

    def start(self):
        processes = super().start()
        self._monitor = self.sim.spawn(self._monitor_loop(),
                                       name="node-monitor")
        return processes

    def stop(self):
        super().stop()
        if self._monitor is not None:
            self._monitor.interrupt("node lifecycle stopped")

    def _monitor_loop(self):
        from repro.simkernel.errors import Interrupt

        while not self._stopped:
            try:
                yield self.sim.timeout(self.check_interval)
            except Interrupt:
                return
            now = self.sim.now
            for node in self._nodes.cache.items():
                ready = node.status.get_condition("Ready")
                if ready is None:
                    continue
                beat = ready.last_heartbeat_time
                if (ready.status == "True" and beat is not None
                        and now - beat > self.grace_period):
                    self.enqueue(node.key)

    def reconcile(self, key):
        node = self._nodes.cache.get_copy(key)
        if node is None:
            return
        ready = node.status.get_condition("Ready")
        if ready is None or ready.status != "True":
            return
        beat = ready.last_heartbeat_time
        if beat is None or self.sim.now - beat <= self.grace_period:
            return
        node.status.set_condition("Ready", "Unknown",
                                  reason="NodeStatusUnknown",
                                  now=self.sim.now)
        try:
            yield from self.client.update_status(node)
        except NotFound:
            pass
