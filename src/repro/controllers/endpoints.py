"""Endpoints controller: maintains Endpoints for every Service.

Watches Services and Pods; for each Service it builds endpoint subsets
from the ready Pods matching the Service selector.  kubeproxy (standard
or enhanced) consumes these Endpoints to program routing rules.
"""

from repro.apiserver.errors import AlreadyExists, NotFound
from repro.objects import Endpoints, EndpointSubset, match_label_dict
from repro.objects.meta import split_key
from repro.objects.service import EndpointAddress, EndpointPort

from .base import Controller


class EndpointsController(Controller):
    name = "endpoints-controller"

    def __init__(self, sim, client, informer_factory, workers=2):
        super().__init__(sim, client, workers=workers)
        self._services = informer_factory.informer("services")
        self._pods = informer_factory.informer("pods")
        self._endpoints = informer_factory.informer("endpoints")
        self._services.add_handlers(
            on_add=self.enqueue_object,
            on_update=lambda old, new: self.enqueue_object(new),
            on_delete=self.enqueue_object,
        )
        self._pods.add_handlers(
            on_add=self._on_pod_change,
            on_update=lambda old, new: self._on_pod_change(new),
            on_delete=self._on_pod_change,
        )

    def _on_pod_change(self, pod):
        """Requeue every service in the namespace selecting this pod."""
        for service in self._services.cache.by_namespace(pod.namespace):
            if match_label_dict(service.spec.selector, pod.metadata.labels):
                self.enqueue_object(service)

    def reconcile(self, key):
        namespace, name = split_key(key)
        service = self._services.cache.get_copy(key)
        if service is None:
            # Service deleted: remove its endpoints.
            try:
                yield from self.client.delete("endpoints", name,
                                              namespace=namespace)
            except NotFound:
                pass
            return
        if not service.spec.selector:
            return  # manually-managed endpoints

        subset = EndpointSubset()
        # The label index intersects selector postings instead of walking
        # (and label-matching) every pod in the namespace.
        for pod in self._pods.cache.select_labels(service.spec.selector,
                                                  namespace=namespace):
            if pod.is_terminal or not pod.status.pod_ip:
                continue
            address = EndpointAddress(
                ip=pod.status.pod_ip,
                node_name=pod.spec.node_name,
                target_ref={"kind": "Pod", "name": pod.name,
                            "namespace": namespace, "uid": pod.uid},
            )
            if pod.status.is_ready:
                subset.addresses.append(address)
            else:
                subset.not_ready_addresses.append(address)
        subset.ports = [
            EndpointPort(name=port.name, port=port.target_port or port.port,
                         protocol=port.protocol)
            for port in service.spec.ports
        ]
        subsets = [subset] if (subset.addresses
                               or subset.not_ready_addresses) else []

        existing = self._endpoints.cache.get_copy(key)
        if existing is None:
            endpoints = Endpoints()
            endpoints.metadata.name = name
            endpoints.metadata.namespace = namespace
            endpoints.subsets = subsets
            try:
                yield from self.client.create(endpoints)
            except AlreadyExists:
                self.enqueue(key)
            return
        if [s.to_dict() for s in existing.subsets] == [s.to_dict()
                                                       for s in subsets]:
            return
        existing.subsets = subsets
        yield from self.client.update(existing)
