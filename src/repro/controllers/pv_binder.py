"""PersistentVolume binder: pairs PVCs with PVs, provisions dynamically.

PVCs and PVs are among the resource types the syncer moves between
control planes; this controller gives them real lifecycle semantics in
the super cluster: a pending claim binds to a matching available volume
(capacity and storage class), or a new volume is provisioned when the
claim's storage class has a provisioner.
"""

from repro.apiserver.errors import AlreadyExists, ApiError, Conflict, NotFound
from repro.objects import PersistentVolume, Quantity
from repro.objects.meta import split_key

from .base import Controller


def _requested_bytes(pvc):
    request = (((pvc.spec or {}).get("resources") or {})
               .get("requests") or {}).get("storage", "0")
    return Quantity.parse(request)


def _capacity_bytes(pv):
    capacity = ((pv.spec or {}).get("capacity") or {}).get("storage", "0")
    return Quantity.parse(capacity)


class PersistentVolumeBinder(Controller):
    name = "pv-binder"

    def __init__(self, sim, client, informer_factory, workers=1,
                 provision_delay=0.4):
        super().__init__(sim, client, workers=workers)
        self.provision_delay = provision_delay
        self._pvcs = informer_factory.informer("persistentvolumeclaims")
        self._pvs = informer_factory.informer("persistentvolumes")
        self._classes = informer_factory.informer("storageclasses")
        self._pvcs.add_handlers(
            on_add=self.enqueue_object,
            on_update=lambda old, new: self.enqueue_object(new),
        )
        self._pvs.add_handlers(
            on_add=self._on_pv_change,
            on_update=lambda old, new: self._on_pv_change(new),
        )
        self.bound_count = 0
        self.provisioned_count = 0

    def _on_pv_change(self, pv):
        # A newly-available volume may satisfy pending claims.
        for pvc in self._pvcs.cache.items():
            if pvc.phase == "Pending":
                self.enqueue_object(pvc)

    def reconcile(self, key):
        namespace, _name = split_key(key)
        pvc = self._pvcs.cache.get_copy(key)
        if pvc is None or pvc.phase == "Bound":
            return
        volume = self._find_available_volume(pvc)
        if volume is None:
            volume = yield from self._provision(pvc)
            if volume is None:
                return  # no volume, no provisioner: stays Pending
        yield from self._bind(pvc, volume, namespace)

    def _find_available_volume(self, pvc):
        needed = _requested_bytes(pvc)
        wanted_class = (pvc.spec or {}).get("storageClassName")
        candidates = []
        for pv in self._pvs.cache.items():
            if (pv.status or {}).get("phase", "Available") != "Available":
                continue
            if (pv.spec or {}).get("claimRef"):
                continue
            if wanted_class and (pv.spec or {}).get(
                    "storageClassName") != wanted_class:
                continue
            if _capacity_bytes(pv) < needed:
                continue
            candidates.append(pv)
        # Smallest fitting volume first (minimize waste).
        candidates.sort(key=_capacity_bytes)
        return candidates[0] if candidates else None

    def _provision(self, pvc):
        """Dynamic provisioning via the claim's storage class."""
        wanted_class = (pvc.spec or {}).get("storageClassName")
        if not wanted_class:
            return None
        storage_class = self._classes.cache.get(wanted_class)
        if storage_class is None or not storage_class.provisioner:
            return None
        yield self.sim.timeout(self.provision_delay)
        volume = PersistentVolume()
        volume.metadata.name = f"pv-{pvc.namespace}-{pvc.name}"
        volume.spec = {
            "capacity": {"storage": (((pvc.spec or {}).get("resources")
                                      or {}).get("requests")
                                     or {}).get("storage", "1Gi")},
            "storageClassName": wanted_class,
            "provisionedBy": storage_class.provisioner,
        }
        volume.status = {"phase": "Available"}
        try:
            created = yield from self.client.create(volume)
            self.provisioned_count += 1
            return created
        except AlreadyExists:
            try:
                return (yield from self.client.get(
                    "persistentvolumes", volume.metadata.name))
            except NotFound:
                return None

    def _bind(self, pvc, volume, namespace):
        volume = volume.copy()
        volume.spec = dict(volume.spec or {})
        volume.spec["claimRef"] = {"namespace": pvc.namespace,
                                   "name": pvc.name, "uid": pvc.uid}
        volume.status = {"phase": "Bound"}
        try:
            yield from self.client.update(volume)
        except (Conflict, NotFound):
            self.enqueue(pvc.key)
            return
        fresh = pvc.copy()
        fresh.spec = dict(fresh.spec or {})
        fresh.spec["volumeName"] = volume.metadata.name
        fresh.status = {"phase": "Bound"}
        try:
            yield from self.client.update(fresh)
            self.bound_count += 1
        except (Conflict, NotFound):
            # Roll the volume back to Available for the next attempt.
            try:
                volume.spec.pop("claimRef", None)
                volume.status = {"phase": "Available"}
                yield from self.client.update(volume)
            except ApiError:
                pass
            self.enqueue(pvc.key)
