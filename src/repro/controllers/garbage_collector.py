"""Owner-reference garbage collector.

Deletes dependents whose controller owner no longer exists (e.g. Pods of
a deleted ReplicaSet).  Tracks a subset of (owner kind → dependent
plural) edges sufficient for the workload controllers in this repo.
"""

from repro.apiserver.errors import NotFound

from .base import Controller

# Dependent resources scanned for dangling owners.
SCANNED_PLURALS = ("pods", "replicasets")


class GarbageCollector(Controller):
    name = "garbage-collector"

    def __init__(self, sim, client, informer_factory, workers=1,
                 scan_interval=0.5):
        super().__init__(sim, client, workers=workers)
        self.scan_interval = scan_interval
        self._informers = {
            plural: informer_factory.informer(plural)
            for plural in SCANNED_PLURALS
        }
        self._owner_informers = {
            "ReplicaSet": informer_factory.informer("replicasets"),
            "Deployment": informer_factory.informer("deployments"),
        }
        self._scanner = None

    def start(self):
        processes = super().start()
        self._scanner = self.sim.spawn(self._scan_loop(), name="gc-scanner")
        return processes

    def stop(self):
        super().stop()
        if self._scanner is not None:
            self._scanner.interrupt("gc stopped")

    def _scan_loop(self):
        from repro.simkernel.errors import Interrupt

        while not self._stopped:
            try:
                yield self.sim.timeout(self.scan_interval)
            except Interrupt:
                return
            for plural, informer in self._informers.items():
                for obj in informer.cache.items():
                    if self._has_dangling_owner(obj):
                        self.enqueue(f"{plural}|{obj.key}")

    def _has_dangling_owner(self, obj):
        for ref in obj.metadata.owner_references:
            if not ref.controller:
                continue
            owner_informer = self._owner_informers.get(ref.kind)
            if owner_informer is None:
                continue
            owner_key = (f"{obj.namespace}/{ref.name}"
                         if obj.namespace else ref.name)
            owner = owner_informer.cache.get(owner_key)
            if owner is None or owner.uid != ref.uid:
                return True
        return False

    def reconcile(self, key):
        plural, obj_key = key.split("|", 1)
        informer = self._informers[plural]
        obj = informer.cache.get(obj_key)
        if obj is None or not self._has_dangling_owner(obj):
            return
        try:
            yield from self.client.delete(plural, obj.name,
                                          namespace=obj.namespace)
        except NotFound:
            pass
