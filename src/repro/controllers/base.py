"""Shared controller scaffolding (the Fig. 3 reconciler pattern).

A controller wires informer event handlers into a rate-limited work queue
and runs worker processes that drain it, invoking ``reconcile(key)`` —
reading state from informer caches, writing changes to the apiserver.
"""

from repro.apiserver.errors import ApiError, Conflict
from repro.clientgo import RateLimitingQueue
from repro.simkernel.errors import Interrupt


class Controller:
    """Base reconciler with a keyed work queue and N workers."""

    name = "controller"

    def __init__(self, sim, client, workers=1):
        self.sim = sim
        self.client = client
        self.workers = workers
        self.queue = RateLimitingQueue(sim, name=f"{self.name}-queue")
        self.reconcile_count = 0
        self.error_count = 0
        self._stopped = False
        self._processes = []

    def enqueue(self, key):
        self.queue.add(key)

    def enqueue_object(self, obj):
        self.queue.add(obj.key)

    def start(self):
        # Restart-safe: a stopped controller (HA standby re-promoted to
        # active) re-opens its queue and spawns fresh workers.
        self._stopped = False
        self.queue.restart()
        self._processes = []
        for index in range(self.workers):
            process = self.sim.spawn(
                self._worker(), name=f"{self.name}-worker-{index}")
            self._processes.append(process)
        return self._processes

    def stop(self):
        self._stopped = True
        self.queue.shutdown()
        for process in self._processes:
            process.interrupt(f"{self.name} stopped")

    def _worker(self):
        while not self._stopped:
            try:
                key, _enqueued_at = yield self.queue.get()
            except Interrupt:
                return
            except Exception:
                return
            try:
                yield from self.reconcile(key)
                self.queue.forget(key)
            except Interrupt:
                return
            except Conflict:
                # Stale cache: retry shortly, the informer will catch up.
                self.queue.add_rate_limited(key)
            except ApiError as exc:
                self.error_count += 1
                # Honor a server-provided Retry-After (APF shedding)
                # over the per-item exponential schedule.
                self.queue.add_rate_limited(
                    key, retry_after=getattr(exc, "retry_after", None))
            finally:
                self.reconcile_count += 1
                self.queue.done(key)

    def reconcile(self, key):
        """Coroutine: drive the object at ``key`` toward its desired state."""
        raise NotImplementedError
