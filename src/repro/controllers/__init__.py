"""Built-in Kubernetes controllers."""

from .base import Controller
from .endpoints import EndpointsController
from .garbage_collector import GarbageCollector
from .manager import ControllerManager
from .namespace_gc import NamespaceController
from .node_lifecycle import NodeLifecycleController
from .pv_binder import PersistentVolumeBinder
from .replicaset import DeploymentController, ReplicaSetController

__all__ = [
    "Controller",
    "ControllerManager",
    "DeploymentController",
    "EndpointsController",
    "GarbageCollector",
    "NamespaceController",
    "NodeLifecycleController",
    "PersistentVolumeBinder",
    "ReplicaSetController",
]
