"""Namespace lifecycle controller.

When a namespace is deleted it enters ``Terminating``; this controller
deletes every namespaced object inside it, then clears the ``kubernetes``
spec finalizer, which lets the apiserver remove the namespace itself.
"""

from repro.apiserver.errors import ApiError, Conflict, NotFound

from .base import Controller

# Resource types swept on namespace termination, in deletion order.
SWEPT_RESOURCES = (
    "pods",
    "services",
    "endpoints",
    "secrets",
    "configmaps",
    "serviceaccounts",
    "persistentvolumeclaims",
    "resourcequotas",
    "events",
    "roles",
    "rolebindings",
    "deployments",
    "replicasets",
)


class NamespaceController(Controller):
    name = "namespace-controller"

    def __init__(self, sim, client, informer_factory, workers=2):
        super().__init__(sim, client, workers=workers)
        self._namespaces = informer_factory.informer("namespaces")
        self._namespaces.add_handlers(
            on_add=self._maybe_enqueue,
            on_update=lambda old, new: self._maybe_enqueue(new),
        )

    def _maybe_enqueue(self, namespace):
        if namespace.is_terminating:
            self.enqueue_object(namespace)

    def reconcile(self, key):
        namespace = self._namespaces.cache.get_copy(key)
        if namespace is None or not namespace.is_terminating:
            return
        remaining = 0
        for plural in SWEPT_RESOURCES:
            try:
                items, _rv = yield from self.client.list(
                    plural, namespace=namespace.name)
            except ApiError:
                continue
            for obj in items:
                remaining += 1
                try:
                    yield from self.client.delete(plural, obj.name,
                                                  namespace=namespace.name)
                except (NotFound, Conflict):
                    pass
        if remaining:
            # Objects may have finalizers of their own; check again shortly.
            self.queue.add_after(key, 0.2)
            return
        # Everything swept: release the namespace finalizer.
        if "kubernetes" in namespace.spec.finalizers:
            namespace.spec.finalizers = [
                f for f in namespace.spec.finalizers if f != "kubernetes"]
            try:
                yield from self.client.update(namespace)
            except (NotFound, Conflict):
                pass
