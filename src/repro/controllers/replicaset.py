"""ReplicaSet and Deployment controllers.

Enough of the workload stack to run realistic SaaS-style examples: a
Deployment manages one ReplicaSet per template revision, a ReplicaSet
keeps N Pods alive.
"""

from repro.apiserver.errors import AlreadyExists, NotFound
from repro.objects import OwnerReference, Pod, ReplicaSet
from repro.objects.meta import split_key

from .base import Controller


def _owned_by(obj, owner):
    return any(ref.uid == owner.uid and ref.controller
               for ref in obj.metadata.owner_references)


def _controller_ref(owner):
    return OwnerReference(
        api_version=owner.API_VERSION, kind=owner.KIND, name=owner.name,
        uid=owner.uid, controller=True, block_owner_deletion=True)


class ReplicaSetController(Controller):
    name = "replicaset-controller"

    def __init__(self, sim, client, informer_factory, workers=2):
        super().__init__(sim, client, workers=workers)
        self._replicasets = informer_factory.informer("replicasets")
        self._pods = informer_factory.informer("pods")
        self._replicasets.add_handlers(
            on_add=self.enqueue_object,
            on_update=lambda old, new: self.enqueue_object(new),
        )
        self._pods.add_handlers(
            on_add=self._on_pod_change,
            on_update=lambda old, new: self._on_pod_change(new),
            on_delete=self._on_pod_change,
        )

    def _on_pod_change(self, pod):
        for ref in pod.metadata.owner_references:
            if ref.kind == "ReplicaSet" and ref.controller:
                key = (f"{pod.namespace}/{ref.name}"
                       if pod.namespace else ref.name)
                self.enqueue(key)

    def _owned_pods(self, rs):
        return [pod for pod in self._pods.cache.by_namespace(rs.namespace)
                if _owned_by(pod, rs) and not pod.is_terminal
                and pod.metadata.deletion_timestamp is None]

    def reconcile(self, key):
        rs = self._replicasets.cache.get_copy(key)
        if rs is None or rs.metadata.deletion_timestamp is not None:
            return
        pods = self._owned_pods(rs)
        desired = rs.spec.replicas or 0
        diff = desired - len(pods)
        if diff > 0:
            for index in range(diff):
                pod = Pod()
                pod.metadata.generate_name = f"{rs.name}-"
                pod.metadata.namespace = rs.namespace
                pod.metadata.labels = dict(
                    rs.spec.template.metadata.labels or {})
                pod.metadata.owner_references = [_controller_ref(rs)]
                pod.spec = rs.spec.template.spec.copy()
                try:
                    yield from self.client.create(pod)
                except AlreadyExists:
                    pass
        elif diff < 0:
            doomed = sorted(pods, key=lambda p: p.metadata.creation_timestamp
                            or 0, reverse=True)[:-diff]
            for pod in doomed:
                try:
                    yield from self.client.delete("pods", pod.name,
                                                  namespace=pod.namespace)
                except NotFound:
                    pass
        # Status update.
        ready = sum(1 for pod in pods if pod.status.is_ready)
        if (rs.status.replicas != len(pods)
                or rs.status.ready_replicas != ready
                or rs.status.observed_generation != rs.metadata.generation):
            rs.status.replicas = len(pods)
            rs.status.ready_replicas = ready
            rs.status.observed_generation = rs.metadata.generation
            try:
                yield from self.client.update_status(rs)
            except NotFound:
                pass


class DeploymentController(Controller):
    name = "deployment-controller"

    def __init__(self, sim, client, informer_factory, workers=2):
        super().__init__(sim, client, workers=workers)
        self._deployments = informer_factory.informer("deployments")
        self._replicasets = informer_factory.informer("replicasets")
        self._deployments.add_handlers(
            on_add=self.enqueue_object,
            on_update=lambda old, new: self.enqueue_object(new),
        )
        self._replicasets.add_handlers(
            on_add=self._on_rs_change,
            on_update=lambda old, new: self._on_rs_change(new),
            on_delete=self._on_rs_change,
        )

    def _on_rs_change(self, rs):
        for ref in rs.metadata.owner_references:
            if ref.kind == "Deployment" and ref.controller:
                key = (f"{rs.namespace}/{ref.name}"
                       if rs.namespace else ref.name)
                self.enqueue(key)

    def _template_hash(self, deployment):
        import hashlib

        payload = str(deployment.spec.template.to_dict())
        return hashlib.sha1(payload.encode()).hexdigest()[:10]

    def reconcile(self, key):
        namespace, _name = split_key(key)
        deployment = self._deployments.cache.get_copy(key)
        if deployment is None:
            return
        template_hash = self._template_hash(deployment)
        rs_name = f"{deployment.name}-{template_hash}"
        owned = [rs for rs in self._replicasets.cache.by_namespace(namespace)
                 if _owned_by(rs, deployment)]
        current = next((rs for rs in owned if rs.name == rs_name), None)

        if current is None:
            rs = ReplicaSet()
            rs.metadata.name = rs_name
            rs.metadata.namespace = namespace
            rs.metadata.labels = dict(
                deployment.spec.template.metadata.labels or {})
            rs.metadata.owner_references = [_controller_ref(deployment)]
            rs.spec.replicas = deployment.spec.replicas
            rs.spec.selector = deployment.spec.selector
            rs.spec.template = deployment.spec.template.copy()
            rs.spec.template.metadata.labels = dict(
                rs.spec.template.metadata.labels or {})
            try:
                yield from self.client.create(rs)
            except AlreadyExists:
                pass
        else:
            if current.spec.replicas != deployment.spec.replicas:
                current.spec.replicas = deployment.spec.replicas
                yield from self.client.update(current)
        # Scale down old replica sets (recreate-style rollover).
        for rs in owned:
            if rs.name != rs_name and (rs.spec.replicas or 0) > 0:
                rs = rs.copy()
                rs.spec.replicas = 0
                try:
                    yield from self.client.update(rs)
                except NotFound:
                    pass
        # Status roll-up.
        ready = sum(rs.status.ready_replicas for rs in owned)
        replicas = sum(rs.status.replicas for rs in owned)
        if (deployment.status.ready_replicas != ready
                or deployment.status.replicas != replicas):
            deployment.status.ready_replicas = ready
            deployment.status.replicas = replicas
            deployment.status.observed_generation = (
                deployment.metadata.generation)
            try:
                yield from self.client.update_status(deployment)
            except NotFound:
                pass
