"""The chaos engine: schedules × faults on the simulation clock.

The engine owns a dedicated ``random.Random`` seeded from the chaos
seed (or derived deterministically from the simulation RNG), walks each
schedule's windows in a simulation process, and records a timeline of
inject/restore actions.  After the run, :meth:`ChaosEngine.report`
summarizes what was injected and :func:`check_convergence` /
:meth:`ChaosEngine.verify_convergence` assert the system healed.
"""

import random

from repro.simkernel.errors import Interrupt

from .faults import (
    ApiRequestFault,
    ApiServerCrash,
    CrashControlPlane,
    ForcedCompaction,
    KillLeader,
    KillStore,
    NetworkPartition,
    ReplicaLag,
    RestoreFromSnapshot,
    TenantStorm,
    WalCorruption,
    WatchDrop,
    WorkerCrash,
)
from .schedule import OneShot, Periodic, RandomWindows


class ChaosEngine:
    """Composes fault schedules over a :class:`VirtualClusterEnv`."""

    def __init__(self, env, seed=None, name="chaos"):
        self.env = env
        self.sim = env.sim
        self.name = name
        if seed is None:
            # Derived from the sim RNG: still fully deterministic per
            # simulation seed, without forcing callers to pick one.
            seed = self.sim.rng.randrange(2**32)
        self.seed = seed
        self.rng = random.Random(seed)
        self._entries = []  # (schedule, fault)
        self._processes = []
        self._started = False
        self.timeline = []  # (sim_time, fault_name, action)

    # ------------------------------------------------------------------
    # Plan assembly
    # ------------------------------------------------------------------

    def add(self, schedule, fault):
        """Register ``fault`` to fire on ``schedule``; returns the fault."""
        fault.bind(self.sim, self.rng)
        self._entries.append((schedule, fault))
        if self._started:
            self._processes.append(self.sim.spawn(
                self._drive(schedule, fault),
                name=f"{self.name}-{fault.name}"))
        return fault

    @property
    def faults(self):
        return [fault for _schedule, fault in self._entries]

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def start(self):
        if self._started:
            return
        self._started = True
        for schedule, fault in self._entries:
            self._processes.append(self.sim.spawn(
                self._drive(schedule, fault),
                name=f"{self.name}-{fault.name}"))

    def stop(self):
        """Interrupt every driver; active windows are restored."""
        for process in self._processes:
            process.interrupt("chaos engine stopped")
        self._processes = []
        self._started = False

    def _drive(self, schedule, fault):
        active = False
        try:
            for delay, duration in schedule.windows(self.rng):
                yield self.sim.timeout(delay)
                fault.inject()
                active = True
                self._mark(fault, "inject")
                if duration > 0:
                    yield self.sim.timeout(duration)
                fault.restore()
                active = False
                self._mark(fault, "restore")
        except Interrupt:
            pass
        finally:
            if active:
                fault.restore()
                self._mark(fault, "restore")

    def _mark(self, fault, action):
        self.timeline.append((self.sim.now, fault.name, action))

    # ------------------------------------------------------------------
    # Reporting and verification
    # ------------------------------------------------------------------

    def report(self):
        faults = []
        for schedule, fault in self._entries:
            entry = {
                "fault": fault.name,
                "schedule": schedule.describe(),
                "injections": fault.injections,
            }
            for counter in ("errors_injected", "latency_injected",
                            "streams_dropped", "requests_blocked",
                            "workers_killed", "stores_killed",
                            "mid_txn_kills", "lagged", "tails_torn"):
                value = getattr(fault, counter, None)
                if value is not None:
                    entry[counter] = value
            faults.append(entry)
        return {
            "seed": self.seed,
            "faults": faults,
            "events": len(self.timeline),
            "timeline": list(self.timeline),
        }

    def format_report(self):
        """ASCII summary of the run (used by ``python -m repro.chaos``)."""
        lines = [f"chaos report (seed={self.seed})",
                 f"{'fault':<34} {'schedule':<34} {'fired':>5}  extra"]
        lines.append("-" * 86)
        for entry in self.report()["faults"]:
            extra = " ".join(
                f"{key}={entry[key]}" for key in sorted(entry)
                if key not in ("fault", "schedule", "injections"))
            lines.append(f"{entry['fault']:<34.34} "
                         f"{entry['schedule']:<34.34} "
                         f"{entry['injections']:>5}  {extra}")
        return "\n".join(lines)

    def verify_convergence(self, timeout=300.0, poll=1.0):
        """Run the sim until the whole system converges; raise on timeout.

        Returns the detail dict from :func:`check_convergence` (empty
        problem lists on success).
        """
        env = self.env

        def converged():
            ok, _detail = check_convergence(env)
            return ok

        env.run_until(converged, timeout=timeout, poll=poll)
        return check_convergence(env)[1]


def _decoded_pods(api):
    """All pods in one apiserver's store, decoded to objects."""
    obj_type = api.registry.get("pods")
    raw_items, _revision = api.store.list_prefix("/registry/pods/")
    return [obj_type.from_dict(value) for _key, value, _rev in raw_items]


def check_convergence(env):
    """One synchronous convergence check over stores, queues, and health.

    Converged means: every live tenant pod has a matching, equally-ready
    super pod; no super pod claims a tenant object that is gone; the
    syncer queues are drained; every circuit breaker is closed with
    nothing parked.  Returns ``(ok, detail)`` where ``detail`` lists the
    violations found (empty lists when ok).
    """
    from repro.core.crd import super_namespace
    from repro.core.syncer.conversion import tenant_origin

    missing = []     # tenant pod without a ready-matching super pod
    orphaned = []    # super pod whose tenant pod is gone
    super_api = env.super_cluster.api
    super_pods = {pod.key: pod for pod in _decoded_pods(super_api)}

    tenant_live = {}  # tenant key -> set of (namespace, name)
    for key, handle in sorted(env.tenants.items()):
        live = set()
        for pod in _decoded_pods(handle.control_plane.api):
            if pod.metadata.deletion_timestamp is not None:
                continue
            live.add((pod.metadata.namespace, pod.metadata.name))
            sname = super_namespace(handle.vc, pod.metadata.namespace)
            super_pod = super_pods.get(f"{sname}/{pod.metadata.name}")
            if super_pod is None:
                missing.append((key, pod.key, "no super pod"))
            elif super_pod.status.is_ready != pod.status.is_ready:
                missing.append((key, pod.key, "readiness mismatch"))
        tenant_live[key] = live

    for super_pod in super_pods.values():
        origin = tenant_origin(super_pod)
        if origin is None:
            continue
        tenant, namespace, name = origin
        if tenant not in tenant_live:
            continue  # tenant was deleted wholesale
        if super_pod.metadata.deletion_timestamp is not None:
            continue
        if (namespace, name) not in tenant_live[tenant]:
            orphaned.append((tenant, super_pod.key))

    syncer = env.syncer
    queues = {
        "downward_depth": len(syncer.downward),
        "upward_depth": len(syncer.upward),
        "parked": syncer.health.parked_count(),
    }
    open_circuits = [
        tenant for tenant, entry in syncer.health.stats().items()
        if entry["state"] != "closed"
    ]
    ok = (not missing and not orphaned and not open_circuits
          and queues["downward_depth"] == 0 and queues["upward_depth"] == 0
          and queues["parked"] == 0)
    return ok, {
        "missing": missing,
        "orphaned": orphaned,
        "open_circuits": open_circuits,
        "queues": queues,
    }


def random_plan(engine, horizon=60.0):
    """A seeded random fault mix over every injection point of the env.

    Deterministic per engine seed: which tenants are partitioned, which
    verbs degrade, and every window boundary all come from the engine
    RNG.  ``horizon`` scales the schedule density so roughly the same
    number of windows land in a short smoke run as in a long soak.
    """
    env = engine.env
    rng = engine.rng
    syncer = env.syncer
    tenant_keys = sorted(env.tenants)

    # Partition the syncer from 1..half of the tenants (at least one).
    count = max(1, len(tenant_keys) // 2)
    for key in sorted(rng.sample(tenant_keys, count)):
        client = syncer.tenants[key].client
        engine.add(
            RandomWindows(mean_gap=horizon / 4.0,
                          duration_range=(horizon / 30.0, horizon / 10.0)),
            NetworkPartition(client, name=f"partition:{key}"))

    # Per-verb error + latency injection on the super apiserver.
    engine.add(
        RandomWindows(mean_gap=horizon / 5.0,
                      duration_range=(horizon / 40.0, horizon / 15.0)),
        ApiRequestFault(env.super_cluster, verbs=("create", "update"),
                        error_rate=rng.uniform(0.2, 0.6),
                        extra_latency=rng.uniform(0.0, 0.05),
                        name="reqfault:super"))

    # Watch drops and a forced compaction on one tenant control plane.
    victim = rng.choice(tenant_keys)
    victim_cp = env.tenants[victim].control_plane
    engine.add(Periodic(period=horizon / 3.0, count=2),
               WatchDrop(victim_cp, name=f"watchdrop:{victim}"))
    engine.add(OneShot(at=rng.uniform(horizon / 4.0, horizon / 2.0)),
               ForcedCompaction(victim_cp, name=f"compact:{victim}"))

    # A short full crash of another tenant apiserver.
    crash_victim = rng.choice(tenant_keys)
    engine.add(
        OneShot(at=rng.uniform(horizon / 5.0, horizon / 2.0),
                duration=rng.uniform(horizon / 20.0, horizon / 8.0)),
        ApiServerCrash(env.tenants[crash_victim].control_plane,
                       name=f"crash:{crash_victim}"))

    # Syncer worker crashes: the watchdog has to respawn them.
    engine.add(Periodic(period=horizon / 6.0, count=4),
               WorkerCrash(syncer, count=1))
    return engine


def ha_plan(engine, horizon=60.0):
    """The HA fault mix (DESIGN.md §10) on top of :func:`random_plan`.

    Kept separate — and always added *after* ``random_plan`` — so the
    base plan draws the same RNG sequence with or without HA faults and
    existing chaos seeds keep reproducing byte-identically.

    Requires an env built with ``syncer_replicas > 1`` for the leader
    kill; the control-plane crash/rollback faults work on any env.
    """
    env = engine.env
    rng = engine.rng
    if env.syncer_ha is not None:
        # Crash the leader mid-run; the window end restarts the victim
        # as a standby, so a later kill has somewhere to fail over to.
        engine.add(
            OneShot(at=rng.uniform(horizon / 4.0, horizon / 2.0),
                    duration=horizon / 6.0),
            KillLeader(env.syncer_ha, mode="crash"))
    tenant_keys = sorted(env.tenants)
    if tenant_keys:
        crash_victim = rng.choice(tenant_keys)
        engine.add(
            OneShot(at=rng.uniform(horizon / 3.0, 2.0 * horizon / 3.0)),
            CrashControlPlane(env.tenant_operator, crash_victim))
        rollback_victim = rng.choice(tenant_keys)
        engine.add(
            OneShot(at=rng.uniform(horizon / 2.0, 0.9 * horizon)),
            RestoreFromSnapshot(env.tenant_operator, rollback_victim))
    return engine


def durability_plan(engine, horizon=60.0, kill=True, mid_txn=True,
                    wal_corrupt=True):
    """Storage durability faults (DESIGN.md §13): leader kill -9 (plain
    and mid-``txn``), follower lag, and a torn WAL tail.

    Like :func:`ha_plan`, always added *after* the other plans so the
    base RNG draws — and every existing chaos seed — stay byte-identical
    when durability chaos is off.

    Requires an env built with ``store_replicas >= 2`` (the super
    cluster's store is a :class:`~repro.storage.ReplicatedStore`); a
    plain single store gets only the in-place WAL tail tear.
    """
    env = engine.env
    rng = engine.rng
    store = env.super_cluster.api.store
    replicated = isinstance(getattr(store, "replicas", None), list)
    if kill and replicated:
        # Plain leader kill early; the window end restarts the victim.
        engine.add(
            OneShot(at=rng.uniform(horizon / 5.0, horizon / 3.0),
                    duration=horizon / 5.0),
            KillStore(store))
        if mid_txn:
            # Armed kill: the leader dies between two WAL appends of a
            # single multi-op txn.  Short arming window; the restart
            # rides on the window close.
            engine.add(
                OneShot(at=rng.uniform(horizon / 2.0, 0.7 * horizon),
                        duration=horizon / 6.0),
                KillStore(store, mid_txn=True))
        engine.add(
            RandomWindows(mean_gap=horizon / 3.0,
                          duration_range=(horizon / 20.0, horizon / 8.0),
                          count=2),
            ReplicaLag(store, extra_lag=rng.uniform(0.1, 0.5)))
    if wal_corrupt and (replicated
                        or getattr(store, "wal", None) is not None):
        engine.add(
            OneShot(at=rng.uniform(0.6 * horizon, 0.85 * horizon),
                    duration=horizon / 8.0),
            WalCorruption(store))
    return engine


def storm_plan(engine, horizon=60.0, qps=400.0, tier="free"):
    """An abusive-tenant front-door storm (DESIGN.md §15).

    Like :func:`ha_plan` and :func:`durability_plan`, always added
    *after* the other plans so the base RNG draws — and every existing
    chaos seed — stay byte-identical when the storm is off.

    One tenant identity (named after a random existing tenant, or a
    synthetic abuser when the env has none) floods the super apiserver
    in two windows across the run.  With APF enabled the storm should
    shed at the free tier while system traffic stays exempt; without it
    the storm competes for the shared inflight pool.
    """
    env = engine.env
    rng = engine.rng
    tenant_keys = sorted(env.tenants)
    if tenant_keys:
        abuser = env.tenants[rng.choice(tenant_keys)].name
    else:
        abuser = "abuser"
    engine.add(
        RandomWindows(mean_gap=horizon / 3.0,
                      duration_range=(horizon / 8.0, horizon / 4.0),
                      count=2),
        TenantStorm(env.super_cluster, user=f"storm-{abuser}",
                    qps=qps, concurrency=200, tier=tier))
    return engine
