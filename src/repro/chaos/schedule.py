"""Fault schedules: *when* a fault fires and for how long.

A schedule yields ``(start_delay, duration)`` windows relative to the
moment the previous window closed.  The engine walks the windows on the
simulation clock, activating the fault for each window, so schedule
composition is pure data — no schedule ever touches the system under
test directly.

``RandomWindows`` draws from a :class:`random.Random` seeded from the
chaos seed, never from wall clock, so runs replay identically.
"""


class Schedule:
    """Base class; subclasses generate ``(delay, duration)`` windows."""

    def windows(self, rng):
        """Yield ``(delay_before_start, active_duration)`` tuples.

        ``rng`` is the engine's dedicated ``random.Random``; schedules
        must draw all randomness from it (determinism per seed).
        """
        raise NotImplementedError

    def describe(self):
        return type(self).__name__


class OneShot(Schedule):
    """Fire once at ``at`` (absolute engine start offset) for ``duration``."""

    def __init__(self, at, duration=0.0):
        self.at = at
        self.duration = duration

    def windows(self, rng):
        yield (self.at, self.duration)

    def describe(self):
        return f"one-shot@{self.at:g}s/{self.duration:g}s"


class Periodic(Schedule):
    """Fire every ``period`` seconds for ``duration``, ``count`` times.

    The first window opens after ``offset + period``; with ``count=None``
    it repeats until the engine stops.
    """

    def __init__(self, period, duration=0.0, count=None, offset=0.0):
        self.period = period
        self.duration = duration
        self.count = count
        self.offset = offset

    def windows(self, rng):
        first = True
        fired = 0
        while self.count is None or fired < self.count:
            delay = self.period + (self.offset if first else 0.0)
            first = False
            fired += 1
            yield (delay, self.duration)

    def describe(self):
        count = "inf" if self.count is None else str(self.count)
        return f"periodic/{self.period:g}s x{count}/{self.duration:g}s"


class RandomWindows(Schedule):
    """Windows with exponentially distributed gaps and uniform durations.

    The classic chaos-monkey shape: mean time between faults
    ``mean_gap``, each fault active for a duration drawn uniformly from
    ``duration_range``.  All draws come from the engine RNG.
    """

    def __init__(self, mean_gap, duration_range=(0.5, 3.0), count=None,
                 min_gap=0.1):
        self.mean_gap = mean_gap
        self.duration_range = duration_range
        self.count = count
        self.min_gap = min_gap

    def windows(self, rng):
        fired = 0
        low, high = self.duration_range
        while self.count is None or fired < self.count:
            fired += 1
            gap = max(self.min_gap, rng.expovariate(1.0 / self.mean_gap))
            duration = rng.uniform(low, high)
            yield (gap, duration)

    def describe(self):
        count = "inf" if self.count is None else str(self.count)
        low, high = self.duration_range
        return (f"random/gap~exp({self.mean_gap:g}s) "
                f"dur~U[{low:g},{high:g}]s x{count}")
