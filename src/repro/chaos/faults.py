"""Injection points: *what* a fault does to the system under test.

A fault is a pair of ``inject()`` / ``restore()`` hooks the engine calls
when a schedule window opens / closes.  Faults touch only documented
chaos hooks on the simulated components:

======================  ==================================================
fault                   hook
======================  ==================================================
ApiServerCrash          ``APIServer.crash()`` / ``recover()``
ApiRequestFault         ``APIServer.fault_injector`` (per-verb error or
                        latency on the request path)
WatchDrop               ``WatchStream.stop()`` on the server's open
                        streams (reflectors must relist)
ForcedCompaction        ``EtcdStore.compact(keep=...)`` (watch replay
                        from an old revision fails → relist)
NetworkPartition        ``Client.fault_injector`` + ``sever_watches()``
                        on one client (one link down, server healthy)
WorkerCrash             ``Process.interrupt()`` on syncer workers (the
                        watchdog must respawn them)
KillLeader              ``SyncerHA.kill_leader()`` (a standby must win
                        the lease and take over; fencing must hold)
CrashControlPlane       ``TenantOperator.crash_control_plane()`` (wiped
                        etcd; the operator restores from its snapshot)
RestoreFromSnapshot     ``EtcdStore.restore()`` on a live tenant CP
                        (rollback; watchers must relist cleanly)
KillStore               ``ReplicatedStore.kill_leader()`` /
                        ``arm_kill()`` (kill -9 of the storage leader,
                        optionally mid-``txn``; a fenced follower must
                        take over with zero committed-write loss)
ReplicaLag              ``ReplicatedStore.set_extra_lag()`` (one
                        follower falls behind; stale reads must be
                        detectable via the applied revision)
WalCorruption           ``WriteAheadLog.tear_tail()`` (torn tail
                        record; recovery keeps the committed prefix
                        and resyncs the rest from the leader)
======================  ==================================================

Faults draw any randomness from the engine RNG handed to ``bind()``.
"""

from repro.apiserver.errors import ServerUnavailable


class Fault:
    """Base injection point."""

    def __init__(self, name=None):
        self.name = name or type(self).__name__
        self.sim = None
        self.rng = None
        self.injections = 0

    def bind(self, sim, rng):
        """Called once by the engine before the first window."""
        self.sim = sim
        self.rng = rng

    def inject(self):
        raise NotImplementedError

    def restore(self):
        """Close the window (no-op for instantaneous faults)."""

    def describe(self):
        return self.name


def _api_of(target):
    """Accept an APIServer, a ControlPlane, or anything with ``.api``."""
    return getattr(target, "api", target)


class ApiServerCrash(Fault):
    """Take one apiserver down for the window (all its watches break)."""

    def __init__(self, target, name=None):
        super().__init__(name=name or f"crash:{_api_of(target).name}")
        self.api = _api_of(target)

    def inject(self):
        self.injections += 1
        self.api.crash()

    def restore(self):
        self.api.recover()


class ApiRequestFault(Fault):
    """Per-verb error/latency injection on one apiserver's request path.

    While active, a matching request fails with ``error_factory()`` with
    probability ``error_rate`` and pays ``extra_latency`` seconds first.
    Instances chain, so several request faults can overlap on one server.
    """

    def __init__(self, target, verbs=None, plurals=None, error_rate=1.0,
                 extra_latency=0.0, error_factory=None, name=None):
        api = _api_of(target)
        super().__init__(name=name or f"reqfault:{api.name}")
        self.api = api
        self.verbs = frozenset(verbs) if verbs else None
        self.plurals = frozenset(plurals) if plurals else None
        self.error_rate = error_rate
        self.extra_latency = extra_latency
        self.error_factory = error_factory or (
            lambda: ServerUnavailable(f"{self.name} injected"))
        self._active = False
        self._previous = None
        self.errors_injected = 0
        self.latency_injected = 0

    def inject(self):
        self.injections += 1
        self._active = True
        if self.api.fault_injector is not self:
            self._previous = self.api.fault_injector
            self.api.fault_injector = self

    def restore(self):
        self._active = False
        if self.api.fault_injector is self:
            self.api.fault_injector = self._previous
            self._previous = None

    def _matches(self, verb, plural):
        if self.verbs is not None and verb not in self.verbs:
            return False
        if self.plurals is not None and plural not in self.plurals:
            return False
        return True

    def on_request(self, verb, plural):
        """Coroutine hook called by ``APIServer._begin``."""
        if self._previous is not None:
            yield from self._previous.on_request(verb, plural)
        if not self._active or not self._matches(verb, plural):
            return
        if self.extra_latency:
            self.latency_injected += 1
            yield self.sim.timeout(self.extra_latency)
        if self.error_rate >= 1.0 or self.rng.random() < self.error_rate:
            self.errors_injected += 1
            raise self.error_factory()

    def describe(self):
        parts = [self.name]
        if self.verbs:
            parts.append("verbs=" + ",".join(sorted(self.verbs)))
        if self.error_rate < 1.0:
            parts.append(f"p={self.error_rate:g}")
        if self.extra_latency:
            parts.append(f"+{self.extra_latency:g}s")
        return " ".join(parts)


class WatchDrop(Fault):
    """Sever open watch streams on one apiserver (connection resets).

    ``fraction`` selects how many of the currently open streams die; the
    affected reflectors observe a closed channel and relist.
    """

    def __init__(self, target, fraction=1.0, name=None):
        api = _api_of(target)
        super().__init__(name=name or f"watchdrop:{api.name}")
        self.api = api
        self.fraction = fraction
        self.streams_dropped = 0

    def inject(self):
        self.injections += 1
        streams = [s for s in list(self.api._watch_streams) if not s.closed]
        if self.fraction < 1.0:
            count = max(1, int(len(streams) * self.fraction))
            streams = self.rng.sample(streams, min(count, len(streams)))
        for stream in streams:
            stream.stop()
            self.streams_dropped += 1


class ForcedCompaction(Fault):
    """Compact one etcd's watch history down to ``keep`` events.

    A reflector that later tries to resume a watch from a pre-compaction
    revision gets :class:`RevisionCompacted` and must relist.
    """

    def __init__(self, target, keep=0, name=None):
        api = _api_of(target)
        super().__init__(name=name or f"compact:{api.name}")
        self.store = api.store
        self.keep = keep

    def inject(self):
        self.injections += 1
        self.store.compact(keep=self.keep)


class NetworkPartition(Fault):
    """Cut the link between one client and its apiserver.

    The server stays healthy for everyone else; this client's requests
    fail with :class:`ServerUnavailable` and its established watch
    streams die with the link.  Pass the syncer's per-tenant client
    (``syncer.tenants[key].client``) to model a syncer↔tenant partition.
    """

    def __init__(self, client, name=None):
        super().__init__(
            name=name or f"partition:{client.user_agent}")
        self.client = client
        self._active = False
        self.requests_blocked = 0

    def inject(self):
        self.injections += 1
        self._active = True
        if self.client.fault_injector is not self:
            self.client.fault_injector = self
        self.client.sever_watches()

    def restore(self):
        self._active = False
        if self.client.fault_injector is self:
            self.client.fault_injector = None

    def check(self):
        """Synchronous hook called by ``Client._call`` / ``watch``."""
        if self._active:
            self.requests_blocked += 1
            raise ServerUnavailable(f"{self.name}: link down")


class KillLeader(Fault):
    """Kill the serving syncer leader (DESIGN.md §10).

    ``mode="crash"``: the replica dies; the window's ``restore()``
    brings it back as a standby.  ``mode="partition"``: the leader is
    cut off but keeps writing with its stale fencing token until it
    notices — the split-brain window storage fencing must cover.
    """

    def __init__(self, ha, mode="crash", notice_delay=2.0, name=None):
        super().__init__(name=name or f"killleader:{mode}")
        self.ha = ha
        self.mode = mode
        self.notice_delay = notice_delay
        self.leaders_killed = 0
        self._victim = None

    def inject(self):
        victim = self.ha.kill_leader(mode=self.mode,
                                     notice_delay=self.notice_delay)
        if victim is not None:
            self.injections += 1
            self.leaders_killed += 1
            self._victim = victim

    def restore(self):
        victim, self._victim = self._victim, None
        if victim is None:
            return
        if self.mode == "crash":
            self.ha.restart_replica(victim)
        else:
            self.ha.heal(victim)


class CrashControlPlane(Fault):
    """Crash one tenant control plane with total data loss.

    The apiserver goes down and its etcd is wiped; the tenant operator
    must notice and reprovision from its latest snapshot (DESIGN.md
    §10.3).  Recovery is driven by the operator, not by ``restore()``.
    """

    def __init__(self, operator, key, name=None):
        super().__init__(name=name or f"cpcrash:{key}")
        self.operator = operator
        self.key = key
        self.crashes = 0

    def inject(self):
        if self.operator.crash_control_plane(self.key):
            self.injections += 1
            self.crashes += 1


class RestoreFromSnapshot(Fault):
    """Roll one live tenant control plane back to its last snapshot.

    No crash: the etcd state snaps back in place, every open watch is
    cancelled, and reflectors must relist cleanly across the restore
    (their resume revisions are now compacted away).
    """

    def __init__(self, operator, key, name=None):
        super().__init__(name=name or f"rollback:{key}")
        self.operator = operator
        self.key = key
        self.rollbacks = 0

    def inject(self):
        control_plane = self.operator.control_planes.get(self.key)
        snapshot = self.operator.snapshots.get(self.key)
        if control_plane is None or snapshot is None:
            return
        self.injections += 1
        self.rollbacks += 1
        control_plane.api.store.restore(snapshot)


class KillStore(Fault):
    """Kill -9 the replicated storage leader (DESIGN.md §13).

    ``mid_txn=False``: the leader dies at the window open.
    ``mid_txn=True``: the kill is *armed* instead — the leader dies
    after K ops inside its next multi-op ``txn`` (K drawn from the
    engine RNG), i.e. between WAL appends of a single transaction, the
    worst crash point for atomicity.  Either way a follower must win
    the store lease, pass the fencing barrier, and serve with zero
    committed-write loss; the window's ``restore()`` restarts the
    victim from its own WAL so a later kill has somewhere to fail over.
    """

    def __init__(self, store, mid_txn=False, max_ops=4, name=None):
        super().__init__(name=name or (
            f"killstore:{'midtxn' if mid_txn else 'leader'}"))
        self.store = store
        self.mid_txn = mid_txn
        self.max_ops = max_ops
        self.stores_killed = 0
        self.mid_txn_kills = 0
        self._victim = None

    def inject(self):
        if self.store.leader is None:
            return  # leaderless already: nothing to kill
        self.injections += 1
        if self.mid_txn:
            after = self.rng.randrange(self.max_ops)
            self.store.arm_kill(after, callback=self._on_killed)
        else:
            self.stores_killed += 1
            self._victim = self.store.kill_leader(reason=self.name)

    def _on_killed(self, _store):
        self.stores_killed += 1
        self.mid_txn_kills += 1

    def restore(self):
        victim, self._victim = self._victim, None
        if victim is not None:
            self.store.restart_replica(victim)
        else:
            # Armed/mid-txn path: an arm that never fired (no txn hit
            # the window) is defused, and whoever is dead comes back.
            self.store.disarm_kill()
            self.store.restart_replica()


class ReplicaLag(Fault):
    """Slow one follower's apply pump by ``extra_lag`` seconds/record.

    While the window is open the follower's applied revision trails the
    leader's durable revision; ``read_follower(min_revision=...)`` must
    raise :class:`StaleRead` instead of serving the stale value.  The
    window close removes the lag and the follower catches up.
    """

    def __init__(self, store, extra_lag=0.5, name=None):
        super().__init__(name=name or f"replicalag:{store.name}")
        self.store = store
        self.extra_lag = extra_lag
        self.lagged = 0
        self._victim = None

    def inject(self):
        victim = self.store.set_extra_lag(self.extra_lag)
        if victim is None:
            return  # no live follower to slow down
        self.injections += 1
        self.lagged += 1
        self._victim = victim

    def restore(self):
        victim, self._victim = self._victim, None
        if victim is not None:
            self.store.set_extra_lag(0.0, index=victim)


class WalCorruption(Fault):
    """Tear the tail record of one store replica's write-ahead log.

    Models a write torn mid-flight by a crash: the victim follower is
    killed and its last WAL record's payload truncated so the checksum
    no longer matches.  Recovery (the window's ``restore()``) must
    detect the tear, truncate to the intact committed prefix, and
    resync the lost suffix from the leader — corruption is repaired
    from peers, never replayed into the store.

    On a plain single store (no replica group) the tail is torn in
    place without a kill; the next recovery exercises the same
    truncate-to-prefix path.
    """

    def __init__(self, store, name=None):
        super().__init__(name=name or f"walcorrupt:{store.name}")
        self.store = store
        self.tails_torn = 0
        self._victim = None

    def inject(self):
        replicas = getattr(self.store, "replicas", None)
        if isinstance(replicas, list):
            followers = [r for r in replicas
                         if r.alive and r.role == "follower"]
            if not followers:
                return
            victim = self.rng.choice(sorted(followers,
                                            key=lambda r: r.index))
            self.store.kill_replica(victim.index, reason=self.name)
            if victim.store.wal.tear_tail() is not None:
                self.tails_torn += 1
            self.injections += 1
            self._victim = victim.index
        else:
            wal = getattr(self.store, "wal", None)
            if wal is None:
                return
            self.injections += 1
            if wal.tear_tail() is not None:
                self.tails_torn += 1

    def restore(self):
        victim, self._victim = self._victim, None
        if victim is not None:
            self.store.restart_replica(victim)


class WorkerCrash(Fault):
    """Kill random syncer workers; the watchdog must respawn them."""

    def __init__(self, syncer, count=1, labels=None, name=None):
        super().__init__(name=name or f"workercrash:{syncer.name}")
        self.syncer = syncer
        self.count = count
        self.labels = labels
        self.workers_killed = 0

    def inject(self):
        self.injections += 1
        pool = sorted(self.syncer.worker_processes)
        if self.labels is not None:
            pool = [label for label in pool if label in self.labels]
        if not pool:
            return
        victims = self.rng.sample(pool, min(self.count, len(pool)))
        for label in victims:
            process = self.syncer.worker_processes.get(label)
            if process is not None:
                self.workers_killed += 1
                process.interrupt(f"{self.name}: chaos kill")


class TenantStorm(Fault):
    """One tenant floods the super apiserver at many times normal QPS.

    Unlike the other faults this hooks nothing: the storm *is* ordinary
    (abusive) client traffic — ``concurrency`` flooder processes issuing
    list requests as ``user`` at an aggregate ``qps`` against the super
    apiserver, exactly the noisy-neighbor front-door pressure APF
    admission (DESIGN.md §15) exists to absorb.  The abuser is impatient:
    ``max_retries=0`` and no client-side throttle, so shed requests
    surface immediately and are counted in ``requests_shed``.

    ``tier`` optionally registers the user with the server's APF
    classifier (an abusive *free* tenant is the headline case); without
    APF the storm still runs and simply competes for the shared
    max-inflight pool — the degradation the seed exhibits.
    """

    def __init__(self, super_cluster, user="tenant-storm", qps=300.0,
                 concurrency=8, plural="pods", namespace="default",
                 tier=None, name=None):
        super().__init__(name=name or f"storm:{user}")
        self.super_cluster = super_cluster
        self.user = user
        self.qps = qps
        self.concurrency = max(1, concurrency)
        self.plural = plural
        self.namespace = namespace
        self.tier = tier
        self._credential = None
        self._procs = []
        self.requests_ok = 0
        self.requests_shed = 0
        self.requests_failed = 0

    def bind(self, sim, rng):
        super().bind(sim, rng)
        self._credential = self.super_cluster.register_user(self.user)
        apf = getattr(self.super_cluster, "apf", None)
        if apf is not None and self.tier is not None:
            apf.classifier.assign(self.user, self.tier)

    def inject(self):
        self.injections += 1
        for index in range(self.concurrency):
            self._procs.append(self.sim.spawn(
                self._flood(index), name=f"{self.name}-{index}"))

    def restore(self):
        procs, self._procs = self._procs, []
        for process in procs:
            process.interrupt(f"{self.name}: window closed")

    def _flood(self, index):
        from repro.apiserver.errors import ApiError, TooManyRequests
        from repro.simkernel.errors import Interrupt

        client = self.super_cluster.client(
            credential=self._credential,
            user_agent=f"{self.name}-{index}",
            qps=1_000_000, burst=2_000_000)
        client.max_retries = 0
        period = self.concurrency / self.qps
        try:
            while True:
                try:
                    yield from client.list(self.plural,
                                           namespace=self.namespace)
                    self.requests_ok += 1
                except TooManyRequests:
                    self.requests_shed += 1
                except ApiError:
                    self.requests_failed += 1
                yield self.sim.timeout(period)
        except Interrupt:
            return

    def describe(self):
        return (f"{self.name} qps={self.qps:g} x{self.concurrency} "
                f"ok={self.requests_ok} shed={self.requests_shed}")
