"""Seeded chaos run against a small VirtualCluster deployment.

Usage::

    PYTHONPATH=src python -m repro.chaos --seed 7 --report

Builds a deployment (virtual-kubelet nodes, a few tenants with pods),
unleashes a seeded random fault plan over every injection point, then
stops the faults and verifies full convergence.  Exit status 0 means
the system healed; 1 means convergence failed within the timeout.
"""

import argparse
import sys
from dataclasses import replace

from repro.config import DEFAULT_CONFIG
from repro.core.env import VirtualClusterEnv
from repro.metrics import (
    format_failover,
    format_hotpath,
    format_syncer_health,
    format_telemetry,
)
from repro.telemetry import CORE_FAMILIES

from .engine import ChaosEngine, check_convergence, ha_plan, random_plan


def optimized_config(base=None, shards=2, batch_max=8):
    """Hot-path optimizations on (DESIGN.md §9): indexes, sharded
    dispatch, batched downward writes."""
    base = base or DEFAULT_CONFIG
    return base.with_overrides(syncer=replace(
        base.syncer, use_cache_indexes=True, dispatch_shards=shards,
        downward_batch_max=batch_max))


def run(seed, tenants=2, pods_per_tenant=3, horizon=40.0, nodes=3,
        report=False, convergence_timeout=300.0, optimized=True,
        kill_leader=False, replicas=2):
    config = optimized_config() if optimized else DEFAULT_CONFIG
    env = VirtualClusterEnv(seed=seed, config=config,
                            num_virtual_nodes=nodes,
                            scan_interval=5.0, dws_workers=4, uws_workers=4,
                            syncer_replicas=replicas if kill_leader else 1)
    env.bootstrap()
    handles = [env.run_coroutine(env.create_tenant(f"tenant-{i}"))
               for i in range(tenants)]
    for handle in handles:
        for index in range(pods_per_tenant):
            env.run_coroutine(handle.create_pod(f"pod-{index}"))
    for handle in handles:
        env.run_until_pods_ready(
            handle, [f"default/pod-{i}" for i in range(pods_per_tenant)],
            timeout=120.0)

    engine = ChaosEngine(env, seed=seed)
    random_plan(engine, horizon=horizon)
    if kill_leader:
        # Added after random_plan so the base plan's RNG draws (and so
        # every existing chaos seed) are unchanged.
        ha_plan(engine, horizon=horizon)
    engine.start()
    env.run_for(horizon)
    engine.stop()

    try:
        detail = engine.verify_convergence(timeout=convergence_timeout)
        converged = True
    except TimeoutError:
        _ok, detail = check_convergence(env)
        converged = False

    if report:
        print(engine.format_report())
        print()
        print(format_syncer_health(env.syncer))
        print()
        print(format_hotpath(env.syncer))
        print()
        if env.syncer_ha is not None:
            print(format_failover(env.syncer_ha))
            print()
        print(format_telemetry(env.sim.telemetry.snapshot(),
                               title="Telemetry (core families)",
                               families=CORE_FAMILIES))
        print()
    status = "CONVERGED" if converged else "FAILED TO CONVERGE"
    print(f"seed={seed} horizon={horizon:g}s sim_time={env.sim.now:.1f}s "
          f"-> {status}")
    if not converged:
        print(f"  detail: {detail}")
    return converged, engine


def main(argv=None):
    parser = argparse.ArgumentParser(
        prog="python -m repro.chaos",
        description="seeded chaos run with convergence verification")
    parser.add_argument("--seed", type=int, default=0,
                        help="chaos + simulation seed (default 0)")
    parser.add_argument("--tenants", type=int, default=2)
    parser.add_argument("--pods", type=int, default=3,
                        help="pods per tenant")
    parser.add_argument("--nodes", type=int, default=3,
                        help="virtual-kubelet nodes")
    parser.add_argument("--horizon", type=float, default=40.0,
                        help="seconds of simulated chaos")
    parser.add_argument("--report", action="store_true",
                        help="print the fault and syncer-health tables")
    parser.add_argument("--no-optimized", action="store_true",
                        help="run with the paper-faithful serialized "
                             "syncer (hot-path optimizations off)")
    parser.add_argument("--kill-leader", action="store_true",
                        help="run the syncer as an HA replica group "
                             "(--replicas) and add the HA fault mix: "
                             "leader kill with standby failover, tenant "
                             "control-plane crash restored from its "
                             "etcd snapshot, and a snapshot rollback")
    parser.add_argument("--replicas", type=int, default=2,
                        help="syncer replicas when --kill-leader is on "
                             "(default 2)")
    args = parser.parse_args(argv)
    if args.replicas < 2:
        parser.error("--replicas must be >= 2")
    if args.tenants < 1:
        parser.error("--tenants must be >= 1")
    if args.pods < 0:
        parser.error("--pods must be >= 0")
    if args.nodes < 1:
        parser.error("--nodes must be >= 1")
    if args.horizon <= 0:
        parser.error("--horizon must be > 0")
    converged, _engine = run(
        args.seed, tenants=args.tenants, pods_per_tenant=args.pods,
        horizon=args.horizon, nodes=args.nodes, report=args.report,
        optimized=not args.no_optimized, kill_leader=args.kill_leader,
        replicas=args.replicas)
    return 0 if converged else 1


if __name__ == "__main__":
    sys.exit(main())
