"""Seeded chaos run against a small VirtualCluster deployment.

Usage::

    PYTHONPATH=src python -m repro.chaos --seed 7 --report

Builds a deployment (virtual-kubelet nodes, a few tenants with pods),
unleashes a seeded random fault plan over every injection point, then
stops the faults and verifies full convergence.  Exit status 0 means
the system healed; 1 means convergence failed within the timeout.
"""

import argparse
import sys
from dataclasses import replace

from repro.config import DEFAULT_CONFIG
from repro.core.env import VirtualClusterEnv
from repro.metrics import (
    format_apf,
    format_durability,
    format_failover,
    format_hotpath,
    format_swapper,
    format_syncer_health,
    format_telemetry,
)
from repro.telemetry import CORE_FAMILIES

from .engine import (
    ChaosEngine,
    check_convergence,
    durability_plan,
    ha_plan,
    random_plan,
    storm_plan,
)


def optimized_config(base=None, shards=2, batch_max=8):
    """Hot-path optimizations on (DESIGN.md §9): indexes, sharded
    dispatch, batched downward writes."""
    base = base or DEFAULT_CONFIG
    return base.with_overrides(syncer=replace(
        base.syncer, use_cache_indexes=True, dispatch_shards=shards,
        downward_batch_max=batch_max))


def run(seed, tenants=2, pods_per_tenant=3, horizon=40.0, nodes=3,
        report=False, convergence_timeout=300.0, optimized=True,
        kill_leader=False, replicas=2, record=False, detect_races=False,
        kill_store=False, replicas_store=1, wal_corrupt=False,
        apf=False, tenant_storm=False, workers=None):
    config = optimized_config() if optimized else DEFAULT_CONFIG
    if apf:
        # Admission control + scale-to-zero are opt-in (DESIGN.md §15);
        # without --apf the config object is untouched, so existing
        # chaos seeds stay byte-identical.
        config = config.with_overrides(
            apf=replace(config.apf, enabled=True),
            swapper=replace(config.swapper, enabled=True,
                            idle_threshold=10.0, check_interval=2.0))
    sim = None
    recorder = None
    if record or detect_races:
        from repro.simkernel import Simulation

        sim = Simulation(seed=seed, workers=workers)
    if record:
        # Determinism check: hash every store emission so two same-seed
        # runs can be diffed (and bisected) by repro.analysis.bisect.
        from repro.analysis.bisect import ReplayRecorder

        recorder = ReplayRecorder(sim)
    if detect_races:
        # Vector-clock race detection under the fault mix (worker kills,
        # leader failovers); reachable as env.sim.race_detector.
        from repro.analysis.racedetect import RaceDetector

        RaceDetector(sim)
    env = VirtualClusterEnv(
        seed=seed, config=config, sim=sim, num_virtual_nodes=nodes,
        workers=workers, scan_interval=5.0, dws_workers=4, uws_workers=4,
        syncer_replicas=replicas if kill_leader else 1,
        # None (not 1) keeps the default store construction untouched,
        # so runs without storage flags stay byte-identical to the seed.
        store_replicas=replicas_store if replicas_store > 1 else None,
        store_wal=(True if (wal_corrupt and replicas_store <= 1)
                   else None))
    env.bootstrap()
    handles = [env.run_coroutine(env.create_tenant(f"tenant-{i}"))
               for i in range(tenants)]
    for handle in handles:
        for index in range(pods_per_tenant):
            env.run_coroutine(handle.create_pod(f"pod-{index}"))
    for handle in handles:
        env.run_until_pods_ready(
            handle, [f"default/pod-{i}" for i in range(pods_per_tenant)],
            timeout=120.0)

    engine = ChaosEngine(env, seed=seed)
    random_plan(engine, horizon=horizon)
    if kill_leader:
        # Added after random_plan so the base plan's RNG draws (and so
        # every existing chaos seed) are unchanged.
        ha_plan(engine, horizon=horizon)
    if kill_store or wal_corrupt:
        # Likewise after ha_plan: storage faults extend the draw
        # sequence, never reorder it.
        durability_plan(engine, horizon=horizon, kill=kill_store,
                        mid_txn=kill_store, wal_corrupt=wal_corrupt)
    if tenant_storm:
        # Always appended last, so base chaos seeds keep their draw order.
        storm_plan(engine, horizon=horizon)
    engine.start()
    env.run_for(horizon)
    engine.stop()

    try:
        detail = engine.verify_convergence(timeout=convergence_timeout)
        converged = True
    except TimeoutError:
        _ok, detail = check_convergence(env)
        converged = False

    if report:
        print(engine.format_report())
        print()
        print(format_syncer_health(env.syncer))
        print()
        print(format_hotpath(env.syncer))
        print()
        if env.syncer_ha is not None:
            print(format_failover(env.syncer_ha))
            print()
        super_store = env.super_cluster.api.store
        if hasattr(super_store, "replicas") or getattr(
                super_store, "wal", None) is not None:
            print(format_durability(super_store,
                                    title="Store durability (super)"))
            print()
        if env.super_cluster.apf is not None:
            print(format_apf(env.super_cluster.apf))
            print()
        if env.swapper is not None:
            print(format_swapper(env.swapper))
            print()
        print(format_telemetry(env.sim.telemetry.snapshot(),
                               title="Telemetry (core families)",
                               families=CORE_FAMILIES))
        print()
    if detect_races:
        detector = env.sim.race_detector
        print(detector.report())
        if not detector.ok:
            converged = False
            detail = f"{len(detector.conflicts)} race conflict(s)"
    status = "CONVERGED" if converged else "FAILED TO CONVERGE"
    backend = (f" workers={env.sim.workers}" if env.sim.workers else "")
    print(f"seed={seed} horizon={horizon:g}s sim_time={env.sim.now:.1f}s"
          f"{backend} -> {status}")
    if not converged:
        print(f"  detail: {detail}")
    env.sim.close()  # shut down the parallel worker pool, if any
    if record:
        return converged, engine, recorder
    return converged, engine


def check_determinism(seed, report=False, **kwargs):
    """Run the chaos config twice with replay recording and diff.

    On divergence, prints the bisected first divergent store event and
    component (the self-diagnosis the --report output embeds) plus the
    standalone reproduction command.  Returns True when both runs
    converged AND their store-event streams are identical.
    """
    from repro.analysis.bisect import first_divergence

    converged_a, _engine, run_a = run(seed, report=report, record=True,
                                      **kwargs)
    converged_b, _engine_b, run_b = run(seed, report=False, record=True,
                                        **kwargs)
    divergence = first_divergence(run_a, run_b)
    if divergence is None:
        print(f"determinism check: OK — {len(run_a.digests)} store events "
              f"byte-identical across two seed={seed} chaos runs")
        return converged_a and converged_b
    print(f"determinism check: FAILED — same-seed (seed={seed}) chaos "
          f"runs diverged")
    print(divergence.format())
    print(f"  reproduce standalone: PYTHONPATH=src python -m repro.analysis "
          f"bisect --seed {seed}")
    return False


def compare_workers(seed, workers, report=False, **kwargs):
    """Run the chaos config serially and with ``workers`` threads, diff.

    The parallel backend's merge barrier guarantees byte-identical store
    emissions for any worker count (DESIGN.md §16); this is the CI gate
    that holds it to that.  On divergence, bisects to the first
    divergent store event.  Returns True when both runs converged AND
    their digest streams are identical.
    """
    from repro.analysis.bisect import first_divergence

    converged_a, _engine, run_a = run(seed, report=report, record=True,
                                      workers=0, **kwargs)
    converged_b, _engine_b, run_b = run(seed, report=False, record=True,
                                        workers=workers, **kwargs)
    divergence = first_divergence(run_a, run_b)
    if divergence is None:
        print(f"parallel check: OK — {len(run_a.digests)} store events "
              f"byte-identical between workers=0 and workers={workers} "
              f"(seed={seed})")
        return converged_a and converged_b
    print(f"parallel check: FAILED — workers={workers} diverged from the "
          f"serial run (seed={seed})")
    print(divergence.format())
    return False


def main(argv=None):
    parser = argparse.ArgumentParser(
        prog="python -m repro.chaos",
        description="seeded chaos run with convergence verification")
    parser.add_argument("--seed", type=int, default=0,
                        help="chaos + simulation seed (default 0)")
    parser.add_argument("--tenants", type=int, default=2)
    parser.add_argument("--pods", type=int, default=3,
                        help="pods per tenant")
    parser.add_argument("--nodes", type=int, default=3,
                        help="virtual-kubelet nodes")
    parser.add_argument("--horizon", type=float, default=40.0,
                        help="seconds of simulated chaos")
    parser.add_argument("--report", action="store_true",
                        help="print the fault and syncer-health tables")
    parser.add_argument("--no-optimized", action="store_true",
                        help="run with the paper-faithful serialized "
                             "syncer (hot-path optimizations off)")
    parser.add_argument("--kill-leader", action="store_true",
                        help="run the syncer as an HA replica group "
                             "(--replicas) and add the HA fault mix: "
                             "leader kill with standby failover, tenant "
                             "control-plane crash restored from its "
                             "etcd snapshot, and a snapshot rollback")
    parser.add_argument("--replicas", type=int, default=2,
                        help="syncer replicas when --kill-leader is on "
                             "(default 2)")
    parser.add_argument("--kill-store", action="store_true",
                        help="replicate the super cluster's etcd "
                             "(--replicas-store) and add the storage "
                             "durability fault mix: leader kill -9 "
                             "(plain and mid-txn), follower lag with "
                             "stale-read rejection (DESIGN.md §13)")
    parser.add_argument("--replicas-store", type=int, default=None,
                        help="store replicas for the super cluster's "
                             "etcd (WAL streaming + leader election; "
                             "default 3 with --kill-store, else 1)")
    parser.add_argument("--wal-corrupt", action="store_true",
                        help="tear a WAL tail record mid-run; recovery "
                             "must keep the committed prefix and "
                             "resync the rest from the leader")
    parser.add_argument("--check-determinism", action="store_true",
                        help="run the chaos config twice with store-event "
                             "recording; on divergence, bisect to the "
                             "first divergent event (repro.analysis)")
    parser.add_argument("--apf", action="store_true",
                        help="enable APF admission control (tenant "
                             "tiers, shuffle-shard fair queues, 429 + "
                             "Retry-After shedding) and the "
                             "scale-to-zero idle swapper on the super "
                             "cluster (DESIGN.md §15)")
    parser.add_argument("--tenant-storm", action="store_true",
                        help="append the TenantStorm fault: one "
                             "free-tier tenant floods the super "
                             "apiserver with LISTs; APF must shed it "
                             "while other tiers keep converging")
    parser.add_argument("--workers", type=int, default=None,
                        help="parallel-backend worker threads for the "
                             "sim kernel (default: REPRO_WORKERS / "
                             "serial); results are byte-identical for "
                             "any value (DESIGN.md §16)")
    parser.add_argument("--compare-workers", type=int, default=None,
                        metavar="N",
                        help="run the chaos config twice — serial and "
                             "with N workers — with store-event "
                             "recording, and fail on any digest "
                             "divergence (the parallel-backend CI gate)")
    parser.add_argument("--detect-races", action="store_true",
                        help="run under the vector-clock race detector; "
                             "any unordered cross-process store/cache "
                             "access fails the run")
    args = parser.parse_args(argv)
    if args.replicas < 2:
        parser.error("--replicas must be >= 2")
    if args.replicas_store is None:
        args.replicas_store = 3 if args.kill_store else 1
    if args.replicas_store < 1:
        parser.error("--replicas-store must be >= 1")
    if args.kill_store and args.replicas_store < 2:
        parser.error("--kill-store needs --replicas-store >= 2")
    if args.tenants < 1:
        parser.error("--tenants must be >= 1")
    if args.pods < 0:
        parser.error("--pods must be >= 0")
    if args.nodes < 1:
        parser.error("--nodes must be >= 1")
    if args.horizon <= 0:
        parser.error("--horizon must be > 0")
    if args.workers is not None and args.workers < 0:
        parser.error("--workers must be >= 0")
    if args.compare_workers is not None:
        if args.compare_workers < 1:
            parser.error("--compare-workers must be >= 1")
        ok = compare_workers(
            args.seed, args.compare_workers, tenants=args.tenants,
            pods_per_tenant=args.pods, horizon=args.horizon,
            nodes=args.nodes, report=args.report,
            optimized=not args.no_optimized, kill_leader=args.kill_leader,
            replicas=args.replicas, kill_store=args.kill_store,
            replicas_store=args.replicas_store,
            wal_corrupt=args.wal_corrupt, apf=args.apf,
            tenant_storm=args.tenant_storm)
        return 0 if ok else 1
    if args.check_determinism:
        ok = check_determinism(
            args.seed, tenants=args.tenants, pods_per_tenant=args.pods,
            horizon=args.horizon, nodes=args.nodes, report=args.report,
            optimized=not args.no_optimized, kill_leader=args.kill_leader,
            replicas=args.replicas, kill_store=args.kill_store,
            replicas_store=args.replicas_store,
            wal_corrupt=args.wal_corrupt, apf=args.apf,
            tenant_storm=args.tenant_storm, workers=args.workers)
        return 0 if ok else 1
    converged, _engine = run(
        args.seed, tenants=args.tenants, pods_per_tenant=args.pods,
        horizon=args.horizon, nodes=args.nodes, report=args.report,
        optimized=not args.no_optimized, kill_leader=args.kill_leader,
        replicas=args.replicas, detect_races=args.detect_races,
        kill_store=args.kill_store, replicas_store=args.replicas_store,
        wal_corrupt=args.wal_corrupt, apf=args.apf,
        tenant_storm=args.tenant_storm, workers=args.workers)
    return 0 if converged else 1


if __name__ == "__main__":
    sys.exit(main())
