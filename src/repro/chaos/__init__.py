"""Deterministic fault injection for the simulated VirtualCluster.

The chaos engine composes *fault schedules* (one-shot, periodic, or
random-within-seed) over *injection points* wired into the simulation:

- apiserver request faults (per-verb error or latency injection);
- etcd watch-stream drops and forced history compactions;
- network partitions between the syncer and one tenant control plane;
- syncer worker crashes (the watchdog must respawn them).

Everything is driven by the simulation clock and the simulation RNG, so
a chaos run is exactly reproducible from its seed.

Typical use::

    env = VirtualClusterEnv(num_virtual_nodes=3)
    engine = ChaosEngine(env)
    engine.add(OneShot(5.0), ApiServerCrash(env.syncer_cp_for(t), down=3.0))
    engine.start()
    ...
    report = engine.report()
"""

from .engine import ChaosEngine, ha_plan, random_plan
from .faults import (
    ApiRequestFault,
    ApiServerCrash,
    CrashControlPlane,
    Fault,
    ForcedCompaction,
    KillLeader,
    NetworkPartition,
    RestoreFromSnapshot,
    WatchDrop,
    WorkerCrash,
)
from .schedule import OneShot, Periodic, RandomWindows, Schedule

__all__ = [
    "ApiRequestFault",
    "ApiServerCrash",
    "ChaosEngine",
    "CrashControlPlane",
    "Fault",
    "ForcedCompaction",
    "KillLeader",
    "NetworkPartition",
    "OneShot",
    "Periodic",
    "RandomWindows",
    "RestoreFromSnapshot",
    "Schedule",
    "WatchDrop",
    "WorkerCrash",
    "ha_plan",
    "random_plan",
]
