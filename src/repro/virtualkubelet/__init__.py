"""Virtual kubelet (mock pod provider), as used in the paper's evaluation."""

from .provider import MockProvider, PodProvider, VirtualKubelet

__all__ = ["MockProvider", "PodProvider", "VirtualKubelet"]
