"""Virtual kubelet with a mock Pod provider.

The paper's evaluation installs one hundred virtual kubelets in the super
cluster "to simulate a cluster with one hundred nodes running a large
number of Pods"; each runs a mock provider that "marks all Pods scheduled
to the virtual kubelet ready and running instantaneously" (§IV).  The
only latency is the provider acknowledgement + status write-back, which
is part of the measured Super-Sched phase.

The narrow provider interface (~7 methods, vs ~25 CRI methods) is made
explicit here — it is the paper's Fig. 6 argument for why virtual kubelet
cannot preserve full node semantics the way VirtualCluster's vNodes do.
"""

from repro.apiserver.errors import ApiError, Conflict, NotFound
from repro.objects import make_node
from repro.simkernel.errors import Interrupt
from repro.telemetry import telemetry_of


class PodProvider:
    """The virtual-kubelet provider interface (~7 methods)."""

    def create_pod(self, pod):
        raise NotImplementedError

    def update_pod(self, pod):
        raise NotImplementedError

    def delete_pod(self, pod):
        raise NotImplementedError

    def get_pod(self, namespace, name):
        raise NotImplementedError

    def get_pod_status(self, namespace, name):
        raise NotImplementedError

    def get_pods(self):
        raise NotImplementedError

    def capacity(self):
        raise NotImplementedError


class MockProvider(PodProvider):
    """Marks every pod Running/Ready instantly."""

    def __init__(self, sim, node_name):
        self.sim = sim
        self.node_name = node_name
        self._pods = {}
        self._ip_index = 0

    def create_pod(self, pod):
        self._ip_index += 1
        high, low = divmod(self._ip_index, 254)
        pod.status.phase = "Running"
        pod.status.pod_ip = f"10.88.{high % 254}.{low + 1}"
        pod.status.start_time = self.sim.now
        pod.status.set_condition("PodScheduled", "True", now=self.sim.now)
        pod.status.set_condition("Initialized", "True", now=self.sim.now)
        pod.status.set_condition("ContainersReady", "True", now=self.sim.now)
        pod.status.set_condition("Ready", "True", now=self.sim.now)
        self._pods[pod.key] = pod
        return pod

    def update_pod(self, pod):
        self._pods[pod.key] = pod
        return pod

    def delete_pod(self, pod):
        self._pods.pop(pod.key, None)

    def get_pod(self, namespace, name):
        return self._pods.get(f"{namespace}/{name}")

    def get_pod_status(self, namespace, name):
        pod = self.get_pod(namespace, name)
        return pod.status if pod is not None else None

    def get_pods(self):
        return list(self._pods.values())

    def capacity(self):
        return {"cpu": "96", "memory": "328Gi", "pods": "1000"}


class VirtualKubelet:
    """A node agent backed by a provider instead of a real runtime."""

    def __init__(self, sim, node_name, client, config, informer_factory,
                 provider=None, heartbeat_interval=5.0):
        self.sim = sim
        self.node_name = node_name
        self.client = client
        self.config = config
        self.provider = provider or MockProvider(sim, node_name)
        self.heartbeat_interval = heartbeat_interval
        self.pod_informer = informer_factory.informer(
            "pods", field_selector={"spec.nodeName": node_name})
        self.pod_informer.add_handlers(
            on_add=self._on_pod_add,
            on_delete=self._on_pod_delete,
        )
        self._stopped = False
        self._heartbeat_process = None
        self.pods_acked = 0
        # Same family as the real kubelet, distinguished by kind, so a
        # mixed fleet reports Running pods under one metric name.
        self._started_counter = telemetry_of(sim).counter(
            "kubelet_pods_started_total", "pods brought to Running",
            labels=("kind",)).labels(kind="virtual")

    def start(self):
        """Coroutine: register the node, start the watch + heartbeat."""
        capacity = self.provider.capacity()
        node = make_node(self.node_name, cpu=capacity["cpu"],
                         memory=capacity["memory"], pods=capacity["pods"],
                         labels={"type": "virtual-kubelet"})
        node.spec.provider_id = f"mock://{self.node_name}"
        try:
            yield from self.client.create(node)
        except ApiError:
            pass
        self.pod_informer.start()
        self._heartbeat_process = self.sim.spawn(
            self._heartbeat_loop(), name=f"vk-{self.node_name}-hb")

    def stop(self):
        self._stopped = True
        self.pod_informer.stop()
        if self._heartbeat_process is not None:
            self._heartbeat_process.interrupt("virtual kubelet stopped")

    def _heartbeat_loop(self):
        while not self._stopped:
            try:
                yield self.sim.timeout(self.heartbeat_interval)
            except Interrupt:
                return
            try:
                node = yield from self.client.get("nodes", self.node_name)
                node.status.set_condition("Ready", "True",
                                          reason="VKReady", now=self.sim.now)
                yield from self.client.update_status(node)
            except ApiError:
                continue

    def _on_pod_add(self, pod):
        if pod.status.is_ready or pod.is_terminal:
            return
        self.sim.spawn(self._ack_pod(pod.key), name=f"vk-ack-{pod.key}")

    def _on_pod_delete(self, pod):
        self.provider.delete_pod(pod)

    def _ack_pod(self, pod_key):
        """Provider acknowledgement: mark the pod Running/Ready.

        Retries across apiserver outages — a real node agent never gives
        up reporting status.
        """
        yield self.sim.timeout(self.config.kubelet.virtual_kubelet_ack)
        while not self._stopped:
            pod = self.pod_informer.cache.get_copy(pod_key)
            if pod is None or pod.status.is_ready:
                return
            pod = self.provider.create_pod(pod)
            try:
                yield from self.client.update_status(pod)
                self.pods_acked += 1
                self._started_counter.inc()
                return
            except (Conflict, NotFound):
                return  # informer will deliver a fresh view / deletion
            except ApiError:
                yield self.sim.timeout(1.0)  # apiserver down: retry
