"""VirtualCluster: a multi-tenant framework for cloud container services.

A complete Python reproduction of the ICDCS 2021 paper, including the
Kubernetes substrate it extends.  The public entry point for most users
is :class:`repro.core.VirtualClusterEnv`:

    from repro.core import VirtualClusterEnv

    env = VirtualClusterEnv(num_virtual_nodes=5)
    env.bootstrap()
    tenant = env.run_coroutine(env.create_tenant("acme"))

See README.md for the architecture overview and DESIGN.md for the
paper-to-code map.
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
