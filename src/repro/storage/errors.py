"""Storage-layer errors, mirroring etcd/apiserver failure modes."""


class StorageError(Exception):
    """Base class for storage errors."""


class KeyNotFound(StorageError):
    """Read/update/delete of a key that does not exist."""

    def __init__(self, key):
        super().__init__(f"key not found: {key}")
        self.key = key


class KeyAlreadyExists(StorageError):
    """Create of a key that already exists."""

    def __init__(self, key):
        super().__init__(f"key already exists: {key}")
        self.key = key


class RevisionConflict(StorageError):
    """Compare-and-swap failed: the stored revision moved."""

    def __init__(self, key, expected, actual):
        super().__init__(
            f"conflict on {key}: expected revision {expected}, found {actual}"
        )
        self.key = key
        self.expected = expected
        self.actual = actual


class RevisionCompacted(StorageError):
    """A watch asked to start from an already-compacted revision."""

    def __init__(self, requested, compacted):
        super().__init__(
            f"revision {requested} compacted (oldest available {compacted})"
        )
        self.requested = requested
        self.compacted = compacted


class FencingRevoked(StorageError):
    """A write carried a fencing token older than the highest one seen.

    Raised by :meth:`EtcdStore.check_fence` when a deposed leader's
    in-flight write arrives after its successor has already written with
    a newer token; the write must be dropped, not retried.
    """

    def __init__(self, domain, token, current):
        super().__init__(
            f"fencing token {token} for {domain!r} revoked "
            f"(current {current})"
        )
        self.domain = domain
        self.token = token
        self.current = current
