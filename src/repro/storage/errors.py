"""Storage-layer errors, mirroring etcd/apiserver failure modes."""


class StorageError(Exception):
    """Base class for storage errors."""


class KeyNotFound(StorageError):
    """Read/update/delete of a key that does not exist."""

    def __init__(self, key):
        super().__init__(f"key not found: {key}")
        self.key = key


class KeyAlreadyExists(StorageError):
    """Create of a key that already exists."""

    def __init__(self, key):
        super().__init__(f"key already exists: {key}")
        self.key = key


class RevisionConflict(StorageError):
    """Compare-and-swap failed: the stored revision moved."""

    def __init__(self, key, expected, actual):
        super().__init__(
            f"conflict on {key}: expected revision {expected}, found {actual}"
        )
        self.key = key
        self.expected = expected
        self.actual = actual


class RevisionCompacted(StorageError):
    """A watch asked to start from an already-compacted revision."""

    def __init__(self, requested, compacted):
        super().__init__(
            f"revision {requested} compacted (oldest available {compacted})"
        )
        self.requested = requested
        self.compacted = compacted


class CompactedError(StorageError):
    """Replay would have to cross a compaction boundary.

    Raised when a recovery path (WAL replay into :meth:`EtcdStore.restore`,
    or a follower catching up from a leader's compacted log) detects a gap
    between the snapshot revision and the first replayable record.  The
    caller must fall back to a full snapshot/state transfer — silently
    skipping the gap would resurrect a store missing committed writes.
    """

    def __init__(self, snapshot_revision, first_replay_revision):
        super().__init__(
            f"replay gap: snapshot at revision {snapshot_revision}, "
            f"first replayable record at {first_replay_revision}"
        )
        self.snapshot_revision = snapshot_revision
        self.first_replay_revision = first_replay_revision


class WalTornRecord(StorageError):
    """A WAL record failed its checksum (torn tail after kill -9).

    Recovery never surfaces this to callers — the decoder truncates the
    log at the first torn record, recovering the committed prefix — but
    direct record decoding raises it so tests and the corruption fault
    can observe the tear.
    """

    def __init__(self, lsn, reason="checksum mismatch"):
        super().__init__(f"torn WAL record at lsn {lsn}: {reason}")
        self.lsn = lsn


class StaleRead(StorageError):
    """A follower served a read behind the client's required revision.

    Carries the follower's applied revision so the caller can decide to
    retry against the leader or wait for replication to catch up.
    """

    def __init__(self, required, applied, replica=""):
        super().__init__(
            f"stale read from {replica or 'follower'}: "
            f"required revision {required}, applied {applied}"
        )
        self.required = required
        self.applied = applied
        self.replica = replica


class StoreUnavailable(StorageError):
    """The store (or the replica group's leader) is down.

    The apiserver swaps this for its retryable ``ServerUnavailable`` via
    :meth:`ReplicatedStore.set_unavailable_factory`, so clients treat a
    leaderless storage window exactly like an apiserver outage.
    """


class FencingRevoked(StorageError):
    """A write carried a fencing token older than the highest one seen.

    Raised by :meth:`EtcdStore.check_fence` when a deposed leader's
    in-flight write arrives after its successor has already written with
    a newer token; the write must be dropped, not retried.
    """

    def __init__(self, domain, token, current):
        super().__init__(
            f"fencing token {token} for {domain!r} revoked "
            f"(current {current})"
        )
        self.domain = domain
        self.token = token
        self.current = current
