"""An etcd-like MVCC key-value store.

Provides exactly the semantics the Kubernetes apiserver depends on:

- a single monotonically-increasing revision counter shared by all keys;
- per-key ``mod_revision`` recorded on every write;
- compare-and-swap updates (optimistic concurrency);
- prefix range reads;
- watches that can replay history from a given revision and then stream
  live events, failing with :class:`RevisionCompacted` when the requested
  start revision has been compacted away.

Values are plain dicts (the wire form of API objects).  The store always
deep-copies values in and out, like a real store serializes to bytes, so
callers can never alias stored state.
"""

import os
from bisect import bisect_left

from repro.objects.base import fast_deep_copy
from repro.telemetry import telemetry_of

from .errors import (
    CompactedError,
    FencingRevoked,
    KeyAlreadyExists,
    KeyNotFound,
    RevisionCompacted,
    RevisionConflict,
    StoreUnavailable,
)

EVENT_PUT = "PUT"
EVENT_DELETE = "DELETE"

# REPRO_KERNEL_LEGACY=1 restores the pre-optimization set-based prefix
# index (a full sort on every list/count) alongside the kernel's legacy
# paths, so the speedup benchmark ablates against the seed's behavior.
# Results are byte-identical either way.
_LEGACY_INDEX = bool(os.environ.get("REPRO_KERNEL_LEGACY"))


class StoredValue:
    """A value plus its MVCC bookkeeping."""

    __slots__ = ("value", "create_revision", "mod_revision", "version")

    def __init__(self, value, create_revision, mod_revision, version):
        self.value = value
        self.create_revision = create_revision
        self.mod_revision = mod_revision
        self.version = version


class WatchEvent:
    """One change notification."""

    __slots__ = ("type", "key", "value", "revision", "prev_value")

    def __init__(self, type, key, value, revision, prev_value=None):
        self.type = type
        self.key = key
        self.value = value
        self.revision = revision
        self.prev_value = prev_value

    def __repr__(self):
        return f"<WatchEvent {self.type} {self.key} @{self.revision}>"


class Watch:
    """A registered watcher; events arrive on :attr:`channel`.

    ``predicate`` (on the raw :class:`WatchEvent`) filters events at emit
    time — this is how the apiserver implements server-side field/label
    selector filtering for watches, so a kubelet watching
    ``spec.nodeName=node-7`` never receives other nodes' pod events.
    """

    def __init__(self, store, prefix, channel, predicate=None):
        self.store = store
        self.prefix = prefix
        self.channel = channel
        self.predicate = predicate
        self.cancelled = False

    def wants(self, event):
        if not event.key.startswith(self.prefix):
            return False
        return self.predicate is None or self.predicate(event)

    def cancel(self):
        if not self.cancelled:
            self.cancelled = True
            self.store._watches.pop(self, None)
            self.channel.close()


class EtcdStore:
    """The MVCC store.

    ``history_limit`` bounds how many events are kept for watch replay;
    older events are compacted (watches starting before the compaction
    revision fail, as in real etcd).
    """

    def __init__(self, sim, name="etcd", history_limit=100000, wal=None):
        self.sim = sim
        self.name = name
        # Optional write-ahead log (repro.storage.wal): the disk that
        # survives a kill -9 while this object's memory does not.  None
        # (the default) keeps the seed's pure in-memory behavior.
        self.wal = wal
        self._powered_off = False
        self.recoveries = 0
        # Armed by the chaos KillStore fault: crash after N more txn ops.
        self._kill_after_ops = None
        self._on_killed = None
        self._unavailable_factory = None
        self._data = {}
        # Secondary index: keys bucketed by their first two path segments
        # (e.g. "/registry/pods"), so per-resource range reads don't scan
        # the whole keyspace.
        self._buckets = {}
        self._revision = 0
        self._history = []
        self._compacted_revision = 0
        self._history_limit = history_limit
        # Registration-ordered (dict-as-ordered-set): watch fan-out in
        # _emit must not depend on set hash order, which varies with
        # PYTHONHASHSEED across processes (linter rule D003).
        self._watches = {}
        # Fencing tokens: domain -> highest token observed (see
        # :meth:`check_fence`).  Survives snapshot/restore.
        self._fences = {}
        self.fencing_rejections = 0
        # Multi-op transaction accounting (see :meth:`txn`).
        self.txns = 0
        self.txn_ops = 0
        self.largest_txn = 0
        telemetry = telemetry_of(sim)
        self._tracer = telemetry.tracer
        ops = telemetry.counter("etcd_ops_total",
                                "etcd operations by type",
                                labels=("store", "op"))
        # Pre-bound children so the hot path pays one float add per op.
        self._ops_write = ops.labels(store=name, op="write")
        self._ops_read = ops.labels(store=name, op="read")
        self._ops_txn = ops.labels(store=name, op="txn")
        telemetry.gauge("etcd_keys", "live keys per store",
                        labels=("store",)).labels(
            store=name).set_function(lambda: len(self._data))
        telemetry.gauge("etcd_revision", "store revision",
                        labels=("store",)).labels(
            store=name).set_function(lambda: self._revision)
        self._recoveries_metric = telemetry.counter(
            "store_recoveries_total",
            "store recoveries by source (wal replay / snapshot restore)",
            labels=("store", "source")).labels(store=name, source="wal")

    # ------------------------------------------------------------------
    # Liveness (kill -9 surface; see power_off/recover_from_wal below)
    # ------------------------------------------------------------------

    @property
    def available(self):
        return not self._powered_off

    def set_unavailable_factory(self, factory):
        """Let the apiserver substitute its retryable error type for
        :class:`StoreUnavailable` (dependency inversion: storage cannot
        import apiserver errors)."""
        self._unavailable_factory = factory

    def _unavailable(self, message):
        if self._unavailable_factory is not None:
            return self._unavailable_factory(message)
        return StoreUnavailable(message)

    def _check_alive(self):
        if self._powered_off:
            raise self._unavailable(f"{self.name}: store is down")

    @staticmethod
    def _bucket_of(key):
        parts = key.split("/", 3)
        return "/".join(parts[:3])

    # Buckets hold their keys as persistently *sorted* lists maintained by
    # bisect on write, so prefix reads are a binary search + slice instead
    # of the full re-sort the old set-based index paid on every
    # list_prefix/count_prefix call.  Keys sharing a prefix are contiguous
    # in sorted order, which also makes count_prefix allocation-free.

    def _index_add(self, key):
        keys = self._buckets.setdefault(self._bucket_of(key), [])
        index = bisect_left(keys, key)
        if index == len(keys) or keys[index] != key:
            keys.insert(index, key)

    def _index_remove(self, key):
        keys = self._buckets.get(self._bucket_of(key))
        if keys is not None:
            index = bisect_left(keys, key)
            if index < len(keys) and keys[index] == key:
                del keys[index]

    def _prefix_range(self, prefix):
        """(keys, lo, hi) bounding the sorted bucket run under ``prefix``.

        The upper bound appends a max-codepoint sentinel: every key that
        starts with ``prefix`` sorts below it (store keys are ASCII
        registry paths, which can never begin a suffix with U+10FFFF).
        """
        keys = self._buckets.get(self._bucket_of(prefix))
        if keys is None:
            return (), 0, 0
        lo = bisect_left(keys, prefix)
        hi = bisect_left(keys, prefix + "\U0010ffff", lo=lo)
        return keys, lo, hi

    def _keys_under(self, prefix):
        keys, lo, hi = self._prefix_range(prefix)
        return keys[lo:hi] if keys else []

    # ------------------------------------------------------------------
    # Basic KV operations (synchronous; latency is charged by the caller)
    # ------------------------------------------------------------------

    @property
    def revision(self):
        return self._revision

    # Race-detector probes (no-ops unless a RaceDetector is attached to
    # the sim).  create and CAS-guarded update/delete are release-writes:
    # the revision check serializes them, so they synchronize rather
    # than conflict; blind writes are checked for concurrency.

    def _race_write(self, key, release):
        detector = getattr(self.sim, "race_detector", None)
        if detector is not None:
            detector.on_write(self.name, key, release=release)

    def _race_read(self, key):
        detector = getattr(self.sim, "race_detector", None)
        if detector is not None:
            detector.on_read(self.name, key)

    def _race_scan(self, prefix):
        detector = getattr(self.sim, "race_detector", None)
        if detector is not None:
            detector.on_scan(self.name, prefix)

    def create(self, key, value):
        """Insert a new key; fails if present. Returns the new revision."""
        self._check_alive()
        if key in self._data:
            raise KeyAlreadyExists(key)
        self._race_write(key, release=True)
        self._ops_write.inc()
        self._revision += 1
        stored = StoredValue(fast_deep_copy(value), self._revision,
                             self._revision, 1)
        self._data[key] = stored
        self._index_add(key)
        self._emit(WatchEvent(EVENT_PUT, key, fast_deep_copy(value),
                              self._revision))
        return self._revision

    def get(self, key):
        """Return (value, mod_revision); raises KeyNotFound."""
        stored = self._data.get(key)
        if stored is None:
            raise KeyNotFound(key)
        self._race_read(key)
        self._ops_read.inc()
        return fast_deep_copy(stored.value), stored.mod_revision

    def try_get(self, key):
        """Like :meth:`get` but returns (None, 0) for a missing key."""
        stored = self._data.get(key)
        if stored is None:
            return None, 0
        self._race_read(key)
        return fast_deep_copy(stored.value), stored.mod_revision

    def update(self, key, value, expected_revision=None):
        """Replace a key's value, optionally as a CAS on mod_revision."""
        self._check_alive()
        stored = self._data.get(key)
        if stored is None:
            raise KeyNotFound(key)
        if (expected_revision is not None
                and stored.mod_revision != expected_revision):
            raise RevisionConflict(key, expected_revision,
                                   stored.mod_revision)
        self._race_write(key, release=expected_revision is not None)
        self._ops_write.inc()
        self._revision += 1
        prev = stored.value
        stored.value = fast_deep_copy(value)
        stored.mod_revision = self._revision
        stored.version += 1
        self._emit(WatchEvent(EVENT_PUT, key, fast_deep_copy(value),
                              self._revision, prev_value=fast_deep_copy(prev)))
        return self._revision

    def delete(self, key, expected_revision=None):
        """Remove a key, optionally as a CAS on mod_revision."""
        self._check_alive()
        stored = self._data.get(key)
        if stored is None:
            raise KeyNotFound(key)
        if (expected_revision is not None
                and stored.mod_revision != expected_revision):
            raise RevisionConflict(key, expected_revision,
                                   stored.mod_revision)
        self._race_write(key, release=expected_revision is not None)
        self._ops_write.inc()
        self._revision += 1
        del self._data[key]
        self._index_remove(key)
        self._emit(WatchEvent(EVENT_DELETE, key,
                              fast_deep_copy(stored.value), self._revision))
        return self._revision

    def txn(self, ops):
        """Apply a multi-op write transaction.

        ``ops`` is a list of zero-arg callables, each performing one write
        against this store (the apiserver prepares them with its own
        read-validate-write logic, like an etcd txn's compare guards).
        Ops apply sequentially at consecutive revisions — exactly the
        state a sequence of single writes would produce — with per-op
        error capture instead of all-or-nothing abort: the result list
        holds each op's return value or the exception it raised.
        """
        self._check_alive()
        self.txns += 1
        self.txn_ops += len(ops)
        self.largest_txn = max(self.largest_txn, len(ops))
        self._ops_txn.inc()
        results = []
        with self._tracer.span("etcd.txn", ops=len(ops)):
            for op in ops:
                if self._kill_after_ops is not None:
                    if self._kill_after_ops <= 0:
                        self._kill_mid_txn()
                    self._kill_after_ops -= 1
                try:
                    results.append(op())
                except Exception as exc:  # noqa: BLE001 - captured per op
                    results.append(exc)
        return results

    def arm_kill(self, after_ops, callback=None):
        """Arm a kill -9 that fires after ``after_ops`` more txn ops.

        The sim cannot preempt synchronous code, so a mid-``txn`` crash
        is modeled as a latch: the next transaction applies ``after_ops``
        writes (each durable in the WAL) and then the process dies —
        already-applied ops are committed, the rest never happen, and the
        client sees the whole request fail retryably.
        """
        self._kill_after_ops = max(0, after_ops)
        self._on_killed = callback

    def disarm_kill(self):
        """Clear an armed mid-txn kill that never fired."""
        self._kill_after_ops = None
        self._on_killed = None

    def _kill_mid_txn(self):
        self._kill_after_ops = None
        callback, self._on_killed = self._on_killed, None
        self.power_off()
        if callback is not None:
            callback(self)
        raise self._unavailable(f"{self.name}: killed mid-txn")

    def list_prefix(self, prefix):
        """All (key, value, mod_revision) under a prefix, plus the revision.

        Returns ``(items, revision)`` — the revision is the store revision
        at list time, which list+watch reflectors use as their start point.
        """
        self._check_alive()
        self._race_scan(prefix)
        self._ops_read.inc()
        items = []
        for key in self._keys_under(prefix):
            stored = self._data[key]
            items.append((key, fast_deep_copy(stored.value),
                          stored.mod_revision))
        return items, self._revision

    def count_prefix(self, prefix):
        """Number of keys under a prefix, without materializing them.

        A pure bisect over the sorted bucket: no per-call sort (the old
        implementation sorted the whole bucket just to take ``len()``)
        and no list allocation.
        """
        _keys, lo, hi = self._prefix_range(prefix)
        return hi - lo

    # ------------------------------------------------------------------
    # Watch
    # ------------------------------------------------------------------

    def watch(self, prefix, from_revision=None, channel_factory=None,
              predicate=None):
        """Register a watch on a key prefix.

        When ``from_revision`` is given, history events after that revision
        are replayed into the channel first; raises
        :class:`RevisionCompacted` when they are no longer available.
        """
        from repro.simkernel.resources import Channel

        self._check_alive()
        factory = channel_factory or (lambda: Channel(self.sim,
                                                      name=f"watch:{prefix}"))
        channel = factory()
        watch = Watch(self, prefix, channel, predicate=predicate)
        if from_revision is not None and from_revision < self._revision:
            if from_revision < self._compacted_revision:
                raise RevisionCompacted(from_revision,
                                        self._compacted_revision)
            for event in self._history:
                if event.revision > from_revision and watch.wants(event):
                    channel.try_put(event)
        self._watches[watch] = None
        return watch

    def _emit(self, event):
        recorder = getattr(self.sim, "replay_recorder", None)
        if recorder is not None:
            recorder.record(self.name, event)
        if self.wal is not None:
            # The record carries the writer's vector-clock stamp so a
            # follower (or recovery) applying it absorbs a happens-before
            # edge from this mutation.
            detector = getattr(self.sim, "race_detector", None)
            stamp = detector.current_stamp() if detector is not None else None
            self.wal.append_event(event, stamp=stamp)
        self._history.append(event)
        if len(self._history) > self._history_limit:
            self.compact(keep=self._history_limit // 2)
        for watch in list(self._watches):
            if watch.wants(event):
                watch.channel.try_put(event)

    def compact(self, keep=1000):
        """Drop history older than the last ``keep`` events."""
        if len(self._history) > keep:
            dropped = self._history[:-keep] if keep else self._history
            if dropped:
                self._compacted_revision = dropped[-1].revision
            self._history = self._history[-keep:] if keep else []

    # ------------------------------------------------------------------
    # Fencing (leader election split-brain protection)
    # ------------------------------------------------------------------

    def check_fence(self, domain, token):
        """Admit a write stamped with a fencing token, or reject it.

        Tokens are monotonic per acquisition of the leader lease for
        ``domain``.  The first token seen for a domain (and any higher
        token) is admitted and becomes the floor; a *lower* token means
        the writer was deposed after a successor already wrote — its
        in-flight work must be dropped, so :class:`FencingRevoked` is
        raised.  A new leader establishes its floor by issuing an empty
        fenced transaction (a fence barrier) before serving.
        """
        current = self._fences.get(domain)
        if current is not None and token < current:
            self.fencing_rejections += 1
            raise FencingRevoked(domain, token, current)
        advanced = current is None or token > current
        self._fences[domain] = token
        if advanced and self.wal is not None:
            # Floor advances are durable: a recovered store must bounce a
            # deposed leader's stale token just like the one that crashed.
            detector = getattr(self.sim, "race_detector", None)
            stamp = detector.current_stamp() if detector is not None else None
            self.wal.append_fence(domain, token, self._revision, stamp=stamp)

    # ------------------------------------------------------------------
    # Snapshot / restore (durability for crashed control planes)
    # ------------------------------------------------------------------

    def snapshot(self):
        """A revision-consistent, fully-detached copy of the store.

        Captures data, the revision counter, the compaction floor and
        the fencing floors — everything needed to rebuild an equivalent
        store.  Watch registrations and replay history are deliberately
        excluded: they belong to live sessions, which a restore severs.
        """
        return {
            "name": self.name,
            "revision": self._revision,
            "compacted_revision": self._compacted_revision,
            "fences": dict(self._fences),
            "data": {
                key: (fast_deep_copy(stored.value), stored.create_revision,
                      stored.mod_revision, stored.version)
                for key, stored in self._data.items()
            },
        }

    def restore(self, snapshot, replay=()):
        """Replace all state from a snapshot, then replay a WAL tail.

        ``replay`` is a sequence of :class:`WatchEvent` (typically from
        :meth:`events_since` captured on another store, or buffered by
        the operator) applied at their recorded revisions — events at or
        below the snapshot revision are skipped, so handing the full
        tail back is idempotent.

        Every open watch is cancelled: watchers cannot observe a
        consistent stream across the discontinuity, so their channels
        close and reflectors relist.  The compaction floor then moves to
        the post-replay revision, which makes any stale watch *resume*
        (``from_revision`` below the restore point) fail with
        :class:`RevisionCompacted` instead of silently missing events.

        Replay must be gap-free: events apply at consecutive revisions
        starting from the snapshot, so a tail that begins *above*
        ``snapshot revision + 1`` (part of it was compacted away) raises
        :class:`CompactedError` before any state is touched — silently
        skipping the gap would resurrect a store missing committed
        writes.  Events at or below the snapshot revision are still
        skipped (idempotent full-history replay).

        Returns the store revision after the restore.
        """
        expected = snapshot["revision"]
        for event in replay:
            if event.revision <= expected:
                continue
            if event.revision != expected + 1:
                raise CompactedError(expected, event.revision)
            expected = event.revision
        for watch in list(self._watches):
            watch.cancel()
        detector = getattr(self.sim, "race_detector", None)
        if detector is not None:
            # Discontinuity: pre-restore accesses no longer describe
            # reachable state, so the access graph restarts.
            detector.reset_object(self.name)
        self._data = {}
        self._buckets = {}
        for key, (value, create_rev, mod_rev, version) in \
                snapshot["data"].items():
            self._data[key] = StoredValue(fast_deep_copy(value), create_rev,
                                          mod_rev, version)
            self._index_add(key)
        self._revision = snapshot["revision"]
        self._fences = dict(snapshot.get("fences", {}))
        self._history = []
        for event in replay:
            if event.revision > self._revision:
                self._apply_replayed(event)
        self._compacted_revision = self._revision
        self._powered_off = False
        if self.wal is not None:
            # The log must describe the store it sits under: anchor it to
            # the post-restore state and drop the divergent tail.
            self.wal.reset(anchor=self.snapshot())
        return self._revision

    def _apply_replayed(self, event):
        """Apply one WAL event at its recorded revision (no re-emit:
        restore cancelled every watch, and history restarts afterwards)."""
        if event.type == EVENT_PUT:
            stored = self._data.get(event.key)
            if stored is None:
                self._data[event.key] = StoredValue(
                    fast_deep_copy(event.value), event.revision,
                    event.revision, 1)
                self._index_add(event.key)
            else:
                stored.value = fast_deep_copy(event.value)
                stored.mod_revision = event.revision
                stored.version += 1
        elif event.type == EVENT_DELETE:
            if self._data.pop(event.key, None) is not None:
                self._index_remove(event.key)
        self._revision = max(self._revision, event.revision)

    def events_since(self, revision):
        """The WAL tail: detached copies of all events after ``revision``.

        Raises :class:`RevisionCompacted` when part of the tail has been
        compacted away — the caller must fall back to snapshot-only
        recovery (or take a fresh snapshot) instead of replaying a gap.
        """
        if revision < self._compacted_revision:
            raise RevisionCompacted(revision, self._compacted_revision)
        return [
            WatchEvent(event.type, event.key, fast_deep_copy(event.value),
                       event.revision,
                       prev_value=fast_deep_copy(event.prev_value)
                       if event.prev_value is not None else None)
            for event in self._history if event.revision > revision
        ]

    def wipe(self):
        """Simulate catastrophic data loss: everything gone, watches cut.

        Used by chaos' crash-control-plane fault; recovery is a
        :meth:`restore` from the last snapshot.
        """
        for watch in list(self._watches):
            watch.cancel()
        detector = getattr(self.sim, "race_detector", None)
        if detector is not None:
            detector.reset_object(self.name)
        self._data = {}
        self._buckets = {}
        self._history = []
        self._revision = 0
        self._compacted_revision = 0
        self._fences = {}
        self._powered_off = False
        if self.wal is not None:
            self.wal.reset()

    def power_off(self):
        """Kill -9: volatile memory is gone, the WAL (the disk) survives.

        Contrast with :meth:`wipe` (catastrophic loss, WAL included).
        The store rejects every operation until :meth:`recover_from_wal`
        or :meth:`restore` brings it back.
        """
        if self.wal is not None:
            self.wal.power_off()
        for watch in list(self._watches):
            watch.cancel()
        detector = getattr(self.sim, "race_detector", None)
        if detector is not None:
            detector.reset_object(self.name)
        self._data = {}
        self._buckets = {}
        self._history = []
        self._revision = 0
        self._compacted_revision = 0
        self._fences = {}
        self._powered_off = True

    def recover_from_wal(self):
        """Rebuild state from the WAL to the last durable revision.

        Raises :class:`CompactedError` when the log is empty or gapped —
        the caller falls back to snapshot-only recovery.  Returns the
        recovered revision.
        """
        if self.wal is None or self.wal.is_empty():
            raise CompactedError(0, 0)
        # Detach the WAL during replay: restore()/wipe() inside
        # recover_into must not reset the very log being replayed.
        wal, self.wal = self.wal, None
        try:
            # truncate=True: crash recovery drops the torn/volatile
            # suffix so post-recovery appends extend a clean log.
            revision = wal.recover_into(self, truncate=True)
        finally:
            self.wal = wal
        self._powered_off = False
        self.recoveries += 1
        self._recoveries_metric.inc()
        return revision

    def wal_durable_revision(self):
        return self.wal.durable_revision if self.wal is not None else 0

    def anchor_wal(self, snapshot):
        """Compact the WAL against a freshly-taken snapshot (no-op when
        the store has no log)."""
        if self.wal is not None:
            self.wal.compact(snapshot)

    def dump(self):
        """Canonical detached image of current data (tests/benchmarks)."""
        return {
            key: (fast_deep_copy(stored.value), stored.create_revision,
                  stored.mod_revision, stored.version)
            for key, stored in self._data.items()
        }

    # ------------------------------------------------------------------
    # Introspection / memory accounting
    # ------------------------------------------------------------------

    def __len__(self):
        return len(self._data)

    def stats(self):
        return {
            "keys": len(self._data),
            "revision": self._revision,
            "history": len(self._history),
            "watches": len(self._watches),
            "compacted_revision": self._compacted_revision,
            "txns": self.txns,
            "txn_ops": self.txn_ops,
            "largest_txn": self.largest_txn,
            "fences": dict(self._fences),
            "fencing_rejections": self.fencing_rejections,
            "recoveries": self.recoveries,
            "wal": self.wal.stats() if self.wal is not None else None,
        }


if _LEGACY_INDEX:
    # The seed's index: buckets are plain sets, every prefix read pays a
    # filter + full sort, and count_prefix materializes the sorted list
    # just to take its length.  Kept verbatim as the ablation baseline.

    def _legacy_index_add(self, key):
        self._buckets.setdefault(self._bucket_of(key), set()).add(key)

    def _legacy_index_remove(self, key):
        bucket = self._buckets.get(self._bucket_of(key))
        if bucket is not None:
            bucket.discard(key)

    def _legacy_keys_under(self, prefix):
        keys = self._buckets.get(self._bucket_of(prefix), ())
        return sorted(k for k in keys if k.startswith(prefix))

    def _legacy_count_prefix(self, prefix):
        return len(self._legacy_keys_under(prefix))

    EtcdStore._index_add = _legacy_index_add
    EtcdStore._index_remove = _legacy_index_remove
    EtcdStore._keys_under = _legacy_keys_under
    EtcdStore.count_prefix = _legacy_count_prefix
