"""N-way replicated store group with WAL streaming and leader failover.

A :class:`ReplicatedStore` presents the :class:`EtcdStore` API while
fanning every durable WAL record from the current leader to N-1 follower
stores (DESIGN.md §13).  It models an etcd cluster behind one apiserver:
the apiserver object stays up, but storage goes leaderless for the
election window when the leader is killed.

Topology and failure model:

- Every replica owns an :class:`EtcdStore` *plus its own
  :class:`WriteAheadLog`* — kill -9 destroys a replica's memory, never
  its log.  Replica 0 is the designated initial leader so bootstrap
  writes need no election round.
- The leader's WAL ``on_append`` hook streams each durable record into a
  per-follower :class:`Channel`; a pump process applies it after the
  replication delay (plus any chaos-injected lag).  Channel item stamps
  and the record's own vector-clock stamp give the race detector
  happens-before edges from writer to applier.
- Leader election reuses ``clientgo.leaderelection`` against a shared
  *coordination* apiserver (``coordinator_of(sim)``), modeling the
  ZooKeeper/PVC-style external coordination plane from ROADMAP item 4 —
  a store group cannot elect through leases stored in itself.
- Failover is fencing-gated: the promoted follower first catches up from
  the dead leader's durable WAL (the disk outlives the process), then
  advances the fencing floor for ``store/<name>`` with its new token (so
  a deposed leader's in-flight writes die), and only then serves.
- Zero committed-write loss is *verified*, not assumed: at kill time the
  group captures :meth:`WriteAheadLog.durable_state` — exactly what the
  crash is obliged to preserve — and the promotion compares the new
  leader against it, recording ``lost_writes`` per recovery.

Stale reads: :meth:`read_follower` serves from a follower and returns
its applied revision alongside the value; a caller that passes
``min_revision`` gets :class:`StaleRead` when the follower lags behind
it, which is the client-side rejection contract the paper's
read-your-writes tenants need.
"""

from repro.simkernel.resources import Channel, ChannelClosed
from repro.telemetry import telemetry_of

from .errors import CompactedError, StaleRead, StoreUnavailable
from .etcd import EtcdStore, WatchEvent
from .wal import WAL_FENCE, WriteAheadLog

# Store-group election timings: snappier than the syncer's (6 s) lease
# so storage MTTR stays in the low seconds.
DEFAULT_LEASE_DURATION = 3.0
DEFAULT_RENEW_INTERVAL = 1.0
DEFAULT_RETRY_INTERVAL = 0.25
DEFAULT_REPLICATION_DELAY = 0.002


def coordinator_of(sim):
    """The per-simulation coordination backplane (lazily created).

    A bare apiserver serving only leases for store-group elections —
    deliberately outside the system under test, like the ZooKeeper
    ensemble PVC-style deployments coordinate through.
    """
    coordinator = getattr(sim, "_store_coordinator", None)
    if coordinator is None:
        coordinator = StoreCoordinator(sim)
        sim._store_coordinator = coordinator
    return coordinator


class StoreCoordinator:
    """Coordination apiserver + the admin client factory electors use."""

    def __init__(self, sim, name="store-coord"):
        from repro.apiserver import ADMIN, APIServer
        from repro.objects import make_namespace

        self.sim = sim
        self.api = APIServer(sim, name)
        self._admin = ADMIN
        # Electors create Leases in kube-system; the elector retries
        # through the window before this bootstrap process has run.
        sim.spawn(self.api.create(ADMIN, make_namespace("kube-system")),
                  name=f"{name}-bootstrap")

    def client(self, user_agent):
        from repro.clientgo import Client

        return Client(self.sim, self.api, self._admin, qps=20.0, burst=40,
                      user_agent=user_agent)


class StoreReplica:
    """One member of a replicated group: a store, its WAL, its elector."""

    __slots__ = ("group", "index", "store", "role", "alive",
                 "applied_revision", "channel", "pump", "elector",
                 "extra_lag", "catchups", "records_applied")

    def __init__(self, group, index, store):
        self.group = group
        self.index = index
        self.store = store
        self.role = "follower"
        self.alive = True
        self.applied_revision = 0
        self.channel = None
        self.pump = None
        self.elector = None
        self.extra_lag = 0.0  # chaos ReplicaLag fault
        self.catchups = 0
        self.records_applied = 0

    @property
    def name(self):
        return self.store.name

    @property
    def lag(self):
        """Events this follower trails the leader's durable log by."""
        leader = self.group._leader
        if leader is None or leader is self or not self.alive:
            return 0
        return max(0, leader.store.wal_durable_revision()
                   - self.applied_revision)

    def apply(self, record):
        """Apply one streamed/caught-up WAL record to this replica."""
        store = self.store
        detector = getattr(store.sim, "race_detector", None)
        if detector is not None and record.stamp is not None:
            # Happens-before: the leader's mutation precedes this apply.
            detector.absorb(record.stamp)
        fields = record.decode()
        if record.type == WAL_FENCE:
            floor = store._fences.get(record.key)
            if floor is None or fields["token"] > floor:
                store._fences[record.key] = fields["token"]
            if store.wal is not None:
                store.wal.append_fence(record.key, fields["token"],
                                       record.revision, stamp=record.stamp)
            return
        if record.revision <= self.applied_revision:
            return  # duplicate delivery (catch-up raced a stream record)
        store._apply_replayed(WatchEvent(record.type, record.key,
                                         fields["value"], record.revision))
        if store.wal is not None:
            store.wal.append_event(
                WatchEvent(record.type, record.key, fields["value"],
                           record.revision), stamp=record.stamp)
        self.applied_revision = record.revision
        self.records_applied += 1
        self.group._replicated_records.inc()

    def catch_up_from(self, source_wal):
        """Synchronously replay the durable tail of another replica's log.

        Raises :class:`CompactedError` when the tail was compacted away;
        the caller falls back to :meth:`resync_from`.
        """
        records = source_wal.records_since(self.applied_revision)
        for record in records:
            self.apply(record)
        if records:
            self.catchups += 1
        return len(records)

    def resync_from(self, source_wal):
        """Full state transfer: rebuild this replica from another log's
        anchor + tail (the catch-up path crossed a compaction boundary)."""
        saved, self.store.wal = self.store.wal, None
        try:
            source_wal.recover_into(self.store)
        finally:
            self.store.wal = saved
        if self.store.wal is not None:
            self.store.wal.reset(anchor=self.store.snapshot())
        self.applied_revision = self.store.revision
        self.catchups += 1


class ReplicatedStore:
    """Leader/follower store group behind the :class:`EtcdStore` API.

    Reads and writes route to the leader; while the group is leaderless
    (between a kill and the next election) every operation raises the
    injected unavailable error, which the apiserver maps to its
    retryable ``ServerUnavailable``.
    """

    def __init__(self, sim, name, replicas=2, history_limit=100000,
                 segment_records=512, fsync_interval=0.0,
                 replication_delay=DEFAULT_REPLICATION_DELAY,
                 lease_duration=DEFAULT_LEASE_DURATION,
                 renew_interval=DEFAULT_RENEW_INTERVAL,
                 retry_interval=DEFAULT_RETRY_INTERVAL, jitter=0.2,
                 coordinator=None, elect=True):
        if replicas < 1:
            raise ValueError("a replicated store needs at least 1 replica")
        self.sim = sim
        self.name = name
        self.replication_delay = replication_delay
        self.fence_domain = f"store/{name}"
        self._unavailable_factory = None
        self._term = 0
        self._pending_recovery = None
        self.recoveries = []
        self.failovers = 0
        self.stale_reads = 0
        telemetry = telemetry_of(sim)
        self._replicated_records = telemetry.counter(
            "store_replication_records_total",
            "WAL records applied by followers",
            labels=("store",)).labels(store=name)
        self._stale_reads_metric = telemetry.counter(
            "store_stale_reads_total",
            "follower reads rejected behind the required revision",
            labels=("store",)).labels(store=name)
        self._failover_metric = telemetry.counter(
            "store_recoveries_total",
            "store recoveries by source (wal replay / snapshot restore)",
            labels=("store", "source")).labels(store=name, source="failover")
        lag_gauge = telemetry.gauge(
            "replica_lag_events",
            "events a follower trails the leader's durable log by",
            labels=("store", "replica"))
        self.replicas = []
        for index in range(replicas):
            member = f"{name}-r{index}"
            wal = WriteAheadLog(sim, member, segment_records=segment_records,
                                fsync_interval=fsync_interval)
            store = EtcdStore(sim, name=member, history_limit=history_limit,
                              wal=wal)
            replica = StoreReplica(self, index, store)
            self.replicas.append(replica)
            lag_gauge.labels(store=name, replica=f"r{index}").set_function(
                lambda r=replica: float(r.lag))
        # Replica 0 leads from t=0 (bootstrap writes predate any election
        # round); elections only gate failover.
        leader = self.replicas[0]
        leader.role = "leader"
        self._leader = leader
        self._last_leader = leader
        leader.store.wal.on_append = self._stream_record
        for follower in self.replicas[1:]:
            self._attach_follower(follower)
        if elect and replicas > 1:
            coordinator = coordinator or coordinator_of(sim)
            for replica in self.replicas:
                client = coordinator.client(
                    user_agent=f"store-elector-{replica.name}")
                replica.elector = self._make_elector(client, replica,
                                                     lease_duration,
                                                     renew_interval,
                                                     retry_interval, jitter)
            # The initial leader contends first; followers join only
            # after a full lease so replica 0 wins the opening term.
            self.replicas[0].elector.start()
            for offset, replica in enumerate(self.replicas[1:], start=1):
                sim.spawn(
                    self._delayed_start(replica,
                                        lease_duration * (1.0 + 0.25 * offset)),
                    name=f"elector-stagger-{replica.name}")

    def _make_elector(self, client, replica, lease_duration, renew_interval,
                      retry_interval, jitter):
        from repro.clientgo import LeaderElector

        return LeaderElector(
            self.sim, client, name=f"store-{self.name}",
            identity=replica.name, lease_duration=lease_duration,
            renew_interval=renew_interval, retry_interval=retry_interval,
            jitter=jitter,
            on_started_leading=lambda token, r=replica:
                self._on_elected(r, token),
            on_stopped_leading=lambda reason, r=replica:
                self._on_lost(r, reason))

    def _delayed_start(self, replica, delay):
        yield self.sim.timeout(delay)
        if replica.alive and replica.elector is not None:
            replica.elector.start()

    # ------------------------------------------------------------------
    # Streaming replication
    # ------------------------------------------------------------------

    def _stream_record(self, record):
        for replica in self.replicas:
            if (replica.alive and replica.role == "follower"
                    and replica.channel is not None
                    and not replica.channel.closed):
                replica.channel.try_put(record)

    def _attach_follower(self, replica):
        """(Re)join a replica to the leader's stream, catching it up from
        the leader's durable log first so the stream only has to carry
        the delta."""
        leader = self._leader
        if leader is not None and leader is not replica:
            try:
                replica.catch_up_from(leader.store.wal)
            except CompactedError:
                replica.resync_from(leader.store.wal)
        if replica.channel is not None:
            replica.channel.close()
        replica.role = "follower"
        replica.channel = Channel(
            self.sim, name=f"repl:{replica.name}")
        replica.pump = self.sim.spawn(self._pump(replica),
                                      name=f"repl-pump:{replica.name}")

    def _pump(self, replica):
        channel = replica.channel
        while True:
            try:
                record = yield channel.get()
            except ChannelClosed:
                return
            delay = self.replication_delay + replica.extra_lag
            if delay > 0:
                yield self.sim.timeout(delay)
            if (not replica.alive or replica.role != "follower"
                    or replica.channel is not channel):
                return  # killed, promoted, or re-attached mid-flight
            replica.apply(record)

    # ------------------------------------------------------------------
    # Failure / recovery surface (chaos hooks)
    # ------------------------------------------------------------------

    def kill_leader(self, reason="kill"):
        """Kill -9 the leader replica; returns its index (None if no
        leader to kill).  Recovery is a follower election + promotion."""
        leader = self._leader
        if leader is None:
            return None
        self._kill_replica(leader, reason=reason)
        return leader.index

    def kill_replica(self, index, reason="kill"):
        """Kill -9 one replica by index (leader or follower); returns
        the index, or None when it was already dead."""
        replica = self.replicas[index]
        if not replica.alive:
            return None
        self._kill_replica(replica, reason=reason)
        return replica.index

    def arm_kill(self, after_ops, callback=None):
        """Arm a mid-``txn`` kill -9 on the current leader (see
        :meth:`EtcdStore.arm_kill`)."""
        leader = self._leader
        if leader is None:
            return
        leader.store.arm_kill(
            after_ops,
            callback=lambda store, cb=callback: self._on_mid_txn_kill(store,
                                                                      cb))

    def disarm_kill(self):
        """Clear any armed mid-txn kill on every replica."""
        for replica in self.replicas:
            replica.store.disarm_kill()

    def _on_mid_txn_kill(self, store, callback):
        for replica in self.replicas:
            if replica.store is store:
                self._kill_replica(replica, reason="mid-txn")
                break
        if callback is not None:
            callback(self)

    def _kill_replica(self, replica, reason):
        if not replica.alive:
            return
        if replica is self._leader:
            # What durability owes us: the durable log image at the
            # instant of death.  Promotion verifies against it.
            self._pending_recovery = {
                "victim": replica.name,
                "reason": reason,
                "killed_at": self.sim.now,
                "durable_revision": replica.store.wal.durable_revision,
                "durable_state": replica.store.wal.durable_state(),
            }
        replica.alive = False
        replica.role = "dead"
        replica.store.wal.on_append = None
        if replica.store.available:
            replica.store.power_off()
        elif replica.store.wal is not None:
            replica.store.wal.power_off()
        if replica.elector is not None:
            replica.elector.crash()
        if replica is self._leader:
            # The sender's sockets die with it: in-flight records are
            # lost, and followers resume from the durable log instead.
            for other in self.replicas:
                if other is not replica and other.channel is not None:
                    other.channel.close()
            self._leader = None
        elif replica.channel is not None:
            replica.channel.close()

    def restart_replica(self, index=None):
        """Bring a dead replica back: recover its store from its own WAL,
        rejoin the leader's stream as a follower, resume contending."""
        replica = None
        if index is not None:
            replica = self.replicas[index]
        else:
            for candidate in self.replicas:
                if not candidate.alive:
                    replica = candidate
                    break
        if replica is None or replica.alive:
            return None
        replica.alive = True
        try:
            replica.store.recover_from_wal()
        except CompactedError:
            replica.store.wipe()  # empty disk: full resync from the leader
        replica.applied_revision = replica.store.revision
        replica.role = "follower"
        if self._leader is not None:
            self._attach_follower(replica)
        if replica.elector is not None:
            replica.elector.start()
        return replica.index

    def set_extra_lag(self, seconds, index=None):
        """Chaos ReplicaLag: slow one follower's apply pump; ``index``
        None picks the first live follower (deterministic order)."""
        for replica in self.replicas:
            if index is not None and replica.index != index:
                continue
            if replica.alive and replica.role == "follower":
                replica.extra_lag = seconds
                return replica.index
        return None

    # ------------------------------------------------------------------
    # Election callbacks
    # ------------------------------------------------------------------

    def _on_elected(self, replica, token):
        if not replica.alive:
            return
        self._term = max(self._term, token)
        if replica is self._leader:
            # Re-affirmed leadership: ratchet the fencing floor.
            replica.store.check_fence(self.fence_domain, token)
            return
        self._promote(replica, token)

    def _on_lost(self, replica, reason):
        # Lease lost while the process is alive (e.g. coordination
        # partition): stop serving to preserve single-writer.
        if replica is self._leader:
            replica.role = "follower"
            replica.store.wal.on_append = None
            self._leader = None

    def _promote(self, replica, token):
        """Fencing-gated takeover: catch up from the most durable log,
        fence out the deposed term, then serve."""
        source = self._last_leader
        if source is not None and source is not replica:
            try:
                replica.catch_up_from(source.store.wal)
            except CompactedError:
                replica.resync_from(source.store.wal)
        # Fence barrier: any in-flight write stamped with an older term
        # dies at the storage layer before the new leader serves.
        replica.store.check_fence(self.fence_domain, token)
        replica.role = "leader"
        if replica.channel is not None:
            replica.channel.close()
            replica.channel = None
        self._leader = replica
        self._last_leader = replica
        replica.store.wal.on_append = self._stream_record
        for other in self.replicas:
            if other is not replica and other.alive:
                self._attach_follower(other)
        self.failovers += 1
        self._failover_metric.inc()
        pending, self._pending_recovery = self._pending_recovery, None
        if pending is not None:
            pending["promoted"] = replica.name
            pending["token"] = token
            pending["recovered_at"] = self.sim.now
            pending["mttr"] = self.sim.now - pending["killed_at"]
            pending["lost_writes"] = self._count_lost_writes(
                pending["durable_state"], replica.store)
            self.recoveries.append(pending)

    @staticmethod
    def _count_lost_writes(durable_state, store):
        lost = 0
        for key, (value, mod_revision) in durable_state.items():
            stored = store._data.get(key)
            if (stored is None or stored.mod_revision != mod_revision
                    or stored.value != value):
                lost += 1
        return lost

    # ------------------------------------------------------------------
    # Stale-read contract
    # ------------------------------------------------------------------

    def read_follower(self, key, min_revision=None, index=None):
        """Serve a read from a follower, tagged with its applied revision.

        Returns ``(value, mod_revision, applied_revision)`` (value None
        when the key is absent at the follower's applied point).  With
        ``min_revision`` set, a follower applied below it raises
        :class:`StaleRead` instead of returning stale data.
        """
        replica = None
        if index is not None:
            candidate = self.replicas[index]
            if candidate.alive:
                replica = candidate
        else:
            # Deterministic choice: the most-lagged live follower (ties
            # break on index) — the adversarial read for staleness tests.
            followers = [r for r in self.replicas
                         if r.alive and r.role == "follower"]
            if followers:
                replica = max(followers, key=lambda r: (r.lag, -r.index))
        if replica is None:
            replica = self._leader
        if replica is None:
            raise self._unavailable(f"{self.name}: no replica to read from")
        if min_revision is not None and replica.applied_revision < \
                min_revision and replica.role != "leader":
            self.stale_reads += 1
            self._stale_reads_metric.inc()
            raise StaleRead(min_revision, replica.applied_revision,
                            replica=replica.name)
        value, mod_revision = replica.store.try_get(key)
        applied = (replica.store.revision if replica.role == "leader"
                   else replica.applied_revision)
        return value, mod_revision, applied

    # ------------------------------------------------------------------
    # EtcdStore facade (routes to the leader)
    # ------------------------------------------------------------------

    @property
    def available(self):
        leader = self._leader
        return leader is not None and leader.alive

    def set_unavailable_factory(self, factory):
        self._unavailable_factory = factory
        for replica in self.replicas:
            replica.store.set_unavailable_factory(factory)

    def _unavailable(self, message):
        if self._unavailable_factory is not None:
            return self._unavailable_factory(message)
        return StoreUnavailable(message)

    def _leader_store(self):
        leader = self._leader
        if leader is None or not leader.alive:
            raise self._unavailable(f"{self.name}: storage has no leader")
        return leader.store

    @property
    def leader(self):
        return self._leader

    @property
    def revision(self):
        return self._leader_store().revision

    def create(self, key, value):
        return self._leader_store().create(key, value)

    def get(self, key):
        return self._leader_store().get(key)

    def try_get(self, key):
        return self._leader_store().try_get(key)

    def update(self, key, value, expected_revision=None):
        return self._leader_store().update(key, value,
                                           expected_revision=expected_revision)

    def delete(self, key, expected_revision=None):
        return self._leader_store().delete(key,
                                           expected_revision=expected_revision)

    def txn(self, ops):
        return self._leader_store().txn(ops)

    def list_prefix(self, prefix):
        return self._leader_store().list_prefix(prefix)

    def count_prefix(self, prefix):
        return self._leader_store().count_prefix(prefix)

    def watch(self, prefix, from_revision=None, channel_factory=None,
              predicate=None):
        return self._leader_store().watch(prefix, from_revision=from_revision,
                                          channel_factory=channel_factory,
                                          predicate=predicate)

    def events_since(self, revision):
        return self._leader_store().events_since(revision)

    def compact(self, keep=1000):
        return self._leader_store().compact(keep=keep)

    def check_fence(self, domain, token):
        return self._leader_store().check_fence(domain, token)

    def snapshot(self):
        return self._leader_store().snapshot()

    def anchor_wal(self, snapshot):
        return self._leader_store().anchor_wal(snapshot)

    def wal_durable_revision(self):
        return self._leader_store().wal_durable_revision()

    def restore(self, snapshot, replay=()):
        """Roll the whole group to a snapshot (operator recovery):
        restore the leader, then full-resync every live follower."""
        store = self._leader_store()
        revision = store.restore(snapshot, replay=replay)
        for replica in self.replicas:
            if replica is not self._leader and replica.alive:
                # A restore can roll state *back*, which catch-up cannot
                # express — force a full state transfer.
                replica.resync_from(store.wal)
                self._attach_follower(replica)
        return revision

    def recover_from_wal(self):
        return self._leader_store().recover_from_wal()

    def wipe(self):
        """Catastrophic loss of the whole group, WALs included."""
        for replica in self.replicas:
            if replica.alive:
                replica.store.wipe()
                replica.applied_revision = 0

    def dump(self):
        return self._leader_store().dump()

    def __len__(self):
        return len(self._leader_store())

    def stats(self):
        leader = self._leader or self._last_leader
        out = leader.store.stats() if leader is not None else {}
        out["replicas"] = [
            {
                "name": replica.name,
                "role": replica.role,
                "alive": replica.alive,
                # A leader applies writes directly; its follower-era
                # applied_revision would be stale.
                "applied_revision": (replica.store.revision
                                     if replica.role == "leader"
                                     else replica.applied_revision),
                "lag": replica.lag,
                "records_applied": replica.records_applied,
                "catchups": replica.catchups,
                "wal": (replica.store.wal.stats()
                        if replica.store.wal is not None else None),
            }
            for replica in self.replicas
        ]
        out["failovers"] = self.failovers
        out["stale_reads"] = self.stale_reads
        # Group-wide WAL-recovery count: the leader's own counter alone
        # would hide a restarted victim's recovery.
        out["recoveries"] = sum(
            replica.store.recoveries for replica in self.replicas)
        out["recoveries_log"] = list(self.recoveries)
        return out

    def __getattr__(self, name):
        # Delegate anything else (test/benchmark introspection such as
        # ``_data`` or ``_fences``) to the current leader's store.
        replicas = self.__dict__.get("replicas")
        if not replicas:
            raise AttributeError(name)
        leader = self.__dict__.get("_leader") or self.__dict__.get(
            "_last_leader")
        if leader is None:
            raise AttributeError(name)
        return getattr(leader.store, name)
